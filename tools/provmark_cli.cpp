// The ProvMark command-line driver, mirroring the paper's tooling
// (appendix A.5):
//
//   Single execution (fullAutomation.py):
//     provmark [options] run <system> <benchmark> [trials]
//   Batch execution (runTests.sh):
//     provmark [options] batch <systems> <result-type> [output-dir]
//
// Systems accept both long names (spade/opus/camflow/spade-camflow) and
// the paper's abbreviations (spg/spn/opu/cam). Result types follow the
// paper: rb = benchmark only, rg = benchmark + generalized graphs,
// rh = HTML page (written to <output-dir>/index.html).
//
// Batch mode takes a comma-separated system list and sweeps every
// (benchmark, system) pair across the runtime thread pool; each
// pipeline's own trial fan-out shares the same pool. Output order is
// deterministic (pair order), whatever the scheduling.
//
// Batch mode also appends one CSV line per benchmark to
// <output-dir>/time.log — the appendix A.6.4 timing-log format:
//   system,syscall,recording,transformation,generalization,comparison
// and writes the Table 2-style validation table to
// <output-dir>/validation.txt.
//
// Sharded sweeps (--shards N) partition the batch matrix across N
// worker processes (fork/exec of this binary with --shard-id) and merge
// the per-shard artifact directories back into output that is
// byte-identical to the single-process sweep; `provmark merge`
// recombines shard directories produced elsewhere (e.g. a cluster
// launch with explicit --shard-id). See src/core/shard.h for the
// protocol.
//
// The orchestrator supervises its workers (src/core/supervise.h):
// failed/crashed/hung shards are retried up to --shard-retries with
// seeded backoff, stragglers get duplicate attempts (first publish
// wins via the atomic directory rename), and a shard that exhausts its
// budget is quarantined as shard-K.failed.<attempt>. --fault-spec
// injects deterministic crashes/torn writes/hangs to exercise exactly
// those paths (docs/robustness.md).
//
// The full grammar lives in usage() below; docs/cli.md documents every
// subcommand with worked examples and must be kept in sync with it.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program.h"
#include "bench_suite/program_text.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/shard.h"
#include "core/supervise.h"
#include "datalog/engine.h"
#include "datalog/fact_io.h"
#include "runtime/thread_pool.h"
#include "serve/cluster.h"
#include "serve/daemon.h"
#include "systems/recorder.h"
#include "util/fault.h"
#include "util/limits.h"
#include "util/strings.h"

using namespace provmark;

namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  provmark [options] run <system> <benchmark> [trials]\n"
    "  provmark [options] batch <systems> <rb|rg|rh> [output-dir]\n"
    "  provmark merge <output-dir> <shard-dir> [<shard-dir>...]\n"
    "  provmark query <facts.datalog> <atom> [rules.datalog]\n"
    "  provmark gen [--seed S] [--scale K] [gen-options]\n"
    "  provmark [options] serve <socket> <journal-root> [serve-options]\n"
    "  provmark [options] cluster <socket> <cluster-root> "
    "[cluster-options]\n"
    "  provmark feed <socket> [request-file] [--feed-retries N]\n"
    "  provmark promote <socket>\n"
    "  provmark --help\n"
    "\n"
    "subcommands:\n"
    "  run    full pipeline for one benchmark on one system; prints a\n"
    "         summary, the result graph as DOT, and its datalog facts\n"
    "         (exit 1 if the pipeline fails)\n"
    "  batch  all Table 1 benchmarks on every listed system (comma-\n"
    "         separated, e.g. spade,camflow), swept in parallel across\n"
    "         the thread pool; appends timing CSV to\n"
    "         <output-dir>/time.log and writes the validation table to\n"
    "         <output-dir>/validation.txt (default output-dir:\n"
    "         finalResult). With --shards N the sweep is partitioned\n"
    "         across N worker processes and merged back byte-identically\n"
    "  merge  recombine shard artifact directories (written by batch\n"
    "         --shards N --shard-id K) into <output-dir>, reproducing\n"
    "         the single-process sweep's time.log row order, validation\n"
    "         table and result stores exactly; exit 0 on success, 3 when\n"
    "         a shard is incomplete/torn (retryable — the message names\n"
    "         the shard to re-run), 1 on structural mismatches (mixed\n"
    "         sweep fingerprints) that no re-run can fix\n"
    "  query  load a Datalog fact document (a regression-store save, a\n"
    "         batch .datalog result, or any Listing 1 file), optionally\n"
    "         add rules from a second file, and evaluate a query atom\n"
    "         (e.g. 'reach(p0, X)'); bindings print as a table, exit 1\n"
    "         when nothing matches\n"
    "  gen    emit a seeded adversarial benchmark program in the textual\n"
    "         format (stdout): file/pipe/socket churn, process and thread\n"
    "         spawning, rename/unlink cycles, hostile identifiers, and\n"
    "         expected-failure probes. Deterministic per options; pipe to\n"
    "         a file and run it with 'run <system> @file.prog', or\n"
    "         reference it directly as benchmark gen<seed>x<scale>.\n"
    "         gen-options: --seed S (default: the global seed), --scale K\n"
    "         (approximate target-op count, default 16), --depth D and\n"
    "         --fan-out F (process-tree shape, default 2x2), --hostile P\n"
    "         (hostile-identifier probability 0..1, default 0.25),\n"
    "         --no-network, --no-memory, --no-failure-probes\n"
    "  serve  long-lived streaming service (docs/serve.md): per-client\n"
    "         sessions hold an incremental Datalog fixpoint fed by\n"
    "         journaled events over an AF_UNIX socket. Bounded admission\n"
    "         with deterministic overload shedding; every acked event is\n"
    "         fsynced to <journal-root>/<session>/ before the ack, so\n"
    "         SIGKILL + restart replays into bit-identical fixpoints.\n"
    "         SIGTERM/SIGINT drain gracefully (finish queues, checkpoint,\n"
    "         compact journals, exit 0).\n"
    "         serve-options: --serve-workers N (apply threads, default 2),\n"
    "         --queue-cap N (global pending budget, default 256),\n"
    "         --session-cap N (per-session queue, default 64),\n"
    "         --checkpoint-every N (applied events between checkpoints,\n"
    "         default 64). --seed, --fault-spec (serve-crash /\n"
    "         slow-client / repl-* rules) and --max-input-bytes are\n"
    "         honoured.\n"
    "         replication (docs/serve.md, Replication & failover):\n"
    "         --replica-of <socket> runs this daemon as a hot standby of\n"
    "         the primary at <socket>: it tails the primary's journal\n"
    "         stream, fsyncs and applies every record, answers read-only\n"
    "         queries, refuses events until promoted. --repl-mode\n"
    "         async|sync (primary; sync holds each client ack until the\n"
    "         standby fsynced the record, default async), --heartbeat-ms\n"
    "         M (standby heartbeat period, default 500), --promote-after\n"
    "         K (standby auto-promotes after K unanswered heartbeats;\n"
    "         default 0 = only explicit promote)\n"
    "  cluster\n"
    "         session-sharded serve fleet (docs/serve.md, Cluster\n"
    "         sharding): a router on <socket> proxies the feed/query\n"
    "         protocol to N supervised member daemons, each journaling\n"
    "         into <cluster-root>/member-K and listening on\n"
    "         <cluster-root>/member-K.sock. Sessions map to members by\n"
    "         stable hash, so digests are bit-identical to one unsharded\n"
    "         daemon fed the same per-session streams. Dead or hung\n"
    "         members (liveness heartbeats over a control pipe) are\n"
    "         killed and restarted with seeded backoff; their sessions\n"
    "         answer 'busy' (never dropped) until journal replay\n"
    "         finishes. SIGTERM drains members gracefully; exit 0 on\n"
    "         clean shutdown, 1 when the front socket cannot be bound.\n"
    "         cluster-options: --members N (default 3), --member-window\n"
    "         N (per-member in-flight cap, default 32), --heartbeat-ms M\n"
    "         (member liveness period, default 200),\n"
    "         --heartbeat-deadline-ms M (silence before a member is\n"
    "         declared hung, default 8x heartbeat), --start-deadline-ms\n"
    "         M (bind+replay budget, default 30000), --max-restarts K\n"
    "         (consecutive failures before giving a member up, default\n"
    "         -1 = forever), plus the serve-options --serve-workers,\n"
    "         --queue-cap, --session-cap, --checkpoint-every applied to\n"
    "         every member. --seed and --fault-spec (cluster-member-\n"
    "         crash / member-hang / route-drop rules) are honoured.\n"
    "  feed   stream request lines (see docs/serve.md for the grammar)\n"
    "         from a file or stdin to a serve socket; prints one response\n"
    "         line each. Exit 0 when everything was acked/answered, 3\n"
    "         when any request was shed/refused, 1 on connection failure.\n"
    "         --feed-retries N retries each shed/busy response up to N\n"
    "         times with deterministic seeded exponential backoff (keyed\n"
    "         by --seed, request index, attempt; default 0 = no retry)\n"
    "  promote\n"
    "         ask the standby daemon at <socket> to stop tailing its\n"
    "         primary and start serving (prints 'result promoted'; a\n"
    "         daemon that is already primary prints 'result\n"
    "         already-primary'). Exit 0 on success, 1 on connection\n"
    "         failure\n"
    "\n"
    "options:\n"
    "  --threads N  worker threads for the parallel runtime (default:\n"
    "               PROVMARK_THREADS env var, then hardware concurrency)\n"
    "  --matcher-threads N\n"
    "               workers for the deterministic parallel matcher\n"
    "               search inside generalization/comparison (own pool,\n"
    "               nests under --threads; default 1 = serial search;\n"
    "               results are identical at any N)\n"
    "  --matcher-order none|cost|time|wl\n"
    "               candidate-ordering heuristic (default cost; wl =\n"
    "               WL-scarcity ordering + component decomposition —\n"
    "               optimal costs are unchanged by any choice)\n"
    "  --seed S     pipeline seed (default 42); results are\n"
    "               deterministic per seed at any thread count\n"
    "  --shards N   (batch) partition the sweep into N shards. Without\n"
    "               --shard-id: spawn N worker processes, wait, and\n"
    "               merge their artifacts into <output-dir>; shards\n"
    "               already complete under <output-dir>/shard-K/ are\n"
    "               skipped (resume)\n"
    "  --shard-id K (batch, with --shards) run only shard K (0-based)\n"
    "               and write its artifacts to <output-dir>/shard-K/ —\n"
    "               for external/cluster launch; recombine with merge\n"
    "  --shard-retries R\n"
    "               (batch orchestrator) extra launches allowed per\n"
    "               shard after its first attempt crashes, fails, hangs\n"
    "               or straggles (default 2); a shard that exhausts its\n"
    "               budget is quarantined as shard-K.failed.<attempt>\n"
    "               with a diagnostic and the sweep exits 1\n"
    "  --shard-attempt A\n"
    "               (worker, with --shard-id) this launch's attempt\n"
    "               number; set by the orchestrator on retries, selects\n"
    "               which --fault-spec rules arm (default 0)\n"
    "  --fault-spec SPEC\n"
    "               deterministic fault injection for crash-tolerance\n"
    "               testing: ';'-joined rules of\n"
    "                 crash:shard=K,after-cell=M\n"
    "                 torn-write:shard=K,file=NAME[,keep=F]\n"
    "                 hang:shard=K[,seconds=S]\n"
    "                 serve-crash:after-events=M\n"
    "                 slow-client:ms=T[,events=M]\n"
    "                 repl-link-drop:after-records=M\n"
    "                 replica-crash:after-records=M\n"
    "                 repl-partition:after-records=M[,ms=T]\n"
    "                 cluster-member-crash:member=K,after-events=M\n"
    "                 member-hang:member=K,after-events=M\n"
    "                 route-drop:after-requests=M\n"
    "               each shard rule arms on attempt 0 only unless\n"
    "               attempt=N|any is given, so retried attempts run\n"
    "               fault-free and the sweep converges; serve rules arm\n"
    "               unconditionally in the daemon, and member rules arm\n"
    "               in the targeted member's incarnation (see\n"
    "               docs/robustness.md for the full grammar)\n"
    "  --max-input-bytes N\n"
    "               size ceiling for parsed inputs — @file.prog programs,\n"
    "               query documents, serve event payloads (default 64 MiB\n"
    "               for files, 1 MiB for serve payloads; 0 disables).\n"
    "               Oversized input is refused with a typed error before\n"
    "               any parsing\n"
    "  --deterministic-timings\n"
    "               (batch) replace measured stage timings with per-cell\n"
    "               pure-hash values so time.log is byte-reproducible\n"
    "               across runs, shard counts and hosts (the shard\n"
    "               identity gates run with this on)\n"
    "  --help       this text\n"
    "\n"
    "systems: spade|spg, spn, opus|opu, camflow|cam, spade-camflow,\n"
    "         audit|aud, ebpf|bpf\n"
    "result types: rb = benchmark only, rg = + generalized graphs,\n"
    "              rh = + HTML report (<output-dir>/index.html)\n"
    "benchmarks: Table 1 syscall names (e.g. rename), scaleN,\n"
    "            rename-fail, failure-case names, @file.prog,\n"
    "            gen<seed>x<scale> (seeded adversarial programs)\n";

int usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

/// One-line diagnostic for a recognizable-but-wrong invocation: scripts
/// get a pointed stderr message and exit 2 without the full usage wall.
int bad_usage(const std::string& message) {
  std::fprintf(stderr, "provmark: %s (try 'provmark --help')\n",
               message.c_str());
  return 2;
}

bench_suite::BenchmarkProgram find_program(
    const std::string& name,
    std::size_t max_bytes = util::kDefaultMaxInputBytes) {
  if (!name.empty() && name.front() == '@') {
    // @path/to/file.prog: a user-supplied textual benchmark program.
    std::ifstream in(name.substr(1));
    if (!in.good()) {
      throw std::runtime_error("cannot read program file " +
                               name.substr(1));
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return bench_suite::parse_program(text, max_bytes);
  }
  if (name.rfind("scale", 0) == 0 && name.size() > 5) {
    return bench_suite::scale_benchmark(std::stoi(name.substr(5)));
  }
  if (name == "rename-fail") return bench_suite::failed_rename_benchmark();
  for (const bench_suite::BenchmarkProgram& p :
       bench_suite::failure_benchmarks()) {
    if (p.name == name) return p;
  }
  return bench_suite::benchmark_by_name(name);
}

struct CliOptions {
  runtime::ThreadPool* pool = nullptr;
  std::uint64_t seed = 42;
  matcher::SearchConfig matcher;
  int shards = 0;         ///< 0 = unsharded batch
  int shard_id = -1;      ///< >= 0: run only this shard
  int shard_retries = 2;  ///< extra launches per shard (orchestrator)
  int shard_attempt = 0;  ///< this worker's attempt (fault arming)
  bool deterministic_timings = false;
  std::string matcher_order_name;  ///< as given (shard plan fingerprint)
  std::string fault_spec;          ///< "" = no fault injection
  /// --max-input-bytes: ceiling for parsed input files (0 = unlimited;
  /// default util::kDefaultMaxInputBytes). serve payloads default
  /// tighter (1 MiB) unless this is given explicitly.
  std::size_t max_input_bytes = util::kDefaultMaxInputBytes;
  bool max_input_bytes_set = false;
};

matcher::CandidateOrder parse_order(const std::string& name) {
  if (name == "none") return matcher::CandidateOrder::None;
  if (name == "cost") return matcher::CandidateOrder::PropertyCost;
  if (name == "time") return matcher::CandidateOrder::TimestampRank;
  if (name == "wl") return matcher::CandidateOrder::WlScarcity;
  throw std::invalid_argument("unknown matcher order: " + name);
}

int run_single(const CliOptions& cli, const std::string& system,
               const std::string& benchmark, int trials) {
  core::PipelineOptions options;
  options.system = system;
  options.trials = trials;
  options.seed = cli.seed;
  options.pool = cli.pool;
  options.matcher = cli.matcher;
  core::BenchmarkResult result = core::run_benchmark(
      find_program(benchmark, cli.max_input_bytes), options);
  std::printf("%s\n\n", core::summarize(result).c_str());
  std::printf("%s\n", core::result_dot(result).c_str());
  std::printf("%s", datalog::to_datalog(result.result, "result").c_str());
  if (result.status == core::BenchmarkStatus::Failed) {
    std::fprintf(stderr, "failure: %s\n", result.failure_reason.c_str());
    return 1;
  }
  return 0;
}

void print_batch_report(const std::vector<core::BenchmarkResult>& results) {
  for (const core::BenchmarkResult& result : results) {
    std::printf("%s\n", core::summarize(result).c_str());
  }
  std::printf("\n%s\n", core::validation_table(results).c_str());
}

/// Resolved path of this executable, for re-execing shard workers.
std::string self_exe_path(const char* argv0) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int run_batch(const CliOptions& cli, const char* argv0,
              const std::vector<std::string>& raw_args,
              const std::string& system_list,
              const std::string& result_type,
              const std::string& output_dir) {
  std::vector<std::string> systems = util::split_nonempty(system_list, ',');
  if (systems.empty()) return usage();
  // Fail fast on any bad system name before the sweep runs: a typo in
  // one list entry must not burn (and then discard) the full suite for
  // the valid ones. Throws std::invalid_argument -> "error: ...", exit 1.
  for (const std::string& system : systems) {
    systems::make_recorder(system);
  }
  if (cli.shard_id >= 0 &&
      (cli.shards < 1 || cli.shard_id >= cli.shards)) {
    throw std::invalid_argument("--shard-id requires 0 <= K < --shards N");
  }

  core::ShardPlan plan = core::plan_batch(
      systems, core::table_benchmark_names(), std::max(1, cli.shards),
      cli.seed, result_type, cli.deterministic_timings,
      cli.matcher_order_name);
  core::CellRunOptions cell_options;
  cell_options.seed = cli.seed;
  cell_options.pool = cli.pool;
  cell_options.matcher = cli.matcher;
  cell_options.deterministic_timings = cli.deterministic_timings;

  if (cli.shards <= 0) {
    // -- single-process sweep ----------------------------------------------
    std::vector<core::BenchmarkResult> results =
        core::run_batch_cells(plan.cells, cell_options);
    print_batch_report(results);
    core::write_batch_outputs(output_dir, results, result_type);
    if (result_type == "rh") {
      std::printf("wrote %s/index.html\n", output_dir.c_str());
    }
    return 0;
  }

  if (cli.shard_id >= 0) {
    // -- one shard worker (spawned below, or launched externally) ----------
    if (!cli.fault_spec.empty()) {
      // Arm only the rules targeting this (shard, attempt); every hook
      // stays a no-op otherwise.
      util::fault::arm(util::fault::parse_fault_spec(cli.fault_spec),
                       cli.shard_id, cli.shard_attempt);
    }
    core::ShardSpec spec = plan.shard(cli.shard_id);
    std::vector<core::BenchmarkResult> results =
        core::run_batch_cells(spec.cells, cell_options);
    std::string dir = core::write_shard_dir(output_dir, spec, results);
    print_batch_report(results);
    std::printf("shard %d/%d: %zu cells -> %s\n", cli.shard_id, cli.shards,
                spec.cells.size(), dir.c_str());
    return 0;
  }

  // -- orchestrator: supervised workers, then merge ------------------------
  std::filesystem::create_directories(output_dir);
  // Startup hygiene: a previous orchestrator killed mid-sweep leaves
  // dead workers' staging dirs and .tmp files behind; sweep them before
  // spawning anything (live pids are left alone).
  if (std::size_t swept = core::remove_orphaned_staging(output_dir)) {
    std::printf("removed %zu orphaned staging leftover(s)\n", swept);
  }
  const std::string exe = self_exe_path(argv0);
  std::vector<int> pending;  // supervise task index -> shard id
  for (int shard = 0; shard < cli.shards; ++shard) {
    if (core::shard_complete(core::shard_dir_path(output_dir, shard),
                             plan.shard(shard))) {
      // Resume: the deterministic plan makes completed shard artifacts
      // reusable as-is — identical cells, seeds, and therefore bytes
      // (shard_complete re-verifies every content digest, so torn
      // leftovers of a crashed run re-run instead of resuming).
      std::printf("shard %d/%d: already complete, skipping\n", shard,
                  cli.shards);
      continue;
    }
    pending.push_back(shard);
  }
  if (!pending.empty()) {
    // Each attempt re-runs this invocation's exact argv; the leading
    // --shard-id/--shard-attempt narrow it to one shard and tell the
    // fault injector which attempt this is (leading options parse in
    // any order, so every sweep flag forwards by construction).
    auto host = core::ProcessWorkerHost::exec_mode(
        [&](int task, int attempt) {
          std::vector<std::string> args = {
              exe, "--shard-id", std::to_string(pending[task]),
              "--shard-attempt", std::to_string(attempt)};
          args.insert(args.end(), raw_args.begin(), raw_args.end());
          return args;
        },
        [&](int task) {
          return core::shard_complete(
              core::shard_dir_path(output_dir, pending[task]),
              plan.shard(pending[task]));
        });
    host.set_log_path([&](int task, int attempt) {
      return output_dir + "/shard-" + std::to_string(pending[task]) +
             ".attempt-" + std::to_string(attempt) + ".log";
    });
    host.set_note([](const std::string& message) {
      std::printf("%s\n", message.c_str());
    });
    // SIGTERM/SIGINT on the orchestrator forwards to in-flight workers
    // before the orchestrator dies — no orphaned shard processes.
    host.install_signal_forwarding();
    host.set_quarantine([&](int task, int attempt,
                            const std::string& diagnostic) {
      const int shard = pending[task];
      const std::string dir = core::shard_dir_path(output_dir, shard);
      const std::string failed = dir + ".failed." + std::to_string(attempt);
      std::error_code ec;
      std::filesystem::remove_all(failed, ec);
      if (std::filesystem::exists(dir, ec)) {
        std::filesystem::rename(dir, failed, ec);
      } else {
        std::filesystem::create_directories(failed, ec);
      }
      std::ofstream out(failed + "/diagnostic.txt");
      out << diagnostic << "\n"
          << "worker logs: " << output_dir << "/shard-" << shard
          << ".attempt-*.log\n";
    });
    core::SuperviseOptions sup;
    sup.retries = cli.shard_retries;
    sup.seed = cli.seed;
    std::printf("supervising %zu shard worker(s) (retries per shard: %d)\n",
                pending.size(), sup.retries);
    core::SuperviseReport report =
        core::supervise(static_cast<int>(pending.size()), host, sup);
    for (const core::TaskOutcome& outcome : report.tasks) {
      if (outcome.published) {
        std::printf("shard %d/%d: published by attempt %d (%d launch%s)\n",
                    pending[outcome.task], cli.shards,
                    outcome.winning_attempt, outcome.launches,
                    outcome.launches == 1 ? "" : "es");
      }
    }
    if (!report.all_published) {
      for (const core::TaskOutcome& outcome : report.tasks) {
        if (!outcome.published) {
          std::fprintf(stderr, "%s\n", outcome.diagnostic.c_str());
        }
      }
      std::fprintf(stderr,
                   "sweep incomplete; inspect the shard-K.failed.* "
                   "quarantine and rerun the same command to resume the "
                   "finished shards\n");
      return 1;
    }
  }

  std::vector<std::string> shard_dirs;
  for (int shard = 0; shard < cli.shards; ++shard) {
    shard_dirs.push_back(core::shard_dir_path(output_dir, shard));
  }
  std::vector<core::BenchmarkResult> results =
      core::read_shard_results(shard_dirs);
  print_batch_report(results);
  core::write_batch_outputs(output_dir, results, result_type);
  if (result_type == "rh") {
    std::printf("wrote %s/index.html\n", output_dir.c_str());
  }
  std::printf("merged %d shards into %s\n", cli.shards, output_dir.c_str());
  return 0;
}

int run_merge(const std::string& output_dir,
              const std::vector<std::string>& shard_dirs) {
  std::string result_type;
  std::vector<core::BenchmarkResult> results =
      core::read_shard_results(shard_dirs, &result_type);
  print_batch_report(results);
  core::write_batch_outputs(output_dir, results, result_type);
  if (result_type == "rh") {
    std::printf("wrote %s/index.html\n", output_dir.c_str());
  }
  std::printf("merged %zu shards into %s\n", shard_dirs.size(),
              output_dir.c_str());
  return 0;
}

int run_gen(const CliOptions& cli, const std::vector<std::string>& args) {
  bench_suite::GeneratorOptions options;
  options.seed = cli.seed;  // the leading global --seed is honoured too
  auto numeric = [&](std::size_t i, const char* flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(std::string(flag) + " needs a value");
    }
    return args[i + 1];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seed") {
      options.seed = std::stoull(numeric(i, "--seed"));
      ++i;
    } else if (args[i] == "--scale") {
      options.scale = std::stoi(numeric(i, "--scale"));
      if (options.scale < 1) {
        throw std::invalid_argument("--scale must be >= 1");
      }
      ++i;
    } else if (args[i] == "--depth") {
      options.depth = std::stoi(numeric(i, "--depth"));
      ++i;
    } else if (args[i] == "--fan-out") {
      options.fan_out = std::stoi(numeric(i, "--fan-out"));
      ++i;
    } else if (args[i] == "--hostile") {
      options.hostile_probability = std::stod(numeric(i, "--hostile"));
      ++i;
    } else if (args[i] == "--no-network") {
      options.network = false;
    } else if (args[i] == "--no-memory") {
      options.memory = false;
    } else if (args[i] == "--no-failure-probes") {
      options.failure_probes = false;
    } else {
      return bad_usage("unknown gen option '" + args[i] + "'");
    }
  }
  std::printf("%s", bench_suite::format_program(
                        bench_suite::generate_program(options))
                        .c_str());
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot read " + path);
  }
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int run_query(const std::string& facts_path, const std::string& pattern,
              const std::string& rules_path, std::size_t max_bytes) {
  datalog::Engine engine;
  std::string facts = read_file(facts_path);
  util::check_input_size(facts_path.c_str(), facts.size(), max_bytes);
  engine.load_program(facts);
  if (!rules_path.empty()) {
    std::string rules = read_file(rules_path);
    util::check_input_size(rules_path.c_str(), rules.size(), max_bytes);
    engine.load_program(rules);
  }
  datalog::Atom atom = datalog::parse_atom(pattern);
  std::vector<std::map<std::string, std::string>> rows = engine.query(atom);

  // Columns in first-appearance order within the query atom.
  std::vector<std::string> columns;
  for (const datalog::Term& term : atom.terms) {
    if (term.is_variable() && term.text != "_" &&
        std::find(columns.begin(), columns.end(), term.text) ==
            columns.end()) {
      columns.push_back(term.text);
    }
  }
  if (columns.empty()) {
    // A ground query is a membership test.
    std::printf("%s\n", rows.empty() ? "no" : "yes");
    return rows.empty() ? 1 : 0;
  }
  std::vector<std::size_t> widths;
  for (const std::string& column : columns) {
    std::size_t width = column.size();
    for (const auto& row : rows) {
      width = std::max(width, row.at(column).size());
    }
    widths.push_back(width);
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%-*s%s", static_cast<int>(widths[c]), columns[c].c_str(),
                c + 1 < columns.size() ? "  " : "\n");
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 < columns.size() ? "  " : "\n");
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]),
                  row.at(columns[c]).c_str(),
                  c + 1 < columns.size() ? "  " : "\n");
    }
  }
  std::printf("(%zu row%s)\n", rows.size(), rows.size() == 1 ? "" : "s");
  return rows.empty() ? 1 : 0;
}

int run_serve(const CliOptions& cli, const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return bad_usage(
        "serve needs: provmark [options] serve <socket> <journal-root> "
        "[--serve-workers N] [--queue-cap N] [--session-cap N] "
        "[--checkpoint-every N]");
  }
  serve::DaemonOptions options;
  options.socket_path = args[0];
  options.service.root = args[1];
  options.service.seed = cli.seed;
  options.service.workers = 2;
  options.service.pipeline.matcher = cli.matcher;
  options.service.pipeline.pool = nullptr;  // sessions use serial pools
  if (cli.max_input_bytes_set) {
    options.service.max_payload_bytes = cli.max_input_bytes;
  }
  auto positive = [&](std::size_t i, const char* flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(std::string(flag) + " needs a value");
    }
    long long value = std::stoll(args[i + 1]);
    if (value < 0) {
      throw std::invalid_argument(std::string(flag) + " must be >= 0");
    }
    return static_cast<std::uint64_t>(value);
  };
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--serve-workers") {
      options.service.workers = static_cast<int>(positive(i, args[i].c_str()));
      ++i;
    } else if (args[i] == "--queue-cap") {
      options.service.global_queue_cap = positive(i, args[i].c_str());
      ++i;
    } else if (args[i] == "--session-cap") {
      options.service.session_queue_cap = positive(i, args[i].c_str());
      ++i;
    } else if (args[i] == "--checkpoint-every") {
      options.service.checkpoint_every = positive(i, args[i].c_str());
      ++i;
    } else if (args[i] == "--replica-of") {
      if (i + 1 >= args.size()) {
        return bad_usage("--replica-of needs the primary's socket path");
      }
      options.replica_of = args[i + 1];
      ++i;
    } else if (args[i] == "--repl-mode") {
      if (i + 1 >= args.size() ||
          (args[i + 1] != "async" && args[i + 1] != "sync")) {
        return bad_usage("--repl-mode needs 'async' or 'sync'");
      }
      options.repl_sync = args[i + 1] == "sync";
      ++i;
    } else if (args[i] == "--heartbeat-ms") {
      options.heartbeat_ms =
          static_cast<double>(positive(i, args[i].c_str()));
      if (options.heartbeat_ms <= 0) {
        return bad_usage("--heartbeat-ms must be > 0");
      }
      ++i;
    } else if (args[i] == "--promote-after") {
      options.promote_after_missed =
          static_cast<int>(positive(i, args[i].c_str()));
      ++i;
    } else {
      return bad_usage("unknown serve option '" + args[i] + "'");
    }
  }
  if (!cli.fault_spec.empty()) {
    // Serve-side rules (serve-crash, slow-client) arm regardless of the
    // (shard, attempt) pair; shard rules stay dormant in the daemon.
    util::fault::arm(util::fault::parse_fault_spec(cli.fault_spec), 0, 0);
  }
  return serve::run_daemon(options);
}

int run_cluster_command(const CliOptions& cli,
                        const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return bad_usage(
        "cluster needs: provmark [options] cluster <socket> <cluster-root> "
        "[--members N] [--member-window N] [--heartbeat-ms M] "
        "[--heartbeat-deadline-ms M] [--start-deadline-ms M] "
        "[--max-restarts K] [serve-options]");
  }
  serve::ClusterOptions options;
  options.socket_path = args[0];
  options.root = args[1];
  options.service.seed = cli.seed;
  options.service.workers = 2;
  options.service.pipeline.matcher = cli.matcher;
  options.service.pipeline.pool = nullptr;  // members use serial pools
  options.fault_spec = cli.fault_spec;
  if (cli.max_input_bytes_set) {
    options.service.max_payload_bytes = cli.max_input_bytes;
  }
  auto positive = [&](std::size_t i, const char* flag) {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(std::string(flag) + " needs a value");
    }
    long long value = std::stoll(args[i + 1]);
    if (value < 0) {
      throw std::invalid_argument(std::string(flag) + " must be >= 0");
    }
    return static_cast<std::uint64_t>(value);
  };
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--members") {
      options.members = static_cast<int>(positive(i, args[i].c_str()));
      if (options.members < 1) {
        return bad_usage("--members must be >= 1");
      }
      ++i;
    } else if (args[i] == "--member-window") {
      options.member_window = static_cast<int>(positive(i, args[i].c_str()));
      if (options.member_window < 1) {
        return bad_usage("--member-window must be >= 1");
      }
      ++i;
    } else if (args[i] == "--heartbeat-ms") {
      options.heartbeat_ms =
          static_cast<double>(positive(i, args[i].c_str()));
      if (options.heartbeat_ms <= 0) {
        return bad_usage("--heartbeat-ms must be > 0");
      }
      ++i;
    } else if (args[i] == "--heartbeat-deadline-ms") {
      options.heartbeat_deadline_ms =
          static_cast<double>(positive(i, args[i].c_str()));
      ++i;
    } else if (args[i] == "--start-deadline-ms") {
      options.start_deadline_ms =
          static_cast<double>(positive(i, args[i].c_str()));
      if (options.start_deadline_ms <= 0) {
        return bad_usage("--start-deadline-ms must be > 0");
      }
      ++i;
    } else if (args[i] == "--max-restarts") {
      if (i + 1 >= args.size()) {
        return bad_usage("--max-restarts needs a value");
      }
      options.max_restarts = std::stoi(args[i + 1]);
      ++i;
    } else if (args[i] == "--serve-workers") {
      options.service.workers = static_cast<int>(positive(i, args[i].c_str()));
      ++i;
    } else if (args[i] == "--queue-cap") {
      options.service.global_queue_cap = positive(i, args[i].c_str());
      ++i;
    } else if (args[i] == "--session-cap") {
      options.service.session_queue_cap = positive(i, args[i].c_str());
      ++i;
    } else if (args[i] == "--checkpoint-every") {
      options.service.checkpoint_every = positive(i, args[i].c_str());
      ++i;
    } else {
      return bad_usage("unknown cluster option '" + args[i] + "'");
    }
  }
  if (!cli.fault_spec.empty()) {
    // Router-side rules (route-drop) arm here; member-targeted rules
    // stay dormant in the router and re-arm inside each member child
    // with its own (member, incarnation) coordinates.
    util::fault::arm(util::fault::parse_fault_spec(cli.fault_spec), -1, -1);
  }
  return serve::run_cluster(options);
}

int run_feed_command(const CliOptions& cli,
                     const std::vector<std::string>& args) {
  serve::FeedOptions feed;
  feed.seed = cli.seed;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--feed-retries") {
      if (i + 1 >= args.size()) {
        return bad_usage("--feed-retries needs a value");
      }
      feed.retries = std::stoi(args[i + 1]);
      if (feed.retries < 0) {
        return bad_usage("--feed-retries must be >= 0");
      }
      ++i;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty() || positional.size() > 2) {
    return bad_usage(
        "feed needs: provmark feed <socket> [request-file] "
        "[--feed-retries N]");
  }
  if (positional.size() == 2) {
    std::ifstream in(positional[1]);
    if (!in.good()) {
      throw std::runtime_error("cannot read request file " + positional[1]);
    }
    return serve::run_feed(positional[0], in, std::cout, feed);
  }
  return serve::run_feed(positional[0], std::cin, std::cout, feed);
}

int run_promote(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return bad_usage("promote needs: provmark promote <socket>");
  }
  std::istringstream in("promote\n");
  return serve::run_feed(args[0], in, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // The untouched invocation, for re-execing shard workers verbatim.
  const std::vector<std::string> raw_args = args;

  CliOptions cli;
  std::unique_ptr<runtime::ThreadPool> owned_pool;
  std::unique_ptr<runtime::ThreadPool> matcher_pool;
  // Peel leading options off before the subcommand.
  try {
    while (!args.empty() && args[0].rfind("--", 0) == 0) {
      if (args[0] == "--help") {
        std::printf("%s", kUsage);
        return 0;
      }
      if (args[0] == "--threads" && args.size() >= 2) {
        owned_pool = std::make_unique<runtime::ThreadPool>(
            std::stoi(args[1]));
        cli.pool = owned_pool.get();
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--shards" && args.size() >= 2) {
        cli.shards = std::stoi(args[1]);
        if (cli.shards < 1) {
          throw std::invalid_argument("--shards must be >= 1");
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--shard-id" && args.size() >= 2) {
        cli.shard_id = std::stoi(args[1]);
        if (cli.shard_id < 0) {
          throw std::invalid_argument("--shard-id must be >= 0");
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--shard-retries" && args.size() >= 2) {
        cli.shard_retries = std::stoi(args[1]);
        if (cli.shard_retries < 0) {
          throw std::invalid_argument("--shard-retries must be >= 0");
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--shard-attempt" && args.size() >= 2) {
        cli.shard_attempt = std::stoi(args[1]);
        if (cli.shard_attempt < 0) {
          throw std::invalid_argument("--shard-attempt must be >= 0");
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--fault-spec" && args.size() >= 2) {
        // Parse eagerly so a malformed spec fails before any work runs.
        util::fault::parse_fault_spec(args[1]);
        cli.fault_spec = args[1];
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--deterministic-timings") {
        cli.deterministic_timings = true;
        args.erase(args.begin());
        continue;
      }
      if (args[0] == "--matcher-threads" && args.size() >= 2) {
        // A dedicated pool: the matcher search nests inside pipeline
        // workers, and a loop on a *different* pool fans out instead of
        // running inline (see runtime/thread_pool.h nesting rules).
        cli.matcher.threads = std::stoi(args[1]);
        if (cli.matcher.threads > 1) {
          matcher_pool =
              std::make_unique<runtime::ThreadPool>(cli.matcher.threads);
          cli.matcher.pool = matcher_pool.get();
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--matcher-order" && args.size() >= 2) {
        cli.matcher.order = parse_order(args[1]);
        cli.matcher_order_name = args[1];
        // WL scarcity brings component decomposition along: both halves
        // of the strategy preserve optimal costs.
        cli.matcher.decompose =
            cli.matcher.order == matcher::CandidateOrder::WlScarcity;
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--seed" && args.size() >= 2) {
        cli.seed = std::stoull(args[1]);
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--max-input-bytes" && args.size() >= 2) {
        cli.max_input_bytes = std::stoull(args[1]);
        cli.max_input_bytes_set = true;
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      return bad_usage("unknown option '" + args[0] + "'");
    }
    if (args.empty()) return usage();
    if (args[0] == "run") {
      if (args.size() != 3 && args.size() != 4) {
        return bad_usage(
            "run needs: provmark [options] run <system> <benchmark> "
            "[trials]");
      }
      return run_single(cli, args[1], args[2],
                        args.size() == 4 ? std::stoi(args[3]) : 0);
    }
    if (args[0] == "batch") {
      if (args.size() != 3 && args.size() != 4) {
        return bad_usage(
            "batch needs: provmark [options] batch <systems> <rb|rg|rh> "
            "[output-dir]");
      }
      if (args[2] != "rb" && args[2] != "rg" && args[2] != "rh") {
        return bad_usage("unknown result type '" + args[2] +
                         "' (rb | rg | rh)");
      }
      return run_batch(cli, argv[0], raw_args, args[1], args[2],
                       args.size() == 4 ? args[3] : "finalResult");
    }
    if (args[0] == "merge") {
      if (args.size() < 3) {
        return bad_usage(
            "merge needs: provmark merge <output-dir> <shard-dir> "
            "[<shard-dir>...]");
      }
      return run_merge(args[1], std::vector<std::string>(args.begin() + 2,
                                                         args.end()));
    }
    if (args[0] == "query") {
      if (args.size() != 3 && args.size() != 4) {
        return bad_usage(
            "query needs: provmark query <facts.datalog> <atom> "
            "[rules.datalog]");
      }
      return run_query(args[1], args[2], args.size() == 4 ? args[3] : "",
                       cli.max_input_bytes);
    }
    if (args[0] == "gen") {
      return run_gen(cli, std::vector<std::string>(args.begin() + 1,
                                                   args.end()));
    }
    if (args[0] == "serve") {
      return run_serve(cli, std::vector<std::string>(args.begin() + 1,
                                                     args.end()));
    }
    if (args[0] == "cluster") {
      return run_cluster_command(
          cli, std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (args[0] == "feed") {
      return run_feed_command(
          cli, std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (args[0] == "promote") {
      return run_promote(
          std::vector<std::string>(args.begin() + 1, args.end()));
    }
    return bad_usage("unknown subcommand '" + args[0] + "'");
  } catch (const core::ShardRetryableError& e) {
    // Re-running the named shard repairs the sweep — exit 3 so cluster
    // scripts can branch on retryable vs fatal (exit 1) failures.
    std::fprintf(stderr, "error: %s\n", e.what());
    if (e.shard_id >= 0) {
      std::fprintf(stderr,
                   "retryable: re-run shard %d (batch --shards N "
                   "--shard-id %d), then merge again\n",
                   e.shard_id, e.shard_id);
    } else {
      std::fprintf(stderr,
                   "retryable: re-run the damaged shard, then merge "
                   "again\n");
    }
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
