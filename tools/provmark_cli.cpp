// The ProvMark command-line driver, mirroring the paper's tooling
// (appendix A.5):
//
//   Single execution (fullAutomation.py):
//     provmark [options] run <system> <benchmark> [trials]
//   Batch execution (runTests.sh):
//     provmark [options] batch <systems> <result-type> [output-dir]
//
// Systems accept both long names (spade/opus/camflow/spade-camflow) and
// the paper's abbreviations (spg/spn/opu/cam). Result types follow the
// paper: rb = benchmark only, rg = benchmark + generalized graphs,
// rh = HTML page (written to <output-dir>/index.html).
//
// Batch mode takes a comma-separated system list and sweeps every
// (benchmark, system) pair across the runtime thread pool; each
// pipeline's own trial fan-out shares the same pool. Output order is
// deterministic (pair order), whatever the scheduling.
//
// Batch mode also appends one CSV line per benchmark to
// <output-dir>/time.log — the appendix A.6.4 timing-log format:
//   system,syscall,recording,transformation,generalization,comparison
//
// The full grammar lives in usage() below; docs/cli.md documents every
// subcommand with worked examples and must be kept in sync with it.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/program.h"
#include "bench_suite/program_text.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datalog/engine.h"
#include "datalog/fact_io.h"
#include "runtime/thread_pool.h"
#include "systems/recorder.h"
#include "util/strings.h"

using namespace provmark;

namespace {

constexpr const char* kUsage =
    "usage:\n"
    "  provmark [options] run <system> <benchmark> [trials]\n"
    "  provmark [options] batch <systems> <rb|rg|rh> [output-dir]\n"
    "  provmark query <facts.datalog> <atom> [rules.datalog]\n"
    "  provmark --help\n"
    "\n"
    "subcommands:\n"
    "  run    full pipeline for one benchmark on one system; prints a\n"
    "         summary, the result graph as DOT, and its datalog facts\n"
    "         (exit 1 if the pipeline fails)\n"
    "  batch  all Table 1 benchmarks on every listed system (comma-\n"
    "         separated, e.g. spade,camflow), swept in parallel across\n"
    "         the thread pool; appends timing CSV to\n"
    "         <output-dir>/time.log (default output-dir: finalResult)\n"
    "  query  load a Datalog fact document (a regression-store save, a\n"
    "         batch .datalog result, or any Listing 1 file), optionally\n"
    "         add rules from a second file, and evaluate a query atom\n"
    "         (e.g. 'reach(p0, X)'); bindings print as a table, exit 1\n"
    "         when nothing matches\n"
    "\n"
    "options:\n"
    "  --threads N  worker threads for the parallel runtime (default:\n"
    "               PROVMARK_THREADS env var, then hardware concurrency)\n"
    "  --matcher-threads N\n"
    "               workers for the deterministic parallel matcher\n"
    "               search inside generalization/comparison (own pool,\n"
    "               nests under --threads; default 1 = serial search;\n"
    "               results are identical at any N)\n"
    "  --matcher-order none|cost|time|wl\n"
    "               candidate-ordering heuristic (default cost; wl =\n"
    "               WL-scarcity ordering + component decomposition —\n"
    "               optimal costs are unchanged by any choice)\n"
    "  --seed S     pipeline seed (default 42); results are\n"
    "               deterministic per seed at any thread count\n"
    "  --help       this text\n"
    "\n"
    "systems: spade|spg, spn, opus|opu, camflow|cam, spade-camflow\n"
    "result types: rb = benchmark only, rg = + generalized graphs,\n"
    "              rh = + HTML report (<output-dir>/index.html)\n"
    "benchmarks: Table 1 syscall names (e.g. rename), scaleN,\n"
    "            rename-fail, failure-case names, @file.prog\n";

int usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

bench_suite::BenchmarkProgram find_program(const std::string& name) {
  if (!name.empty() && name.front() == '@') {
    // @path/to/file.prog: a user-supplied textual benchmark program.
    std::ifstream in(name.substr(1));
    if (!in.good()) {
      throw std::runtime_error("cannot read program file " +
                               name.substr(1));
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return bench_suite::parse_program(text);
  }
  if (name.rfind("scale", 0) == 0 && name.size() > 5) {
    return bench_suite::scale_benchmark(std::stoi(name.substr(5)));
  }
  if (name == "rename-fail") return bench_suite::failed_rename_benchmark();
  for (const bench_suite::BenchmarkProgram& p :
       bench_suite::failure_benchmarks()) {
    if (p.name == name) return p;
  }
  return bench_suite::benchmark_by_name(name);
}

struct CliOptions {
  runtime::ThreadPool* pool = nullptr;
  std::uint64_t seed = 42;
  matcher::SearchConfig matcher;
};

matcher::CandidateOrder parse_order(const std::string& name) {
  if (name == "none") return matcher::CandidateOrder::None;
  if (name == "cost") return matcher::CandidateOrder::PropertyCost;
  if (name == "time") return matcher::CandidateOrder::TimestampRank;
  if (name == "wl") return matcher::CandidateOrder::WlScarcity;
  throw std::invalid_argument("unknown matcher order: " + name);
}

int run_single(const CliOptions& cli, const std::string& system,
               const std::string& benchmark, int trials) {
  core::PipelineOptions options;
  options.system = system;
  options.trials = trials;
  options.seed = cli.seed;
  options.pool = cli.pool;
  options.matcher = cli.matcher;
  core::BenchmarkResult result =
      core::run_benchmark(find_program(benchmark), options);
  std::printf("%s\n\n", core::summarize(result).c_str());
  std::printf("%s\n", core::result_dot(result).c_str());
  std::printf("%s", datalog::to_datalog(result.result, "result").c_str());
  if (result.status == core::BenchmarkStatus::Failed) {
    std::fprintf(stderr, "failure: %s\n", result.failure_reason.c_str());
    return 1;
  }
  return 0;
}

int run_batch(const CliOptions& cli, const std::string& system_list,
              const std::string& result_type,
              const std::string& output_dir) {
  std::vector<std::string> systems = util::split_nonempty(system_list, ',');
  if (systems.empty()) return usage();
  // Fail fast on any bad system name before the sweep runs: a typo in
  // one list entry must not burn (and then discard) the full suite for
  // the valid ones. Throws std::invalid_argument -> "error: ...", exit 1.
  for (const std::string& system : systems) {
    systems::make_recorder(system);
  }

  // The (benchmark, system) sweep: all pairs fan out over the pool and
  // land in pair-order slots, so stdout and time.log read identically
  // at any thread count.
  struct Pair {
    bench_suite::BenchmarkProgram program;
    std::string system;
  };
  std::vector<Pair> pairs;
  for (const std::string& system : systems) {
    for (const bench_suite::BenchmarkProgram& program :
         bench_suite::table_benchmarks()) {
      pairs.push_back({program, system});
    }
  }
  runtime::ThreadPool& pool =
      cli.pool != nullptr ? *cli.pool : runtime::default_pool();
  std::vector<core::BenchmarkResult> results =
      pool.parallel_map<core::BenchmarkResult>(
          pairs, [&](const Pair& pair, std::size_t) {
            core::PipelineOptions options;
            options.system = pair.system;
            options.seed = cli.seed;
            options.pool = &pool;
            options.matcher = cli.matcher;
            return core::run_benchmark(pair.program, options);
          });

  std::filesystem::create_directories(output_dir);
  std::ofstream time_log(output_dir + "/time.log", std::ios::app);
  for (const core::BenchmarkResult& result : results) {
    std::printf("%s\n", core::summarize(result).c_str());
    time_log << util::format("%s,%s,%.6f,%.6f,%.6f,%.6f\n",
                             result.system.c_str(),
                             result.benchmark.c_str(),
                             result.timings.recording,
                             result.timings.transformation,
                             result.timings.generalization,
                             result.timings.comparison);
  }

  std::printf("\n%s\n", core::validation_table(results).c_str());

  if (result_type == "rg" || result_type == "rh") {
    for (const core::BenchmarkResult& result : results) {
      std::string base = output_dir + "/" + result.system + "_" +
                         result.benchmark;
      std::ofstream(base + ".dot") << core::result_dot(result);
      std::ofstream(base + ".datalog")
          << "% generalized background\n"
          << datalog::to_datalog(result.generalized_background, "bg")
          << "% generalized foreground\n"
          << datalog::to_datalog(result.generalized_foreground, "fg")
          << "% benchmark result\n"
          << datalog::to_datalog(result.result, "result");
    }
  }
  if (result_type == "rh") {
    std::ofstream(output_dir + "/index.html")
        << core::html_report(results);
    std::printf("wrote %s/index.html\n", output_dir.c_str());
  }
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot read " + path);
  }
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int run_query(const std::string& facts_path, const std::string& pattern,
              const std::string& rules_path) {
  datalog::Engine engine;
  engine.load_program(read_file(facts_path));
  if (!rules_path.empty()) {
    engine.load_program(read_file(rules_path));
  }
  datalog::Atom atom = datalog::parse_atom(pattern);
  std::vector<std::map<std::string, std::string>> rows = engine.query(atom);

  // Columns in first-appearance order within the query atom.
  std::vector<std::string> columns;
  for (const datalog::Term& term : atom.terms) {
    if (term.is_variable() && term.text != "_" &&
        std::find(columns.begin(), columns.end(), term.text) ==
            columns.end()) {
      columns.push_back(term.text);
    }
  }
  if (columns.empty()) {
    // A ground query is a membership test.
    std::printf("%s\n", rows.empty() ? "no" : "yes");
    return rows.empty() ? 1 : 0;
  }
  std::vector<std::size_t> widths;
  for (const std::string& column : columns) {
    std::size_t width = column.size();
    for (const auto& row : rows) {
      width = std::max(width, row.at(column).size());
    }
    widths.push_back(width);
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%-*s%s", static_cast<int>(widths[c]), columns[c].c_str(),
                c + 1 < columns.size() ? "  " : "\n");
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 < columns.size() ? "  " : "\n");
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]),
                  row.at(columns[c]).c_str(),
                  c + 1 < columns.size() ? "  " : "\n");
    }
  }
  std::printf("(%zu row%s)\n", rows.size(), rows.size() == 1 ? "" : "s");
  return rows.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  CliOptions cli;
  std::unique_ptr<runtime::ThreadPool> owned_pool;
  std::unique_ptr<runtime::ThreadPool> matcher_pool;
  // Peel leading options off before the subcommand.
  try {
    while (!args.empty() && args[0].rfind("--", 0) == 0) {
      if (args[0] == "--help") {
        std::printf("%s", kUsage);
        return 0;
      }
      if (args[0] == "--threads" && args.size() >= 2) {
        owned_pool = std::make_unique<runtime::ThreadPool>(
            std::stoi(args[1]));
        cli.pool = owned_pool.get();
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--matcher-threads" && args.size() >= 2) {
        // A dedicated pool: the matcher search nests inside pipeline
        // workers, and a loop on a *different* pool fans out instead of
        // running inline (see runtime/thread_pool.h nesting rules).
        cli.matcher.threads = std::stoi(args[1]);
        if (cli.matcher.threads > 1) {
          matcher_pool =
              std::make_unique<runtime::ThreadPool>(cli.matcher.threads);
          cli.matcher.pool = matcher_pool.get();
        }
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--matcher-order" && args.size() >= 2) {
        cli.matcher.order = parse_order(args[1]);
        // WL scarcity brings component decomposition along: both halves
        // of the strategy preserve optimal costs.
        cli.matcher.decompose =
            cli.matcher.order == matcher::CandidateOrder::WlScarcity;
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      if (args[0] == "--seed" && args.size() >= 2) {
        cli.seed = std::stoull(args[1]);
        args.erase(args.begin(), args.begin() + 2);
        continue;
      }
      return usage();
    }
    if (args.empty()) return usage();
    if (args[0] == "run" && (args.size() == 3 || args.size() == 4)) {
      return run_single(cli, args[1], args[2],
                        args.size() == 4 ? std::stoi(args[3]) : 0);
    }
    if (args[0] == "batch" && (args.size() == 3 || args.size() == 4)) {
      if (args[2] != "rb" && args[2] != "rg" && args[2] != "rh") {
        return usage();
      }
      return run_batch(cli, args[1], args[2],
                       args.size() == 4 ? args[3] : "finalResult");
    }
    if (args[0] == "query" && (args.size() == 3 || args.size() == 4)) {
      return run_query(args[1], args[2], args.size() == 4 ? args[3] : "");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
