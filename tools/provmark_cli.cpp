// The ProvMark command-line driver, mirroring the paper's tooling
// (appendix A.5):
//
//   Single execution (fullAutomation.py):
//     provmark run <system> <benchmark> [trials]
//   Batch execution (runTests.sh):
//     provmark batch <system> <result-type> [output-dir]
//
// Systems accept both long names (spade/opus/camflow/spade-camflow) and
// the paper's abbreviations (spg/spn/opu/cam). Result types follow the
// paper: rb = benchmark only, rg = benchmark + generalized graphs,
// rh = HTML page (written to <output-dir>/index.html).
//
// Batch mode also appends one CSV line per benchmark to
// <output-dir>/time.log — the appendix A.6.4 timing-log format:
//   system,syscall,recording,transformation,generalization,comparison
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_suite/program.h"
#include "bench_suite/program_text.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datalog/fact_io.h"
#include "util/strings.h"

using namespace provmark;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  provmark run <system> <benchmark> [trials]\n"
               "  provmark batch <system> <rb|rg|rh> [output-dir]\n"
               "systems: spade|spg, spn, opus|opu, camflow|cam, "
               "spade-camflow\n"
               "benchmarks: Table 1 syscall names (e.g. rename), "
               "scaleN, rename-fail\n");
  return 2;
}

bench_suite::BenchmarkProgram find_program(const std::string& name) {
  if (!name.empty() && name.front() == '@') {
    // @path/to/file.prog: a user-supplied textual benchmark program.
    std::ifstream in(name.substr(1));
    if (!in.good()) {
      throw std::runtime_error("cannot read program file " +
                               name.substr(1));
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return bench_suite::parse_program(text);
  }
  if (name.rfind("scale", 0) == 0 && name.size() > 5) {
    return bench_suite::scale_benchmark(std::stoi(name.substr(5)));
  }
  if (name == "rename-fail") return bench_suite::failed_rename_benchmark();
  for (const bench_suite::BenchmarkProgram& p :
       bench_suite::failure_benchmarks()) {
    if (p.name == name) return p;
  }
  return bench_suite::benchmark_by_name(name);
}

int run_single(const std::string& system, const std::string& benchmark,
               int trials) {
  core::PipelineOptions options;
  options.system = system;
  options.trials = trials;
  core::BenchmarkResult result =
      core::run_benchmark(find_program(benchmark), options);
  std::printf("%s\n\n", core::summarize(result).c_str());
  std::printf("%s\n", core::result_dot(result).c_str());
  std::printf("%s", datalog::to_datalog(result.result, "result").c_str());
  if (result.status == core::BenchmarkStatus::Failed) {
    std::fprintf(stderr, "failure: %s\n", result.failure_reason.c_str());
    return 1;
  }
  return 0;
}

int run_batch(const std::string& system, const std::string& result_type,
              const std::string& output_dir) {
  std::filesystem::create_directories(output_dir);
  std::ofstream time_log(output_dir + "/time.log", std::ios::app);
  std::vector<core::BenchmarkResult> results;
  for (const bench_suite::BenchmarkProgram& program :
       bench_suite::table_benchmarks()) {
    core::PipelineOptions options;
    options.system = system;
    core::BenchmarkResult result = core::run_benchmark(program, options);
    std::printf("%s\n", core::summarize(result).c_str());
    time_log << util::format("%s,%s,%.6f,%.6f,%.6f,%.6f\n",
                             result.system.c_str(),
                             result.benchmark.c_str(),
                             result.timings.recording,
                             result.timings.transformation,
                             result.timings.generalization,
                             result.timings.comparison);
    results.push_back(std::move(result));
  }

  std::printf("\n%s\n", core::validation_table(results).c_str());

  if (result_type == "rg" || result_type == "rh") {
    for (const core::BenchmarkResult& result : results) {
      std::string base = output_dir + "/" + result.system + "_" +
                         result.benchmark;
      std::ofstream(base + ".dot") << core::result_dot(result);
      std::ofstream(base + ".datalog")
          << "% generalized background\n"
          << datalog::to_datalog(result.generalized_background, "bg")
          << "% generalized foreground\n"
          << datalog::to_datalog(result.generalized_foreground, "fg")
          << "% benchmark result\n"
          << datalog::to_datalog(result.result, "result");
    }
  }
  if (result_type == "rh") {
    std::ofstream(output_dir + "/index.html")
        << core::html_report(results);
    std::printf("wrote %s/index.html\n", output_dir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "run" && (args.size() == 3 || args.size() == 4)) {
      return run_single(args[1], args[2],
                        args.size() == 4 ? std::stoi(args[3]) : 0);
    }
    if (args[0] == "batch" && (args.size() == 3 || args.size() == 4)) {
      if (args[2] != "rb" && args[2] != "rg" && args[2] != "rh") {
        return usage();
      }
      return run_batch(args[1], args[2],
                       args.size() == 4 ? args[3] : "finalResult");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
