// Reproduces paper Figure 6: per-stage ProvMark processing time for five
// representative syscalls with OPUS + Neo4j. Transformation dominates
// because extraction pays the Neo4j startup/query cost and OPUS graphs
// are larger (environment variables).
#include "timing_common.h"

int main(int argc, char** argv) {
  return provmark_bench::run_timing_figure(
      "Figure 6: timing results, OPUS+Neo4j", "opus",
      provmark_bench::figure5_programs(),
      provmark_bench::parse_calibrated_flag(argc, argv));
}
