// Extension experiment: failed-call coverage sweep.
//
// Section 3.1 (Alice) examines one failed call; the paper notes that
// "handling other scenarios such as failure cases is straightforward".
// This bench runs a registry of access-control failure benchmarks across
// all recorders and prints which recorder captures which failure — the
// expected pattern is OPUS=ok everywhere (libc interposition sees the
// attempt), SPADE=empty everywhere (success-only audit rules), CamFlow=
// empty in baseline but partially ok with denied-permission recording.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "systems/camflow.h"

using namespace provmark;

int main() {
  std::printf("Failure-case sweep (extension of the Alice use case)\n\n");
  std::printf("%-16s %-10s %-10s %-10s %-18s\n", "benchmark", "spade",
              "opus", "camflow", "camflow(denied)");
  int opus_ok = 0, spade_empty = 0, rows = 0;
  for (const bench_suite::BenchmarkProgram& program :
       bench_suite::failure_benchmarks()) {
    std::string cells[4];
    for (int i = 0; i < 3; ++i) {
      const char* systems[3] = {"spade", "opus", "camflow"};
      core::PipelineOptions options;
      options.system = systems[i];
      options.seed = 21;
      cells[i] = core::status_name(
          core::run_benchmark(program, options).status);
    }
    {
      systems::CamflowConfig config;
      config.record_denied = true;
      core::PipelineOptions options;
      options.recorder = std::make_shared<systems::CamflowRecorder>(config);
      options.seed = 21;
      cells[3] = core::status_name(
          core::run_benchmark(program, options).status);
    }
    std::printf("%-16s %-10s %-10s %-10s %-18s\n", program.name.c_str(),
                cells[0].c_str(), cells[1].c_str(), cells[2].c_str(),
                cells[3].c_str());
    ++rows;
    if (cells[1] == "ok") ++opus_ok;
    if (cells[0] == "empty") ++spade_empty;
  }
  std::printf("\nOPUS captured %d/%d failures; SPADE captured %d/%d "
              "(success-only audit rules).\n",
              opus_ok, rows, rows - spade_empty, rows);
  // The paper's conclusion from the Alice scenario must hold across the
  // whole registry.
  return (opus_ok == rows && spade_empty == rows) ? 0 : 1;
}
