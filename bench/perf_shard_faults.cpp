// Chaos bench + identity gate for the crash-tolerance subsystem
// (src/core/supervise.{h,cpp}, src/util/fault.{h,cpp}, the atomic
// publish protocol in src/core/shard.cpp — see docs/robustness.md).
//
// Each scenario runs a real 3-shard sweep with real forked worker
// processes under the supervision engine, with deterministic faults
// injected into chosen workers:
//
//   fault-free            the control run
//   crash                 shard 1's worker _exit(70)s mid-sweep
//   torn-write            shard 0 publishes a truncated validation.txt
//   crash+torn+hang       both of the above, plus shard 2 stalling
//                         before publish until straggler re-dispatch
//
// The gate *asserts* (exit 1 otherwise) that every scenario converges
// — retries/re-dispatch leave all shards published — and that the
// merged artifacts are byte-identical to the fault-free single-process
// sweep, and that each injected fault really fired (the faulted shard
// needed more than one launch). Wall clock per scenario is recorded
// but not gated: recovery latency is backoff policy, not regression.
//
// Workers are forked without exec (ProcessWorkerHost fork mode): the
// parent stays threadless until every scenario is done — each child
// builds its own 1-thread pool — and the single-process baseline runs
// last, so fork never duplicates a live thread pool.
//
// Usage: bench_perf_shard_faults [--smoke] [output.json]
//   --smoke  fewer benchmarks (CI-friendly); identical gating
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/shard.h"
#include "core/supervise.h"
#include "runtime/thread_pool.h"
#include "util/fault.h"

using namespace provmark;

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "<missing " + path.string() + ">";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool artifacts_identical(const fs::path& single, const fs::path& merged) {
  bool identical = true;
  for (const auto& entry : fs::directory_iterator(single)) {
    const std::string name = entry.path().filename().string();
    if (slurp(entry.path()) != slurp(merged / name)) {
      std::fprintf(stderr, "  MISMATCH: %s\n", name.c_str());
      identical = false;
    }
  }
  return identical;
}

struct Scenario {
  const char* name;
  const char* fault_spec;       ///< "" = no faults
  std::vector<int> hit_shards;  ///< shards that must need > 1 launch
};

struct Outcome {
  std::string name;
  double seconds = 0;
  int total_launches = 0;
  bool converged = false;
  bool recovered = false;  ///< every faulted shard took > 1 launch
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_shard_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const int shard_count = 3;
  const double latency = 0.002;  // seconds per trial, keeps medians real
  const std::vector<std::string> systems = {"spade"};
  std::vector<std::string> benchmarks = core::table_benchmark_names();
  benchmarks.resize(smoke ? 3 : 9);
  const std::string result_type = "rg";

  const std::vector<Scenario> scenarios = {
      {"fault-free", "", {}},
      {"crash", "crash:shard=1,after-cell=1", {1}},
      {"torn-write", "torn-write:shard=0,file=validation.txt", {0}},
      {"crash+torn-write+hang",
       "crash:shard=1,after-cell=1;"
       "torn-write:shard=0,file=validation.txt;"
       "hang:shard=2,seconds=60",
       {0, 1, 2}},
  };

  const fs::path root =
      fs::temp_directory_path() /
      ("provmark_shard_faults_bench_" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  core::ShardPlan plan = core::plan_batch(systems, benchmarks, shard_count,
                                          42, result_type, true);
  std::vector<core::ShardSpec> specs;
  for (int k = 0; k < shard_count; ++k) specs.push_back(plan.shard(k));

  std::printf("shard_faults: %zu benchmarks x spade, %d shards, "
              "supervised fork-mode workers "
              "(host hardware threads: %u)\n\n",
              benchmarks.size(), shard_count,
              std::thread::hardware_concurrency());

  std::vector<Outcome> outcomes;
  bool all_ok = true;
  for (const Scenario& scenario : scenarios) {
    const std::string spec_text = scenario.fault_spec;
    const fs::path sweep_dir = root / ("sweep-" + std::string(scenario.name));
    const fs::path merged_dir =
        root / ("merged-" + std::string(scenario.name));

    auto host = core::ProcessWorkerHost::fork_mode(
        [&](int shard, int attempt) -> int {
          // In the child: arm exactly this (shard, attempt)'s faults,
          // run the slice on a private pool, publish atomically.
          util::fault::disarm();
          if (!spec_text.empty()) {
            util::fault::arm(util::fault::parse_fault_spec(spec_text),
                             shard, attempt);
          }
          runtime::ThreadPool pool(1);
          core::CellRunOptions options;
          options.seed = 42;
          options.pool = &pool;
          options.simulated_recording_latency = latency;
          options.deterministic_timings = true;
          core::write_shard_dir(
              sweep_dir.string(), specs[static_cast<std::size_t>(shard)],
              core::run_batch_cells(
                  specs[static_cast<std::size_t>(shard)].cells, options));
          return 0;
        },
        [&](int shard) {
          return core::shard_complete(
              core::shard_dir_path(sweep_dir.string(), shard),
              specs[static_cast<std::size_t>(shard)]);
        });

    core::SuperviseOptions sup;
    sup.retries = 2;
    sup.seed = 42;
    sup.backoff_base_ms = 50;  // fast bench; determinism is what matters
    sup.backoff_cap_ms = 500;
    sup.straggler_min_ms = 500;
    sup.poll_ms = 10;

    Outcome outcome;
    outcome.name = scenario.name;
    const auto start = std::chrono::steady_clock::now();
    core::SuperviseReport report =
        core::supervise(shard_count, host, sup);
    std::string merged_type;
    if (report.all_published) {
      std::vector<std::string> shard_dirs;
      for (int k = 0; k < shard_count; ++k) {
        shard_dirs.push_back(core::shard_dir_path(sweep_dir.string(), k));
      }
      core::write_batch_outputs(merged_dir.string(),
                                core::read_shard_results(shard_dirs,
                                                         &merged_type),
                                merged_type);
    }
    outcome.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    outcome.converged = report.all_published;
    outcome.recovered = true;
    for (const core::TaskOutcome& t : report.tasks) {
      outcome.total_launches += t.launches;
    }
    for (int shard : scenario.hit_shards) {
      outcome.recovered = outcome.recovered &&
                          report.tasks[static_cast<std::size_t>(shard)]
                                  .launches > 1;
    }

    outcomes.push_back(outcome);
    std::printf("  %-22s wall=%.3fs launches=%d %s\n", scenario.name,
                outcome.seconds, outcome.total_launches,
                outcome.converged ? "converged" : "DID NOT CONVERGE");
  }

  // The baseline runs last: fork-mode workers must never duplicate a
  // live parent thread pool, so the parent stays threadless until every
  // scenario has finished forking.
  const fs::path single_dir = root / "single";
  {
    runtime::ThreadPool pool(1);
    core::CellRunOptions options;
    options.seed = 42;
    options.pool = &pool;
    options.simulated_recording_latency = latency;
    options.deterministic_timings = true;
    core::write_batch_outputs(single_dir.string(),
                              core::run_batch_cells(plan.cells, options),
                              result_type);
  }

  for (Outcome& outcome : outcomes) {
    outcome.identical =
        outcome.converged &&
        artifacts_identical(single_dir,
                            root / ("merged-" + outcome.name));
    std::printf("  %-22s %s\n", outcome.name.c_str(),
                outcome.identical
                    ? "merged output identical to fault-free single-process"
                    : "MERGED OUTPUT DIVERGED");
    all_ok = all_ok && outcome.identical && outcome.recovered;
    if (!outcome.recovered) {
      std::fprintf(stderr, "  %s: an injected fault never fired\n",
                   outcome.name.c_str());
    }
  }

  fs::remove_all(root);

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"shard_faults\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"system\": \"spade\",\n");
  std::fprintf(f, "  \"benchmarks\": %zu,\n", benchmarks.size());
  std::fprintf(f, "  \"shards\": %d,\n", shard_count);
  std::fprintf(f, "  \"retries\": %d,\n", 2);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, "
                 "\"launches\": %d, \"converged\": %s, "
                 "\"fault_recovery_exercised\": %s, "
                 "\"merged_identical\": %s}%s\n",
                 o.name.c_str(), o.seconds, o.total_launches,
                 o.converged ? "true" : "false",
                 o.recovered ? "true" : "false",
                 o.identical ? "true" : "false",
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"identical\": %s\n}\n",
               all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", output.c_str());
  return all_ok ? 0 : 1;
}
