// Reproduces paper Figure 1: how a single rename system call is recorded
// by SPADE, OPUS and CamFlow — three clearly different graph structures
// for the same activity. Prints the benchmark result of the `rename`
// program for each system as Graphviz DOT plus a structure summary.
#include <cstdio>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "graph/algorithms.h"

using namespace provmark;

int main() {
  const bench_suite::BenchmarkProgram& program =
      bench_suite::benchmark_by_name("rename");
  std::printf("Figure 1: a rename system call as recorded by three "
              "provenance recorders\n\n");
  for (const char* system : {"spade", "opus", "camflow"}) {
    core::PipelineOptions options;
    options.system = system;
    options.seed = 3;
    core::BenchmarkResult result = core::run_benchmark(program, options);
    std::printf("== %s ==\n", system);
    std::printf("summary: %s\n", core::summarize(result).c_str());
    std::printf("structure: %s\n",
                graph::structure_summary(result.result).c_str());
    std::printf("%s\n", core::result_dot(result).c_str());
  }
  return 0;
}
