// Reproduces paper Figure 8: scalability of ProvMark processing with the
// size of the target action (scaleK = K x (creat; unlink)), SPADE.
#include "timing_common.h"

int main() {
  return provmark_bench::run_timing_figure(
      "Figure 8: scalability results, SPADE+Graphviz", "spade",
      provmark_bench::scale_programs());
}
