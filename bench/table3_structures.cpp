// Reproduces paper Table 3: example benchmark results for six syscalls
// (open, read, write, dup, setuid, setresuid) across the three systems.
// The paper shows thumbnails; here each cell reports the result structure
// (nodes/edges/dummies) or "Empty", matching the table's empty cells:
//   OPUS read/write/setresuid -> Empty; CamFlow dup -> Empty.
#include <cstdio>
#include <string>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "graph/algorithms.h"
#include "util/strings.h"

using namespace provmark;

int main() {
  const char* syscalls[] = {"open", "read",   "write",
                            "dup",  "setuid", "setresuid"};
  const char* systems[] = {"spade", "opus", "camflow"};
  // Paper Table 3 empty cells.
  auto expect_empty = [](const std::string& system,
                         const std::string& call) {
    if (system == "spade") return call == "dup";
    if (system == "opus") {
      return call == "read" || call == "write" || call == "setresuid";
    }
    if (system == "camflow") return call == "dup";
    return false;
  };

  std::printf("Table 3: example benchmark results (structure per cell)\n\n");
  std::printf("%-10s", "");
  for (const char* call : syscalls) std::printf(" %-22s", call);
  std::printf("\n");
  int mismatches = 0;
  for (const char* system : systems) {
    std::printf("%-10s", system);
    for (const char* call : syscalls) {
      core::PipelineOptions options;
      options.system = system;
      options.seed = 5;
      core::BenchmarkResult result = core::run_benchmark(
          bench_suite::benchmark_by_name(call), options);
      std::string cell;
      if (result.status == core::BenchmarkStatus::Empty) {
        cell = "Empty";
      } else {
        cell = util::format(
            "%zun/%zue/%zud",
            result.result.node_count() - result.dummy_nodes.size(),
            result.result.edge_count(), result.dummy_nodes.size());
      }
      bool should_be_empty = expect_empty(system, call);
      bool is_empty = result.status == core::BenchmarkStatus::Empty;
      if (should_be_empty != is_empty) {
        cell += "(!)";
        ++mismatches;
      }
      std::printf(" %-22s", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("\ncell legend: <real nodes>n/<edges>e/<dummy nodes>d; "
              "(!) marks deviation from the paper's emptiness pattern\n");
  std::printf("mismatches vs paper emptiness pattern: %d\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
