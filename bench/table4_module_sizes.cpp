// Reproduces paper Table 4: size of the per-system recording and
// transformation modules — the paper's extensibility argument is that
// supporting a new provenance system takes under 200 lines per module.
//
// In this reproduction the recording modules are src/systems/{spade,opus,
// camflow}.cpp (graph construction from the observed layer) and the
// transformation modules are the format parsers in src/formats/. C++ is
// more verbose than the paper's Python, so absolute counts are larger;
// the claim that holds is the *shape*: each module is small and adding a
// recorder touches exactly one recording module plus (at most) one format
// module.
#include <cstdio>

#include "util/loc_counter.h"

using namespace provmark;

#ifndef PM_SOURCE_DIR
#define PM_SOURCE_DIR "."
#endif

int main() {
  struct Row {
    const char* system;
    const char* recording;   // recording module (graph builder)
    const char* transform;   // transformation module (format parser)
    int paper_recording;     // paper's Python LoC
    int paper_transform;
  };
  const Row rows[] = {
      {"SPADE (DOT)", "/src/systems/spade.cpp", "/src/formats/dot.cpp", 171,
       74},
      {"OPUS (Neo4j)", "/src/systems/opus.cpp", "/src/formats/neo4j.cpp",
       118, 122},
      {"CamFlow (PROV-JSON)", "/src/systems/camflow.cpp",
       "/src/formats/prov_json.cpp", 192, 128},
  };
  std::printf("Table 4: module sizes (lines of code)\n\n");
  std::printf("%-22s %18s %18s %14s %14s\n", "module", "recording(C++)",
              "transform(C++)", "paper rec(py)", "paper xf(py)");
  bool all_found = true;
  for (const Row& row : rows) {
    util::LocCount rec =
        util::count_file(std::string(PM_SOURCE_DIR) + row.recording);
    util::LocCount xf =
        util::count_file(std::string(PM_SOURCE_DIR) + row.transform);
    std::printf("%-22s %18d %18d %14d %14d\n", row.system, rec.code,
                xf.code, row.paper_recording, row.paper_transform);
    if (rec.code == 0 || xf.code == 0) all_found = false;
  }
  if (!all_found) {
    std::printf("\n(note: run from the repository root or set "
                "PM_SOURCE_DIR; zero rows mean sources not found)\n");
  }
  return 0;
}
