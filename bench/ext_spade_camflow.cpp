// Extension experiment: SPADE with the CamFlow reporter.
//
// The paper mentions ("we have not yet experimented with this
// configuration", §3.3) that CamFlow can replace Linux Audit as SPADE's
// reporter. This bench benchmarks that configuration across Table 1 and
// contrasts its coverage with stock SPADE (audit reporter) and stock
// CamFlow: the prediction — coverage follows the observation layer, so
// SPADE+CamFlow should match CamFlow's ok/empty pattern, not SPADE's —
// holds for every syscall.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "systems/spade_camflow.h"

using namespace provmark;

int main() {
  std::printf("SPADE with CamFlow reporter vs stock SPADE and CamFlow\n\n");
  std::printf("%-12s %-10s %-10s %-14s %s\n", "syscall", "spade",
              "camflow", "spade+camflow", "follows");
  int follows_camflow = 0, follows_audit_only = 0, total = 0;
  for (const bench_suite::BenchmarkProgram& program :
       bench_suite::table_benchmarks()) {
    std::string spade_status, camflow_status, hybrid_status;
    {
      core::PipelineOptions options;
      options.system = "spade";
      options.seed = 23;
      spade_status = core::status_name(
          core::run_benchmark(program, options).status);
    }
    {
      core::PipelineOptions options;
      options.system = "camflow";
      options.seed = 23;
      camflow_status = core::status_name(
          core::run_benchmark(program, options).status);
    }
    {
      core::PipelineOptions options;
      options.recorder = std::make_shared<systems::SpadeCamflowRecorder>();
      options.seed = 23;
      hybrid_status = core::status_name(
          core::run_benchmark(program, options).status);
    }
    const char* follows = "-";
    if (hybrid_status == camflow_status && hybrid_status != spade_status) {
      follows = "camflow";
      ++follows_camflow;
    } else if (hybrid_status == spade_status &&
               hybrid_status != camflow_status) {
      follows = "audit";
      ++follows_audit_only;
    } else if (hybrid_status == spade_status) {
      follows = "both";
    }
    ++total;
    std::printf("%-12s %-10s %-10s %-14s %s\n", program.name.c_str(),
                spade_status.c_str(), camflow_status.c_str(),
                hybrid_status.c_str(), follows);
  }
  std::printf("\nOf %d syscalls, the hybrid's coverage sided with CamFlow "
              "on %d where the two parents disagree, and with plain "
              "audit-SPADE on %d.\n",
              total, follows_camflow, follows_audit_only);
  // The architectural prediction: the reporter layer determines coverage.
  return follows_audit_only == 0 ? 0 : 1;
}
