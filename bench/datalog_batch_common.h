// Shared batched-replay splitting for the Datalog incremental contract:
// bench/perf_datalog_scaling.cpp (the CI speedup/identity gate) and
// tests/datalog/engine_equivalence_test.cpp (the per-batch equivalence
// gate) must replay *the same* add_fact/run() cycles, so the one
// definition of "split a program into rules + N fact batches" lives
// here and both include it.
#pragma once

#include <string>
#include <vector>

#include "util/strings.h"

namespace provmark_bench {

/// Split `program` into its rule clauses (returned via `rules`, load
/// them first) and `batches` contiguous batches of fact clauses — the
/// regression-store update pattern: facts arrive in batches, the store
/// re-saturates after each. One clause per line; a line is a rule iff
/// it contains ":-".
inline void split_fact_batches(const std::string& program, int batches,
                               std::string* rules,
                               std::vector<std::string>* fact_batches) {
  std::vector<std::string> fact_lines;
  for (const std::string& line : provmark::util::split(program, '\n')) {
    if (line.empty()) continue;
    if (line.find(":-") != std::string::npos) {
      *rules += line + "\n";
    } else {
      fact_lines.push_back(line);
    }
  }
  fact_batches->assign(batches, "");
  for (std::size_t i = 0; i < fact_lines.size(); ++i) {
    (*fact_batches)[i * batches / fact_lines.size()] +=
        fact_lines[i] + "\n";
  }
}

}  // namespace provmark_bench
