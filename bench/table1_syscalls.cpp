// Reproduces paper Table 1: the benchmarked syscall families. Lists the
// registered benchmark programs by group, verifying the suite covers all
// 43 calls in the paper's four families.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_suite/program.h"

using namespace provmark;

int main() {
  std::map<int, std::pair<std::string, std::vector<std::string>>> groups;
  for (const bench_suite::BenchmarkProgram& p :
       bench_suite::table_benchmarks()) {
    groups[p.group].first = p.family;
    groups[p.group].second.push_back(p.name);
  }
  std::printf("Table 1: benchmarked syscalls\n\n");
  int total = 0;
  for (const auto& [group, entry] : groups) {
    std::printf("%d  %-12s ", group, entry.first.c_str());
    for (std::size_t i = 0; i < entry.second.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ", ", entry.second[i].c_str());
    }
    std::printf("\n");
    total += static_cast<int>(entry.second.size());
  }
  std::printf("\ntotal benchmarks: %d (paper: 44 calls across 22 "
              "bracket-collapsed families, e.g. dup[2,3])\n",
              total);
  return total == 44 ? 0 : 1;
}
