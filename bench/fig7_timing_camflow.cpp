// Reproduces paper Figure 7: per-stage ProvMark processing time for five
// representative syscalls with CamFlow + PROV-JSON.
#include "timing_common.h"

int main(int argc, char** argv) {
  return provmark_bench::run_timing_figure(
      "Figure 7: timing results, CamFlow+ProvJson", "camflow",
      provmark_bench::figure5_programs(),
      provmark_bench::parse_calibrated_flag(argc, argv));
}
