// Extension experiment: nondeterministic target activity (§5.4 / §6
// future work).
//
// The target is a dependency chain executed by concurrent "threads"
// (creat chain0; link chain0->chain1; link chain1->chain2), whose
// completion order the scheduler picks per trial. ProvMark's published
// pipeline assumes one structure per program; this extension groups
// foreground trials into schedule classes by structural fingerprint and
// produces one benchmark result per schedule, reporting per-class
// support — the "fingerprinting or graph structure summarization" the
// paper calls for.
#include <cstdio>

#include "bench_suite/program.h"
#include "core/nondet.h"
#include "graph/algorithms.h"

using namespace provmark;

int main() {
  std::printf("Nondeterministic target: 3-thread dependency chain, "
              "per-schedule benchmarks\n\n");
  for (const char* system : {"spade", "opus", "camflow"}) {
    core::PipelineOptions options;
    options.system = system;
    options.seed = 31;
    options.trials = 48;
    core::NondetBenchmarkResult result =
        core::run_nondeterministic_benchmark(
            bench_suite::nondeterministic_benchmark(3), options);
    std::printf("== %s: %zu schedule(s) observed over %d trials, "
                "%d unsupported ==\n",
                system, result.schedules.size(), result.trials_run,
                result.unsupported_schedules);
    for (const core::ScheduleResult& schedule : result.schedules) {
      std::printf("  schedule %016llx  support %-3d  %s: %s\n",
                  static_cast<unsigned long long>(schedule.fingerprint),
                  schedule.support,
                  core::status_name(schedule.result.status),
                  graph::structure_summary(schedule.result.result).c_str());
    }
    std::printf("\n");
  }
  std::printf("Interpretation: each schedule class is one interleaving's "
              "provenance footprint;\nan online detector must accept any "
              "of them as \"the\" target signature.\n");
  return 0;
}
