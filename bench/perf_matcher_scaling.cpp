// Matcher scaling benchmark: the perf trajectory of the search-engine
// rewrites, with per-strategy ablation columns.
//
// Runs the two matcher problems the pipeline actually poses (Listing 3
// generalization isomorphisms and Listing 4 comparison embeddings) plus
// a multi-component decomposition workload on growing synthetic
// provenance graphs, across the stacked search strategies:
//
//   legacy          — the string-keyed pre-rewrite engine (baseline for
//                     the PR 1 data-layout speedup; measured on the
//                     sizes it can finish)
//   property        — compact engine, PropertyCost ordering (the PR 1
//                     search, bit-identical to legacy)
//   property+decomp — PropertyCost with component decomposition
//   wl              — WlScarcity ordering (colour-class pruning +
//                     admissible suffix bound)
//   wl+decomp       — the full stack; also run on the parallel search
//                     at 8 threads, with serial-vs-parallel cost
//                     identity enforced
//
// The benchmark *asserts* (exit 1) that every strategy that completes
// reports the same optimal cost, that legacy and property agree on cost
// and step trace, that the parallel search reproduces the serial cost,
// and that the informed strategies never take more steps than the
// property baseline on the bijective problems — so an ordering
// regression fails CI instead of silently inflating BENCH numbers.
//
// Usage: bench_perf_matcher_scaling [--smoke] [output.json]
//   --smoke  small sizes + fewer repetitions (CI-friendly)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/property_graph.h"
#include "matcher/legacy_matcher.h"
#include "matcher/matcher.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

using namespace provmark;

namespace {

constexpr std::size_t kStepBudget = 50'000'000;
constexpr int kParallelThreads = 8;

/// A provenance-shaped random graph: one process spine with artifact
/// fan-out, labelled like recorder output (same shape as the ablation
/// benchmark).
graph::PropertyGraph make_provenance_graph(int processes,
                                           int artifacts_per_process,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string(1000 + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < artifacts_per_process; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/p" + std::to_string(p) + "f" +
                               std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

/// A disconnected workload: `fragments` structurally identical 4-process
/// spines (distinct property values per fragment), the shape component
/// decomposition turns from multiplicative into additive.
graph::PropertyGraph make_fragment_graph(int fragments, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph g;
  int edge = 0;
  for (int f = 0; f < fragments; ++f) {
    std::string prev;
    for (int p = 0; p < 4; ++p) {
      std::string pid = "f" + std::to_string(f) + "p" + std::to_string(p);
      g.add_node(pid, "Process",
                 {{"pid", std::to_string(1000 + f * 10 + p)},
                  {"name", "proc" + std::to_string(p % 3)}});
      if (!prev.empty()) {
        g.add_edge("e" + std::to_string(edge++), pid, prev,
                   "WasTriggeredBy", {{"operation", "fork"}});
      }
      for (int a = 0; a < 4; ++a) {
        std::string aid = pid + "a" + std::to_string(a);
        g.add_node(aid, "Artifact",
                   {{"path", "/tmp/frag" + std::to_string(f) + "f" +
                                 std::to_string(a)},
                    {"time", std::to_string(rng.next_below(100000))}});
        // Fixed read/write alternation keeps every fragment structurally
        // identical, so the decomposition's signature grouping and
        // assignment search are actually exercised.
        bool used = a % 2 == 0;
        g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                   used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                   {{"operation", used ? "read" : "write"}});
      }
      prev = pid;
    }
  }
  return g;
}

/// Relabel ids and refresh transient property values: an isomorphic copy
/// as a second recording trial would produce.
graph::PropertyGraph transient_copy(const graph::PropertyGraph& g,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph out;
  for (const graph::Node& n : g.nodes()) {
    graph::Properties props = n.props;
    if (props.count("time") > 0) {
      props["time"] = std::to_string(rng.next_below(100000));
    }
    if (props.count("pid") > 0) {
      props["pid"] = std::to_string(5000 + rng.next_below(1000));
    }
    out.add_node("x" + n.id, n.label, std::move(props));
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("x" + e.id, "x" + e.src, "x" + e.tgt, e.label, e.props);
  }
  return out;
}

using MatcherFn = std::optional<matcher::Matching> (*)(
    const graph::PropertyGraph&, const graph::PropertyGraph&,
    const matcher::SearchOptions&, matcher::Stats*);

struct Measurement {
  double seconds = 0;  ///< best-of-reps wall clock
  int cost = 0;
  std::size_t steps = 0;
  bool ok = false;
  bool exhausted = false;
};

Measurement measure(MatcherFn fn, const graph::PropertyGraph& g1,
                    const graph::PropertyGraph& g2,
                    const matcher::SearchOptions& options, int reps) {
  Measurement m;
  m.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    matcher::Stats stats;
    auto start = std::chrono::steady_clock::now();
    auto result = fn(g1, g2, options, &stats);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (elapsed < m.seconds) m.seconds = elapsed;
    m.ok = result.has_value();
    m.cost = result.has_value() ? result->cost : -1;
    m.steps = stats.steps;
    m.exhausted = stats.budget_exhausted;
    if (m.exhausted) break;  // a budget hit will only repeat itself
  }
  return m;
}

struct StrategyRow {
  std::string name;
  Measurement serial;
  bool measured = false;
};

struct Case {
  std::string problem;  ///< isomorphism | embedding | components
  int processes;
  std::size_t elements;
  Measurement legacy;
  bool legacy_measured = false;
  std::vector<StrategyRow> strategies;
  Measurement parallel_wl;        ///< wl+decomp at kParallelThreads
  Measurement parallel_property;  ///< property at kParallelThreads
  bool parallel_property_measured = false;

  const Measurement* strategy(const std::string& name) const {
    for (const StrategyRow& row : strategies) {
      if (row.name == name && row.measured) return &row.serial;
    }
    return nullptr;
  }
};

matcher::SearchOptions make_options(matcher::CostModel model,
                                    matcher::CandidateOrder order,
                                    bool decompose) {
  matcher::SearchOptions options;
  options.cost_model = model;
  options.step_budget = kStepBudget;
  options.candidate_order = order;
  options.component_decomposition = decompose;
  return options;
}

bool check(bool condition, const char* what, const Case& c) {
  if (!condition) {
    std::fprintf(stderr, "ASSERTION FAILED [%s p=%d]: %s\n",
                 c.problem.c_str(), c.processes, what);
  }
  return condition;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_matcher_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  // The isomorphism problem is worst-case exponential (§5.4). Under the
  // PR 1 engine p=12 was the tractability frontier (p=16 blows past the
  // 50M step budget); WlScarcity ordering + the suffix bound collapse
  // the proof-of-optimality phase, carrying the p=16 spine in double-
  // digit step counts.
  std::vector<int> sizes = smoke ? std::vector<int>{4, 8}
                                 : std::vector<int>{4, 8, 12, 16};
  const int reps = smoke ? 2 : 3;
  runtime::ThreadPool pool(kParallelThreads);

  using matcher::CandidateOrder;
  using matcher::CostModel;

  std::vector<Case> cases;
  bool failed = false;
  for (int processes : sizes) {
    struct Workload {
      std::string problem;
      graph::PropertyGraph pattern, target;
      CostModel model;
      bool bijective;
    };
    std::vector<Workload> workloads;
    {
      // Listing 3 shape: two trials of the same recording.
      graph::PropertyGraph g1 = make_provenance_graph(processes, 4, 1);
      graph::PropertyGraph g2 = transient_copy(g1, 2);
      workloads.push_back(
          {"isomorphism", g1, g2, CostModel::Symmetric, true});
      // Listing 4 shape: generalized background into foreground.
      graph::PropertyGraph fg = make_provenance_graph(processes, 4, 3);
      graph::PropertyGraph bg = make_provenance_graph(processes / 2, 4, 3);
      workloads.push_back({"embedding", bg, fg, CostModel::OneSided, false});
      // Decomposition shape: processes/4 disjoint identical fragments.
      int fragments = processes / 4 > 0 ? processes / 4 : 1;
      graph::PropertyGraph c1 = make_fragment_graph(fragments, 5);
      graph::PropertyGraph c2 = transient_copy(c1, 6);
      workloads.push_back(
          {"components", c1, c2, CostModel::Symmetric, true});
    }

    for (Workload& w : workloads) {
      Case c;
      c.problem = w.problem;
      c.processes = processes;
      c.elements = w.pattern.size();

      MatcherFn compact_fn =
          w.bijective ? static_cast<MatcherFn>(&matcher::best_isomorphism)
                      : static_cast<MatcherFn>(
                            &matcher::best_subgraph_embedding);
      MatcherFn legacy_fn = w.bijective
                                ? &matcher::legacy::best_isomorphism
                                : &matcher::legacy::best_subgraph_embedding;

      // The legacy engine is only run where it is known to finish: the
      // connected problems up to p=12 (the PR 1 frontier).
      if (w.problem != "components" && processes <= 12) {
        c.legacy = measure(
            legacy_fn, w.pattern, w.target,
            make_options(w.model, CandidateOrder::PropertyCost, false), reps);
        c.legacy_measured = true;
      }

      struct StrategySpec {
        const char* name;
        CandidateOrder order;
        bool decompose;
      };
      std::vector<StrategySpec> specs = {
          {"property", CandidateOrder::PropertyCost, false},
          {"wl", CandidateOrder::WlScarcity, false},
      };
      if (w.bijective) {
        // Decomposition applies to the bijective problem only.
        specs.push_back({"property_decomp", CandidateOrder::PropertyCost,
                         true});
        specs.push_back({"wl_decomp", CandidateOrder::WlScarcity, true});
      }
      for (const StrategySpec& spec : specs) {
        StrategyRow row;
        row.name = spec.name;
        row.serial = measure(compact_fn, w.pattern, w.target,
                             make_options(w.model, spec.order, spec.decompose),
                             reps);
        row.measured = true;
        c.strategies.push_back(std::move(row));
      }

      // Parallel search: the full stack at 8 threads, plus the property
      // baseline where it completes (the wide-tree case parallelism is
      // for). Costs must be identical to the serial runs.
      {
        matcher::SearchOptions options = make_options(
            w.model, CandidateOrder::WlScarcity, w.bijective);
        options.threads = kParallelThreads;
        options.pool = &pool;
        c.parallel_wl = measure(compact_fn, w.pattern, w.target, options,
                                reps);
      }
      const Measurement* property = c.strategy("property");
      if (property != nullptr && !property->exhausted) {
        matcher::SearchOptions options = make_options(
            w.model, CandidateOrder::PropertyCost, false);
        options.threads = kParallelThreads;
        options.pool = &pool;
        c.parallel_property = measure(compact_fn, w.pattern, w.target,
                                      options, reps);
        c.parallel_property_measured = true;
      }

      // -- identity + regression gates ------------------------------------
      const Measurement* wl = c.strategy("wl");
      if (c.legacy_measured && !c.legacy.exhausted && property != nullptr &&
          !property->exhausted) {
        failed |= !check(c.legacy.ok == property->ok &&
                             c.legacy.cost == property->cost &&
                             c.legacy.steps == property->steps,
                         "legacy and property engines diverged", c);
      }
      // Every completing strategy must agree on feasibility and cost.
      int reference_cost = 0;
      bool reference_ok = false, have_reference = false;
      for (const StrategyRow& row : c.strategies) {
        if (row.serial.exhausted) continue;
        if (!have_reference) {
          reference_cost = row.serial.cost;
          reference_ok = row.serial.ok;
          have_reference = true;
          continue;
        }
        failed |= !check(row.serial.ok == reference_ok &&
                             row.serial.cost == reference_cost,
                         ("strategy " + row.name +
                          " changed the optimal cost").c_str(),
                         c);
      }
      if (!c.parallel_wl.exhausted && have_reference) {
        failed |= !check(c.parallel_wl.ok == reference_ok &&
                             c.parallel_wl.cost == reference_cost,
                         "parallel wl+decomp diverged from serial", c);
      }
      if (c.parallel_property_measured && !c.parallel_property.exhausted &&
          property != nullptr && !property->exhausted) {
        failed |= !check(c.parallel_property.ok == property->ok &&
                             c.parallel_property.cost == property->cost,
                         "parallel property diverged from serial", c);
      }
      // Ordering regression gate: on the bijective problems the informed
      // strategies may never take more steps than the property baseline.
      if (w.bijective && property != nullptr && !property->exhausted &&
          wl != nullptr && !wl->exhausted) {
        failed |= !check(wl->steps <= property->steps,
                         "wl ordering regressed above property steps", c);
        const Measurement* wl_decomp = c.strategy("wl_decomp");
        if (wl_decomp != nullptr && !wl_decomp->exhausted) {
          failed |= !check(wl_decomp->steps <= property->steps,
                           "wl+decomp regressed above property steps", c);
        }
      }

      cases.push_back(std::move(c));
    }
  }

  std::printf("%-12s %5s %8s | %12s | %12s %15s %12s %15s | %14s %14s\n",
              "problem", "p", "elems", "legacy(ms)", "property", "prop+decomp",
              "wl", "wl+decomp", "wl+dec 8t(ms)", "speedup");
  auto cell = [](const Measurement* m) {
    if (m == nullptr) return std::string("-");
    char buf[64];
    if (m->exhausted) {
      std::snprintf(buf, sizeof(buf), ">%zuM!", m->steps / 1'000'000);
    } else {
      std::snprintf(buf, sizeof(buf), "%zu", m->steps);
    }
    return std::string(buf);
  };
  for (const Case& c : cases) {
    const Measurement* wl_decomp = c.strategy("wl_decomp");
    const Measurement* serial_ref =
        wl_decomp != nullptr ? wl_decomp : c.strategy("wl");
    double speedup = serial_ref != nullptr && c.parallel_wl.seconds > 0
                         ? serial_ref->seconds / c.parallel_wl.seconds
                         : 0;
    std::printf(
        "%-12s %5d %8zu | %12s | %12s %15s %12s %15s | %14.3f %13.2fx\n",
        c.problem.c_str(), c.processes, c.elements,
        c.legacy_measured
            ? std::to_string(c.legacy.seconds * 1e3).substr(0, 8).c_str()
            : "-",
        cell(c.strategy("property")).c_str(),
        cell(c.strategy("property_decomp")).c_str(),
        cell(c.strategy("wl")).c_str(), cell(wl_decomp).c_str(),
        c.parallel_wl.seconds * 1e3, speedup);
  }

  // Headline: the isomorphism spine at the largest size — the instance
  // that exhausted the 50M budget before this PR.
  const Case* headline = nullptr;
  for (const Case& c : cases) {
    if (c.problem == "isomorphism" &&
        (headline == nullptr || c.processes > headline->processes)) {
      headline = &c;
    }
  }
  if (headline != nullptr) {
    const Measurement* property = headline->strategy("property");
    const Measurement* wl_decomp = headline->strategy("wl_decomp");
    if (property != nullptr && wl_decomp != nullptr) {
      std::printf("\np=%d isomorphism spine: property %s steps%s -> "
                  "wl+decomp %zu steps (budget %zuM)\n",
                  headline->processes, cell(property).c_str(),
                  property->exhausted ? " (budget exhausted)" : "",
                  wl_decomp->steps, kStepBudget / 1'000'000);
    }
  }

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"benchmark\": \"matcher_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"step_budget\": %zu,\n", kStepBudget);
  std::fprintf(f, "  \"parallel_threads\": %d,\n", kParallelThreads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"cases\": [\n");
  auto emit_measurement = [&](const char* name, const Measurement& m,
                              bool trailing_comma) {
    std::fprintf(f,
                 "        \"%s\": {\"seconds\": %.6f, \"steps\": %zu, "
                 "\"cost\": %d, \"ok\": %s, \"budget_exhausted\": %s}%s\n",
                 name, m.seconds, m.steps, m.cost, m.ok ? "true" : "false",
                 m.exhausted ? "true" : "false", trailing_comma ? "," : "");
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(f,
                 "    {\"problem\": \"%s\", \"processes\": %d, "
                 "\"elements\": %zu,\n",
                 c.problem.c_str(), c.processes, c.elements);
    if (c.legacy_measured) {
      std::fprintf(f, "      \"legacy\": {\"seconds\": %.6f, \"steps\": "
                      "%zu, \"cost\": %d},\n",
                   c.legacy.seconds, c.legacy.steps, c.legacy.cost);
    }
    std::fprintf(f, "      \"strategies\": {\n");
    for (std::size_t s = 0; s < c.strategies.size(); ++s) {
      emit_measurement(c.strategies[s].name.c_str(), c.strategies[s].serial,
                       s + 1 < c.strategies.size());
    }
    std::fprintf(f, "      },\n      \"parallel\": {\n");
    const Measurement* wl_decomp = c.strategy("wl_decomp");
    const Measurement* serial_ref =
        wl_decomp != nullptr ? wl_decomp : c.strategy("wl");
    double speedup = serial_ref != nullptr && c.parallel_wl.seconds > 0
                         ? serial_ref->seconds / c.parallel_wl.seconds
                         : 0;
    std::fprintf(f,
                 "        \"wl_%dt\": {\"seconds\": %.6f, \"cost\": %d, "
                 "\"identical_cost\": %s, \"speedup_vs_serial\": %.3f}%s\n",
                 kParallelThreads, c.parallel_wl.seconds, c.parallel_wl.cost,
                 serial_ref != nullptr &&
                         c.parallel_wl.cost == serial_ref->cost
                     ? "true"
                     : "false",
                 speedup, c.parallel_property_measured ? "," : "");
    if (c.parallel_property_measured) {
      const Measurement* property = c.strategy("property");
      double pspeed = property != nullptr && c.parallel_property.seconds > 0
                          ? property->seconds / c.parallel_property.seconds
                          : 0;
      std::fprintf(f,
                   "        \"property_%dt\": {\"seconds\": %.6f, \"cost\": "
                   "%d, \"identical_cost\": %s, \"speedup_vs_serial\": "
                   "%.3f}\n",
                   kParallelThreads, c.parallel_property.seconds,
                   c.parallel_property.cost,
                   property != nullptr &&
                           c.parallel_property.cost == property->cost
                       ? "true"
                       : "false",
                   pspeed);
    }
    std::fprintf(f, "      }\n    }%s\n",
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());
  if (failed) {
    std::fprintf(stderr, "\nFAILED: identity or regression gates tripped\n");
    return 1;
  }
  return 0;
}
