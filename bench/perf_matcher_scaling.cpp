// Old-vs-new matcher scaling benchmark: the perf trajectory of the
// interned-engine rewrite.
//
// Runs both the legacy string-keyed engine (legacy_matcher.h, the exact
// pre-rewrite implementation) and the production CompactGraph engine on
// growing synthetic provenance graphs — the two matcher problems the
// pipeline actually poses (Listing 3 generalization isomorphisms and
// Listing 4 comparison embeddings) — verifies they return identical
// results, and emits BENCH_matcher_perf.json with per-size wall-clock
// numbers and speedups.
//
// Usage: bench_perf_matcher_scaling [--smoke] [output.json]
//   --smoke  small sizes + fewer repetitions (CI-friendly)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "matcher/legacy_matcher.h"
#include "matcher/matcher.h"
#include "util/rng.h"

using namespace provmark;

namespace {

/// A provenance-shaped random graph: one process spine with artifact
/// fan-out, labelled like recorder output (same shape as the ablation
/// benchmark).
graph::PropertyGraph make_provenance_graph(int processes,
                                           int artifacts_per_process,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string(1000 + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < artifacts_per_process; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/p" + std::to_string(p) + "f" +
                               std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

/// Relabel ids and refresh transient property values: an isomorphic copy
/// as a second recording trial would produce.
graph::PropertyGraph transient_copy(const graph::PropertyGraph& g,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph out;
  for (const graph::Node& n : g.nodes()) {
    graph::Properties props = n.props;
    if (props.count("time") > 0) {
      props["time"] = std::to_string(rng.next_below(100000));
    }
    if (props.count("pid") > 0) {
      props["pid"] = std::to_string(5000 + rng.next_below(1000));
    }
    out.add_node("x" + n.id, n.label, std::move(props));
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("x" + e.id, "x" + e.src, "x" + e.tgt, e.label, e.props);
  }
  return out;
}

using MatcherFn = std::optional<matcher::Matching> (*)(
    const graph::PropertyGraph&, const graph::PropertyGraph&,
    const matcher::SearchOptions&, matcher::Stats*);

struct Measurement {
  double seconds = 0;       ///< best-of-reps wall clock
  int cost = 0;
  std::size_t steps = 0;
  bool ok = false;
};

Measurement measure(MatcherFn fn, const graph::PropertyGraph& g1,
                    const graph::PropertyGraph& g2,
                    const matcher::SearchOptions& options, int reps) {
  Measurement m;
  m.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    matcher::Stats stats;
    auto start = std::chrono::steady_clock::now();
    auto result = fn(g1, g2, options, &stats);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (elapsed < m.seconds) m.seconds = elapsed;
    m.ok = result.has_value();
    m.cost = result.has_value() ? result->cost : -1;
    m.steps = stats.steps;
  }
  return m;
}

struct Case {
  std::string problem;
  int processes;
  std::size_t elements;
  Measurement legacy;
  Measurement compact;

  double speedup() const {
    return compact.seconds > 0 ? legacy.seconds / compact.seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_matcher_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  // The isomorphism problem is worst-case exponential (§5.4): p=12 is the
  // largest spine that stays comfortably inside the step budget with
  // pruning on; p=16 already blows past 50 million steps. The per-size
  // gap between the engines still widens with size because the legacy
  // per-step cost grows with the graph while the compact one does not.
  std::vector<int> sizes = smoke ? std::vector<int>{4, 8}
                                 : std::vector<int>{4, 8, 12};
  const int reps = smoke ? 2 : 3;

  matcher::SearchOptions iso_options;
  iso_options.cost_model = matcher::CostModel::Symmetric;
  iso_options.step_budget = 50'000'000;  // terminate pathological cases
  matcher::SearchOptions embed_options;
  embed_options.cost_model = matcher::CostModel::OneSided;
  embed_options.step_budget = 50'000'000;

  std::vector<Case> cases;
  bool mismatch = false;
  for (int processes : sizes) {
    // Listing 3 shape: two trials of the same recording.
    graph::PropertyGraph g1 = make_provenance_graph(processes, 4, 1);
    graph::PropertyGraph g2 = transient_copy(g1, 2);
    Case iso{"isomorphism", processes, g1.size(), {}, {}};
    iso.legacy = measure(&matcher::legacy::best_isomorphism, g1, g2,
                         iso_options, reps);
    iso.compact = measure(&matcher::best_isomorphism, g1, g2, iso_options,
                          reps);
    cases.push_back(iso);

    // Listing 4 shape: generalized background into foreground.
    graph::PropertyGraph fg = make_provenance_graph(processes, 4, 3);
    graph::PropertyGraph bg = make_provenance_graph(processes / 2, 4, 3);
    Case embed{"embedding", processes, fg.size(), {}, {}};
    embed.legacy = measure(&matcher::legacy::best_subgraph_embedding, bg,
                           fg, embed_options, reps);
    embed.compact = measure(&matcher::best_subgraph_embedding, bg, fg,
                            embed_options, reps);
    cases.push_back(embed);
  }

  std::printf("%-12s %10s %10s %14s %14s %9s\n", "problem", "processes",
              "elements", "legacy(ms)", "compact(ms)", "speedup");
  for (const Case& c : cases) {
    if (!c.legacy.ok || !c.compact.ok || c.legacy.cost != c.compact.cost ||
        c.legacy.steps != c.compact.steps) {
      std::fprintf(stderr,
                   "MISMATCH: %s processes=%d legacy(ok=%d cost=%d "
                   "steps=%zu) compact(ok=%d cost=%d steps=%zu)\n",
                   c.problem.c_str(), c.processes, c.legacy.ok,
                   c.legacy.cost, c.legacy.steps, c.compact.ok,
                   c.compact.cost, c.compact.steps);
      mismatch = true;
    }
    std::printf("%-12s %10d %10zu %14.3f %14.3f %8.2fx\n",
                c.problem.c_str(), c.processes, c.elements,
                c.legacy.seconds * 1e3, c.compact.seconds * 1e3,
                c.speedup());
  }

  // The headline number: combined speedup at the largest graph size
  // (summing both matcher problems the pipeline poses at that size).
  int largest_size = sizes.back();
  std::size_t largest_elements = 0;
  double largest_legacy = 0, largest_compact = 0;
  for (const Case& c : cases) {
    if (c.processes != largest_size) continue;
    if (c.elements > largest_elements) largest_elements = c.elements;
    largest_legacy += c.legacy.seconds;
    largest_compact += c.compact.seconds;
  }
  double largest_speedup =
      largest_compact > 0 ? largest_legacy / largest_compact : 0;
  std::printf("\nlargest graph size (%d processes, %zu elements): %.2fx "
              "combined speedup\n",
              largest_size, largest_elements, largest_speedup);

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"matcher_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"reps\": %d,\n  \"cases\": [\n", reps);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(
        f,
        "    {\"problem\": \"%s\", \"processes\": %d, \"elements\": %zu, "
        "\"legacy_seconds\": %.6f, \"compact_seconds\": %.6f, "
        "\"speedup\": %.3f, \"steps\": %zu, \"cost\": %d}%s\n",
        c.problem.c_str(), c.processes, c.elements, c.legacy.seconds,
        c.compact.seconds, c.speedup(), c.compact.steps, c.compact.cost,
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"largest\": {\"processes\": %d, \"elements\": "
               "%zu, \"legacy_seconds\": %.6f, \"compact_seconds\": %.6f, "
               "\"speedup\": %.3f}\n}\n",
               largest_size, largest_elements, largest_legacy,
               largest_compact, largest_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());
  return mismatch ? 1 : 0;
}
