// Ablation benchmark for the matching engine (the clingo replacement).
//
// The paper's §5.1 claim is that solving the NP-complete matching
// problems is "minutes rather than days" in practice. This benchmark
// measures our engine on provenance-shaped graphs of growing size and
// ablates the two design choices DESIGN.md calls out:
//   * candidate pruning (label/degree/WL filters),
//   * branch-and-bound cost pruning.
#include <benchmark/benchmark.h>

#include "graph/property_graph.h"
#include "matcher/matcher.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace provmark;

namespace {

/// A provenance-shaped random graph: one process spine with artifact
/// fan-out, labelled like recorder output.
graph::PropertyGraph make_provenance_graph(int processes,
                                           int artifacts_per_process,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string(1000 + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < artifacts_per_process; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      // Stable per-artifact paths keep the instance realistic (recorders
      // name artifacts); the transient "time" property is what the
      // optimizer has to see through.
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/p" + std::to_string(p) + "f" +
                               std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

/// Relabel ids and shuffle property values slightly: an isomorphic copy
/// with transient noise, as two recording trials would produce.
graph::PropertyGraph transient_copy(const graph::PropertyGraph& g,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph out;
  for (const graph::Node& n : g.nodes()) {
    graph::Properties props = n.props;
    if (props.count("time") > 0) {
      props["time"] = std::to_string(rng.next_below(100000));
    }
    if (props.count("pid") > 0) {
      props["pid"] = std::to_string(5000 + rng.next_below(1000));
    }
    out.add_node("x" + n.id, n.label, std::move(props));
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("x" + e.id, "x" + e.src, "x" + e.tgt, e.label, e.props);
  }
  return out;
}

void configure(matcher::SearchOptions& options, bool pruning,
               bool bounding) {
  options.candidate_pruning = pruning;
  options.cost_bounding = bounding;
  // Bound the worst case (the paper accepts exponential blow-up as a
  // risk, §5.4); a budget hit shows up as an error in the bench output.
  options.step_budget = 5'000'000;
}

void BM_Isomorphism(benchmark::State& state) {
  int processes = static_cast<int>(state.range(0));
  bool pruning = state.range(1) != 0;
  graph::PropertyGraph g1 = make_provenance_graph(processes, 4, 1);
  graph::PropertyGraph g2 = transient_copy(g1, 2);
  matcher::SearchOptions options;
  options.cost_model = matcher::CostModel::Symmetric;
  configure(options, pruning, true);
  for (auto _ : state) {
    auto result = matcher::best_isomorphism(g1, g2, options);
    benchmark::DoNotOptimize(result);
    if (!result.has_value()) state.SkipWithError("no isomorphism found");
  }
  state.SetLabel(util::format("%zu elements, pruning=%s",
                              g1.size(), pruning ? "on" : "off"));
}
BENCHMARK(BM_Isomorphism)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({12, 1})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond);

void BM_SubgraphEmbedding(benchmark::State& state) {
  int processes = static_cast<int>(state.range(0));
  bool bounding = state.range(1) != 0;
  // Background = first half of the foreground: the comparison stage shape.
  graph::PropertyGraph fg = make_provenance_graph(processes, 4, 3);
  graph::PropertyGraph bg = make_provenance_graph(processes / 2, 4, 3);
  matcher::SearchOptions options;
  options.cost_model = matcher::CostModel::OneSided;
  configure(options, true, bounding);
  for (auto _ : state) {
    auto result = matcher::best_subgraph_embedding(bg, fg, options);
    benchmark::DoNotOptimize(result);
    if (!result.has_value()) state.SkipWithError("no embedding found");
  }
  state.SetLabel(util::format("bg %zu -> fg %zu, cost bounding=%s",
                              bg.size(), fg.size(),
                              bounding ? "on" : "off"));
}
BENCHMARK(BM_SubgraphEmbedding)
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond);

/// §5.4 extension ablation: candidate-ordering heuristics on an
/// automorphism-heavy instance (K identical creat/unlink-like fragments,
/// the scale-benchmark shape that blows up the naive search).
void BM_CandidateOrdering(benchmark::State& state) {
  int copies = static_cast<int>(state.range(0));
  auto order = static_cast<matcher::CandidateOrder>(state.range(1));
  graph::PropertyGraph g1, g2;
  util::Rng rng(99);
  int t = 0;
  for (int k = 0; k < copies; ++k) {
    std::string p = "p" + std::to_string(k);
    // Identical fragments up to the timestamp property.
    for (graph::PropertyGraph* g : {&g1, &g2}) {
      g->add_node(p, "Process", {{"name", "bench"}});
      g->add_node(p + "f", "Artifact",
                  {{"path", "/tmp/scale"},
                   {"time", std::to_string(1000 + t)}});
      g->add_edge(p + "e", p, p + "f", "Used",
                  {{"operation", "creat"},
                   {"time", std::to_string(1000 + t)}});
    }
    g1.set_property(p + "f", "noise", std::to_string(rng.next_below(9)));
    ++t;
  }
  matcher::SearchOptions options;
  options.cost_model = matcher::CostModel::Symmetric;
  options.candidate_order = order;
  options.step_budget = 5'000'000;
  for (auto _ : state) {
    matcher::Stats stats;
    auto result = matcher::best_isomorphism(g1, g2, options, &stats);
    benchmark::DoNotOptimize(result);
    if (stats.budget_exhausted) state.SkipWithError("budget exhausted");
  }
  const char* names[] = {"none", "property-cost", "timestamp-rank"};
  state.SetLabel(util::format("%d copies, order=%s", copies,
                              names[state.range(1)]));
}
BENCHMARK(BM_CandidateOrdering)
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({10, 1})
    ->Args({10, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
