// Datalog engine scaling benchmark: the perf trajectory of the
// interned, indexed, parallel rewrite, with per-layer ablation columns.
//
// Runs the query-layer workloads the paper's storage format produces —
// transitive closure over provenance edge facts, triangle joins over a
// dense link relation, and a stratified provenance query program
// (reachability + a negation-guarded write-only-file query) over the
// Listing 1 representation — at growing scale, across the stacked
// engine layers:
//
//   legacy    — the seed-era evaluator (string tuples in std::map/
//               std::set, full-relation-scan joins), measured on the
//               sizes it can finish
//   scan      — the interned engine with indexes disabled: columnar
//               symbol pools and flat slot bindings, but every body
//               atom still scans its relation
//   indexed   — + bound-signature hash indexes and greedy most-bound
//               join ordering (the default configuration)
//   parallel8 — indexed + per-stratum parallel rule evaluation at 8
//               threads on a dedicated runtime pool
//
// A second table replays each workload as add_fact/run() cycles (the
// regression-store update pattern: facts arrive in batches, the store
// re-saturates after each) and ablates EvalOptions::incremental: the
// delta-reuse engine seeds each re-run with only the newly appended
// rows, the scratch column re-derives from the whole store every cycle.
// Both must land on bit-identical stores after every batch — asserted —
// and the incremental speedup on the largest closure workload is gated.
//
// The benchmark *asserts* (exit 1) that every engine configuration
// derives bit-identical relation contents and query results on every
// workload — the legacy engine is the reference — and that the indexed
// engine beats legacy by the expected factor on the largest transitive
// closure workload, so a join-layer regression fails CI instead of
// silently inflating BENCH numbers.
//
// Usage: bench_perf_datalog_scaling [--smoke] [output.json]
//   --smoke  small sizes + fewer repetitions (CI-friendly)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog_batch_common.h"
#include "datalog/engine.h"
#include "datalog/fact_io.h"
#include "datalog/legacy_engine.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

using namespace provmark;

namespace {

constexpr int kParallelThreads = 8;

/// A provenance-shaped random graph: one process spine with artifact
/// fan-out, labelled like recorder output (same shape as the matcher
/// scaling benchmark).
graph::PropertyGraph make_provenance_graph(int processes,
                                           int artifacts_per_process,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  graph::PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string(1000 + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < artifacts_per_process; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/p" + std::to_string(p) + "f" +
                               std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

struct Workload {
  std::string name;
  int scale = 0;
  std::string program;
  std::vector<std::string> outputs;  ///< relations compared + counted
  std::vector<std::string> queries;  ///< query atoms compared
};

/// Transitive closure over the edge facts of a provenance graph — the
/// regression store's reachability workhorse. Derived tuples grow
/// quadratically with the spine, the shape that breaks scan joins.
Workload closure_workload(int processes) {
  graph::PropertyGraph g = make_provenance_graph(processes, 3, 11);
  Workload w;
  w.name = "closure";
  w.scale = processes;
  for (const graph::Edge& e : g.edges()) {
    w.program += "edge(" + e.src + "," + e.tgt + ").\n";
  }
  w.program +=
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).\n";
  w.outputs = {"path"};
  w.queries = {"path(p0, X)", "path(X, p0)"};
  return w;
}

/// Triangle join over a dense random link relation: one round, three-way
/// self-join — pure join-order and index-probe stress.
Workload triangle_workload(int nodes) {
  util::Rng rng(23);
  Workload w;
  w.name = "triangle";
  w.scale = nodes;
  std::set<std::pair<int, int>> seen;
  int edges = nodes * 4;
  for (int i = 0; i < edges; ++i) {
    int a = static_cast<int>(rng.next_below(nodes));
    int b = static_cast<int>(rng.next_below(nodes));
    if (!seen.insert({a, b}).second) continue;
    w.program += "link(v" + std::to_string(a) + ",v" + std::to_string(b) +
                 ").\n";
  }
  w.program +=
      "tri(X,Y,Z) :- link(X,Y), link(Y,Z), link(Z,X).\n"
      "fanout(X,Y,Z) :- link(X,Y), link(X,Z), Y != Z.\n";
  w.outputs = {"tri", "fanout"};
  w.queries = {"tri(X, Y, Z)"};
  return w;
}

/// The paper's Listing 1 representation end-to-end: graph facts through
/// fact_io, reachability, and a stratified negation query (files written
/// but never read back) — the Charlie regression-query shape.
Workload provenance_query_workload(int processes) {
  graph::PropertyGraph g = make_provenance_graph(processes, 3, 31);
  Workload w;
  w.name = "provquery";
  w.scale = processes;
  w.program = datalog::to_datalog(g, "r");
  w.program +=
      "flow(A,B) :- er(E, A, B, L).\n"
      "reach(A,B) :- flow(A,B).\n"
      "reach(A,C) :- reach(A,B), flow(B,C).\n"
      "written(F) :- er(_, F, _, \"WasGeneratedBy\").\n"
      "readback(F) :- er(_, _, F, \"Used\").\n"
      "writeonly(F) :- written(F), not readback(F).\n"
      "proc(P) :- nr(P, \"Process\").\n"
      "touched(P,F) :- proc(P), reach(P,F), not proc(F).\n";
  w.outputs = {"reach", "writeonly", "touched"};
  w.queries = {"reach(p0, X)", "writeonly(F)"};
  return w;
}

/// One engine run's comparable outcome: derived relations and query
/// results, plus the wall clock to reach them from a cold engine.
struct Outcome {
  double seconds = 0;  ///< best-of-reps wall clock
  std::map<std::string, std::set<datalog::Tuple>> relations;
  std::vector<std::vector<std::map<std::string, std::string>>> queries;
  std::size_t derived = 0;
  bool measured = false;
};

template <typename EngineT, typename Setup>
Outcome measure(const Workload& w, int reps, Setup&& setup) {
  Outcome out;
  out.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    EngineT engine;
    setup(engine);
    auto start = std::chrono::steady_clock::now();
    engine.load_program(w.program);
    engine.run();
    std::map<std::string, std::set<datalog::Tuple>> relations;
    for (const std::string& name : w.outputs) {
      relations[name] = engine.relation(name);
    }
    std::vector<std::vector<std::map<std::string, std::string>>> queries;
    for (const std::string& query : w.queries) {
      queries.push_back(engine.query(query));
    }
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (elapsed < out.seconds) out.seconds = elapsed;
    out.relations = std::move(relations);
    out.queries = std::move(queries);
  }
  out.derived = 0;
  for (const auto& [name, tuples] : out.relations) {
    out.derived += tuples.size();
  }
  out.measured = true;
  return out;
}

constexpr int kFactBatches = 8;

/// Replay the workload as add_fact/run() cycles: rules first, then the
/// facts in kFactBatches batches with a run() after each (the split is
/// shared with the equivalence test — datalog_batch_common.h). Measures
/// the total wall clock of all cycles under the given
/// EvalOptions::incremental setting.
Outcome measure_batched(const Workload& w, int reps, bool incremental) {
  std::string rules;
  std::vector<std::string> batches;
  provmark_bench::split_fact_batches(w.program, kFactBatches, &rules,
                                     &batches);

  Outcome out;
  out.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    datalog::Engine engine;
    datalog::Engine::EvalOptions options;
    options.incremental = incremental;
    engine.set_eval_options(options);
    auto start = std::chrono::steady_clock::now();
    engine.load_program(rules);
    for (const std::string& batch : batches) {
      engine.load_program(batch);
      engine.run();
    }
    std::map<std::string, std::set<datalog::Tuple>> relations;
    for (const std::string& name : w.outputs) {
      relations[name] = engine.relation(name);
    }
    std::vector<std::vector<std::map<std::string, std::string>>> queries;
    for (const std::string& query : w.queries) {
      queries.push_back(engine.query(query));
    }
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (elapsed < out.seconds) out.seconds = elapsed;
    out.relations = std::move(relations);
    out.queries = std::move(queries);
  }
  out.derived = 0;
  for (const auto& [name, tuples] : out.relations) {
    out.derived += tuples.size();
  }
  out.measured = true;
  return out;
}

struct Case {
  Workload workload;
  std::size_t fact_lines = 0;
  Outcome legacy;
  Outcome scan;
  Outcome indexed;
  Outcome parallel;
  Outcome incremental;      ///< batched replay, delta reuse on
  Outcome scratch_batched;  ///< batched replay, from-scratch re-runs
};

bool check(bool condition, const char* what, const Case& c) {
  if (!condition) {
    std::fprintf(stderr, "ASSERTION FAILED [%s scale=%d]: %s\n",
                 c.workload.name.c_str(), c.workload.scale, what);
  }
  return condition;
}

bool same_results(const Outcome& a, const Outcome& b) {
  return a.relations == b.relations && a.queries == b.queries;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_datalog_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const int reps = smoke ? 2 : 3;
  // The legacy engine joins by full relation scans over string tuples;
  // beyond these sizes a single run takes minutes and the columns stop
  // being informative.
  const int legacy_closure_cap = smoke ? 16 : 96;
  const int legacy_triangle_cap = smoke ? 48 : 192;
  const int legacy_provquery_cap = smoke ? 16 : 64;
  std::vector<int> scales = smoke ? std::vector<int>{8, 16}
                                  : std::vector<int>{16, 32, 64, 96};
  runtime::ThreadPool pool(kParallelThreads);

  std::vector<Case> cases;
  bool failed = false;
  for (int scale : scales) {
    std::vector<std::pair<Workload, int>> workloads = {
        {closure_workload(scale), legacy_closure_cap},
        {triangle_workload(scale * 3), legacy_triangle_cap},
        {provenance_query_workload(scale), legacy_provquery_cap},
    };
    for (auto& [workload, legacy_cap] : workloads) {
      Case c;
      c.workload = std::move(workload);
      for (char ch : c.workload.program) {
        if (ch == '\n') ++c.fact_lines;
      }

      if (c.workload.scale <= legacy_cap) {
        c.legacy = measure<datalog::legacy::Engine>(
            c.workload, reps, [](datalog::legacy::Engine&) {});
      }
      c.scan = measure<datalog::Engine>(
          c.workload, reps, [](datalog::Engine& e) {
            e.set_eval_options({/*use_indexes=*/false, 1, nullptr});
          });
      c.indexed = measure<datalog::Engine>(
          c.workload, reps, [](datalog::Engine& e) {
            e.set_eval_options({/*use_indexes=*/true, 1, nullptr});
          });
      c.parallel = measure<datalog::Engine>(
          c.workload, reps, [&pool](datalog::Engine& e) {
            e.set_eval_options({/*use_indexes=*/true, kParallelThreads,
                                &pool});
          });

      c.incremental = measure_batched(c.workload, reps,
                                      /*incremental=*/true);
      c.scratch_batched = measure_batched(c.workload, reps,
                                          /*incremental=*/false);

      // -- identity gates --------------------------------------------------
      failed |= !check(same_results(c.incremental, c.scratch_batched),
                       "incremental delta reuse changed the fact store", c);
      if (c.workload.name != "provquery") {
        // Positive programs are monotone, so the batched replay must
        // also land exactly on the one-shot fixpoint. (provquery's
        // negation makes batched saturation legitimately cumulative —
        // there the scratch-batched column is the reference.)
        failed |= !check(same_results(c.incremental, c.indexed),
                         "batched incremental replay diverged from the "
                         "one-shot fixpoint",
                         c);
      }
      if (c.legacy.measured) {
        failed |= !check(same_results(c.legacy, c.indexed),
                         "indexed engine diverged from legacy", c);
        failed |= !check(same_results(c.legacy, c.scan),
                         "scan engine diverged from legacy", c);
      }
      failed |= !check(same_results(c.indexed, c.scan),
                       "index layer changed derived facts", c);
      failed |= !check(same_results(c.indexed, c.parallel),
                       "parallel evaluation diverged from serial", c);
      failed |= !check(c.indexed.derived > 0,
                       "workload derived nothing (generator broke)", c);

      cases.push_back(std::move(c));
    }
  }

  std::printf("%-10s %6s %7s %9s | %11s %11s %11s %13s | %9s %9s\n",
              "workload", "scale", "facts", "derived", "legacy(ms)",
              "scan(ms)", "indexed(ms)", "parallel8(ms)", "vs legacy",
              "vs scan");
  for (const Case& c : cases) {
    char legacy_cell[32];
    if (c.legacy.measured) {
      std::snprintf(legacy_cell, sizeof(legacy_cell), "%.2f",
                    c.legacy.seconds * 1e3);
    } else {
      std::snprintf(legacy_cell, sizeof(legacy_cell), "-");
    }
    std::printf(
        "%-10s %6d %7zu %9zu | %11s %11.2f %11.2f %13.2f | %8.1fx %8.1fx\n",
        c.workload.name.c_str(), c.workload.scale, c.fact_lines,
        c.indexed.derived, legacy_cell, c.scan.seconds * 1e3,
        c.indexed.seconds * 1e3, c.parallel.seconds * 1e3,
        c.legacy.measured && c.indexed.seconds > 0
            ? c.legacy.seconds / c.indexed.seconds
            : 0.0,
        c.indexed.seconds > 0 ? c.scan.seconds / c.indexed.seconds : 0.0);
  }

  std::printf("\nincremental add_fact/run() cycles (%d fact batches):\n",
              kFactBatches);
  std::printf("%-10s %6s | %12s %15s | %9s %9s\n", "workload", "scale",
              "scratch(ms)", "incremental(ms)", "speedup", "identical");
  for (const Case& c : cases) {
    std::printf("%-10s %6d | %12.2f %15.2f | %8.1fx %9s\n",
                c.workload.name.c_str(), c.workload.scale,
                c.scratch_batched.seconds * 1e3,
                c.incremental.seconds * 1e3,
                c.incremental.seconds > 0
                    ? c.scratch_batched.seconds / c.incremental.seconds
                    : 0.0,
                same_results(c.incremental, c.scratch_batched) ? "yes"
                                                               : "NO");
  }

  // Incremental gate: on the largest closure workload, delta reuse must
  // actually pay for itself across the batched replay. Smoke instances
  // are too small to amortize anything, so only identity is gated there.
  if (!smoke) {
    const Case* inc_headline = nullptr;
    for (const Case& c : cases) {
      if (c.workload.name == "closure" &&
          (inc_headline == nullptr ||
           c.workload.scale > inc_headline->workload.scale)) {
        inc_headline = &c;
      }
    }
    if (inc_headline != nullptr) {
      double speedup =
          inc_headline->incremental.seconds > 0
              ? inc_headline->scratch_batched.seconds /
                    inc_headline->incremental.seconds
              : 0.0;
      failed |= !check(speedup >= 1.5,
                       "incremental delta reuse lost its speedup over "
                       "from-scratch re-derivation on the largest closure "
                       "workload",
                       *inc_headline);
    }
  }

  // Headline + speedup gate: the largest transitive-closure workload the
  // legacy engine completes. The indexed rewrite must clear 10x there
  // (2x in smoke mode, where the instances are too small to amortize).
  const Case* headline = nullptr;
  for (const Case& c : cases) {
    if (c.workload.name == "closure" && c.legacy.measured &&
        (headline == nullptr ||
         c.workload.scale > headline->workload.scale)) {
      headline = &c;
    }
  }
  if (headline != nullptr) {
    double speedup = headline->indexed.seconds > 0
                         ? headline->legacy.seconds / headline->indexed.seconds
                         : 0.0;
    std::printf("\nclosure scale=%d: legacy %.2fms -> indexed %.2fms "
                "(%.1fx), parallel8 %.2fms\n",
                headline->workload.scale, headline->legacy.seconds * 1e3,
                headline->indexed.seconds * 1e3, speedup,
                headline->parallel.seconds * 1e3);
    double required = smoke ? 2.0 : 10.0;
    failed |= !check(speedup >= required,
                     "indexed engine lost its speedup over legacy on the "
                     "largest closure workload",
                     *headline);
  } else {
    std::fprintf(stderr, "no legacy-measured closure case — gate skipped\n");
    failed = true;
  }

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"datalog_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"parallel_threads\": %d,\n", kParallelThreads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"scale\": %d, "
                 "\"fact_lines\": %zu, \"derived\": %zu,\n",
                 c.workload.name.c_str(), c.workload.scale, c.fact_lines,
                 c.indexed.derived);
    if (c.legacy.measured) {
      std::fprintf(f, "      \"legacy\": {\"seconds\": %.6f},\n",
                   c.legacy.seconds);
    }
    std::fprintf(f, "      \"scan\": {\"seconds\": %.6f},\n",
                 c.scan.seconds);
    std::fprintf(f, "      \"indexed\": {\"seconds\": %.6f},\n",
                 c.indexed.seconds);
    std::fprintf(
        f,
        "      \"parallel_%dt\": {\"seconds\": %.6f, \"identical\": %s},\n",
        kParallelThreads, c.parallel.seconds,
        same_results(c.indexed, c.parallel) ? "true" : "false");
    std::fprintf(
        f,
        "      \"incremental\": {\"seconds\": %.6f, \"identical\": %s},\n"
        "      \"scratch_batched\": {\"seconds\": %.6f, "
        "\"fact_batches\": %d},\n",
        c.incremental.seconds,
        same_results(c.incremental, c.scratch_batched) ? "true" : "false",
        c.scratch_batched.seconds, kFactBatches);
    std::fprintf(
        f,
        "      \"speedup_indexed_vs_legacy\": %.3f, "
        "\"speedup_indexed_vs_scan\": %.3f, "
        "\"speedup_incremental_vs_scratch\": %.3f}%s\n",
        c.legacy.measured && c.indexed.seconds > 0
            ? c.legacy.seconds / c.indexed.seconds
            : 0.0,
        c.indexed.seconds > 0 ? c.scan.seconds / c.indexed.seconds : 0.0,
        c.incremental.seconds > 0
            ? c.scratch_batched.seconds / c.incremental.seconds
            : 0.0,
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());
  if (failed) {
    std::fprintf(stderr, "\nFAILED: identity or speedup gates tripped\n");
    return 1;
  }
  return 0;
}
