// Reproduces paper Figure 5: per-stage ProvMark processing time for five
// representative syscalls with SPADE + Graphviz.
#include "timing_common.h"

int main(int argc, char** argv) {
  return provmark_bench::run_timing_figure(
      "Figure 5: timing results, SPADE+Graphviz", "spade",
      provmark_bench::figure5_programs(),
      provmark_bench::parse_calibrated_flag(argc, argv));
}
