// Serial-vs-parallel pipeline benchmark: the perf trajectory of the
// src/runtime thread-pool work.
//
// Workload: the CamFlow 16-trial configuration (the trial-heaviest
// system, §3.2 / appendix A.6.3) over the five representative Figure 5
// syscall benchmarks plus two scale programs. Each (benchmark) pipeline
// is swept over the pool while its own recording/transformation trials
// fan out on the same pool — the two layers the runtime parallelizes.
//
// Recording latency: the real recorders spend most of each trial
// waiting (daemon start/stop, audit flush, Neo4j commit) — recording
// dominates the paper's Figures 5-7 — while this repo's simulated
// recorders run instantaneously. The bench restores that cost profile
// with PipelineOptions::simulated_recording_latency, so the measured
// speedup reflects the production-shaped workload (overlapped recorder
// waits) rather than raw CPU scaling, and is reproducible on small CI
// machines. The JSON records the latency plus the host's hardware
// concurrency so the numbers read honestly.
//
// Every thread count is cross-checked for bit-identical benchmark
// results against the 1-thread run (graphs, statuses, trial counters —
// timings excluded); any divergence fails the bench. Writes
// BENCH_pipeline_parallel.json.
//
// Usage: bench_perf_pipeline_parallel [--smoke] [output.json]
//   --smoke  fewer benchmarks, lower latency, threads {1,4} (CI-friendly)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "datalog/fact_io.h"
#include "runtime/thread_pool.h"
#include "util/strings.h"

using namespace provmark;

namespace {

/// Everything result-identity covers: structure and counters, no
/// timings, no thread counts.
std::string fingerprint(const core::BenchmarkResult& r) {
  std::string out;
  out += r.system + " " + r.benchmark + " ";
  out += core::status_name(r.status);
  out += " reason=" + r.failure_reason;
  out += util::format(
      " trials=%d discarded=%d unparseable=%d transient=%d cache=%llu/%llu\n",
      r.trials_run, r.trials_discarded, r.trials_unparseable,
      r.transient_properties,
      static_cast<unsigned long long>(r.similarity_cache_hits),
      static_cast<unsigned long long>(r.similarity_cache_lookups));
  out += datalog::to_datalog(r.result, "result");
  out += datalog::to_datalog(r.generalized_background, "bg");
  out += datalog::to_datalog(r.generalized_foreground, "fg");
  return out;
}

struct Run {
  int threads = 1;
  double seconds = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_pipeline_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const double latency = smoke ? 0.005 : 0.025;  // seconds per trial
  const int trials = 16;  // the CamFlow default (appendix A.6.3 headroom)
  std::vector<bench_suite::BenchmarkProgram> programs;
  for (const char* name : {"open", "execve", "fork", "setuid", "rename"}) {
    programs.push_back(bench_suite::benchmark_by_name(name));
    if (smoke && programs.size() == 2) break;
  }
  if (!smoke) {
    programs.push_back(bench_suite::scale_benchmark(2));
    programs.push_back(bench_suite::scale_benchmark(4));
  }
  std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  auto run_workload = [&](int threads, double* seconds) {
    runtime::ThreadPool pool(threads);
    core::PipelineOptions options;
    options.system = "camflow";
    options.trials = trials;
    options.seed = 42;
    options.pool = &pool;
    options.simulated_recording_latency = latency;
    auto start = std::chrono::steady_clock::now();
    // (benchmark, system) sweep across the pool; each pipeline's trial
    // fan-out shares the same workers (nested parallel_for runs inline).
    std::vector<std::string> prints = pool.parallel_map<std::string>(
        programs,
        [&](const bench_suite::BenchmarkProgram& program, std::size_t) {
          return fingerprint(core::run_benchmark(program, options));
        });
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    std::string all;
    for (const std::string& p : prints) all += p;
    return all;
  };

  std::printf("pipeline_parallel: camflow, %zu benchmarks, %d trials, "
              "%.0fms simulated recording latency/trial "
              "(host hardware threads: %u)\n\n",
              programs.size(), trials, latency * 1e3,
              std::thread::hardware_concurrency());

  std::vector<Run> runs;
  std::string baseline;
  bool all_identical = true;
  for (int threads : thread_counts) {
    Run run;
    run.threads = threads;
    std::string fp = run_workload(threads, &run.seconds);
    if (threads == thread_counts.front()) {
      baseline = fp;
    } else {
      run.identical = fp == baseline;
      all_identical = all_identical && run.identical;
    }
    std::printf("  threads=%d  wall=%.3fs  speedup=%.2fx  %s\n",
                threads, run.seconds,
                runs.empty() ? 1.0 : runs.front().seconds / run.seconds,
                run.identical ? "results identical to serial"
                              : "RESULT MISMATCH");
    runs.push_back(run);
  }

  double best_speedup = 0;
  int best_threads = 1;
  for (const Run& run : runs) {
    double speedup = runs.front().seconds / run.seconds;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_threads = run.threads;
    }
  }
  std::printf("\nbest: %.2fx at %d threads; results %s\n", best_speedup,
              best_threads,
              all_identical ? "bit-identical across all thread counts"
                            : "DIVERGED");

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"pipeline_parallel\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"system\": \"camflow\",\n  \"trials\": %d,\n", trials);
  std::fprintf(f, "  \"benchmarks\": %zu,\n", programs.size());
  std::fprintf(f, "  \"simulated_recording_latency_ms\": %.1f,\n",
               latency * 1e3);
  // Same key as BENCH_matcher_perf.json: parallel numbers from a
  // single-core container are self-describing.
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup\": %.3f, \"identical_to_serial\": %s}%s\n",
                 run.threads, run.seconds,
                 runs.front().seconds / run.seconds,
                 run.identical ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"best\": {\"threads\": %d, \"speedup\": %.3f},\n"
               "  \"identical\": %s\n}\n",
               best_threads, best_speedup, all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());
  return all_identical ? 0 : 1;
}
