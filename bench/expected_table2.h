// Paper Table 2: validation summary — expected status per (syscall,
// system), with the authors' diagnostic notes.
//
// The ok/empty statuses are *reproduced* by the pipeline; the notes (NR =
// not recorded by default config, SC = only state changes monitored, LP =
// ProvMark limitation, DV = disconnected vfork child) are the paper
// authors' interpretation of each cell, carried along for the report.
#pragma once

#include <map>
#include <string>

namespace provmark_bench {

struct ExpectedCell {
  const char* status;  // "ok" | "empty"
  const char* note;    // "", "NR", "SC", "LP", "DV"
};

struct ExpectedRow {
  int group;
  const char* syscall;
  ExpectedCell spade;
  ExpectedCell opus;
  ExpectedCell camflow;
};

inline const std::map<std::string, ExpectedRow>& expected_table2() {
  static const std::map<std::string, ExpectedRow> kTable = [] {
    std::map<std::string, ExpectedRow> t;
    auto add = [&t](ExpectedRow row) { t[row.syscall] = row; };
    add({1, "close", {"ok", ""}, {"ok", ""}, {"empty", "LP"}});
    add({1, "creat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "dup", {"empty", "SC"}, {"ok", ""}, {"empty", "NR"}});
    add({1, "dup2", {"empty", "SC"}, {"ok", ""}, {"empty", "NR"}});
    add({1, "dup3", {"empty", "SC"}, {"ok", ""}, {"empty", "NR"}});
    add({1, "link", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "linkat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "symlink", {"ok", ""}, {"ok", ""}, {"empty", "NR"}});
    add({1, "symlinkat", {"ok", ""}, {"ok", ""}, {"empty", "NR"}});
    add({1, "mknod", {"empty", "NR"}, {"ok", ""}, {"empty", "NR"}});
    add({1, "mknodat", {"empty", "NR"}, {"empty", "NR"}, {"empty", "NR"}});
    add({1, "open", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "openat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "read", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({1, "pread", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({1, "rename", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "renameat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "truncate", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "ftruncate", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "unlink", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "unlinkat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({1, "write", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({1, "pwrite", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({2, "clone", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({2, "execve", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({2, "exit", {"empty", "LP"}, {"empty", "LP"}, {"empty", "LP"}});
    add({2, "fork", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({2, "kill", {"empty", "LP"}, {"empty", "LP"}, {"empty", "LP"}});
    add({2, "vfork", {"ok", "DV"}, {"ok", ""}, {"ok", ""}});
    add({3, "chmod", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "fchmod", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({3, "fchmodat", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "chown", {"empty", "NR"}, {"ok", ""}, {"ok", ""}});
    add({3, "fchown", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({3, "fchownat", {"empty", "NR"}, {"ok", ""}, {"ok", ""}});
    add({3, "setgid", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "setregid", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "setresgid", {"empty", "SC"}, {"empty", "NR"}, {"ok", ""}});
    add({3, "setuid", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "setreuid", {"ok", ""}, {"ok", ""}, {"ok", ""}});
    add({3, "setresuid", {"ok", "SC"}, {"empty", "NR"}, {"ok", ""}});
    add({4, "pipe", {"empty", "NR"}, {"ok", ""}, {"empty", "NR"}});
    add({4, "pipe2", {"empty", "NR"}, {"ok", ""}, {"empty", "NR"}});
    add({4, "tee", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    // Extension rows beyond the paper's matrix (verified empirically
    // against the simulated kernel, like the rest of the table): the
    // socket family is outside both SPADE's default audit rules and
    // OPUS's wrapped-function list, but every call maps to an LSM
    // socket_* hook; mmap is audited and hooked but not wrapped; munmap
    // is invisible to all three layers past libc; a CLONE_THREAD clone
    // is still a clone record / task_alloc hook.
    add({2, "thread", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({5, "socket", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "bind", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "connect", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "listen", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "accept", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "sendto", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({5, "recvfrom", {"empty", "NR"}, {"empty", "NR"}, {"ok", ""}});
    add({6, "mmap", {"ok", ""}, {"empty", "NR"}, {"ok", ""}});
    add({6, "munmap", {"empty", "NR"}, {"empty", "NR"}, {"empty", "NR"}});
    return t;
  }();
  return kTable;
}

}  // namespace provmark_bench
