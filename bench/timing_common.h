// Shared harness for the Figure 5-10 reproductions: run the pipeline for a
// set of benchmarks on one system and print per-stage timing rows plus
// ASCII bars shaped like the paper's charts.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "runtime/thread_pool.h"

namespace provmark_bench {

inline void print_bar(const char* label, double seconds, double max_seconds) {
  int width = max_seconds > 0
                  ? static_cast<int>(50.0 * seconds / max_seconds)
                  : 0;
  std::printf("  %-16s %8.4fs |", label, seconds);
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

struct TimingRow {
  std::string name;
  provmark::core::StageTimings timings;
  const char* status;
};

/// Run the pipeline for each program; print a table and stacked bars of
/// transformation / generalization / comparison (the Figure 5-10 series).
///
/// `calibrated` switches on the per-system simulated recording latency
/// (systems::calibrated_recording_latency) so the *recording* column —
/// instantaneous under the simulated recorders, dominant in the paper —
/// lands in the Figures 5-7 absolute-time profile. The figure mains
/// enable it with --calibrated; the default stays instantaneous so the
/// figures remain quick to reproduce.
inline int run_timing_figure(
    const char* figure_title, const char* system,
    const std::vector<provmark::bench_suite::BenchmarkProgram>& programs,
    bool calibrated = false) {
  using namespace provmark;
  // The benchmarks of one figure are independent pipelines: sweep them
  // across the runtime pool (results land in program-order slots, so
  // the printed figure is identical at any thread count — only the
  // per-stage timings reflect the shared machine). For contention-free
  // per-stage timings, pin the run serial via PROVMARK_THREADS=1.
  runtime::ThreadPool& pool = runtime::default_pool();
  std::printf("%s (system: %s)\n", figure_title, system);
  std::printf("[swept over %d threads; per-stage seconds reflect "
              "concurrent execution — set PROVMARK_THREADS=1 for "
              "unloaded timings]\n\n",
              pool.thread_count());
  std::vector<TimingRow> rows = pool.parallel_map<TimingRow>(
      programs,
      [&](const bench_suite::BenchmarkProgram& program, std::size_t) {
        core::PipelineOptions options;
        options.system = system;
        options.seed = 11;
        options.pool = &pool;
        // -1 resolves to the per-system calibrated latency table.
        options.simulated_recording_latency = calibrated ? -1 : 0;
        core::BenchmarkResult result = core::run_benchmark(program, options);
        return TimingRow{program.name, result.timings,
                         core::status_name(result.status)};
      });
  double max_total = 0;
  for (const TimingRow& row : rows) {
    if (row.timings.processing_total() > max_total) {
      max_total = row.timings.processing_total();
    }
  }
  // "processing" = transform+generalize+compare, the paper's stacked-bar
  // quantity; recording is deliberately excluded from it (and dominates
  // under --calibrated), hence the explicit column name.
  std::printf("%-12s %13s %14s %14s %14s %14s %10s\n", "benchmark",
              "record(s)", "transform(s)", "generalize(s)", "compare(s)",
              "processing(s)", "status");
  for (const TimingRow& row : rows) {
    std::printf("%-12s %13.4f %14.4f %14.4f %14.4f %14.4f %10s\n",
                row.name.c_str(), row.timings.recording,
                row.timings.transformation, row.timings.generalization,
                row.timings.comparison, row.timings.processing_total(),
                row.status);
  }
  std::printf("\nstacked bars (transformation+generalization+comparison):\n");
  for (const TimingRow& row : rows) {
    print_bar(row.name.c_str(), row.timings.processing_total(), max_total);
  }
  std::printf("\n");
  return 0;
}

/// The five representative syscalls of Figures 5-7.
inline std::vector<provmark::bench_suite::BenchmarkProgram>
figure5_programs() {
  using provmark::bench_suite::benchmark_by_name;
  return {benchmark_by_name("open"), benchmark_by_name("execve"),
          benchmark_by_name("fork"), benchmark_by_name("setuid"),
          benchmark_by_name("rename")};
}

/// The scale1/2/4/8 programs of Figures 8-10.
inline std::vector<provmark::bench_suite::BenchmarkProgram>
scale_programs() {
  using provmark::bench_suite::scale_benchmark;
  return {scale_benchmark(1), scale_benchmark(2), scale_benchmark(4),
          scale_benchmark(8)};
}

/// Shared argv handling for the timing-figure mains: `--calibrated`
/// turns on the per-system recording-latency table (quantitative
/// Figures 5-7 reproduction, minutes of simulated daemon waits); the
/// default stays instantaneous (structural reproduction, seconds).
inline bool parse_calibrated_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--calibrated") == 0) return true;
  }
  return false;
}

}  // namespace provmark_bench
