// Reproduces paper Figure 10: scalability with target size, CamFlow. The
// time roughly doubles with each doubling of the target action.
#include "timing_common.h"

int main() {
  return provmark_bench::run_timing_figure(
      "Figure 10: scalability results, CamFlow+ProvJson", "camflow",
      provmark_bench::scale_programs());
}
