// Cluster sharding gates for the streaming provenance service
// (src/serve/cluster.* — see docs/serve.md, "Cluster sharding").
//
// Every scenario drives a REAL router: a forked `run_cluster` process
// that itself forks N `run_daemon` members, fed through the real
// `run_feed` client with `--feed-retries` semantics — the same binary
// paths an operator runs. Three scenarios, each with hard
// self-asserting gates (exit 1 on any failure) plus recorded
// wall-clock metrics:
//
//   routing-fairness   a generator-seeded multi-session stream through
//                      a healthy 3-member cluster. GATES that every
//                      member received at least its hash-share of
//                      requests (member<k>_routed vs a locally
//                      recomputed member_for distribution) and that
//                      every session digest through the router is
//                      bit-identical to one unsharded reference
//                      service fed the same per-session streams.
//   member-kill        SIGKILL each member in turn mid-stream while
//                      the feed rides the restart windows on client
//                      retries. GATES zero acked loss (every event
//                      acked, every fed fact present in the final
//                      dump), busy-window accounting
//                      (busy_member_down > 0 — the router answered
//                      busy, never dropped), full recovery
//                      (members_up back to 3, member_restarts >= 3)
//                      and digest identity vs the unsharded reference
//                      one more time — after every member died once.
//   chaos              the three cluster fault rules armed together:
//                      cluster-member-crash (a member _exit(70)s after
//                      its Nth admitted event), member-hang (a member
//                      stops heartbeating and must be killed by the
//                      router's deadline), route-drop (the router
//                      severs one member link mid-request). Each is
//                      VERIFIED to have fired (log lines, stats
//                      counters) and survived: the cluster converges
//                      back to members_up=3 and digests match the
//                      reference after all injected faults.
//
// The parent is threadless at every fork (reference services run
// workers=0 and die in scope, same discipline as the replication
// bench).
//
// Usage: bench_perf_serve_cluster [--smoke] [output.json]
//   --smoke  smaller feed volume (CI-friendly); identical gating
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "serve/cluster.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/fault.h"

using namespace provmark;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kMembers = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

serve::ServiceOptions reference_options(const fs::path& root) {
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 0;  // parent stays threadless across forks
  options.checkpoint_every = 0;
  options.pipeline.trials = 2;
  return options;
}

struct ClusterSpec {
  fs::path root;
  std::string socket_path;
  std::string fault_spec;
  fs::path log;  ///< router + member stdout+stderr (members inherit)
};

pid_t spawn_cluster(const ClusterSpec& spec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (!spec.log.empty()) {
    const int fd =
        ::open(spec.log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
  }
  serve::ClusterOptions options;
  options.socket_path = spec.socket_path;
  options.root = spec.root;
  options.members = kMembers;
  options.member_window = 32;
  options.heartbeat_ms = 50;       // deadline defaults to 8x = 400ms
  options.backoff_base_ms = 50;    // fast restarts keep the bench quick
  options.backoff_cap_ms = 500;
  options.service.workers = 1;
  options.service.checkpoint_every = 0;  // journals stay fully replayable
  options.service.pipeline.trials = 2;
  options.fault_spec = spec.fault_spec;
  if (!spec.fault_spec.empty()) {
    // Router-side arming, exactly what the CLI does: route-drop rules
    // arm here; member rules re-arm inside each member child with its
    // own (member, incarnation) coordinates.
    util::fault::arm(util::fault::parse_fault_spec(spec.fault_spec), -1, -1);
  }
  ::_exit(serve::run_cluster(options));
}

serve::FeedOptions retry_options() {
  serve::FeedOptions options;
  options.retries = 60;  // rides out any restart window in this bench
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 100;
  return options;
}

/// Feed one request line with restart-window retries; returns the raw
/// final response line ("" when the budget ran out).
std::string feed_one_retry(const std::string& socket_path,
                           const std::string& request) {
  std::istringstream in(request + "\n");
  std::ostringstream out;
  if (serve::run_feed(socket_path, in, out, retry_options()) == 1) return "";
  std::string line = out.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

bool wait_until(const std::function<bool()>& predicate, double budget_s) {
  const auto start = Clock::now();
  while (seconds_since(start) < budget_s) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// The full stats body behind `socket_path` (router or member), parsed
/// into key -> value.
std::map<std::string, std::string> stats_of(const std::string& socket_path) {
  std::map<std::string, std::string> out;
  const std::string line = feed_one_retry(socket_path, "stats");
  if (line.empty()) return out;
  try {
    const serve::Response response = serve::parse_response(line);
    if (response.status != serve::Status::Result) return out;
    std::istringstream body(response.body);
    std::string kv;
    while (std::getline(body, kv)) {
      const std::size_t eq = kv.find('=');
      if (eq != std::string::npos) out[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  } catch (const std::exception&) {
  }
  return out;
}

std::int64_t stats_int(const std::map<std::string, std::string>& stats,
                       const std::string& key) {
  const auto it = stats.find(key);
  if (it == stats.end()) return -1;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    return -1;
  }
}

bool cluster_ready(const std::string& socket_path) {
  return stats_int(stats_of(socket_path), "members_up") == kMembers;
}

/// Drain barrier before any digest/dump identity gate: a query waits
/// only for the apply lock, not for the session queues, so right after
/// a feed the tail of a stream can still be pending. Poll each
/// member's OWN socket (the router intercepts `stats`) until it
/// reports pending=0.
bool members_drained(const fs::path& cluster_root) {
  for (int m = 0; m < kMembers; ++m) {
    const std::map<std::string, std::string> stats =
        stats_of(serve::member_socket_path(cluster_root, m));
    if (stats_int(stats, "pending") != 0) return false;
  }
  return true;
}

bool wait_drained(const fs::path& cluster_root) {
  return wait_until([&] { return members_drained(cluster_root); }, 30);
}

void kill_process(pid_t pid, int sig) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

std::string read_log(const fs::path& log) {
  std::ifstream in(log);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Member pids as the router logged them: the LAST "spawned (pid N)"
/// line per member is the live incarnation.
std::map<int, pid_t> member_pids(const fs::path& log) {
  std::map<int, pid_t> pids;
  std::istringstream in(read_log(log));
  std::string line;
  while (std::getline(in, line)) {
    int member = -1;
    int incarnation = -1;
    int pid = -1;
    if (std::sscanf(line.c_str(),
                    "cluster: member %d incarnation %d spawned (pid %d)",
                    &member, &incarnation, &pid) == 3) {
      pids[member] = static_cast<pid_t>(pid);
    }
  }
  return pids;
}

serve::Request event_request(const std::string& session,
                             serve::EventKind kind,
                             const std::string& payload) {
  serve::Request request;
  request.is_event = true;
  request.event = kind;
  request.session = session;
  request.priority = serve::Priority::Normal;
  request.payload = payload;
  return request;
}

const char* kRecorders[] = {"spade",         "opus",  "camflow",
                            "spade-camflow", "audit", "ebpf"};

using Stream = std::vector<std::pair<serve::EventKind, std::string>>;

Stream make_stream(std::uint64_t seed) {
  bench_suite::GeneratorOptions gen;
  gen.seed = seed;
  gen.scale = 3;
  gen.depth = 1;
  gen.fan_out = 1;
  const std::string program =
      bench_suite::format_program(bench_suite::generate_program(gen));
  const std::string s = std::to_string(seed);
  return {
      {serve::EventKind::Fact, "edge(a" + s + ",b" + s + ")."},
      {serve::EventKind::Fact, "edge(b" + s + ",c" + s + ")."},
      {serve::EventKind::Rule,
       "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z)."},
      {serve::EventKind::Run,
       std::string(kRecorders[seed % 6]) + "\n" + program},
      {serve::EventKind::Fact, "edge(c" + s + ",a" + s + ")."},
  };
}

/// Session ids such that every member owns at least one session —
/// deterministic (member_for is a fixed hash), checked at build time
/// of the session list.
std::vector<std::string> make_sessions(int minimum) {
  std::vector<std::string> sessions;
  std::vector<int> owned(kMembers, 0);
  for (int i = 0; static_cast<int>(sessions.size()) < minimum ||
                  *std::min_element(owned.begin(), owned.end()) == 0;
       ++i) {
    const std::string session = "session-" + std::to_string(i);
    ++owned[serve::member_for(session, kMembers)];
    sessions.push_back(session);
  }
  return sessions;
}

/// Feed every session's stream through the router (session-major, so
/// per-session order is preserved); returns acked event count, -1 on
/// a spent retry budget.
int feed_streams(const std::string& socket_path,
                 const std::map<std::string, Stream>& streams) {
  std::ostringstream requests;
  int total = 0;
  for (const auto& [session, stream] : streams) {
    for (const auto& [kind, payload] : stream) {
      requests << serve::format_request(event_request(session, kind, payload))
               << "\n";
      ++total;
    }
  }
  std::istringstream in(requests.str());
  std::ostringstream responses;
  const int rc = serve::run_feed(socket_path, in, responses, retry_options());
  return rc == 0 ? total : -1;
}

/// Digest-identity gate: every session digest through the router must
/// be bit-identical to ONE unsharded reference service fed the same
/// per-session streams. (Datalog relations are sets, so the client's
/// at-least-once re-sends during restart windows are idempotent.)
bool digests_match_reference(const std::map<std::string, Stream>& streams,
                             const std::string& socket_path,
                             const fs::path& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  serve::Service reference(reference_options(scratch));
  bool ok = true;
  for (const auto& [session, stream] : streams) {
    for (const auto& [kind, payload] : stream) {
      if (reference.submit(event_request(session, kind, payload)).status !=
          serve::Status::Ok) {
        ok = false;
      }
    }
  }
  reference.pump();
  for (const auto& [session, stream] : streams) {
    serve::Request digest;
    digest.is_event = false;
    digest.query = serve::QueryKind::Digest;
    digest.session = session;
    digest.deadline_ms = 5000;
    const serve::Response expected = reference.submit(digest);
    const std::string got =
        feed_one_retry(socket_path, "digest " + session + " 5000");
    if (expected.status != serve::Status::Result ||
        got != "result " + expected.body) {
      std::fprintf(stderr, "  digest mismatch for %s: got '%s'\n",
                   session.c_str(), got.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Recovery-identity gate for ack-barrier crash faults: the stream-fed
/// reference cannot apply here, because the member crashes BETWEEN the
/// journal fsync and the ack — the client's re-send is journaled under
/// a fresh seq, and a duplicated Run event lands its result graph
/// under a second r<seq> id. What recovery must preserve is the
/// JOURNAL: replay every member's journals (each session lives in
/// exactly one member root) into one unsharded reference service and
/// require the routed digests to be bit-identical to it.
bool digests_match_journal_reference(const fs::path& cluster_root,
                                     const std::string& socket_path,
                                     const fs::path& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  serve::Service reference(reference_options(scratch));
  bool ok = true;
  std::vector<std::string> sessions;
  for (int m = 0; m < kMembers; ++m) {
    const fs::path root = serve::member_root(cluster_root, m);
    for (const std::string& session : serve::list_sessions(root)) {
      sessions.push_back(session);
      serve::Journal journal(root, session, 0);
      for (const serve::JournalRecord& record : journal.recover().records) {
        serve::Request request;
        request.is_event = true;
        request.event = record.kind;
        request.session = session;
        request.priority = record.priority;
        request.payload = record.payload;
        if (reference.submit(request).status != serve::Status::Ok) ok = false;
      }
    }
  }
  reference.pump();
  for (const std::string& session : sessions) {
    serve::Request digest;
    digest.is_event = false;
    digest.query = serve::QueryKind::Digest;
    digest.session = session;
    digest.deadline_ms = 5000;
    const serve::Response expected = reference.submit(digest);
    const std::string got =
        feed_one_retry(socket_path, "digest " + session + " 5000");
    if (expected.status != serve::Status::Result ||
        got != "result " + expected.body) {
      std::fprintf(stderr, "  journal digest mismatch for %s: got '%s'\n",
                   session.c_str(), got.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Zero-acked-loss spot check: every fed fact appears in the session's
/// final dump through the router.
bool facts_survived(const std::map<std::string, Stream>& streams,
                    const std::string& socket_path) {
  bool ok = true;
  for (const auto& [session, stream] : streams) {
    const std::string line =
        feed_one_retry(socket_path, "dump " + session + " 5000");
    if (line.rfind("result ", 0) != 0) {
      std::fprintf(stderr, "  dump failed for %s: '%s'\n", session.c_str(),
                   line.c_str());
      ok = false;
      continue;
    }
    const std::string dump = serve::unescape_field(line.substr(7));
    for (const auto& [kind, payload] : stream) {
      if (kind != serve::EventKind::Fact) continue;
      // "edge(a1,b1)." feeds become "edge(a1,b1)" dump lines.
      std::string fact = payload;
      if (!fact.empty() && fact.back() == '.') fact.pop_back();
      if (dump.find(fact) == std::string::npos) {
        std::fprintf(stderr, "  acked fact lost for %s: %s\n",
                     session.c_str(), payload.c_str());
        ok = false;
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// scenario: routing-fairness

struct FairnessOutcome {
  int sessions = 0;
  int events_fed = 0;
  double feed_seconds = 0;
  double events_per_sec = 0;
  bool all_acked = false;
  bool fair = false;
  bool digests_identical = false;
};

FairnessOutcome run_fairness(const fs::path& dir, int nsessions) {
  fs::create_directories(dir);
  FairnessOutcome outcome;
  ClusterSpec spec{dir / "cluster", (dir / "front.sock").string(), "",
                   dir / "cluster.log"};
  const pid_t router = spawn_cluster(spec);
  if (!wait_until([&] { return cluster_ready(spec.socket_path); }, 30)) {
    kill_process(router, SIGKILL);
    return outcome;
  }

  const std::vector<std::string> sessions = make_sessions(nsessions);
  outcome.sessions = static_cast<int>(sessions.size());
  std::map<std::string, Stream> streams;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    streams[sessions[i]] = make_stream(i + 1);
  }

  const auto feed_start = Clock::now();
  const int fed = feed_streams(spec.socket_path, streams);
  outcome.feed_seconds = seconds_since(feed_start);
  outcome.all_acked = fed > 0;
  outcome.events_fed = fed > 0 ? fed : 0;
  outcome.events_per_sec =
      outcome.feed_seconds > 0 ? outcome.events_fed / outcome.feed_seconds : 0;

  // Fairness: each member must have been forwarded at least its
  // hash-share of events (5 per owned session; retries can only add).
  std::vector<int> owned(kMembers, 0);
  for (const std::string& session : sessions) {
    ++owned[serve::member_for(session, kMembers)];
  }
  const std::map<std::string, std::string> stats =
      stats_of(spec.socket_path);
  outcome.fair = true;
  for (int m = 0; m < kMembers; ++m) {
    const std::int64_t routed =
        stats_int(stats, "member" + std::to_string(m) + "_routed");
    if (routed < owned[static_cast<std::size_t>(m)] * 5) {
      std::fprintf(stderr,
                   "  member %d routed %lld, owns %d sessions (want >= %d)\n",
                   m, static_cast<long long>(routed),
                   owned[static_cast<std::size_t>(m)],
                   owned[static_cast<std::size_t>(m)] * 5);
      outcome.fair = false;
    }
  }

  outcome.digests_identical =
      wait_drained(spec.root) &&
      digests_match_reference(streams, spec.socket_path, dir / "ref");
  kill_process(router, SIGTERM);
  return outcome;
}

// ---------------------------------------------------------------------------
// scenario: member-kill

struct KillOutcome {
  int sessions = 0;
  int kills = 0;
  bool all_acked = true;
  bool busy_accounted = false;
  bool recovered = false;
  std::int64_t member_restarts = 0;
  std::int64_t busy_member_down = 0;
  double worst_recovery_seconds = 0;
  bool facts_intact = false;
  bool digests_identical = false;
};

KillOutcome run_member_kill(const fs::path& dir, int nsessions) {
  fs::create_directories(dir);
  KillOutcome outcome;
  ClusterSpec spec{dir / "cluster", (dir / "front.sock").string(), "",
                   dir / "cluster.log"};
  const pid_t router = spawn_cluster(spec);
  if (!wait_until([&] { return cluster_ready(spec.socket_path); }, 30)) {
    kill_process(router, SIGKILL);
    outcome.all_acked = false;
    return outcome;
  }

  const std::vector<std::string> sessions = make_sessions(nsessions);
  outcome.sessions = static_cast<int>(sessions.size());
  std::map<std::string, Stream> streams;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    streams[sessions[i]] = make_stream(i + 1);
  }

  // Partition the sessions into one chunk per member; before feeding
  // chunk K, SIGKILL member K. The chunk is fed INTO the restart
  // window: requests for the dead member's sessions answer busy until
  // its journal replay finishes, and the client's retries ride it out.
  std::vector<std::vector<std::string>> chunks(kMembers);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    chunks[i % kMembers].push_back(sessions[i]);
  }
  for (int victim = 0; victim < kMembers; ++victim) {
    const std::map<int, pid_t> pids = member_pids(spec.log);
    const auto pid = pids.find(victim);
    if (pid == pids.end()) {
      outcome.all_acked = false;
      break;
    }
    ::kill(pid->second, SIGKILL);  // the router reaps; never wait here
    ++outcome.kills;

    std::map<std::string, Stream> chunk_streams;
    for (const std::string& session : chunks[static_cast<std::size_t>(
             victim)]) {
      chunk_streams[session] = streams[session];
    }
    const auto recovery_start = Clock::now();
    if (feed_streams(spec.socket_path, chunk_streams) < 0) {
      outcome.all_acked = false;
    }
    if (!wait_until([&] { return cluster_ready(spec.socket_path); }, 30)) {
      outcome.all_acked = false;
      break;
    }
    outcome.worst_recovery_seconds = std::max(
        outcome.worst_recovery_seconds, seconds_since(recovery_start));
  }

  const std::map<std::string, std::string> stats =
      stats_of(spec.socket_path);
  outcome.member_restarts = stats_int(stats, "member_restarts");
  outcome.busy_member_down = stats_int(stats, "busy_member_down");
  outcome.recovered = stats_int(stats, "members_up") == kMembers &&
                      outcome.member_restarts >= kMembers;
  // The restart windows were REFUSED with busy, not silently dropped —
  // the accounting must show it.
  outcome.busy_accounted = outcome.busy_member_down > 0;

  const bool drained = wait_drained(spec.root);
  outcome.facts_intact = drained && facts_survived(streams, spec.socket_path);
  outcome.digests_identical =
      drained && digests_match_reference(streams, spec.socket_path, dir / "ref");
  kill_process(router, SIGTERM);
  return outcome;
}

// ---------------------------------------------------------------------------
// scenario: chaos

struct ChaosOutcome {
  bool member_crash_fired = false;
  bool member_hang_fired = false;
  bool hung_kill_counted = false;
  bool route_drop_fired = false;
  bool all_acked = false;
  bool recovered = false;
  bool digests_identical = false;
};

ChaosOutcome run_chaos(const fs::path& dir, int nsessions) {
  fs::create_directories(dir);
  ChaosOutcome outcome;
  // Member 1 crashes hard after its 4th admitted event (incarnation 0
  // only — the restart runs fault-free). Member 2 keeps serving but
  // goes silent on the control channel after its 3rd event; the
  // router's heartbeat deadline must kill it. The router itself drops
  // one member link on the 12th forwarded request.
  ClusterSpec spec{dir / "cluster", (dir / "front.sock").string(),
                   "cluster-member-crash:member=1,after-events=4;"
                   "member-hang:member=2,after-events=3;"
                   "route-drop:after-requests=12",
                   dir / "cluster.log"};
  const pid_t router = spawn_cluster(spec);
  if (!wait_until([&] { return cluster_ready(spec.socket_path); }, 30)) {
    kill_process(router, SIGKILL);
    return outcome;
  }

  const std::vector<std::string> sessions = make_sessions(nsessions);
  std::map<std::string, Stream> streams;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    streams[sessions[i]] = make_stream(i + 1);
  }

  outcome.all_acked = feed_streams(spec.socket_path, streams) > 0;
  // The hang fires DURING the feed but its kill lands only when the
  // heartbeat deadline expires, possibly after the last ack — wait for
  // the full sequence (crash restart + hung kill + both recoveries) to
  // play out before gating.
  if (!wait_until(
          [&] {
            const std::map<std::string, std::string> stats =
                stats_of(spec.socket_path);
            return stats_int(stats, "hung_kills") >= 1 &&
                   stats_int(stats, "member_restarts") >= 2 &&
                   stats_int(stats, "members_up") == kMembers;
          },
          30)) {
    std::fprintf(stderr, "  chaos cluster never converged\n");
    kill_process(router, SIGKILL);
    return outcome;
  }

  const std::string log = read_log(spec.log);
  outcome.member_crash_fired =
      log.find("fault-injection: cluster-member-crash") != std::string::npos;
  outcome.member_hang_fired =
      log.find("fault-injection: member-hang") != std::string::npos &&
      log.find("missed its heartbeat deadline") != std::string::npos;
  outcome.route_drop_fired =
      log.find("fault-injection: route-drop") != std::string::npos;

  const std::map<std::string, std::string> stats =
      stats_of(spec.socket_path);
  outcome.hung_kill_counted = stats_int(stats, "hung_kills") >= 1;
  outcome.route_drop_fired =
      outcome.route_drop_fired && stats_int(stats, "route_drops") >= 1;
  outcome.recovered = stats_int(stats, "members_up") == kMembers &&
                      stats_int(stats, "member_restarts") >= 2;

  outcome.digests_identical =
      wait_drained(spec.root) &&
      digests_match_journal_reference(spec.root, spec.socket_path,
                                      dir / "ref");
  kill_process(router, SIGTERM);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_serve_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const fs::path scratch =
      fs::temp_directory_path() /
      ("provmark_bench_serve_cluster_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  const int fairness_sessions = smoke ? 9 : 24;
  std::printf("scenario routing-fairness: %d+ generator sessions across "
              "%d members\n",
              fairness_sessions, kMembers);
  FairnessOutcome fairness =
      run_fairness(scratch / "fairness", fairness_sessions);
  std::printf("  %d sessions, %d events, %.0f events/s, fairness %s, "
              "digests %s\n",
              fairness.sessions, fairness.events_fed,
              fairness.events_per_sec, fairness.fair ? "ok" : "SKEWED",
              fairness.digests_identical ? "identical" : "MISMATCH");

  const int kill_sessions = smoke ? 9 : 18;
  std::printf("scenario member-kill: SIGKILL each of %d members "
              "mid-stream\n",
              kMembers);
  KillOutcome kill = run_member_kill(scratch / "kill", kill_sessions);
  std::printf("  %d kills, %lld restarts, busy_member_down=%lld, worst "
              "recovery %.3fs, facts %s, digests %s\n",
              kill.kills, static_cast<long long>(kill.member_restarts),
              static_cast<long long>(kill.busy_member_down),
              kill.worst_recovery_seconds,
              kill.facts_intact ? "intact" : "LOST",
              kill.digests_identical ? "identical" : "MISMATCH");

  std::printf("scenario chaos: member-crash + member-hang + route-drop\n");
  ChaosOutcome chaos = run_chaos(scratch / "chaos", smoke ? 9 : 12);
  std::printf(
      "  crash %s hang %s (hung_kills %s) route-drop %s recovery %s "
      "digests %s\n",
      chaos.member_crash_fired ? "fired" : "NOT-FIRED",
      chaos.member_hang_fired ? "fired" : "NOT-FIRED",
      chaos.hung_kill_counted ? "counted" : "NOT-COUNTED",
      chaos.route_drop_fired ? "fired" : "NOT-FIRED",
      chaos.recovered ? "converged" : "STUCK",
      chaos.digests_identical ? "identical" : "MISMATCH");

  const bool all_ok =
      fairness.all_acked && fairness.fair && fairness.digests_identical &&
      kill.all_acked && kill.kills == kMembers && kill.busy_accounted &&
      kill.recovered && kill.facts_intact && kill.digests_identical &&
      chaos.all_acked && chaos.member_crash_fired &&
      chaos.member_hang_fired && chaos.hung_kill_counted &&
      chaos.route_drop_fired && chaos.recovered && chaos.digests_identical;

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve-cluster\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"members\": %d,\n", kMembers);
  std::fprintf(f, "  \"fairness\": {\n");
  std::fprintf(f, "    \"sessions\": %d,\n", fairness.sessions);
  std::fprintf(f, "    \"events\": %d,\n", fairness.events_fed);
  std::fprintf(f, "    \"acked_events_per_sec\": %.1f,\n",
               fairness.events_per_sec);
  std::fprintf(f, "    \"all_acked\": %s,\n",
               fairness.all_acked ? "true" : "false");
  std::fprintf(f, "    \"fair\": %s,\n", fairness.fair ? "true" : "false");
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               fairness.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"member_kill\": {\n");
  std::fprintf(f, "    \"kills\": %d,\n", kill.kills);
  std::fprintf(f, "    \"member_restarts\": %lld,\n",
               static_cast<long long>(kill.member_restarts));
  std::fprintf(f, "    \"busy_member_down\": %lld,\n",
               static_cast<long long>(kill.busy_member_down));
  std::fprintf(f, "    \"worst_recovery_seconds\": %.6f,\n",
               kill.worst_recovery_seconds);
  std::fprintf(f, "    \"all_acked\": %s,\n",
               kill.all_acked ? "true" : "false");
  std::fprintf(f, "    \"busy_accounted\": %s,\n",
               kill.busy_accounted ? "true" : "false");
  std::fprintf(f, "    \"facts_intact\": %s,\n",
               kill.facts_intact ? "true" : "false");
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               kill.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"chaos\": {\n");
  std::fprintf(f, "    \"member_crash_fired\": %s,\n",
               chaos.member_crash_fired ? "true" : "false");
  std::fprintf(f, "    \"member_hang_fired\": %s,\n",
               chaos.member_hang_fired ? "true" : "false");
  std::fprintf(f, "    \"hung_kill_counted\": %s,\n",
               chaos.hung_kill_counted ? "true" : "false");
  std::fprintf(f, "    \"route_drop_fired\": %s,\n",
               chaos.route_drop_fired ? "true" : "false");
  std::fprintf(f, "    \"all_acked\": %s,\n",
               chaos.all_acked ? "true" : "false");
  std::fprintf(f, "    \"recovered\": %s,\n",
               chaos.recovered ? "true" : "false");
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               chaos.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"identical\": %s\n}\n", all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());

  fs::remove_all(scratch);
  return all_ok ? 0 : 1;
}
