// Adversarial-workload benchmark + identity gates: generator-scale
// programs driven through the full pipeline, the matcher, and the
// Datalog engine.
//
// Three phases, each with a self-asserting gate (exit 1 on violation):
//
//   1. generation — seeded program generation + kernel execution
//      throughput across scales; gate: byte-identical regeneration.
//   2. pipeline — generated workloads through the full pipeline on the
//      record-heavy recorders (audit: one vertex per record) serially
//      and on a 4-thread pool with 4 matcher workers; gate: bit-
//      identical results at every width.
//   3. datalog — recorded graphs as fact stores, recursive reachability
//      saturated serially and in parallel; gate: identical relations.
//
// Usage: bench_perf_adversarial [--smoke] [output.json]
//   --smoke  fewer seeds, smaller scales (CI-friendly)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_suite/executor.h"
#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "core/pipeline.h"
#include "core/transform.h"
#include "datalog/engine.h"
#include "runtime/thread_pool.h"
#include "systems/recorder.h"

using namespace provmark;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bench_suite::GeneratorOptions options_for(std::uint64_t seed, int scale) {
  bench_suite::GeneratorOptions options;
  options.seed = seed;
  options.scale = scale;
  return options;
}

/// Result identity, timings excluded (the parallel run's wall clock
/// legitimately differs).
bool results_identical(const core::BenchmarkResult& a,
                       const core::BenchmarkResult& b) {
  return a.status == b.status && a.failure_reason == b.failure_reason &&
         a.result == b.result &&
         a.generalized_foreground == b.generalized_foreground &&
         a.generalized_background == b.generalized_background &&
         a.dummy_nodes == b.dummy_nodes && a.trials_run == b.trials_run &&
         a.trials_discarded == b.trials_discarded &&
         a.trials_unparseable == b.trials_unparseable;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_adversarial.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }
  bool all_gates_ok = true;

  // -- phase 1: generation + execution throughput ---------------------------
  const std::vector<int> scales =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 32, 64};
  const int seeds_per_scale = smoke ? 10 : 50;
  struct ScaleRun {
    int scale = 0;
    int programs = 0;
    std::size_t ops = 0;
    std::size_t libc_events = 0;
    double seconds = 0;
    bool regeneration_identical = true;
  };
  std::vector<ScaleRun> generation;
  std::printf("phase 1: generation (%d seeds per scale)\n", seeds_per_scale);
  for (int scale : scales) {
    ScaleRun run;
    run.scale = scale;
    run.programs = seeds_per_scale;
    auto start = std::chrono::steady_clock::now();
    for (int seed = 1; seed <= seeds_per_scale; ++seed) {
      bench_suite::BenchmarkProgram program =
          bench_suite::generate_program(options_for(seed, scale));
      run.ops += program.ops.size();
      bench_suite::ExecutionResult exec =
          bench_suite::execute_program(program, true, seed);
      if (!exec.behaviour_ok) {
        std::fprintf(stderr, "  GATE: %s misbehaved: %s\n",
                     program.name.c_str(), exec.failure_reason.c_str());
        run.regeneration_identical = false;
      }
      run.libc_events += exec.trace.libc.size();
      // Regeneration gate: a second generation must be byte-identical.
      if (bench_suite::format_program(program) !=
          bench_suite::format_program(
              bench_suite::generate_program(options_for(seed, scale)))) {
        std::fprintf(stderr, "  GATE: gen%dx%d not reproducible\n", seed,
                     scale);
        run.regeneration_identical = false;
      }
    }
    run.seconds = seconds_since(start);
    all_gates_ok = all_gates_ok && run.regeneration_identical;
    std::printf("  scale=%-3d  %d programs, %zu ops, %zu libc events, "
                "%.3fs (%.0f programs/s)  %s\n",
                scale, run.programs, run.ops, run.libc_events, run.seconds,
                run.programs / run.seconds,
                run.regeneration_identical ? "reproducible" : "GATE FAILED");
    generation.push_back(run);
  }

  // -- phase 2: full pipeline, serial vs parallel ---------------------------
  struct PipelineRun {
    std::string system;
    double serial_seconds = 0;
    double parallel_seconds = 0;
    int programs = 0;
    bool identical = true;
  };
  const std::vector<std::string> systems = {"audit", "ebpf", "camflow"};
  const int pipeline_seeds = smoke ? 2 : 6;
  const int pipeline_scale = smoke ? 12 : 20;
  std::vector<PipelineRun> pipeline;
  std::printf("\nphase 2: pipeline identity (%d programs per system, "
              "scale %d)\n",
              pipeline_seeds, pipeline_scale);
  for (const std::string& system : systems) {
    PipelineRun run;
    run.system = system;
    run.programs = pipeline_seeds;
    for (int seed = 1; seed <= pipeline_seeds; ++seed) {
      bench_suite::BenchmarkProgram program =
          bench_suite::generate_program(options_for(seed, pipeline_scale));
      auto run_with = [&](int pool_threads, int matcher_threads) {
        runtime::ThreadPool pool(pool_threads);
        core::PipelineOptions options;
        options.system = system;
        options.seed = 42;
        options.pool = &pool;
        options.matcher.threads = matcher_threads;
        return core::run_benchmark(program, options);
      };
      auto start = std::chrono::steady_clock::now();
      core::BenchmarkResult serial = run_with(1, 1);
      run.serial_seconds += seconds_since(start);
      start = std::chrono::steady_clock::now();
      core::BenchmarkResult parallel = run_with(4, 4);
      run.parallel_seconds += seconds_since(start);
      if (!results_identical(serial, parallel)) {
        std::fprintf(stderr, "  GATE: %s on %s diverged across widths\n",
                     system.c_str(), program.name.c_str());
        run.identical = false;
      }
      if (serial.status == core::BenchmarkStatus::Failed) {
        std::fprintf(stderr, "  GATE: %s failed on %s: %s\n",
                     system.c_str(), program.name.c_str(),
                     serial.failure_reason.c_str());
        run.identical = false;
      }
    }
    all_gates_ok = all_gates_ok && run.identical;
    std::printf("  %-8s serial=%.3fs parallel(4)=%.3fs  %s\n",
                run.system.c_str(), run.serial_seconds, run.parallel_seconds,
                run.identical ? "bit-identical" : "GATE FAILED");
    pipeline.push_back(run);
  }

  // -- phase 3: Datalog saturation over recorded graphs ---------------------
  struct DatalogRun {
    std::size_t facts = 0;
    std::size_t derived = 0;
    double serial_seconds = 0;
    double parallel_seconds = 0;
    bool identical = true;
  } datalog_run;
  const int datalog_scale = smoke ? 24 : 64;
  std::printf("\nphase 3: datalog reachability (scale %d workload)\n",
              datalog_scale);
  {
    bench_suite::BenchmarkProgram program =
        bench_suite::generate_program(options_for(5, datalog_scale));
    std::unique_ptr<systems::Recorder> recorder =
        systems::make_recorder("ebpf");
    bench_suite::ExecutionResult exec = bench_suite::execute_program(
        program, true, 5, recorder->extra_audit_rules());
    std::string facts = core::transform_to_datalog(
        recorder->record(exec.trace, systems::TrialContext{5}), "g1");

    auto saturate = [&](int threads, double* elapsed) {
      runtime::ThreadPool pool(threads);
      datalog::Engine engine;
      datalog::Engine::EvalOptions eval;
      eval.threads = threads;
      eval.pool = &pool;
      engine.set_eval_options(eval);
      engine.load_program(facts);
      engine.load_program(
          "reach(X,Y) :- eg1(E,X,Y,L).\n"
          "reach(X,Z) :- reach(X,Y), eg1(E,Y,Z,L).\n");
      auto start = std::chrono::steady_clock::now();
      std::set<datalog::Tuple> derived = engine.relation("reach");
      *elapsed = seconds_since(start);
      datalog_run.facts = engine.fact_count();
      return derived;
    };
    std::set<datalog::Tuple> serial =
        saturate(1, &datalog_run.serial_seconds);
    std::set<datalog::Tuple> parallel =
        saturate(4, &datalog_run.parallel_seconds);
    datalog_run.derived = serial.size();
    datalog_run.identical = serial == parallel && !serial.empty();
    all_gates_ok = all_gates_ok && datalog_run.identical;
    std::printf("  %zu facts -> %zu reach tuples, serial=%.4fs "
                "parallel(4)=%.4fs  %s\n",
                datalog_run.facts, datalog_run.derived,
                datalog_run.serial_seconds, datalog_run.parallel_seconds,
                datalog_run.identical ? "identical" : "GATE FAILED");
  }

  // -- report ---------------------------------------------------------------
  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"adversarial\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"generation\": [\n");
  for (std::size_t i = 0; i < generation.size(); ++i) {
    const ScaleRun& run = generation[i];
    std::fprintf(f,
                 "    {\"scale\": %d, \"programs\": %d, \"ops\": %zu, "
                 "\"libc_events\": %zu, \"seconds\": %.6f, "
                 "\"reproducible\": %s}%s\n",
                 run.scale, run.programs, run.ops, run.libc_events,
                 run.seconds,
                 run.regeneration_identical ? "true" : "false",
                 i + 1 < generation.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pipeline\": [\n");
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    const PipelineRun& run = pipeline[i];
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"programs\": %d, "
                 "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                 "\"identical\": %s}%s\n",
                 run.system.c_str(), run.programs, run.serial_seconds,
                 run.parallel_seconds, run.identical ? "true" : "false",
                 i + 1 < pipeline.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"datalog\": ");
  std::fprintf(f,
               "{\"facts\": %zu, \"derived\": %zu, "
               "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
               "\"identical\": %s},\n",
               datalog_run.facts, datalog_run.derived,
               datalog_run.serial_seconds, datalog_run.parallel_seconds,
               datalog_run.identical ? "true" : "false");
  std::fprintf(f, "  \"gates_ok\": %s\n}\n",
               all_gates_ok ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", output.c_str());
  return all_gates_ok ? 0 : 1;
}
