// Sharded batch sweep benchmark + identity gate: the perf trajectory of
// the src/core/shard.{h,cpp} work.
//
// Workload: the CamFlow 16-trial configuration (the trial-heaviest
// system) over a slice of the Table 1 benchmarks, with simulated
// recording latency restoring the paper's recording-bound cost profile
// (the real sweep spends its wall clock waiting on recorder daemons —
// exactly the waits independent shard processes overlap).
//
// For each shard count N ∈ {1, 2, 4} the benchmark emulates the
// multi-process flow in-process: N concurrent shard workers (one outer
// pool slot each, a dedicated 1-thread pipeline pool inside, mirroring
// N single-threaded worker processes), per-shard artifact directories
// via write_shard_dir, then a merge via read_shard_results +
// write_batch_outputs. The process-level fork/exec path is exercised by
// the CI batch-shard-gate, which runs the real CLI.
//
// The benchmark *asserts* (exit 1) that every merged artifact —
// time.log, validation.txt, every .dot and .datalog store — is
// byte-identical to the single-process sweep at every shard count
// (deterministic timings mode, so time.log rows carry comparable
// bytes), and records per-shard-count wall clock plus the host's
// hardware concurrency. On a single-core container the speedup still
// shows up because shard workers overlap recording waits, exactly as
// distributed workers would.
//
// Usage: bench_perf_batch_shard [--smoke] [output.json]
//   --smoke  fewer benchmarks, lower latency (CI-friendly)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/shard.h"
#include "runtime/thread_pool.h"

using namespace provmark;

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "<missing " + path.string() + ">";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Compare every batch artifact of `dir` against the baseline `single`.
bool artifacts_identical(const fs::path& single, const fs::path& merged) {
  bool identical = true;
  for (const auto& entry : fs::directory_iterator(single)) {
    const std::string name = entry.path().filename().string();
    if (slurp(entry.path()) != slurp(merged / name)) {
      std::fprintf(stderr, "  MISMATCH: %s\n", name.c_str());
      identical = false;
    }
  }
  return identical;
}

struct Run {
  int shards = 1;
  double seconds = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_batch_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const double latency = smoke ? 0.004 : 0.02;  // seconds per trial
  const std::vector<std::string> systems = {"camflow"};
  std::vector<std::string> benchmarks = core::table_benchmark_names();
  benchmarks.resize(smoke ? 2 : 8);
  const std::vector<int> shard_counts = {1, 2, 4};
  const std::string result_type = "rg";

  const fs::path root =
      fs::temp_directory_path() /
      ("provmark_batch_shard_bench_" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  auto run_cells = [&](const std::vector<core::BatchCell>& cells,
                       runtime::ThreadPool* pool) {
    core::CellRunOptions options;
    options.seed = 42;
    options.pool = pool;
    options.simulated_recording_latency = latency;
    options.deterministic_timings = true;
    return core::run_batch_cells(cells, options);
  };

  std::printf("batch_shard: %zu benchmarks x camflow, %.0fms simulated "
              "recording latency/trial, serial workers "
              "(host hardware threads: %u)\n\n",
              benchmarks.size(), latency * 1e3,
              std::thread::hardware_concurrency());

  // The unsharded reference: one process, one worker thread — the
  // baseline every merged sweep must reproduce byte-for-byte.
  core::ShardPlan plan = core::plan_batch(systems, benchmarks, 1, 42,
                                          result_type, true);
  const fs::path single_dir = root / "single";
  double single_seconds = 0;
  {
    runtime::ThreadPool pool(1);
    auto start = std::chrono::steady_clock::now();
    std::vector<core::BenchmarkResult> results =
        run_cells(plan.cells, &pool);
    single_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    core::write_batch_outputs(single_dir.string(), results, result_type);
  }
  std::printf("  single-process  wall=%.3fs\n", single_seconds);

  std::vector<Run> runs;
  bool all_identical = true;
  for (int shards : shard_counts) {
    core::ShardPlan sharded = core::plan_batch(systems, benchmarks, shards,
                                               42, result_type, true);
    const fs::path sweep_dir = root / ("sweep-" + std::to_string(shards));
    std::vector<core::ShardSpec> specs;
    for (int k = 0; k < shards; ++k) specs.push_back(sharded.shard(k));

    Run run;
    run.shards = shards;
    auto start = std::chrono::steady_clock::now();
    {
      // N emulated worker processes: each claims one outer-pool slot
      // and pipelines its cells on a private 1-thread pool.
      runtime::ThreadPool worker_slots(shards);
      worker_slots.parallel_for(specs.size(), [&](std::size_t k) {
        runtime::ThreadPool worker_pool(1);
        core::write_shard_dir(sweep_dir.string(), specs[k],
                              run_cells(specs[k].cells, &worker_pool));
      });
    }
    std::string merged_type;
    std::vector<std::string> shard_dirs;
    for (int k = 0; k < shards; ++k) {
      shard_dirs.push_back(core::shard_dir_path(sweep_dir.string(), k));
    }
    std::vector<core::BenchmarkResult> merged =
        core::read_shard_results(shard_dirs, &merged_type);
    const fs::path merged_dir = root / ("merged-" + std::to_string(shards));
    core::write_batch_outputs(merged_dir.string(), merged, merged_type);
    run.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    run.identical = artifacts_identical(single_dir, merged_dir);
    all_identical = all_identical && run.identical;
    std::printf("  shards=%d  wall=%.3fs  speedup=%.2fx  %s\n", shards,
                run.seconds, single_seconds / run.seconds,
                run.identical ? "merged output identical to single-process"
                              : "MERGED OUTPUT DIVERGED");
    runs.push_back(run);
  }

  fs::remove_all(root);

  std::FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"batch_shard\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"system\": \"camflow\",\n");
  std::fprintf(f, "  \"benchmarks\": %zu,\n", benchmarks.size());
  std::fprintf(f, "  \"simulated_recording_latency_ms\": %.1f,\n",
               latency * 1e3);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"single_process_seconds\": %.6f,\n", single_seconds);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"seconds\": %.6f, "
                 "\"speedup\": %.3f, \"merged_identical\": %s}%s\n",
                 run.shards, run.seconds, single_seconds / run.seconds,
                 run.identical ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"identical\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", output.c_str());
  return all_identical ? 0 : 1;
}
