// Performance + identity gates for the streaming provenance service
// (src/serve/ — see docs/serve.md).
//
// Three scenarios, each with a hard self-asserting gate (exit 1 on any
// failure) plus recorded-but-ungated wall-clock metrics:
//
//   crash-recovery   a forked child streams a 1000-event multi-client
//                    load into a threaded Service and is killed without
//                    warning mid-stream (fault-injected _exit(70), the
//                    journal-visible equivalent of kill -9). The parent
//                    restarts the service over the journal root and
//                    GATES that every session's recovered fixpoint
//                    digest is byte-identical to a fresh service fed
//                    the same journaled records. Recovery-replay time
//                    is recorded.
//   ingest           multi-session fact/rule streaming through a
//                    threaded service: events/sec and p50/p99 admission
//                    latency. Admission is O(1)+fsync by design — the
//                    gate demands p99 under an intentionally generous
//                    bound (500 ms) to catch admission accidentally
//                    acquiring apply-side work, not to benchmark disks.
//   overload         2x-capacity burst into a workers=0 service: the
//                    shed/busy counters must match the deterministic
//                    watermark arithmetic *exactly*, and the surviving
//                    admitted prefix must apply to the same fixpoint a
//                    clean run of just that prefix produces — shedding
//                    drops work, never corrupts it.
//
// The child is forked before the parent ever creates a Service, so the
// parent is threadless at fork time (same discipline as
// perf_shard_faults).
//
// Usage: bench_perf_serve [--smoke] [output.json]
//   --smoke  smaller ingest volume (CI-friendly); identical gating
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "serve/journal.h"
#include "serve/service.h"
#include "util/fault.h"

using namespace provmark;

namespace {

namespace fs = std::filesystem;

serve::Request fact_event(const std::string& session,
                          const std::string& payload,
                          serve::Priority priority =
                              serve::Priority::Normal) {
  serve::Request request;
  request.is_event = true;
  request.event = serve::EventKind::Fact;
  request.session = session;
  request.priority = priority;
  request.payload = payload;
  return request;
}

serve::Request rule_event(const std::string& session,
                          const std::string& payload) {
  serve::Request request = fact_event(session, payload);
  request.event = serve::EventKind::Rule;
  return request;
}

std::map<std::string, std::string> drained_digests(
    serve::Service& service) {
  service.drain();
  return service.session_digests();
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

const std::vector<std::string> kClients = {"alice", "bob", "carol",
                                           "dave"};

std::string stream_fact(const std::string& client, int i) {
  return "edge(" + client + std::to_string(i) + "," + client +
         std::to_string(i + 1) + ").";
}

// -- scenario: crash recovery -------------------------------------------------

struct RecoveryOutcome {
  int events_offered = 0;
  int crash_after = 0;
  std::uint64_t replayed_events = 0;
  double recovery_seconds = 0;
  bool child_crashed_as_injected = false;
  bool digests_identical = false;
};

int recovery_child(const fs::path& root, int total_events,
                   int crash_after) {
  // Dies inside submit() via the serve-crash hook: after the Nth
  // admitted event is durable (journal fsync done) but before anything
  // else — the hardest crash point for recovery to get right.
  util::fault::arm(
      util::fault::parse_fault_spec("serve-crash:after-events=" +
                                    std::to_string(crash_after)),
      0, 0);
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 2;
  options.checkpoint_every = 0;  // keep the whole stream replayable
  // Admission must never refuse here: the gate is about recovery, so
  // the queues are sized to hold the whole stream even if the appliers
  // never keep up.
  options.session_queue_cap = static_cast<std::size_t>(total_events);
  options.global_queue_cap = static_cast<std::size_t>(total_events) * 2;
  serve::Service service(options);
  for (int i = 0; i < total_events; ++i) {
    const std::string& client = kClients[i % kClients.size()];
    serve::Request request =
        (i % 100 == 99)
            ? rule_event(client, "reach(X,Y) :- edge(X,Y).")
            : fact_event(client, stream_fact(client, i));
    if (service.submit(request).status != serve::Status::Ok) return 9;
  }
  return 8;  // the injected crash never fired
}

RecoveryOutcome run_recovery(const fs::path& root, int total_events) {
  RecoveryOutcome outcome;
  outcome.events_offered = total_events;
  outcome.crash_after = total_events * 3 / 5;

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::_exit(recovery_child(root, total_events, outcome.crash_after));
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  outcome.child_crashed_as_injected =
      WIFEXITED(status) &&
      WEXITSTATUS(status) == util::fault::kCrashExitCode;
  if (!outcome.child_crashed_as_injected) {
    std::fprintf(stderr,
                 "recovery: child did not crash as injected "
                 "(status 0x%x)\n",
                 status);
    return outcome;
  }

  // Restart over the kill site and time the replay.
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 0;
  const auto start = std::chrono::steady_clock::now();
  serve::Service recovered(options);
  outcome.recovery_seconds = ms_since(start) / 1000.0;
  outcome.replayed_events = recovered.stats().replayed_events;
  std::map<std::string, std::string> digests =
      recovered.session_digests();

  // Reference: a fresh service fed exactly the journaled records.
  serve::ServiceOptions ref_options;
  ref_options.root = root.string() + "_ref";
  ref_options.workers = 0;
  // workers=0 queues everything until pump(): size the queues for the
  // whole journal or admission would shed the replay itself.
  ref_options.session_queue_cap =
      static_cast<std::size_t>(total_events);
  ref_options.global_queue_cap =
      static_cast<std::size_t>(total_events) * 2;
  serve::Service reference(ref_options);
  bool ok = digests.size() == kClients.size();
  for (const std::string& client : kClients) {
    serve::Journal journal(root, client, 0);
    for (const serve::JournalRecord& record :
         journal.recover().records) {
      serve::Request request;
      request.is_event = true;
      request.event = record.kind;
      request.session = client;
      request.priority = record.priority;
      request.payload = record.payload;
      ok = ok && reference.submit(request).status == serve::Status::Ok;
    }
  }
  reference.pump();
  std::map<std::string, std::string> reference_digests =
      reference.session_digests();
  ok = ok && digests == reference_digests;
  if (!ok) {
    for (const auto& [id, digest] : digests) {
      std::fprintf(stderr, "  recovered %s=%s reference %s=%s\n",
                   id.c_str(), digest.c_str(), id.c_str(),
                   reference_digests[id].c_str());
    }
  }
  outcome.digests_identical = ok;
  return outcome;
}

// -- scenario: ingest throughput + admission latency --------------------------

struct IngestOutcome {
  int events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool all_acked = false;
  bool p99_bounded = false;
};

IngestOutcome run_ingest(const fs::path& root, int total_events) {
  IngestOutcome outcome;
  outcome.events = total_events;
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 2;
  options.session_queue_cap = static_cast<std::size_t>(total_events);
  options.global_queue_cap = static_cast<std::size_t>(total_events) * 2;
  serve::Service service(options);
  // Give every session a recursive rule up front: the apply workers
  // have real Datalog saturation to chew on while admission streams —
  // the latency numbers below include that contention by construction.
  for (const std::string& client : kClients) {
    service.submit(rule_event(
        client, "reach(X,Y) :- edge(X,Y).\n"
                "reach(X,Z) :- reach(X,Y), edge(Y,Z)."));
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(total_events));
  bool all_acked = true;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < total_events; ++i) {
    const std::string& client = kClients[i % kClients.size()];
    const auto before = std::chrono::steady_clock::now();
    serve::Status status =
        service.submit(fact_event(client, stream_fact(client, i)))
            .status;
    latencies.push_back(ms_since(before));
    all_acked = all_acked && status == serve::Status::Ok;
  }
  outcome.seconds = ms_since(start) / 1000.0;
  outcome.events_per_sec =
      outcome.seconds > 0 ? total_events / outcome.seconds : 0;
  std::sort(latencies.begin(), latencies.end());
  outcome.p50_ms = latencies[latencies.size() / 2];
  outcome.p99_ms = latencies[latencies.size() * 99 / 100];
  outcome.all_acked = all_acked;
  // Generous by two orders of magnitude over a healthy fsync: this
  // catches admission blocking on matcher/Datalog work, not disk jitter.
  outcome.p99_bounded = outcome.p99_ms < 500.0;
  service.drain();
  return outcome;
}

// -- scenario: deterministic overload shedding --------------------------------

struct OverloadOutcome {
  int offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_low = 0;
  std::uint64_t shed_normal = 0;
  std::uint64_t busy_high = 0;
  bool deterministic = false;
  bool survivors_identical = false;
};

OverloadOutcome run_overload(const fs::path& root) {
  OverloadOutcome outcome;
  const std::size_t cap = 64;
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 0;  // backlog == admitted count: exact arithmetic
  options.global_queue_cap = cap;
  options.session_queue_cap = cap * 2;
  serve::Service service(options);

  // A 2x-capacity normal-priority burst: exactly `cap` admitted, the
  // rest shed. Then at full backlog, low sheds and high gets `busy`.
  outcome.offered = static_cast<int>(cap) * 2 + 2;
  std::vector<std::string> admitted_payloads;
  for (std::size_t i = 0; i < cap * 2; ++i) {
    const std::string payload = stream_fact("burst", static_cast<int>(i));
    if (service.submit(fact_event("burst", payload)).status ==
        serve::Status::Ok) {
      admitted_payloads.push_back(payload);
    }
  }
  const serve::Status low_status =
      service.submit(fact_event("burst", "low(x).", serve::Priority::Low))
          .status;
  const serve::Status high_status =
      service
          .submit(fact_event("burst", "high(x).", serve::Priority::High))
          .status;

  serve::ServiceStats stats = service.stats();
  outcome.admitted = stats.admitted;
  outcome.shed_low = stats.shed_low;
  outcome.shed_normal = stats.shed_normal;
  outcome.busy_high = stats.busy;
  outcome.deterministic = stats.admitted == cap &&
                          stats.shed_normal == cap &&
                          low_status == serve::Status::Shed &&
                          high_status == serve::Status::Busy;

  // Shedding must not have corrupted the survivors: applying the
  // admitted prefix equals a clean run of exactly that prefix.
  service.pump();
  serve::ServiceOptions clean_options;
  clean_options.root = root.string() + "_clean";
  clean_options.workers = 0;
  serve::Service clean(clean_options);
  for (const std::string& payload : admitted_payloads) {
    clean.submit(fact_event("burst", payload));
  }
  clean.pump();
  outcome.survivors_identical =
      drained_digests(service) == drained_digests(clean);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const fs::path scratch =
      fs::temp_directory_path() /
      ("provmark_bench_serve_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // Fork-based scenario first: the parent holds no threads yet.
  std::printf("scenario crash-recovery: 1000-event multi-client stream, "
              "killed mid-stream\n");
  RecoveryOutcome recovery = run_recovery(scratch / "recovery", 1000);
  std::printf(
      "  crashed after %d acked events, replayed %llu in %.3fs, "
      "digests %s\n",
      recovery.crash_after,
      static_cast<unsigned long long>(recovery.replayed_events),
      recovery.recovery_seconds,
      recovery.digests_identical ? "identical" : "MISMATCH");

  const int ingest_events = smoke ? 1'000 : 8'000;
  std::printf("scenario ingest: %d events over %zu sessions\n",
              ingest_events, kClients.size());
  IngestOutcome ingest = run_ingest(scratch / "ingest", ingest_events);
  std::printf("  %.0f events/s, admission p50 %.3f ms p99 %.3f ms\n",
              ingest.events_per_sec, ingest.p50_ms, ingest.p99_ms);

  std::printf("scenario overload: 2x-capacity burst\n");
  OverloadOutcome overload = run_overload(scratch / "overload");
  std::printf(
      "  admitted %llu shed_normal %llu shed_low %llu busy %llu — %s\n",
      static_cast<unsigned long long>(overload.admitted),
      static_cast<unsigned long long>(overload.shed_normal),
      static_cast<unsigned long long>(overload.shed_low),
      static_cast<unsigned long long>(overload.busy_high),
      overload.deterministic ? "deterministic" : "OFF-BY-POLICY");

  const bool all_ok =
      recovery.child_crashed_as_injected && recovery.digests_identical &&
      ingest.all_acked && ingest.p99_bounded && overload.deterministic &&
      overload.survivors_identical;

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"recovery\": {\n");
  std::fprintf(f, "    \"events_offered\": %d,\n",
               recovery.events_offered);
  std::fprintf(f, "    \"crash_after_events\": %d,\n",
               recovery.crash_after);
  std::fprintf(f, "    \"replayed_events\": %llu,\n",
               static_cast<unsigned long long>(recovery.replayed_events));
  std::fprintf(f, "    \"recovery_replay_seconds\": %.6f,\n",
               recovery.recovery_seconds);
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               recovery.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"ingest\": {\n");
  std::fprintf(f, "    \"events\": %d,\n", ingest.events);
  std::fprintf(f, "    \"seconds\": %.6f,\n", ingest.seconds);
  std::fprintf(f, "    \"events_per_sec\": %.1f,\n",
               ingest.events_per_sec);
  std::fprintf(f, "    \"admission_p50_ms\": %.4f,\n", ingest.p50_ms);
  std::fprintf(f, "    \"admission_p99_ms\": %.4f,\n", ingest.p99_ms);
  std::fprintf(f, "    \"p99_bounded\": %s\n  },\n",
               ingest.p99_bounded ? "true" : "false");
  std::fprintf(f, "  \"overload\": {\n");
  std::fprintf(f, "    \"offered\": %d,\n", overload.offered);
  std::fprintf(f, "    \"admitted\": %llu,\n",
               static_cast<unsigned long long>(overload.admitted));
  std::fprintf(f, "    \"shed_normal\": %llu,\n",
               static_cast<unsigned long long>(overload.shed_normal));
  std::fprintf(f, "    \"shed_low\": %llu,\n",
               static_cast<unsigned long long>(overload.shed_low));
  std::fprintf(f, "    \"busy_high\": %llu,\n",
               static_cast<unsigned long long>(overload.busy_high));
  std::fprintf(f, "    \"deterministic\": %s,\n",
               overload.deterministic ? "true" : "false");
  std::fprintf(f, "    \"survivors_identical\": %s\n  },\n",
               overload.survivors_identical ? "true" : "false");
  std::fprintf(f, "  \"identical\": %s\n}\n", all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());

  fs::remove_all(scratch);
  return all_ok ? 0 : 1;
}
