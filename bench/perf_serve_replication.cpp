// Replication + failover gates for the streaming provenance service
// (src/serve/replicate.* — see docs/serve.md, "Replication & failover").
//
// Every scenario drives REAL daemons: forked `run_daemon` processes
// talking over AF_UNIX sockets, fed through the real `run_feed` client
// — the same binary paths an operator runs. Four scenarios, each with a
// hard self-asserting gate (exit 1 on any failure) plus
// recorded-but-ungated wall-clock metrics:
//
//   failover-identity  a primary streams generator-seeded sessions to a
//                      hot standby, is SIGKILLed mid-service, and the
//                      standby is promoted. GATES that the promoted
//                      standby answers every session digest
//                      byte-identically to a fresh service fed the dead
//                      primary's journal. Catch-up and promote-to-
//                      first-answer latency are recorded.
//   replication-lag    fact-event throughput through a replicated
//                      primary in async mode (ack on local fsync) with
//                      the catch-up time to repl_lag_events=0, measured
//                      by polling the stats health keys — never by
//                      sleeping.
//   sync-ack           the same feed in --repl-mode sync, where every
//                      ack waits for the standby's fsync. GATES that
//                      every event still acks; the sync/async ack
//                      overhead ratio is the recorded headline.
//   chaos              the three replication fault rules, each VERIFIED
//                      to have fired (daemon log line / exit code 70)
//                      and survived: repl-link-drop reconnects + resyncs
//                      to zero lag, repl-partition black-holes the link
//                      until the standby's missed-heartbeat machinery
//                      reconnects, replica-crash kills the standby
//                      after a journaled-but-unacked record and a
//                      restarted standby resyncs; the scenario ends
//                      with a kill + promote and GATES digest identity
//                      one more time — after all injected faults.
//
// Children are forked before the parent ever creates a Service, so the
// parent is threadless at every fork (same discipline as perf_serve).
//
// Usage: bench_perf_serve_replication [--smoke] [output.json]
//   --smoke  smaller feed volume (CI-friendly); identical gating
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/service.h"
#include "util/fault.h"

using namespace provmark;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

serve::ServiceOptions reference_options(const fs::path& root) {
  serve::ServiceOptions options;
  options.root = root;
  options.workers = 0;  // parent stays threadless across forks
  options.checkpoint_every = 0;
  options.pipeline.trials = 2;
  return options;
}

struct DaemonSpec {
  fs::path root;
  std::string socket_path;
  std::string replica_of;
  bool sync = false;
  std::string fault_spec;
  fs::path log;  ///< child stdout+stderr (fault-fired verification)
};

pid_t spawn_daemon(const DaemonSpec& spec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (!spec.log.empty()) {
    const int fd = ::open(spec.log.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                          0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
  }
  serve::DaemonOptions options;
  options.service.root = spec.root;
  options.service.workers = 1;
  options.service.checkpoint_every = 0;  // keep journals fully replayable
  options.service.pipeline.trials = 2;
  options.socket_path = spec.socket_path;
  options.replica_of = spec.replica_of;
  options.repl_sync = spec.sync;
  options.heartbeat_ms = 50;
  if (!spec.fault_spec.empty()) {
    util::fault::arm(util::fault::parse_fault_spec(spec.fault_spec), 0, 0);
  }
  ::_exit(serve::run_daemon(options));
}

/// Feed one request line; returns the raw response line ("" when the
/// daemon is unreachable).
std::string feed_one(const std::string& socket_path,
                     const std::string& request) {
  std::istringstream in(request + "\n");
  std::ostringstream out;
  if (serve::run_feed(socket_path, in, out) == 1) return "";
  std::string line = out.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

bool wait_until(const std::function<bool()>& predicate, double budget_s) {
  const auto start = Clock::now();
  while (seconds_since(start) < budget_s) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool stats_show(const std::string& socket_path, const std::string& needle) {
  const std::string line = feed_one(socket_path, "stats");
  if (line.empty()) return false;
  try {
    serve::Response response = serve::parse_response(line);
    return response.status == serve::Status::Result &&
           response.body.find(needle) != std::string::npos;
  } catch (const std::exception&) {
    return false;
  }
}

bool caught_up(const std::string& primary_socket) {
  return stats_show(primary_socket, "repl_connected=1") &&
         stats_show(primary_socket, "repl_lag_events=0");
}

bool daemon_ready(const std::string& socket_path) {
  return feed_one(socket_path, "ping") == "result pong";
}

void kill_daemon(pid_t pid, int sig) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

bool log_contains(const fs::path& log, const std::string& needle) {
  std::ifstream in(log);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str().find(needle) != std::string::npos;
}

serve::Request event_request(const std::string& session,
                             serve::EventKind kind,
                             const std::string& payload) {
  serve::Request request;
  request.is_event = true;
  request.event = kind;
  request.session = session;
  request.priority = serve::Priority::Normal;
  request.payload = payload;
  return request;
}

const char* kRecorders[] = {"spade",         "opus",  "camflow",
                            "spade-camflow", "audit", "ebpf"};

std::vector<std::pair<serve::EventKind, std::string>> make_stream(
    std::uint64_t seed) {
  bench_suite::GeneratorOptions gen;
  gen.seed = seed;
  gen.scale = 3;
  gen.depth = 1;
  gen.fan_out = 1;
  const std::string program =
      bench_suite::format_program(bench_suite::generate_program(gen));
  const std::string s = std::to_string(seed);
  return {
      {serve::EventKind::Fact, "edge(a" + s + ",b" + s + ")."},
      {serve::EventKind::Fact, "edge(b" + s + ",c" + s + ")."},
      {serve::EventKind::Rule,
       "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z)."},
      {serve::EventKind::Run,
       std::string(kRecorders[seed % 6]) + "\n" + program},
      {serve::EventKind::Fact, "edge(c" + s + ",a" + s + ")."},
  };
}

/// Promoted-standby digests vs a fresh reference service fed the dead
/// primary's journal — the failover identity gate.
bool digests_match_reference(const fs::path& primary_root,
                             const std::string& standby_socket,
                             const fs::path& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  serve::Service reference(reference_options(scratch));
  bool ok = true;
  for (const std::string& session : serve::list_sessions(primary_root)) {
    serve::Journal journal(primary_root, session, 0);
    for (const serve::JournalRecord& record : journal.recover().records) {
      serve::Request request;
      request.is_event = true;
      request.event = record.kind;
      request.session = session;
      request.priority = record.priority;
      request.payload = record.payload;
      if (reference.submit(request).status != serve::Status::Ok) ok = false;
    }
  }
  reference.pump();
  for (const std::string& session : serve::list_sessions(primary_root)) {
    serve::Request digest;
    digest.is_event = false;
    digest.query = serve::QueryKind::Digest;
    digest.session = session;
    digest.deadline_ms = 5000;
    serve::Response expected = reference.submit(digest);
    const std::string got =
        feed_one(standby_socket, "digest " + session + " 5000");
    if (expected.status != serve::Status::Result ||
        got != "result " + expected.body) {
      std::fprintf(stderr, "  digest mismatch for %s: got '%s'\n",
                   session.c_str(), got.c_str());
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// scenario: failover-identity

struct FailoverOutcome {
  int sessions = 0;
  int events = 0;
  double catchup_seconds = 0;
  double promote_seconds = 0;
  bool promoted = false;
  bool digests_identical = false;
};

FailoverOutcome run_failover(const fs::path& dir, int nsessions) {
  fs::create_directories(dir);
  FailoverOutcome outcome;
  outcome.sessions = nsessions;
  DaemonSpec primary_spec{dir / "pj", (dir / "p.sock").string(), "", false,
                          "", dir / "primary.log"};
  DaemonSpec standby_spec{dir / "rj", (dir / "r.sock").string(),
                          primary_spec.socket_path, false, "",
                          dir / "standby.log"};
  const pid_t primary = spawn_daemon(primary_spec);
  if (!wait_until([&] { return daemon_ready(primary_spec.socket_path); }, 10))
    return outcome;
  const pid_t standby = spawn_daemon(standby_spec);
  if (!wait_until([&] { return daemon_ready(standby_spec.socket_path); }, 10))
    return outcome;

  for (int i = 0; i < nsessions; ++i) {
    const std::string session = "s" + std::to_string(i);
    for (const auto& [kind, payload] : make_stream(i + 1)) {
      const std::string line = feed_one(
          primary_spec.socket_path,
          serve::format_request(event_request(session, kind, payload)));
      if (line.rfind("ok ", 0) == 0) ++outcome.events;
    }
  }
  const auto catchup_start = Clock::now();
  if (!wait_until([&] { return caught_up(primary_spec.socket_path); }, 30))
    return outcome;
  outcome.catchup_seconds = seconds_since(catchup_start);

  kill_daemon(primary, SIGKILL);
  const auto promote_start = Clock::now();
  outcome.promoted =
      feed_one(standby_spec.socket_path, "promote") == "result promoted";
  // First post-promotion answer, the failover-visible gap.
  feed_one(standby_spec.socket_path, "digest s0 5000");
  outcome.promote_seconds = seconds_since(promote_start);

  outcome.digests_identical = digests_match_reference(
      primary_spec.root, standby_spec.socket_path, dir / "ref");
  kill_daemon(standby, SIGTERM);
  return outcome;
}

// ---------------------------------------------------------------------------
// scenarios: replication-lag (async) and sync-ack

struct FeedOutcome {
  int events = 0;
  double feed_seconds = 0;
  double events_per_sec = 0;
  double catchup_seconds = 0;
  bool all_acked = false;
  bool caught_up = false;
};

FeedOutcome run_replicated_feed(const fs::path& dir, int events, bool sync) {
  fs::create_directories(dir);
  FeedOutcome outcome;
  outcome.events = events;
  DaemonSpec primary_spec{dir / "pj", (dir / "p.sock").string(), "", sync,
                          "", dir / "primary.log"};
  DaemonSpec standby_spec{dir / "rj", (dir / "r.sock").string(),
                          primary_spec.socket_path, false, "",
                          dir / "standby.log"};
  const pid_t primary = spawn_daemon(primary_spec);
  if (!wait_until([&] { return daemon_ready(primary_spec.socket_path); }, 10))
    return outcome;
  const pid_t standby = spawn_daemon(standby_spec);
  if (!wait_until(
          [&] { return stats_show(primary_spec.socket_path,
                                  "repl_connected=1"); },
          10))
    return outcome;

  std::ostringstream requests;
  for (int i = 0; i < events; ++i) {
    requests << serve::format_request(event_request(
                    "s" + std::to_string(i % 4), serve::EventKind::Fact,
                    "edge(n" + std::to_string(i) + ",n" +
                        std::to_string(i + 1) + ")."))
             << "\n";
  }
  std::istringstream in(requests.str());
  std::ostringstream responses;
  const auto feed_start = Clock::now();
  const int rc = serve::run_feed(primary_spec.socket_path, in, responses);
  outcome.feed_seconds = seconds_since(feed_start);
  outcome.all_acked = rc == 0;
  outcome.events_per_sec =
      outcome.feed_seconds > 0 ? events / outcome.feed_seconds : 0;

  const auto catchup_start = Clock::now();
  outcome.caught_up =
      wait_until([&] { return caught_up(primary_spec.socket_path); }, 60);
  outcome.catchup_seconds = seconds_since(catchup_start);

  kill_daemon(primary, SIGTERM);
  kill_daemon(standby, SIGTERM);
  return outcome;
}

// ---------------------------------------------------------------------------
// scenario: chaos (fault-injected replication)

struct ChaosOutcome {
  bool link_drop_fired = false;
  bool link_drop_converged = false;
  bool partition_fired = false;
  bool partition_converged = false;
  bool replica_crash_exit70 = false;
  bool replica_crash_resynced = false;
  bool digests_identical = false;
};

ChaosOutcome run_chaos(const fs::path& dir) {
  fs::create_directories(dir);
  ChaosOutcome outcome;

  // -- repl-link-drop: the primary severs the link after 3 forwarded
  // records; the standby must reconnect with seeded backoff and resync.
  {
    const fs::path sub = dir / "drop";
    fs::create_directories(sub);
    DaemonSpec primary_spec{sub / "pj", (sub / "p.sock").string(), "",
                            false, "repl-link-drop:after-records=3",
                            sub / "primary.log"};
    DaemonSpec standby_spec{sub / "rj", (sub / "r.sock").string(),
                            primary_spec.socket_path, false, "",
                            sub / "standby.log"};
    const pid_t primary = spawn_daemon(primary_spec);
    wait_until([&] { return daemon_ready(primary_spec.socket_path); }, 10);
    const pid_t standby = spawn_daemon(standby_spec);
    wait_until(
        [&] {
          return stats_show(primary_spec.socket_path, "repl_connected=1");
        },
        10);
    for (int i = 0; i < 6; ++i) {
      feed_one(primary_spec.socket_path,
               "event s fact normal edge(d" + std::to_string(i) + ",x).");
    }
    outcome.link_drop_converged =
        wait_until([&] { return caught_up(primary_spec.socket_path); }, 30);
    outcome.link_drop_fired =
        log_contains(primary_spec.log, "repl-link-drop");
    kill_daemon(primary, SIGTERM);
    kill_daemon(standby, SIGTERM);
  }

  // -- repl-partition: the link is black-holed for 300ms after 2
  // forwarded records, then dropped; heartbeats go unanswered until the
  // standby's missed-heartbeat budget reconnects it.
  {
    const fs::path sub = dir / "partition";
    fs::create_directories(sub);
    DaemonSpec primary_spec{sub / "pj", (sub / "p.sock").string(), "",
                            false, "repl-partition:after-records=2,ms=300",
                            sub / "primary.log"};
    DaemonSpec standby_spec{sub / "rj", (sub / "r.sock").string(),
                            primary_spec.socket_path, false, "",
                            sub / "standby.log"};
    const pid_t primary = spawn_daemon(primary_spec);
    wait_until([&] { return daemon_ready(primary_spec.socket_path); }, 10);
    const pid_t standby = spawn_daemon(standby_spec);
    wait_until(
        [&] {
          return stats_show(primary_spec.socket_path, "repl_connected=1");
        },
        10);
    for (int i = 0; i < 5; ++i) {
      feed_one(primary_spec.socket_path,
               "event s fact normal edge(p" + std::to_string(i) + ",x).");
    }
    outcome.partition_converged =
        wait_until([&] { return caught_up(primary_spec.socket_path); }, 30);
    outcome.partition_fired =
        log_contains(primary_spec.log, "repl-partition");
    kill_daemon(primary, SIGTERM);
    kill_daemon(standby, SIGTERM);
  }

  // -- replica-crash: the standby _exit(70)s after journaling its 4th
  // record without acking it; a restarted standby resyncs, and the
  // scenario ends with the full kill + promote identity check.
  {
    const fs::path sub = dir / "crash";
    fs::create_directories(sub);
    DaemonSpec primary_spec{sub / "pj", (sub / "p.sock").string(), "",
                            false, "", sub / "primary.log"};
    DaemonSpec standby_spec{sub / "rj", (sub / "r.sock").string(),
                            primary_spec.socket_path, false,
                            "replica-crash:after-records=4",
                            sub / "standby.log"};
    const pid_t primary = spawn_daemon(primary_spec);
    wait_until([&] { return daemon_ready(primary_spec.socket_path); }, 10);
    const pid_t standby = spawn_daemon(standby_spec);
    wait_until(
        [&] {
          return stats_show(primary_spec.socket_path, "repl_connected=1");
        },
        10);
    for (const auto& [kind, payload] : make_stream(7)) {
      feed_one(primary_spec.socket_path,
               serve::format_request(event_request("s", kind, payload)));
    }
    int status = 0;
    if (::waitpid(standby, &status, 0) == standby && WIFEXITED(status)) {
      outcome.replica_crash_exit70 =
          WEXITSTATUS(status) == util::fault::kCrashExitCode;
    }
    standby_spec.fault_spec.clear();
    const pid_t standby2 = spawn_daemon(standby_spec);
    outcome.replica_crash_resynced =
        wait_until([&] { return caught_up(primary_spec.socket_path); }, 30);
    kill_daemon(primary, SIGKILL);
    if (feed_one(standby_spec.socket_path, "promote") == "result promoted") {
      outcome.digests_identical = digests_match_reference(
          primary_spec.root, standby_spec.socket_path, sub / "ref");
    }
    kill_daemon(standby2, SIGTERM);
  }

  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_serve_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      output = argv[i];
    }
  }

  const fs::path scratch =
      fs::temp_directory_path() /
      ("provmark_bench_serve_repl_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  const int failover_sessions = smoke ? 2 : 4;
  std::printf("scenario failover-identity: %d generator sessions, "
              "SIGKILL primary, promote standby\n",
              failover_sessions);
  FailoverOutcome failover =
      run_failover(scratch / "failover", failover_sessions);
  std::printf("  %d events acked, catch-up %.3fs, promote %.3fs, "
              "digests %s\n",
              failover.events, failover.catchup_seconds,
              failover.promote_seconds,
              failover.digests_identical ? "identical" : "MISMATCH");

  const int feed_events = smoke ? 200 : 2000;
  std::printf("scenario replication-lag: %d facts, async mode\n",
              feed_events);
  FeedOutcome async_feed =
      run_replicated_feed(scratch / "async", feed_events, false);
  std::printf("  %.0f events/s acked, standby caught up in %.3fs\n",
              async_feed.events_per_sec, async_feed.catchup_seconds);

  std::printf("scenario sync-ack: %d facts, sync mode\n", feed_events);
  FeedOutcome sync_feed =
      run_replicated_feed(scratch / "sync", feed_events, true);
  const double sync_over_async =
      sync_feed.events_per_sec > 0
          ? async_feed.events_per_sec / sync_feed.events_per_sec
          : 0;
  std::printf("  %.0f events/s acked (%.2fx async ack cost)\n",
              sync_feed.events_per_sec, sync_over_async);

  std::printf("scenario chaos: link-drop, partition, replica-crash\n");
  ChaosOutcome chaos = run_chaos(scratch / "chaos");
  std::printf(
      "  link-drop %s/%s partition %s/%s replica-crash %s/%s "
      "post-chaos digests %s\n",
      chaos.link_drop_fired ? "fired" : "NOT-FIRED",
      chaos.link_drop_converged ? "converged" : "STUCK",
      chaos.partition_fired ? "fired" : "NOT-FIRED",
      chaos.partition_converged ? "converged" : "STUCK",
      chaos.replica_crash_exit70 ? "exit70" : "WRONG-EXIT",
      chaos.replica_crash_resynced ? "resynced" : "STUCK",
      chaos.digests_identical ? "identical" : "MISMATCH");

  const bool all_ok =
      failover.events == failover_sessions * 5 && failover.promoted &&
      failover.digests_identical && async_feed.all_acked &&
      async_feed.caught_up && sync_feed.all_acked && sync_feed.caught_up &&
      chaos.link_drop_fired && chaos.link_drop_converged &&
      chaos.partition_fired && chaos.partition_converged &&
      chaos.replica_crash_exit70 && chaos.replica_crash_resynced &&
      chaos.digests_identical;

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve-replication\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"failover\": {\n");
  std::fprintf(f, "    \"sessions\": %d,\n", failover.sessions);
  std::fprintf(f, "    \"events_acked\": %d,\n", failover.events);
  std::fprintf(f, "    \"catchup_seconds\": %.6f,\n",
               failover.catchup_seconds);
  std::fprintf(f, "    \"promote_to_first_answer_seconds\": %.6f,\n",
               failover.promote_seconds);
  std::fprintf(f, "    \"promoted\": %s,\n",
               failover.promoted ? "true" : "false");
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               failover.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"async\": {\n");
  std::fprintf(f, "    \"events\": %d,\n", async_feed.events);
  std::fprintf(f, "    \"acked_events_per_sec\": %.1f,\n",
               async_feed.events_per_sec);
  std::fprintf(f, "    \"catchup_seconds\": %.6f,\n",
               async_feed.catchup_seconds);
  std::fprintf(f, "    \"all_acked\": %s,\n",
               async_feed.all_acked ? "true" : "false");
  std::fprintf(f, "    \"caught_up\": %s\n  },\n",
               async_feed.caught_up ? "true" : "false");
  std::fprintf(f, "  \"sync\": {\n");
  std::fprintf(f, "    \"events\": %d,\n", sync_feed.events);
  std::fprintf(f, "    \"acked_events_per_sec\": %.1f,\n",
               sync_feed.events_per_sec);
  std::fprintf(f, "    \"ack_cost_vs_async\": %.3f,\n", sync_over_async);
  std::fprintf(f, "    \"all_acked\": %s,\n",
               sync_feed.all_acked ? "true" : "false");
  std::fprintf(f, "    \"caught_up\": %s\n  },\n",
               sync_feed.caught_up ? "true" : "false");
  std::fprintf(f, "  \"chaos\": {\n");
  std::fprintf(f, "    \"link_drop_fired\": %s,\n",
               chaos.link_drop_fired ? "true" : "false");
  std::fprintf(f, "    \"link_drop_converged\": %s,\n",
               chaos.link_drop_converged ? "true" : "false");
  std::fprintf(f, "    \"partition_fired\": %s,\n",
               chaos.partition_fired ? "true" : "false");
  std::fprintf(f, "    \"partition_converged\": %s,\n",
               chaos.partition_converged ? "true" : "false");
  std::fprintf(f, "    \"replica_crash_exit70\": %s,\n",
               chaos.replica_crash_exit70 ? "true" : "false");
  std::fprintf(f, "    \"replica_crash_resynced\": %s,\n",
               chaos.replica_crash_resynced ? "true" : "false");
  std::fprintf(f, "    \"digests_identical\": %s\n  },\n",
               chaos.digests_identical ? "true" : "false");
  std::fprintf(f, "  \"identical\": %s\n}\n", all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", output.c_str());

  fs::remove_all(scratch);
  return all_ok ? 0 : 1;
}
