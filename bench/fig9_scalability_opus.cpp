// Reproduces paper Figure 9: scalability with target size, OPUS. The
// Neo4j transformation overhead dwarfs the growth of the other stages.
#include "timing_common.h"

int main() {
  return provmark_bench::run_timing_figure(
      "Figure 9: scalability results, OPUS+Neo4j", "opus",
      provmark_bench::scale_programs());
}
