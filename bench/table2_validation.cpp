// Reproduces paper Table 2: the validation summary of 43 syscall
// benchmarks across SPADE, OPUS and CamFlow.
//
// For every benchmark and every system the full ProvMark pipeline runs
// (recording -> transformation -> generalization -> comparison) and the
// derived ok/empty status is compared against the paper's cell. Notes
// (NR/SC/LP/DV) are the paper authors' diagnoses, reprinted for context;
// DV is additionally *detected* (disconnected non-dummy node in the
// result).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "expected_table2.h"

using namespace provmark;
using provmark_bench::ExpectedCell;
using provmark_bench::expected_table2;

namespace {

std::string cell_text(const core::BenchmarkResult& result,
                      const ExpectedCell& expected) {
  std::string status = core::status_name(result.status);
  std::string text = status;
  if (std::string(expected.note).size() > 0 && status == expected.status) {
    text += " (" + std::string(expected.note) + ")";
  }
  bool match = status == expected.status;
  // Independent detection of the DV phenomenon.
  if (std::string(expected.note) == "DV" &&
      result.status == core::BenchmarkStatus::Ok &&
      result.disconnected_nodes().empty()) {
    match = false;
  }
  text += match ? "" : "  <-- MISMATCH (paper: " +
                           std::string(expected.status) + ")";
  return text;
}

}  // namespace

int main() {
  std::printf("Table 2: validation summary (paper vs reproduction)\n");
  std::printf("%-5s %-11s %-28s %-28s %-28s\n", "group", "syscall", "SPADE",
              "OPUS", "CamFlow");
  int mismatches = 0;
  int cells = 0;
  for (const bench_suite::BenchmarkProgram& program :
       bench_suite::table_benchmarks()) {
    const auto& expected = expected_table2().at(program.name);
    std::string row[3];
    const ExpectedCell* cell_expected[3] = {&expected.spade, &expected.opus,
                                            &expected.camflow};
    const char* systems[3] = {"spade", "opus", "camflow"};
    for (int i = 0; i < 3; ++i) {
      core::PipelineOptions options;
      options.system = systems[i];
      options.seed = 7;
      core::BenchmarkResult result = core::run_benchmark(program, options);
      row[i] = cell_text(result, *cell_expected[i]);
      ++cells;
      if (row[i].find("MISMATCH") != std::string::npos) ++mismatches;
    }
    std::printf("%-5d %-11s %-28s %-28s %-28s\n", expected.group,
                program.name.c_str(), row[0].c_str(), row[1].c_str(),
                row[2].c_str());
  }
  std::printf("\nNotes: NR behaviour not recorded (default config); "
              "SC only state changes monitored;\n"
              "       LP limitation in ProvMark; DV disconnected vforked "
              "process.\n");
  std::printf("cells: %d, mismatches vs paper: %d\n", cells, mismatches);
  return mismatches == 0 ? 0 : 1;
}
