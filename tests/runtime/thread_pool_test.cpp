#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace provmark::runtime {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ClampsThreadCountToOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.thread_count(), 1);
  int runs = 0;
  pool.parallel_for(5, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 5);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelMapPreservesItemOrder) {
  ThreadPool pool(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> doubled = pool.parallel_map<int>(
      items, [](int item, std::size_t) { return item * 2; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, ResultsIdenticalAcrossThreadCounts) {
  // The determinism contract: per-task values derived from (seed, index)
  // are bit-identical however the indices are scheduled.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(64);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = util::Rng(task_seed(42, i)).next_u64();
    });
    return out;
  };
  std::vector<std::uint64_t> serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FirstExceptionIsRethrown) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed loop and stays usable.
  std::atomic<int> runs{0};
  pool.parallel_for(16, [&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 16);
}

TEST(ThreadPool, TaskSeedDecorrelatesNeighbours) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(task_seed(1, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1);
  EXPECT_GE(default_pool().thread_count(), 1);
}

}  // namespace
}  // namespace provmark::runtime
