#include "datalog/engine.h"

#include <gtest/gtest.h>

#include "datalog/fact_io.h"

namespace provmark::datalog {
namespace {

TEST(Engine, GroundFactsAndQuery) {
  Engine e;
  e.add_fact("edge", {"a", "b"});
  e.add_fact("edge", {"b", "c"});
  auto rows = e.query("edge(a, X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("X"), "b");
}

TEST(Engine, TransitiveClosure) {
  Engine e;
  e.load_program(
      "edge(a,b). edge(b,c). edge(c,d).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).\n");
  EXPECT_EQ(e.relation("path").size(), 6u);
  EXPECT_EQ(e.query("path(a,d)").size(), 1u);
  EXPECT_TRUE(e.query("path(d,a)").empty());
}

TEST(Engine, CycleTerminates) {
  Engine e;
  e.load_program(
      "edge(a,b). edge(b,a).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).\n");
  // Reaches fixpoint despite the cycle: {a,b} x {a,b}.
  EXPECT_EQ(e.relation("path").size(), 4u);
}

TEST(Engine, Disequality) {
  Engine e;
  e.load_program(
      "n(a). n(b). n(c).\n"
      "pair(X,Y) :- n(X), n(Y), X != Y.\n");
  EXPECT_EQ(e.relation("pair").size(), 6u);  // 3x3 minus diagonal
}

TEST(Engine, QuotedConstants) {
  Engine e;
  e.load_program("label(n1, \"a b c\").\n");
  auto rows = e.query("label(n1, L)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("L"), "a b c");
}

TEST(Engine, AnonymousVariable) {
  Engine e;
  e.load_program("edge(a,b). edge(a,c).\n");
  EXPECT_EQ(e.query("edge(a, _)").size(), 2u);
}

TEST(Engine, JoinAcrossRelations) {
  Engine e;
  e.load_program(
      "parent(tom, bob). parent(bob, ann).\n"
      "grandparent(X,Z) :- parent(X,Y), parent(Y,Z).\n");
  auto rows = e.query("grandparent(tom, Z)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("Z"), "ann");
}

TEST(Engine, RangeRestrictionEnforced) {
  Engine e;
  Rule rule;
  rule.head = parse_atom("out(X, Y)");
  rule.body.push_back(parse_atom("in(X)"));
  EXPECT_THROW(e.add_rule(rule), std::invalid_argument);
}

TEST(Engine, ArityMismatchRejected) {
  Engine e;
  e.add_fact("r", {"a"});
  EXPECT_THROW(e.add_fact("r", {"a", "b"}), std::invalid_argument);
}

TEST(Engine, FactWithVariableRejected) {
  Engine e;
  EXPECT_THROW(e.load_program("bad(X).\n"), std::invalid_argument);
}

TEST(Engine, RepeatedVariableInPattern) {
  Engine e;
  e.load_program("edge(a,a). edge(a,b).\n");
  EXPECT_EQ(e.query("edge(X, X)").size(), 1u);
}

TEST(Engine, FactCount) {
  Engine e;
  e.load_program("a(x). a(y). b(z).\n");
  e.run();
  EXPECT_EQ(e.fact_count(), 3u);
}

TEST(Engine, CommentsInProgram) {
  Engine e;
  e.load_program("% leading comment\na(x). % trailing\n");
  EXPECT_EQ(e.relation("a").size(), 1u);
}

TEST(Engine, LoadsGraphFacts) {
  // End-to-end with the Listing 1 representation: reachability over a
  // provenance graph, as the regression/query use cases do.
  graph::PropertyGraph g;
  g.add_node("p1", "Process");
  g.add_node("f1", "Artifact");
  g.add_node("f2", "Artifact");
  g.add_edge("x1", "p1", "f1", "Used");
  g.add_edge("x2", "f2", "p1", "WasGeneratedBy");
  Engine e;
  e.load_program(to_datalog(g, "r"));
  e.load_program(
      "flow(A,B) :- er(E, A, B, _).\n"
      "reach(A,B) :- flow(A,B).\n"
      "reach(A,C) :- reach(A,B), flow(B,C).\n");
  EXPECT_EQ(e.query("reach(f2, f1)").size(), 1u);
  EXPECT_TRUE(e.query("reach(f1, f2)").empty());
}

TEST(EngineNegation, NegationAsFailure) {
  Engine e;
  e.load_program(
      "node(a). node(b). node(c).\n"
      "edge(a,b).\n"
      "isolated(X) :- node(X), not edge(X, _), not edge(_, X).\n");
  auto rows = e.query("isolated(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("X"), "c");
}

TEST(EngineNegation, StratifiedLayering) {
  // reachable is computed fully before unreachable negates it.
  Engine e;
  e.load_program(
      "edge(a,b). edge(b,c). node(a). node(b). node(c). node(d).\n"
      "reach(X) :- edge(a, X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X), X != a.\n");
  auto rows = e.query("unreach(X)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("X"), "d");
}

TEST(EngineNegation, RejectsUnstratifiedProgram) {
  Engine e;
  e.load_program(
      "p(a).\n"
      "q(X) :- p(X), not r(X).\n"
      "r(X) :- p(X), not q(X).\n");
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(EngineNegation, RejectsUnboundNegatedVariable) {
  Engine e;
  EXPECT_THROW(e.load_program("q(X) :- p(X), not r(Y).\n"),
               std::invalid_argument);
}

TEST(EngineNegation, DetectorAbsenceQuery) {
  // The Dora-style "blind spot" query: flag file entities that were
  // written but never read in the benchmark result.
  graph::PropertyGraph g;
  g.add_node("t", "activity");
  g.add_node("f1", "entity");
  g.add_node("f2", "entity");
  g.add_edge("w1", "f1", "t", "wasGeneratedBy");
  g.add_edge("w2", "f2", "t", "wasGeneratedBy");
  g.add_edge("r1", "t", "f1", "used");
  Engine e;
  e.load_program(to_datalog(g, "r"));
  e.load_program(
      "written(F) :- er(_, F, _, \"wasGeneratedBy\").\n"
      "readback(F) :- er(_, _, F, \"used\").\n"
      "writeonly(F) :- written(F), not readback(F).\n");
  auto rows = e.query("writeonly(F)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("F"), "f2");
}

TEST(ParseAtom, Basics) {
  Atom a = parse_atom("rel(x, Y, \"lit\")");
  EXPECT_EQ(a.relation, "rel");
  ASSERT_EQ(a.terms.size(), 3u);
  EXPECT_FALSE(a.terms[0].is_variable());
  EXPECT_TRUE(a.terms[1].is_variable());
  EXPECT_EQ(a.terms[2].text, "lit");
}

TEST(ParseAtom, RejectsTrailing) {
  EXPECT_THROW(parse_atom("rel(x) extra"), std::invalid_argument);
}

}  // namespace
}  // namespace provmark::datalog
