#include "datalog/fact_io.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"

namespace provmark::datalog {
namespace {

graph::PropertyGraph sample() {
  // The Figure 4 / Listing 2 example graph g2.
  graph::PropertyGraph g;
  g.add_node("n1", "File", {{"Userid", "1"}, {"Name", "text"}});
  g.add_node("n2", "Process");
  g.add_edge("e1", "n1", "n2", "Used");
  return g;
}

TEST(FactIo, WritesListing1Format) {
  std::string text = to_datalog(sample(), "g2");
  EXPECT_NE(text.find("ng2(n1,\"File\")."), std::string::npos);
  EXPECT_NE(text.find("ng2(n2,\"Process\")."), std::string::npos);
  EXPECT_NE(text.find("eg2(e1,n1,n2,\"Used\")."), std::string::npos);
  EXPECT_NE(text.find("pg2(n1,\"Userid\",\"1\")."), std::string::npos);
  EXPECT_NE(text.find("pg2(n1,\"Name\",\"text\")."), std::string::npos);
}

TEST(FactIo, RoundTrip) {
  graph::PropertyGraph g = sample();
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "g1"), "g1");
  EXPECT_EQ(g, back);
}

TEST(FactIo, RoundTripWithSpecialCharacters) {
  graph::PropertyGraph g;
  g.add_node("n1", "File \"quoted\"", {{"path", "/tmp/a\\b"}});
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "x"), "x");
  EXPECT_EQ(g, back);
}

TEST(FactIo, RoundTripControlAndNonAsciiBytes) {
  // The escaping audit: constants carrying quotes, commas, newlines,
  // carriage returns, tabs and non-ASCII bytes must survive the
  // serialize/parse cycle. A raw newline in a value would otherwise
  // split the fact across two lines of the line-framed format.
  graph::PropertyGraph g;
  g.add_node("n1", "Label, with \"commas\"",
             {{"cmd", "sh -c \"echo a,b\"\nexit 1\r\n"},
              {"tabs", "a\tb\tc"},
              {"utf8", "caf\xC3\xA9 \xE2\x86\x92 r\xC3\xA9sultat"},
              {"raw", std::string("\xFF\x01 high and low bytes", 21)}});
  g.add_node("n2", "Process");
  g.add_edge("e1", "n1", "n2", "label\nwith newline",
             {{"k,ey", "v\"al\\ue"}});
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "x"), "x");
  EXPECT_EQ(g, back);
}

TEST(FactIo, RoundTripUnsafeElementIds) {
  // Ids outside the bare-identifier alphabet (uppercase heads would
  // read as Datalog variables, '/' and spaces break the clause lexer)
  // are emitted quoted and must round-trip.
  // Ids in sorted order: to_datalog sorts by id and PropertyGraph
  // equality is insertion-order-sensitive.
  graph::PropertyGraph g;
  g.add_node("/tmp/file one", "Artifact");  // path with a space
  g.add_node("N1", "Process");              // variable-like head
  g.add_node("cf:task:12", "Task");         // recorder id, stays bare
  g.add_edge("a:-b", "N1", "/tmp/file one", "Used");
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "x"), "x");
  EXPECT_EQ(g, back);
  EXPECT_NE(to_datalog(g, "x").find("nx(cf:task:12,"), std::string::npos);
}

TEST(FactIo, UnsafeIdsLoadIntoTheEngine) {
  // The Listing 1 document must stay consumable by Engine::load_program
  // even when ids need quoting — uppercase ids emitted bare used to
  // parse as variables and reject the fact.
  graph::PropertyGraph g;
  g.add_node("P1", "Process");
  g.add_node("f1", "Artifact", {{"path", "/tmp/out\n"}});
  g.add_edge("E1", "P1", "f1", "Used");
  Engine engine;
  engine.load_program(to_datalog(g, "r"));
  auto rows = engine.query("er(E, S, T, L)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("S"), "P1");
  EXPECT_EQ(engine.relation("pr").size(), 1u);
}

TEST(FactIo, MultipleGraphsInOneDocument) {
  std::string text = to_datalog(sample(), "bg") + to_datalog(sample(), "fg");
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs.at("bg"), graphs.at("fg"));
}

TEST(FactIo, OutputIsDeterministic) {
  EXPECT_EQ(to_datalog(sample(), "g"), to_datalog(sample(), "g"));
}

TEST(FactIo, ParsesCommentsAndBlankLines) {
  std::string text =
      "% a clingo-style comment\n\n// another comment\nng(a,\"X\").\n";
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.at("g").node_count(), 1u);
}

TEST(FactIo, EdgesMayPrecedeNodes) {
  std::string text =
      "eg(e1,a,b,\"L\").\n"
      "ng(a,\"X\").\n"
      "ng(b,\"Y\").\n";
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.at("g").edge_count(), 1u);
}

TEST(FactIo, RejectsDanglingEdge) {
  EXPECT_THROW(from_datalog("eg(e1,a,b,\"L\").\nng(a,\"X\").\n"),
               std::exception);
}

TEST(FactIo, RejectsPropertyOnUnknownElement) {
  EXPECT_THROW(from_datalog("pg(nope,\"k\",\"v\").\n"), std::runtime_error);
}

TEST(FactIo, RejectsMalformedFacts) {
  EXPECT_THROW(from_datalog("ng(a\n"), std::runtime_error);
  EXPECT_THROW(from_datalog("xg(a,\"L\").\n"), std::runtime_error);
  EXPECT_THROW(from_datalog("ng(a,\"unterminated).\n"), std::runtime_error);
}

TEST(FactIo, SingleGraphMissingGidThrows) {
  EXPECT_THROW(single_graph_from_datalog("ng(a,\"X\").", "other"),
               std::runtime_error);
}

TEST(FactIo, EmptyGraphProducesEmptyDocument) {
  EXPECT_EQ(to_datalog(graph::PropertyGraph{}, "g"), "");
}

TEST(FactIo, OversizedDocumentRejectedBeforeParsing) {
  const std::string text = to_datalog(sample(), "g2");
  EXPECT_NO_THROW(from_datalog(text, text.size()));
  try {
    from_datalog(text, text.size() - 1);
    FAIL() << "expected util::InputSizeError";
  } catch (const util::InputSizeError& e) {
    EXPECT_EQ(e.size, text.size());
    EXPECT_EQ(e.limit, text.size() - 1);
  }
  EXPECT_THROW(single_graph_from_datalog(text, "g2", text.size() - 1),
               util::InputSizeError);
  EXPECT_NO_THROW(single_graph_from_datalog(text, "g2", 0));
}

}  // namespace
}  // namespace provmark::datalog
