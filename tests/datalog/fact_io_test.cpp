#include "datalog/fact_io.h"

#include <gtest/gtest.h>

namespace provmark::datalog {
namespace {

graph::PropertyGraph sample() {
  // The Figure 4 / Listing 2 example graph g2.
  graph::PropertyGraph g;
  g.add_node("n1", "File", {{"Userid", "1"}, {"Name", "text"}});
  g.add_node("n2", "Process");
  g.add_edge("e1", "n1", "n2", "Used");
  return g;
}

TEST(FactIo, WritesListing1Format) {
  std::string text = to_datalog(sample(), "g2");
  EXPECT_NE(text.find("ng2(n1,\"File\")."), std::string::npos);
  EXPECT_NE(text.find("ng2(n2,\"Process\")."), std::string::npos);
  EXPECT_NE(text.find("eg2(e1,n1,n2,\"Used\")."), std::string::npos);
  EXPECT_NE(text.find("pg2(n1,\"Userid\",\"1\")."), std::string::npos);
  EXPECT_NE(text.find("pg2(n1,\"Name\",\"text\")."), std::string::npos);
}

TEST(FactIo, RoundTrip) {
  graph::PropertyGraph g = sample();
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "g1"), "g1");
  EXPECT_EQ(g, back);
}

TEST(FactIo, RoundTripWithSpecialCharacters) {
  graph::PropertyGraph g;
  g.add_node("n1", "File \"quoted\"", {{"path", "/tmp/a\\b"}});
  graph::PropertyGraph back =
      single_graph_from_datalog(to_datalog(g, "x"), "x");
  EXPECT_EQ(g, back);
}

TEST(FactIo, MultipleGraphsInOneDocument) {
  std::string text = to_datalog(sample(), "bg") + to_datalog(sample(), "fg");
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs.at("bg"), graphs.at("fg"));
}

TEST(FactIo, OutputIsDeterministic) {
  EXPECT_EQ(to_datalog(sample(), "g"), to_datalog(sample(), "g"));
}

TEST(FactIo, ParsesCommentsAndBlankLines) {
  std::string text =
      "% a clingo-style comment\n\n// another comment\nng(a,\"X\").\n";
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.at("g").node_count(), 1u);
}

TEST(FactIo, EdgesMayPrecedeNodes) {
  std::string text =
      "eg(e1,a,b,\"L\").\n"
      "ng(a,\"X\").\n"
      "ng(b,\"Y\").\n";
  auto graphs = from_datalog(text);
  EXPECT_EQ(graphs.at("g").edge_count(), 1u);
}

TEST(FactIo, RejectsDanglingEdge) {
  EXPECT_THROW(from_datalog("eg(e1,a,b,\"L\").\nng(a,\"X\").\n"),
               std::exception);
}

TEST(FactIo, RejectsPropertyOnUnknownElement) {
  EXPECT_THROW(from_datalog("pg(nope,\"k\",\"v\").\n"), std::runtime_error);
}

TEST(FactIo, RejectsMalformedFacts) {
  EXPECT_THROW(from_datalog("ng(a\n"), std::runtime_error);
  EXPECT_THROW(from_datalog("xg(a,\"L\").\n"), std::runtime_error);
  EXPECT_THROW(from_datalog("ng(a,\"unterminated).\n"), std::runtime_error);
}

TEST(FactIo, SingleGraphMissingGidThrows) {
  EXPECT_THROW(single_graph_from_datalog("ng(a,\"X\").", "other"),
               std::runtime_error);
}

TEST(FactIo, EmptyGraphProducesEmptyDocument) {
  EXPECT_EQ(to_datalog(graph::PropertyGraph{}, "g"), "");
}

}  // namespace
}  // namespace provmark::datalog
