// Equivalence of the interned, indexed engine against the preserved
// seed-era evaluator (datalog::legacy::Engine), across every evaluation
// configuration: indexed and scan-only, serial and parallel stratum
// evaluation. The engines must derive bit-identical relation contents
// and query results on every program — the same contract the matcher
// rewrite enforces through its legacy-equivalence test.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/engine.h"
#include "datalog/fact_io.h"
#include "datalog/legacy_engine.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"
#include "datalog_batch_common.h"
#include "util/strings.h"

namespace provmark::datalog {
namespace {

struct Workload {
  std::string name;
  std::string program;
  std::vector<std::string> relations;  ///< output relations to compare
  std::vector<std::string> queries;    ///< query atoms to compare
};

/// A provenance-flavoured random fact base: edge/2 over `n` nodes plus
/// label/2 facts, seeded deterministically.
std::string random_edges(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out;
  for (int i = 0; i < m; ++i) {
    out += "edge(n" + std::to_string(rng.next_below(n)) + ",n" +
           std::to_string(rng.next_below(n)) + ").\n";
  }
  for (int i = 0; i < n; ++i) {
    out += "node(n" + std::to_string(i) + ").\n";
    out += "label(n" + std::to_string(i) + ",l" + std::to_string(i % 3) +
           ").\n";
  }
  return out;
}

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back(
      {"transitive_closure",
       random_edges(12, 20, 1) +
           "path(X,Y) :- edge(X,Y).\n"
           "path(X,Z) :- path(X,Y), edge(Y,Z).\n",
       {"path"},
       {"path(n0, X)", "path(X, n3)", "path(X, Y)"}});
  out.push_back(
      {"same_generation",
       random_edges(10, 14, 2) +
           "sg(X,X) :- node(X).\n"
           "sg(X,Y) :- edge(A,X), sg(A,B), edge(B,Y).\n",
       {"sg"},
       {"sg(n1, X)"}});
  out.push_back(
      {"triangle_and_diseq",
       random_edges(9, 24, 3) +
           "tri(X,Y,Z) :- edge(X,Y), edge(Y,Z), edge(Z,X).\n"
           "pair(X,Y) :- node(X), node(Y), X != Y.\n"
           "loop(X) :- edge(X,X).\n",
       {"tri", "pair", "loop"},
       {"tri(X, Y, Z)", "pair(n0, X)"}});
  out.push_back(
      {"stratified_negation",
       random_edges(11, 16, 4) +
           "reach(X) :- edge(n0, X).\n"
           "reach(Y) :- reach(X), edge(X, Y).\n"
           "unreach(X) :- node(X), not reach(X), X != n0.\n"
           "source(X) :- node(X), not edge(_, X).\n"
           "sink(X) :- node(X), not edge(X, _).\n"
           "isolated(X) :- source(X), sink(X).\n",
       {"reach", "unreach", "source", "sink", "isolated"},
       {"unreach(X)", "isolated(X)"}});
  out.push_back(
      {"constants_and_repeats",
       random_edges(8, 18, 5) +
           "l0pair(X,Y) :- label(X,l0), label(Y,l0), edge(X,Y).\n"
           "selfpair(X) :- edge(X,X).\n"
           "tagged(X,\"a b\") :- label(X, l1).\n",
       {"l0pair", "selfpair", "tagged"},
       {"tagged(X, Y)", "l0pair(X, X)"}});
  // The Listing 1 graph representation end-to-end, as the regression and
  // query use cases exercise it.
  {
    graph::PropertyGraph g;
    g.add_node("p1", "Process");
    g.add_node("f1", "Artifact");
    g.add_node("f2", "Artifact");
    g.add_edge("x1", "p1", "f1", "Used");
    g.add_edge("x2", "f2", "p1", "WasGeneratedBy");
    out.push_back(
        {"graph_facts",
         to_datalog(g, "r") +
             "flow(A,B) :- er(E, A, B, _).\n"
             "reach(A,B) :- flow(A,B).\n"
             "reach(A,C) :- reach(A,B), flow(B,C).\n"
             "written(F) :- er(_, F, _, \"WasGeneratedBy\").\n"
             "readback(F) :- er(_, _, F, \"Used\").\n"
             "writeonly(F) :- written(F), not readback(F).\n",
         {"reach", "writeonly"},
         {"reach(f2, X)", "writeonly(F)"}});
  }
  return out;
}

struct EngineConfig {
  std::string name;
  Engine::EvalOptions options;
};

void expect_equivalent(const Workload& w, const EngineConfig& config,
                       runtime::ThreadPool* pool) {
  legacy::Engine reference;
  reference.load_program(w.program);
  Engine engine;
  Engine::EvalOptions options = config.options;
  options.pool = pool;
  engine.set_eval_options(options);
  engine.load_program(w.program);

  for (const std::string& relation : w.relations) {
    EXPECT_EQ(engine.relation(relation), reference.relation(relation))
        << w.name << " / " << config.name << " / " << relation;
  }
  for (const std::string& query : w.queries) {
    EXPECT_EQ(engine.query(query), reference.query(query))
        << w.name << " / " << config.name << " / " << query;
  }
  EXPECT_EQ(engine.fact_count(), reference.fact_count())
      << w.name << " / " << config.name;
}

TEST(EngineEquivalence, AllConfigurationsMatchLegacy) {
  runtime::ThreadPool pool(4);
  std::vector<EngineConfig> configs = {
      {"indexed_serial", {true, 1, nullptr}},
      {"scan_serial", {false, 1, nullptr}},
      {"indexed_parallel4", {true, 4, nullptr}},
      {"scan_parallel4", {false, 4, nullptr}},
  };
  for (const Workload& w : workloads()) {
    for (const EngineConfig& config : configs) {
      expect_equivalent(w, config, &pool);
    }
  }
}

TEST(EngineEquivalence, ThreadCountDoesNotChangeResults) {
  // The parallel stratum evaluation contract: identical derived facts at
  // any worker count, enforced per relation on the heaviest workload.
  const Workload w = workloads()[0];
  std::set<Tuple> baseline;
  for (int threads : {1, 2, 4, 8}) {
    runtime::ThreadPool pool(threads);
    Engine engine;
    engine.set_eval_options({true, threads, &pool});
    engine.load_program(w.program);
    std::set<Tuple> derived = engine.relation("path");
    if (threads == 1) {
      baseline = std::move(derived);
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(derived, baseline) << "threads=" << threads;
    }
  }
}

TEST(EngineEquivalence, ErrorBehaviourMatchesLegacy) {
  // The exception contract rides along with the rewrite.
  Engine engine;
  engine.add_fact("r", {"a"});
  EXPECT_THROW(engine.add_fact("r", {"a", "b"}), std::invalid_argument);
  EXPECT_THROW(engine.load_program("bad(X).\n"), std::invalid_argument);
  EXPECT_THROW(engine.load_program("q(X) :- p(X), not r(Y).\n"),
               std::invalid_argument);
  Engine unstratified;
  unstratified.load_program(
      "p(a).\n"
      "q(X) :- p(X), not r(X).\n"
      "r(X) :- p(X), not q(X).\n");
  EXPECT_THROW(unstratified.run(), std::logic_error);
}

TEST(EngineEquivalence, IncrementalDeltaReuseMatchesFromScratch) {
  // The PR's incremental contract: seeding the first semi-naive round
  // with only the rows appended since the last run() must leave the
  // fact store bit-identical to a from-scratch re-derivation after
  // every batch — on every workload, including stratified negation,
  // and against the legacy engine replaying the same batches.
  for (const Workload& w : workloads()) {
    std::string rules;
    std::vector<std::string> batches;
    provmark_bench::split_fact_batches(w.program, 4, &rules, &batches);

    Engine incremental;
    incremental.set_eval_options({true, 1, nullptr, /*incremental=*/true});
    Engine scratch;
    scratch.set_eval_options({true, 1, nullptr, /*incremental=*/false});
    legacy::Engine reference;
    incremental.load_program(rules);
    scratch.load_program(rules);
    reference.load_program(rules);

    for (std::size_t b = 0; b < batches.size(); ++b) {
      incremental.load_program(batches[b]);
      scratch.load_program(batches[b]);
      reference.load_program(batches[b]);
      for (const std::string& relation : w.relations) {
        EXPECT_EQ(incremental.relation(relation), scratch.relation(relation))
            << w.name << " batch " << b << " / " << relation;
        EXPECT_EQ(incremental.relation(relation),
                  reference.relation(relation))
            << w.name << " batch " << b << " / " << relation << " (legacy)";
      }
      EXPECT_EQ(incremental.fact_count(), scratch.fact_count())
          << w.name << " batch " << b;
    }
    for (const std::string& query : w.queries) {
      EXPECT_EQ(incremental.query(query), scratch.query(query))
          << w.name << " / " << query;
    }
  }
}

TEST(EngineEquivalence, IncrementalParallelMatchesSerial) {
  // Delta seeding composes with per-stratum parallel evaluation: same
  // batched replay, any thread count, identical stores.
  const Workload w = workloads()[3];  // stratified_negation
  std::string rules;
  std::vector<std::string> batches;
  provmark_bench::split_fact_batches(w.program, 3, &rules, &batches);
  std::map<std::string, std::set<Tuple>> baseline;
  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    Engine engine;
    engine.set_eval_options({true, threads, &pool, /*incremental=*/true});
    engine.load_program(rules);
    for (const std::string& batch : batches) {
      engine.load_program(batch);
      engine.run();
    }
    for (const std::string& relation : w.relations) {
      if (threads == 1) {
        baseline[relation] = engine.relation(relation);
      } else {
        EXPECT_EQ(engine.relation(relation), baseline[relation])
            << relation << " threads=" << threads;
      }
    }
  }
}

TEST(EngineEquivalence, RuleAddedAfterRunFallsBackToFullDerivation) {
  // A rule added between runs never saw the old rows, so the engine
  // must re-derive from scratch; the incremental watermark alone would
  // silently miss every old-rows-only derivation of the new rule.
  Engine engine;
  engine.load_program(
      "edge(a,b). edge(b,c).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).\n");
  EXPECT_EQ(engine.relation("path").size(), 3u);
  engine.load_program("reach(X) :- path(a,X).\n");
  EXPECT_EQ(engine.relation("reach").size(), 2u);
  // And fact batches after the new rule go back to incremental reuse.
  engine.add_fact("edge", {"c", "d"});
  EXPECT_EQ(engine.relation("path").size(), 6u);
  EXPECT_EQ(engine.relation("reach").size(), 3u);
}

TEST(EngineEquivalence, IncrementalFactsAfterRun) {
  // Facts added after a fixpoint must trigger re-evaluation, exactly as
  // the legacy engine's saturation flag did.
  for (bool parallel : {false, true}) {
    runtime::ThreadPool pool(3);
    Engine engine;
    engine.set_eval_options({true, parallel ? 3 : 1, &pool});
    engine.load_program(
        "edge(a,b).\n"
        "path(X,Y) :- edge(X,Y).\n"
        "path(X,Z) :- path(X,Y), edge(Y,Z).\n");
    EXPECT_EQ(engine.relation("path").size(), 1u);
    engine.add_fact("edge", {"b", "c"});
    EXPECT_EQ(engine.relation("path").size(), 3u);
    engine.add_fact("edge", {"c", "a"});
    EXPECT_EQ(engine.relation("path").size(), 9u);
  }
}

}  // namespace
}  // namespace provmark::datalog
