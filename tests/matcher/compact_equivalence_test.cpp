// The interned-engine rewrite must be observationally identical to the
// string-keyed baseline it replaced (legacy_matcher.cpp): same
// node_map/edge_map/cost AND the same Stats trace (steps,
// solutions_found, budget_exhausted) on every ablation configuration.
// Identical step counts mean the search visits the same tree in the same
// order — the rewrite changed the data layout, not the algorithm.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "matcher/legacy_matcher.h"
#include "matcher/matcher.h"
#include "util/rng.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

PropertyGraph random_graph(int nodes, int edges, util::Rng& rng) {
  static const char* kNodeLabels[] = {"Process", "Artifact", "Agent"};
  static const char* kEdgeLabels[] = {"Used", "WasGeneratedBy", "Was"};
  static const char* kKeys[] = {"pid", "path", "time"};
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    graph::Properties props;
    int prop_count = static_cast<int>(rng.next_below(3));
    for (int p = 0; p < prop_count; ++p) {
      props[kKeys[rng.next_below(3)]] = std::to_string(rng.next_below(4));
    }
    g.add_node("n" + std::to_string(i), kNodeLabels[rng.next_below(3)],
               std::move(props));
  }
  for (int i = 0; i < edges; ++i) {
    graph::Properties props;
    if (rng.chance(0.5)) props["op"] = std::to_string(rng.next_below(3));
    g.add_edge("e" + std::to_string(i),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               kEdgeLabels[rng.next_below(3)], std::move(props));
  }
  return g;
}

PropertyGraph shuffled_copy(const PropertyGraph& g, util::Rng& rng) {
  std::vector<const graph::Node*> nodes;
  for (const graph::Node& n : g.nodes()) nodes.push_back(&n);
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1], nodes[rng.next_below(i)]);
  }
  PropertyGraph out;
  for (const graph::Node* n : nodes) {
    out.add_node("s_" + n->id, n->label, n->props);
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("s_" + e.id, "s_" + e.src, "s_" + e.tgt, e.label, e.props);
  }
  return out;
}

/// The ablation grid the seed benchmarks exercise: every combination of
/// pruning/bounding knobs, cost models and candidate orders.
std::vector<SearchOptions> ablation_configs() {
  std::vector<SearchOptions> configs;
  for (CostModel model :
       {CostModel::None, CostModel::OneSided, CostModel::Symmetric}) {
    for (bool pruning : {true, false}) {
      for (bool bounding : {true, false}) {
        for (CandidateOrder order :
             {CandidateOrder::None, CandidateOrder::PropertyCost,
              CandidateOrder::TimestampRank}) {
          SearchOptions options;
          options.cost_model = model;
          options.candidate_pruning = pruning;
          options.cost_bounding = bounding;
          options.candidate_order = order;
          configs.push_back(options);
        }
      }
    }
  }
  return configs;
}

void expect_identical(const std::optional<Matching>& fast,
                      const Stats& fast_stats,
                      const std::optional<Matching>& slow,
                      const Stats& slow_stats, const std::string& context) {
  ASSERT_EQ(fast.has_value(), slow.has_value()) << context;
  EXPECT_EQ(fast_stats.steps, slow_stats.steps) << context;
  EXPECT_EQ(fast_stats.solutions_found, slow_stats.solutions_found)
      << context;
  EXPECT_EQ(fast_stats.budget_exhausted, slow_stats.budget_exhausted)
      << context;
  if (fast.has_value()) {
    EXPECT_EQ(fast->cost, slow->cost) << context;
    EXPECT_EQ(fast->node_map, slow->node_map) << context;
    EXPECT_EQ(fast->edge_map, slow->edge_map) << context;
  }
}

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, IsomorphismIdenticalAcrossAblationGrid) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 23);
  PropertyGraph g1 = random_graph(2 + GetParam() % 5, GetParam() % 6, rng);
  PropertyGraph g2 = rng.chance(0.6)
                         ? shuffled_copy(g1, rng)
                         : random_graph(2 + GetParam() % 5,
                                        GetParam() % 6, rng);
  if (!g2.nodes().empty()) {
    g2.set_property(g2.nodes().front().id, "time", "777");
  }
  int config_index = 0;
  for (const SearchOptions& options : ablation_configs()) {
    Stats fast_stats, slow_stats;
    auto fast = best_isomorphism(g1, g2, options, &fast_stats);
    auto slow = legacy::best_isomorphism(g1, g2, options, &slow_stats);
    expect_identical(fast, fast_stats, slow, slow_stats,
                     "iso seed " + std::to_string(GetParam()) + " config " +
                         std::to_string(config_index));
    ++config_index;
  }
}

TEST_P(EquivalenceTest, EmbeddingIdenticalAcrossAblationGrid) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2003 + 41);
  PropertyGraph fg = random_graph(3 + GetParam() % 5, GetParam() % 7, rng);
  PropertyGraph bg = random_graph(1 + GetParam() % 3, GetParam() % 3, rng);
  int config_index = 0;
  for (const SearchOptions& options : ablation_configs()) {
    Stats fast_stats, slow_stats;
    auto fast = best_subgraph_embedding(bg, fg, options, &fast_stats);
    auto slow = legacy::best_subgraph_embedding(bg, fg, options, &slow_stats);
    expect_identical(fast, fast_stats, slow, slow_stats,
                     "embed seed " + std::to_string(GetParam()) +
                         " config " + std::to_string(config_index));
    ++config_index;
  }
}

TEST_P(EquivalenceTest, FirstSolutionAndBudgetIdentical) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 509 + 3);
  PropertyGraph g1 = random_graph(3 + GetParam() % 4, GetParam() % 5, rng);
  PropertyGraph g2 = shuffled_copy(g1, rng);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  {
    SearchOptions first = options;
    first.first_solution_only = true;
    Stats fast_stats, slow_stats;
    auto fast = best_isomorphism(g1, g2, first, &fast_stats);
    auto slow = legacy::best_isomorphism(g1, g2, first, &slow_stats);
    expect_identical(fast, fast_stats, slow, slow_stats,
                     "first-solution seed " + std::to_string(GetParam()));
  }
  {
    SearchOptions budget = options;
    budget.step_budget = 4;
    Stats fast_stats, slow_stats;
    auto fast = best_isomorphism(g1, g2, budget, &fast_stats);
    auto slow = legacy::best_isomorphism(g1, g2, budget, &slow_stats);
    ASSERT_EQ(fast.has_value(), slow.has_value());
    EXPECT_EQ(fast_stats.steps, slow_stats.steps);
    EXPECT_EQ(fast_stats.budget_exhausted, slow_stats.budget_exhausted);
    if (fast.has_value()) {
      EXPECT_EQ(fast->node_map, slow->node_map);
    }
  }
}

TEST(EquivalenceEdgeCases, ParallelEdgesAndSelfLoops) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_node("b", "X");
  g1.add_edge("e1", "a", "b", "L", {{"op", "read"}});
  g1.add_edge("e2", "a", "b", "L", {{"op", "write"}});
  g1.add_edge("e3", "a", "a", "self");
  PropertyGraph g2;
  g2.add_node("p", "X");
  g2.add_node("q", "X");
  g2.add_edge("f1", "p", "q", "L", {{"op", "write"}});
  g2.add_edge("f2", "p", "q", "L", {{"op", "read"}});
  g2.add_edge("f3", "p", "p", "self");
  for (const SearchOptions& options : ablation_configs()) {
    Stats fast_stats, slow_stats;
    auto fast = best_isomorphism(g1, g2, options, &fast_stats);
    auto slow = legacy::best_isomorphism(g1, g2, options, &slow_stats);
    expect_identical(fast, fast_stats, slow, slow_stats, "parallel/self");
  }
}

TEST(EquivalenceEdgeCases, EmptyGraphs) {
  PropertyGraph empty, one;
  one.add_node("a", "X");
  for (const SearchOptions& options : ablation_configs()) {
    Stats fast_stats, slow_stats;
    auto fast = best_isomorphism(empty, empty, options, &fast_stats);
    auto slow = legacy::best_isomorphism(empty, empty, options, &slow_stats);
    expect_identical(fast, fast_stats, slow, slow_stats, "empty iso");

    Stats fast_embed, slow_embed;
    auto fast_e = best_subgraph_embedding(empty, one, options, &fast_embed);
    auto slow_e =
        legacy::best_subgraph_embedding(empty, one, options, &slow_embed);
    expect_identical(fast_e, fast_embed, slow_e, slow_embed, "empty embed");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace provmark::matcher
