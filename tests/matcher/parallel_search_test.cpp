// The deterministic parallel branch-and-bound must be observationally
// interchangeable with the serial search: identical feasibility, cost,
// *and node/edge mapping* at any thread count (the merge picks the
// first minimum-cost subtree in DFS order, and the allow-equal shared
// bound can never prune a subtree's first optimum — see docs/matcher.md
// "Search strategy"). Also covers the shared step budget's cooperative
// cancellation, the exactly-once Stats merge, the SimilarityMemo's
// duplicate-entry guard under concurrent posers, and the pipeline-level
// SearchConfig plumbing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "formats/dot.h"
#include "graph/algorithms.h"
#include "matcher/interned.h"
#include "matcher/matcher.h"
#include "matcher/memo.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

PropertyGraph random_graph(int nodes, int edges, util::Rng& rng) {
  static const char* kNodeLabels[] = {"Process", "Artifact", "Agent"};
  static const char* kEdgeLabels[] = {"Used", "WasGeneratedBy", "Was"};
  static const char* kKeys[] = {"pid", "path", "time"};
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    graph::Properties props;
    int prop_count = static_cast<int>(rng.next_below(3));
    for (int p = 0; p < prop_count; ++p) {
      props[kKeys[rng.next_below(3)]] = std::to_string(rng.next_below(4));
    }
    g.add_node("n" + std::to_string(i), kNodeLabels[rng.next_below(3)],
               std::move(props));
  }
  for (int i = 0; i < edges; ++i) {
    graph::Properties props;
    if (rng.chance(0.5)) props["op"] = std::to_string(rng.next_below(3));
    g.add_edge("e" + std::to_string(i),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               kEdgeLabels[rng.next_below(3)], std::move(props));
  }
  return g;
}

/// A provenance spine with artifact fan-out, as in the perf benchmark:
/// big enough that the parallel search genuinely partitions.
PropertyGraph provenance_graph(int processes, std::uint64_t seed) {
  util::Rng rng(seed);
  PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string(1000 + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < 3; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/" + pid + "f" + std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

PropertyGraph transient_copy(const PropertyGraph& g, std::uint64_t seed) {
  util::Rng rng(seed);
  PropertyGraph out;
  for (const graph::Node& n : g.nodes()) {
    graph::Properties props = n.props;
    if (props.count("time") > 0) {
      props["time"] = std::to_string(rng.next_below(100000));
    }
    out.add_node("x" + n.id, n.label, props);
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("x" + e.id, "x" + e.src, "x" + e.tgt, e.label, e.props);
  }
  return out;
}

void expect_same_outcome(const std::optional<Matching>& serial,
                         const Stats& serial_stats,
                         const std::optional<Matching>& parallel,
                         const Stats& parallel_stats,
                         const std::string& context) {
  ASSERT_EQ(serial.has_value(), parallel.has_value()) << context;
  EXPECT_EQ(serial_stats.budget_exhausted, parallel_stats.budget_exhausted)
      << context;
  if (serial.has_value()) {
    EXPECT_EQ(serial->cost, parallel->cost) << context;
    EXPECT_EQ(serial->node_map, parallel->node_map) << context;
    EXPECT_EQ(serial->edge_map, parallel->edge_map) << context;
  }
}

class ParallelIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelIdentityTest, MatchesSerialAtEveryThreadCount) {
  const int threads = GetParam();
  runtime::ThreadPool pool(threads);
  for (CandidateOrder order :
       {CandidateOrder::PropertyCost, CandidateOrder::WlScarcity}) {
    for (int seed = 0; seed < 12; ++seed) {
      util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 11);
      PropertyGraph g1 = random_graph(3 + seed % 5, 2 + seed % 6, rng);
      PropertyGraph g2 = transient_copy(g1, seed + 100);
      SearchOptions serial;
      serial.cost_model = CostModel::Symmetric;
      serial.candidate_order = order;
      SearchOptions par = serial;
      par.threads = threads;
      par.pool = &pool;

      Stats serial_stats, parallel_stats;
      auto s = best_isomorphism(g1, g2, serial, &serial_stats);
      auto p = best_isomorphism(g1, g2, par, &parallel_stats);
      expect_same_outcome(s, serial_stats, p, parallel_stats,
                          "iso seed " + std::to_string(seed) + " threads " +
                              std::to_string(threads));

      PropertyGraph bg = random_graph(2 + seed % 3, seed % 3, rng);
      SearchOptions embed_serial = serial;
      embed_serial.cost_model = CostModel::OneSided;
      SearchOptions embed_par = par;
      embed_par.cost_model = CostModel::OneSided;
      Stats es, ep;
      auto se = best_subgraph_embedding(bg, g1, embed_serial, &es);
      auto pe = best_subgraph_embedding(bg, g1, embed_par, &ep);
      expect_same_outcome(se, es, pe, ep,
                          "embed seed " + std::to_string(seed) + " threads " +
                              std::to_string(threads));
    }
  }
}

TEST_P(ParallelIdentityTest, ProvenanceSpineIdenticalMapping) {
  const int threads = GetParam();
  runtime::ThreadPool pool(threads);
  PropertyGraph g1 = provenance_graph(8, 1);
  PropertyGraph g2 = transient_copy(g1, 2);
  for (CandidateOrder order :
       {CandidateOrder::PropertyCost, CandidateOrder::WlScarcity}) {
    for (bool decompose : {false, true}) {
      SearchOptions serial;
      serial.cost_model = CostModel::Symmetric;
      serial.candidate_order = order;
      serial.component_decomposition = decompose;
      SearchOptions par = serial;
      par.threads = threads;
      par.pool = &pool;
      Stats ss, ps;
      auto s = best_isomorphism(g1, g2, serial, &ss);
      auto p = best_isomorphism(g1, g2, par, &ps);
      expect_same_outcome(s, ss, p, ps,
                          "spine threads " + std::to_string(threads));
      ASSERT_TRUE(s.has_value());
      EXPECT_FALSE(ss.budget_exhausted);
      // Steps aggregate across workers: merged exactly once, so the
      // total is at least the serial prefix enumeration and every
      // solution is counted once.
      EXPECT_GT(ps.steps, 0u);
      EXPECT_GE(ps.solutions_found, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelIdentityTest,
                         ::testing::Values(1, 4, 8));

TEST(ParallelBudget, ExhaustionReportedAtAnyThreadCount) {
  PropertyGraph g1 = provenance_graph(10, 3);
  PropertyGraph g2 = transient_copy(g1, 4);
  runtime::ThreadPool pool(4);
  // A budget far below the instance's search needs: serial and parallel
  // must both report exhaustion.
  for (int threads : {1, 4}) {
    SearchOptions options;
    options.cost_model = CostModel::Symmetric;
    options.candidate_order = CandidateOrder::None;  // uninformed = huge tree
    options.step_budget = 50;
    options.threads = threads;
    options.pool = &pool;
    Stats stats;
    best_isomorphism(g1, g2, options, &stats);
    EXPECT_TRUE(stats.budget_exhausted) << "threads " << threads;
  }
}

TEST(ParallelBudget, CooperativeCancellationIsPrompt) {
  // Unpruned, this instance's tree runs to several hundred thousand
  // steps (~2^16 artifact-swap automorphisms), so the shared budget is
  // guaranteed to trip and the assertion below genuinely bounds how
  // fast siblings notice.
  PropertyGraph g1 = provenance_graph(16, 5);
  PropertyGraph g2 = transient_copy(g1, 6);
  runtime::ThreadPool pool(8);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = CandidateOrder::None;
  // No pruning at all: the joint tree is astronomically larger than the
  // budget at every thread count, so exhaustion is guaranteed.
  options.candidate_pruning = false;
  options.cost_bounding = false;
  options.step_budget = 20'000;
  options.threads = 8;
  options.pool = &pool;
  Stats stats;
  best_isomorphism(g1, g2, options, &stats);
  ASSERT_TRUE(stats.budget_exhausted);
  // Budget enforcement is batched (one flush per 512 steps per worker):
  // siblings cancel within one batch each instead of running to a
  // private budget. 9 participants x 512 + the tripping worker's batch
  // bounds the overshoot; 16x slack keeps the test robust while still
  // failing if cancellation regresses to per-worker budgets (which
  // would allow ~8x the budget).
  EXPECT_LT(stats.steps, options.step_budget + 9 * 512 * 16);
}

TEST(ParallelBudget, SubBatchTasksStillEnforceTheBudget) {
  // Regression: tasks are small by design (~16 per thread), so most
  // finish without ever filling a 512-step flush batch. The end-of-task
  // flush must still publish their steps and check the budget —
  // otherwise a fleet of sub-batch tasks overruns step_budget with
  // budget_exhausted left false.
  PropertyGraph g1 = provenance_graph(6, 9);
  PropertyGraph g2 = transient_copy(g1, 10);
  SearchOptions serial;
  serial.cost_model = CostModel::Symmetric;
  serial.candidate_order = CandidateOrder::None;
  serial.candidate_pruning = false;
  serial.cost_bounding = false;
  Stats full;
  ASSERT_TRUE(best_isomorphism(g1, g2, serial, &full).has_value());
  ASSERT_GT(full.steps, 64u);  // instance big enough to halve

  runtime::ThreadPool pool(8);
  SearchOptions par = serial;
  par.threads = 8;
  par.pool = &pool;
  par.step_budget = full.steps / 2;
  Stats stats;
  best_isomorphism(g1, g2, par, &stats);
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(ParallelBudget, SerialSemanticsUnchangedAtOneThread) {
  // threads=1 must take the exact serial path: same steps trace as a
  // default-options run.
  PropertyGraph g1 = provenance_graph(6, 7);
  PropertyGraph g2 = transient_copy(g1, 8);
  SearchOptions serial;
  serial.cost_model = CostModel::Symmetric;
  SearchOptions one = serial;
  one.threads = 1;
  Stats ss, os;
  auto a = best_isomorphism(g1, g2, serial, &ss);
  auto b = best_isomorphism(g1, g2, one, &os);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(ss.steps, os.steps);
  EXPECT_EQ(a->node_map, b->node_map);
}

TEST(MemoConcurrency, EachPairStoredExactlyOnce) {
  // Hammer one memo with the same pairs from many threads; the
  // duplicate-insert guard must keep one entry per distinct pair and
  // the counters must stay consistent (no double-counted verdicts when
  // the totals are merged into BenchmarkResult).
  graph::SymbolTable symbols;
  PropertyGraph a = provenance_graph(3, 1);
  PropertyGraph b = transient_copy(a, 2);
  PropertyGraph c = provenance_graph(4, 3);
  InternedGraph ia(a, symbols), ib(b, symbols), ic(c, symbols);
  std::uint64_t da = graph::structural_digest(a);
  std::uint64_t db = graph::structural_digest(b);
  std::uint64_t dc = graph::structural_digest(c);

  SimilarityMemo memo;
  runtime::ThreadPool pool(8);
  const std::size_t kCalls = 64;
  pool.parallel_for(kCalls, [&](std::size_t i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(memo.similar(da, db, ia, ib));
    } else {
      EXPECT_FALSE(memo.similar(da, dc, ia, ic));
    }
  });
  // (ia,ib) is the only equal-digest pair ever solved; (ia,ic) is a
  // digest-mismatch short-circuit and stores nothing.
  EXPECT_EQ(memo.entries(), 1u);
  EXPECT_EQ(memo.lookups(), kCalls);
  // Everything but the (<= thread count) racing initial solves of
  // (ia,ib) is answered from cache or short-circuit.
  EXPECT_GE(memo.hits() + 9, kCalls);
}

TEST(PipelineSearchConfig, ResultsIdenticalAtAnyMatcherThreadCount) {
  // The SearchConfig plumbed through PipelineOptions must leave the
  // benchmark result invariant across matcher thread counts (and the
  // WL strategy must preserve statuses and costs end to end).
  bench_suite::BenchmarkProgram program = bench_suite::benchmark_by_name(
      "rename");
  runtime::ThreadPool matcher_pool(8);
  std::vector<std::string> dots;
  for (int threads : {1, 8}) {
    core::PipelineOptions options;
    options.system = "spade";
    options.matcher.order = CandidateOrder::WlScarcity;
    options.matcher.decompose = true;
    options.matcher.threads = threads;
    options.matcher.pool = threads > 1 ? &matcher_pool : nullptr;
    core::BenchmarkResult result = core::run_benchmark(program, options);
    EXPECT_EQ(result.status, core::BenchmarkStatus::Ok);
    EXPECT_GT(result.matcher_steps, 0u);
    dots.push_back(formats::to_dot(result.result, "r") +
                   formats::to_dot(result.generalized_background, "bg") +
                   formats::to_dot(result.generalized_foreground, "fg"));
  }
  EXPECT_EQ(dots[0], dots[1]);
}

}  // namespace
}  // namespace provmark::matcher
