#include "matcher/matcher.h"

#include <gtest/gtest.h>

#include "graph/property_graph.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

PropertyGraph triangle(const std::string& prefix) {
  PropertyGraph g;
  g.add_node(prefix + "a", "P");
  g.add_node(prefix + "b", "A");
  g.add_node(prefix + "c", "A");
  g.add_edge(prefix + "e1", prefix + "a", prefix + "b", "Used");
  g.add_edge(prefix + "e2", prefix + "b", prefix + "c", "WasDerivedFrom");
  g.add_edge(prefix + "e3", prefix + "a", prefix + "c", "Used");
  return g;
}

TEST(Similar, IsomorphicGraphsIgnoringProperties) {
  PropertyGraph g1 = triangle("x");
  PropertyGraph g2 = triangle("y");
  g2.set_property("ya", "time", "999");  // properties must not matter
  EXPECT_TRUE(similar(g1, g2));
}

TEST(Similar, DifferentNodeCounts) {
  PropertyGraph g2 = triangle("y");
  g2.add_node("extra", "A");
  EXPECT_FALSE(similar(triangle("x"), g2));
}

TEST(Similar, DifferentEdgeLabels) {
  PropertyGraph g2 = triangle("y");
  g2.find_edge("ye2")->label = "Other";
  EXPECT_FALSE(similar(triangle("x"), g2));
}

TEST(Similar, DifferentNodeLabels) {
  PropertyGraph g2 = triangle("y");
  g2.find_node("yb")->label = "Z";
  EXPECT_FALSE(similar(triangle("x"), g2));
}

TEST(Similar, EdgeDirectionMatters) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_node("b", "X");
  g1.add_edge("e", "a", "b", "L");
  PropertyGraph g2;
  g2.add_node("a", "X");
  g2.add_node("b", "X");
  g2.add_edge("e", "b", "a", "L");
  // Both have one X->X edge; as unlabeled shapes these ARE isomorphic.
  EXPECT_TRUE(similar(g1, g2));
  // But pin the endpoints with distinct labels and direction shows.
  g1.find_node("a")->label = "S";
  g2.find_node("a")->label = "S";
  EXPECT_FALSE(similar(g1, g2));
}

TEST(Similar, EmptyGraphs) {
  EXPECT_TRUE(similar(PropertyGraph{}, PropertyGraph{}));
  EXPECT_FALSE(similar(PropertyGraph{}, triangle("x")));
}

TEST(Similar, ParallelEdgeMultiplicity) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_node("b", "X");
  g1.add_edge("e1", "a", "b", "L");
  g1.add_edge("e2", "a", "b", "L");
  PropertyGraph g2;
  g2.add_node("a", "X");
  g2.add_node("b", "X");
  g2.add_edge("e1", "a", "b", "L");
  EXPECT_FALSE(similar(g1, g2));
  g2.add_edge("e2", "a", "b", "L");
  EXPECT_TRUE(similar(g1, g2));
}

TEST(BestIsomorphism, MinimizesPropertyMismatch) {
  // Two interchangeable "A" nodes; only one assignment matches the
  // stable property. The optimal matching must find it.
  PropertyGraph g1;
  g1.add_node("p", "P");
  g1.add_node("a1", "A", {{"path", "/tmp/x"}, {"time", "1"}});
  g1.add_node("a2", "A", {{"path", "/tmp/y"}, {"time", "2"}});
  g1.add_edge("e1", "p", "a1", "Used");
  g1.add_edge("e2", "p", "a2", "Used");
  PropertyGraph g2;
  g2.add_node("q", "P");
  g2.add_node("b1", "A", {{"path", "/tmp/y"}, {"time", "8"}});
  g2.add_node("b2", "A", {{"path", "/tmp/x"}, {"time", "9"}});
  g2.add_edge("f1", "q", "b1", "Used");
  g2.add_edge("f2", "q", "b2", "Used");

  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->node_map.at("a1"), "b2");  // path match wins
  EXPECT_EQ(matching->node_map.at("a2"), "b1");
  // Cost: only the time properties mismatch (2 nodes x both directions).
  EXPECT_EQ(matching->cost, 4);
}

TEST(BestIsomorphism, ZeroCostOnIdenticalGraphs) {
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  auto matching = best_isomorphism(triangle("x"), triangle("x"), options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
  EXPECT_EQ(matching->node_map.size(), 3u);
  EXPECT_EQ(matching->edge_map.size(), 3u);
}

TEST(BestIsomorphism, EdgePropertyCostCounts) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_node("b", "X");
  g1.add_edge("e", "a", "b", "L", {{"op", "read"}});
  PropertyGraph g2;
  g2.add_node("a", "X");
  g2.add_node("b", "X");
  g2.add_edge("e", "a", "b", "L", {{"op", "write"}});
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 2);  // mismatch counted from both sides
}

TEST(BestSubgraphEmbedding, FindsSubgraph) {
  PropertyGraph bg;
  bg.add_node("p", "P");
  bg.add_node("a", "A");
  bg.add_edge("e", "p", "a", "Used");

  PropertyGraph fg = triangle("t");  // t-a is P, others A, Used edges exist
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->node_map.at("p"), "ta");
  // a maps to tb or tc, both reachable by a Used edge from ta.
  EXPECT_TRUE(matching->node_map.at("a") == "tb" ||
              matching->node_map.at("a") == "tc");
}

TEST(BestSubgraphEmbedding, EmptyPatternEmbedsAnywhere) {
  auto matching = best_subgraph_embedding(PropertyGraph{}, triangle("t"));
  ASSERT_TRUE(matching.has_value());
  EXPECT_TRUE(matching->node_map.empty());
}

TEST(BestSubgraphEmbedding, FailsWhenNotEmbeddable) {
  PropertyGraph bg;
  bg.add_node("x", "NoSuchLabel");
  EXPECT_FALSE(best_subgraph_embedding(bg, triangle("t")).has_value());

  PropertyGraph bg2;
  bg2.add_node("a", "A");
  bg2.add_node("b", "A");
  bg2.add_edge("e", "a", "b", "NoSuchEdge");
  EXPECT_FALSE(best_subgraph_embedding(bg2, triangle("t")).has_value());
}

TEST(BestSubgraphEmbedding, OneSidedCostIgnoresExtraTargetProps) {
  PropertyGraph bg;
  bg.add_node("a", "X", {{"stable", "1"}});
  PropertyGraph fg;
  fg.add_node("b", "X", {{"stable", "1"}, {"extra", "2"}});
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);  // fg-only property is free
}

TEST(BestSubgraphEmbedding, PrefersCheaperCandidate) {
  PropertyGraph bg;
  bg.add_node("a", "X", {{"k", "v"}});
  PropertyGraph fg;
  fg.add_node("b1", "X", {{"k", "other"}});
  fg.add_node("b2", "X", {{"k", "v"}});
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->node_map.at("a"), "b2");
  EXPECT_EQ(matching->cost, 0);
}

TEST(BestSubgraphEmbedding, MatchesParallelEdgesByCheapestAssignment) {
  PropertyGraph bg;
  bg.add_node("a", "X");
  bg.add_node("b", "X");
  bg.add_edge("e1", "a", "b", "L", {{"op", "read"}});
  PropertyGraph fg;
  fg.add_node("a", "X");
  fg.add_node("b", "X");
  fg.add_edge("f1", "a", "b", "L", {{"op", "write"}});
  fg.add_edge("f2", "a", "b", "L", {{"op", "read"}});
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->edge_map.at("e1"), "f2");
  EXPECT_EQ(matching->cost, 0);
}

TEST(SearchOptions, StepBudgetAborts) {
  // A pathological instance: many interchangeable nodes.
  PropertyGraph g1, g2;
  for (int i = 0; i < 9; ++i) {
    g1.add_node("a" + std::to_string(i), "X");
    g2.add_node("b" + std::to_string(i), "X",
                {{"v", std::to_string(i)}});
  }
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.step_budget = 5;
  Stats stats;
  auto result = best_isomorphism(g1, g2, options, &stats);
  EXPECT_TRUE(stats.budget_exhausted);
  (void)result;  // may or may not hold a (suboptimal) value
}

TEST(SearchOptions, PruningDisabledStillCorrect) {
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_pruning = false;
  options.cost_bounding = false;
  auto matching = best_isomorphism(triangle("x"), triangle("y"), options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

TEST(Stats, CountsSteps) {
  Stats stats;
  SearchOptions options;
  auto matching =
      best_isomorphism(triangle("x"), triangle("y"), options, &stats);
  ASSERT_TRUE(matching.has_value());
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GE(stats.solutions_found, 1u);
}

TEST(SelfLoop, MatchedCorrectly) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_edge("e", "a", "a", "self");
  PropertyGraph g2;
  g2.add_node("b", "X");
  g2.add_edge("f", "b", "b", "self");
  EXPECT_TRUE(similar(g1, g2));
  auto matching = best_subgraph_embedding(g1, g2);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->edge_map.at("e"), "f");
}

}  // namespace
}  // namespace provmark::matcher
