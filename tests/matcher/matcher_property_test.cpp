// Property-based tests of the matching engine: randomized cross-checks
// against the brute-force reference, and invariants that must hold for
// any graph (permutation invariance, subgraph containment, cost bounds).
#include <gtest/gtest.h>

#include <vector>

#include "graph/property_graph.h"
#include "matcher/brute_force.h"
#include "matcher/matcher.h"
#include "util/rng.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

/// Random provenance-flavoured graph: n nodes with one of three labels,
/// random edges with one of three labels, random small property sets.
PropertyGraph random_graph(int nodes, int edges, util::Rng& rng) {
  static const char* kNodeLabels[] = {"Process", "Artifact", "Agent"};
  static const char* kEdgeLabels[] = {"Used", "WasGeneratedBy", "Was"};
  static const char* kKeys[] = {"pid", "path", "time"};
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    graph::Properties props;
    int prop_count = static_cast<int>(rng.next_below(3));
    for (int p = 0; p < prop_count; ++p) {
      props[kKeys[rng.next_below(3)]] =
          std::to_string(rng.next_below(4));
    }
    g.add_node("n" + std::to_string(i), kNodeLabels[rng.next_below(3)],
               std::move(props));
  }
  for (int i = 0; i < edges; ++i) {
    graph::Properties props;
    if (rng.chance(0.5)) {
      props["op"] = std::to_string(rng.next_below(3));
    }
    g.add_edge("e" + std::to_string(i),
               "n" + std::to_string(rng.next_below(
                         static_cast<std::uint64_t>(nodes))),
               "n" + std::to_string(rng.next_below(
                         static_cast<std::uint64_t>(nodes))),
               kEdgeLabels[rng.next_below(3)], std::move(props));
  }
  return g;
}

/// Shuffle ids and perturb some property values: the "second trial" view
/// of the same recording.
PropertyGraph shuffled_copy(const PropertyGraph& g, util::Rng& rng) {
  std::vector<const graph::Node*> nodes;
  for (const graph::Node& n : g.nodes()) nodes.push_back(&n);
  // Fisher-Yates.
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1], nodes[rng.next_below(i)]);
  }
  PropertyGraph out;
  for (const graph::Node* n : nodes) {
    out.add_node("s_" + n->id, n->label, n->props);
  }
  for (const graph::Edge& e : g.edges()) {
    out.add_edge("s_" + e.id, "s_" + e.src, "s_" + e.tgt, e.label, e.props);
  }
  return out;
}

class MatcherRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherRandomTest, ShuffledCopyIsSimilar) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  PropertyGraph g = random_graph(2 + GetParam() % 5, GetParam() % 7, rng);
  PropertyGraph h = shuffled_copy(g, rng);
  EXPECT_TRUE(similar(g, h));
  EXPECT_TRUE(similar(h, g));  // symmetry
}

TEST_P(MatcherRandomTest, ShuffledCopyHasZeroCostIsomorphism) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  PropertyGraph g = random_graph(2 + GetParam() % 5, GetParam() % 6, rng);
  PropertyGraph h = shuffled_copy(g, rng);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  auto matching = best_isomorphism(g, h, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

TEST_P(MatcherRandomTest, AgreesWithBruteForceIsomorphism) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  PropertyGraph g1 = random_graph(2 + GetParam() % 4, GetParam() % 5, rng);
  // Sometimes compare against a shuffled copy (isomorphic), sometimes an
  // independent graph (usually not isomorphic).
  PropertyGraph g2 = rng.chance(0.5)
                         ? shuffled_copy(g1, rng)
                         : random_graph(2 + GetParam() % 4,
                                        GetParam() % 5, rng);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  auto fast = best_isomorphism(g1, g2, options);
  auto slow = brute_force_isomorphism(g1, g2, CostModel::Symmetric);
  ASSERT_EQ(fast.has_value(), slow.has_value());
  if (fast.has_value()) {
    EXPECT_EQ(fast->cost, slow->cost);
  }
}

TEST_P(MatcherRandomTest, AgreesWithBruteForceEmbedding) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  PropertyGraph fg = random_graph(3 + GetParam() % 4, GetParam() % 6, rng);
  PropertyGraph bg = random_graph(1 + GetParam() % 3, GetParam() % 3, rng);
  SearchOptions options;
  options.cost_model = CostModel::OneSided;
  auto fast = best_subgraph_embedding(bg, fg, options);
  auto slow = brute_force_embedding(bg, fg, CostModel::OneSided);
  ASSERT_EQ(fast.has_value(), slow.has_value());
  if (fast.has_value()) {
    EXPECT_EQ(fast->cost, slow->cost);
  }
}

TEST_P(MatcherRandomTest, SubgraphAlwaysEmbedsIntoSupergraph) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  PropertyGraph fg = random_graph(4 + GetParam() % 4, 3 + GetParam() % 5,
                                  rng);
  // Build bg by deleting some elements of fg — guaranteed embeddable.
  PropertyGraph bg = fg;
  std::vector<graph::Id> edge_ids;
  for (const graph::Edge& e : bg.edges()) edge_ids.push_back(e.id);
  for (const graph::Id& id : edge_ids) {
    if (rng.chance(0.4)) bg.remove_edge(id);
  }
  std::vector<graph::Id> node_ids;
  for (const graph::Node& n : bg.nodes()) node_ids.push_back(n.id);
  for (const graph::Id& id : node_ids) {
    if (rng.chance(0.3)) bg.remove_node(id);
  }
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);  // bg elements carry identical properties
  EXPECT_EQ(matching->node_map.size(), bg.node_count());
  EXPECT_EQ(matching->edge_map.size(), bg.edge_count());
}

TEST_P(MatcherRandomTest, MatchingIsStructurePreserving) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 13);
  PropertyGraph fg = random_graph(4 + GetParam() % 3, 4, rng);
  PropertyGraph bg = fg;
  std::vector<graph::Id> node_ids;
  for (const graph::Node& n : bg.nodes()) node_ids.push_back(n.id);
  if (!node_ids.empty()) bg.remove_node(node_ids.front());
  auto matching = best_subgraph_embedding(bg, fg);
  ASSERT_TRUE(matching.has_value());
  // Verify the returned maps really form a homomorphism on labels and
  // endpoints (independently of the engine's own bookkeeping).
  for (const auto& [bg_id, fg_id] : matching->node_map) {
    EXPECT_EQ(bg.find_node(bg_id)->label, fg.find_node(fg_id)->label);
  }
  for (const auto& [bg_id, fg_id] : matching->edge_map) {
    const graph::Edge* be = bg.find_edge(bg_id);
    const graph::Edge* fe = fg.find_edge(fg_id);
    ASSERT_NE(be, nullptr);
    ASSERT_NE(fe, nullptr);
    EXPECT_EQ(be->label, fe->label);
    EXPECT_EQ(matching->node_map.at(be->src), fe->src);
    EXPECT_EQ(matching->node_map.at(be->tgt), fe->tgt);
  }
}

TEST_P(MatcherRandomTest, PruningDoesNotChangeOptimalCost) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 17);
  PropertyGraph g = random_graph(2 + GetParam() % 4, GetParam() % 5, rng);
  PropertyGraph h = shuffled_copy(g, rng);
  // Perturb one property value so cost > 0 is possible.
  if (!h.nodes().empty()) {
    h.set_property(h.nodes().front().id, "time", "99999");
  }
  SearchOptions pruned;
  pruned.cost_model = CostModel::Symmetric;
  SearchOptions naive;
  naive.cost_model = CostModel::Symmetric;
  naive.candidate_pruning = false;
  naive.cost_bounding = false;
  auto a = best_isomorphism(g, h, pruned);
  auto b = best_isomorphism(g, h, naive);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a.has_value()) {
    EXPECT_EQ(a->cost, b->cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherRandomTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace provmark::matcher
