// Tests for the candidate-ordering heuristics (the §5.4 incremental
// matching extension): every ordering must return the same optimal cost;
// the informed orderings must reach it with fewer search steps on
// automorphism-heavy instances.
#include <gtest/gtest.h>

#include "graph/property_graph.h"
#include "matcher/matcher.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

/// K structurally identical fragments distinguished only by a timestamp
/// property — the scale-benchmark shape.
PropertyGraph repeated_fragments(int k, int time_base) {
  PropertyGraph g;
  for (int i = 0; i < k; ++i) {
    std::string p = "p" + std::to_string(i);
    g.add_node(p, "Process", {{"name", "bench"}});
    g.add_node(p + "f", "Artifact",
               {{"path", "/tmp/scale"},
                {"time", std::to_string(time_base + i)}});
    g.add_edge(p + "e", p, p + "f", "Used", {{"operation", "creat"}});
  }
  return g;
}

class OrderingTest : public ::testing::TestWithParam<CandidateOrder> {};

TEST_P(OrderingTest, SameOptimalCost) {
  PropertyGraph g1 = repeated_fragments(5, 1000);
  PropertyGraph g2 = repeated_fragments(5, 1000);
  // Perturb one timestamp so the optimum is nontrivial.
  g2.set_property("p3f", "time", "9999");
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = GetParam();
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 2);  // one timestamp mismatch, both directions
}

TEST_P(OrderingTest, EmbeddingOptimalCost) {
  PropertyGraph fg = repeated_fragments(6, 1000);
  PropertyGraph bg = repeated_fragments(3, 1000);
  SearchOptions options;
  options.cost_model = CostModel::OneSided;
  options.candidate_order = GetParam();
  auto matching = best_subgraph_embedding(bg, fg, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, OrderingTest,
                         ::testing::Values(CandidateOrder::None,
                                           CandidateOrder::PropertyCost,
                                           CandidateOrder::TimestampRank));

TEST(OrderingSteps, TimestampRankBeatsNoneOnAlignedGraphs) {
  // Two trials of the same recording: element ranks align perfectly.
  PropertyGraph g1 = repeated_fragments(7, 1000);
  PropertyGraph g2 = repeated_fragments(7, 2000);  // shifted timestamps
  SearchOptions base;
  base.cost_model = CostModel::Symmetric;

  Stats none_stats, rank_stats;
  SearchOptions none = base;
  none.candidate_order = CandidateOrder::None;
  auto a = best_isomorphism(g1, g2, none, &none_stats);
  SearchOptions rank = base;
  rank.candidate_order = CandidateOrder::TimestampRank;
  auto b = best_isomorphism(g1, g2, rank, &rank_stats);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cost, b->cost);
  EXPECT_LE(rank_stats.steps, none_stats.steps);
}

TEST(OrderingSteps, PropertyCostFindsCheapCandidateFirst) {
  // 1 pattern node, many candidates, only one property-identical: the
  // greedy ordering must place it first (one step to the optimum).
  PropertyGraph bg;
  bg.add_node("x", "Artifact", {{"path", "/the/one"}});
  PropertyGraph fg;
  for (int i = 0; i < 10; ++i) {
    fg.add_node("n" + std::to_string(i), "Artifact",
                {{"path", i == 7 ? "/the/one"
                                 : "/other/" + std::to_string(i)}});
  }
  SearchOptions options;
  options.cost_model = CostModel::OneSided;
  options.candidate_order = CandidateOrder::PropertyCost;
  auto matching = best_subgraph_embedding(bg, fg, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->node_map.at("x"), "n7");
  EXPECT_EQ(matching->cost, 0);
}

TEST(OrderingSteps, NonNumericTimestampsStillWork) {
  PropertyGraph g1;
  g1.add_node("a", "X", {{"time", "not-a-number"}});
  PropertyGraph g2;
  g2.add_node("b", "X", {{"time", "also-not"}});
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = CandidateOrder::TimestampRank;
  EXPECT_TRUE(best_isomorphism(g1, g2, options).has_value());
}

TEST(OrderingSteps, MissingTimestampKeyIsHarmless) {
  PropertyGraph g1 = repeated_fragments(3, 0);
  PropertyGraph g2 = repeated_fragments(3, 0);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = CandidateOrder::TimestampRank;
  options.timestamp_key = "no-such-key";
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

}  // namespace
}  // namespace provmark::matcher
