// Tests for the candidate-ordering heuristics (the §5.4 incremental
// matching extension): every ordering must return the same optimal cost;
// the informed orderings must reach it with fewer search steps on
// automorphism-heavy instances.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/property_graph.h"
#include "matcher/matcher.h"
#include "util/rng.h"

namespace provmark::matcher {
namespace {

using graph::PropertyGraph;

/// K structurally identical fragments distinguished only by a timestamp
/// property — the scale-benchmark shape.
PropertyGraph repeated_fragments(int k, int time_base) {
  PropertyGraph g;
  for (int i = 0; i < k; ++i) {
    std::string p = "p" + std::to_string(i);
    g.add_node(p, "Process", {{"name", "bench"}});
    g.add_node(p + "f", "Artifact",
               {{"path", "/tmp/scale"},
                {"time", std::to_string(time_base + i)}});
    g.add_edge(p + "e", p, p + "f", "Used", {{"operation", "creat"}});
  }
  return g;
}

class OrderingTest : public ::testing::TestWithParam<CandidateOrder> {};

TEST_P(OrderingTest, SameOptimalCost) {
  PropertyGraph g1 = repeated_fragments(5, 1000);
  PropertyGraph g2 = repeated_fragments(5, 1000);
  // Perturb one timestamp so the optimum is nontrivial.
  g2.set_property("p3f", "time", "9999");
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = GetParam();
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 2);  // one timestamp mismatch, both directions
}

TEST_P(OrderingTest, EmbeddingOptimalCost) {
  PropertyGraph fg = repeated_fragments(6, 1000);
  PropertyGraph bg = repeated_fragments(3, 1000);
  SearchOptions options;
  options.cost_model = CostModel::OneSided;
  options.candidate_order = GetParam();
  auto matching = best_subgraph_embedding(bg, fg, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, OrderingTest,
                         ::testing::Values(CandidateOrder::None,
                                           CandidateOrder::PropertyCost,
                                           CandidateOrder::TimestampRank,
                                           CandidateOrder::WlScarcity));

TEST(OrderingSteps, TimestampRankBeatsNoneOnAlignedGraphs) {
  // Two trials of the same recording: element ranks align perfectly.
  PropertyGraph g1 = repeated_fragments(7, 1000);
  PropertyGraph g2 = repeated_fragments(7, 2000);  // shifted timestamps
  SearchOptions base;
  base.cost_model = CostModel::Symmetric;

  Stats none_stats, rank_stats;
  SearchOptions none = base;
  none.candidate_order = CandidateOrder::None;
  auto a = best_isomorphism(g1, g2, none, &none_stats);
  SearchOptions rank = base;
  rank.candidate_order = CandidateOrder::TimestampRank;
  auto b = best_isomorphism(g1, g2, rank, &rank_stats);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cost, b->cost);
  EXPECT_LE(rank_stats.steps, none_stats.steps);
}

TEST(OrderingSteps, PropertyCostFindsCheapCandidateFirst) {
  // 1 pattern node, many candidates, only one property-identical: the
  // greedy ordering must place it first (one step to the optimum).
  PropertyGraph bg;
  bg.add_node("x", "Artifact", {{"path", "/the/one"}});
  PropertyGraph fg;
  for (int i = 0; i < 10; ++i) {
    fg.add_node("n" + std::to_string(i), "Artifact",
                {{"path", i == 7 ? "/the/one"
                                 : "/other/" + std::to_string(i)}});
  }
  SearchOptions options;
  options.cost_model = CostModel::OneSided;
  options.candidate_order = CandidateOrder::PropertyCost;
  auto matching = best_subgraph_embedding(bg, fg, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->node_map.at("x"), "n7");
  EXPECT_EQ(matching->cost, 0);
}

TEST(OrderingSteps, NonNumericTimestampsStillWork) {
  PropertyGraph g1;
  g1.add_node("a", "X", {{"time", "not-a-number"}});
  PropertyGraph g2;
  g2.add_node("b", "X", {{"time", "also-not"}});
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = CandidateOrder::TimestampRank;
  EXPECT_TRUE(best_isomorphism(g1, g2, options).has_value());
}

TEST(OrderingSteps, MissingTimestampKeyIsHarmless) {
  PropertyGraph g1 = repeated_fragments(3, 0);
  PropertyGraph g2 = repeated_fragments(3, 0);
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.candidate_order = CandidateOrder::TimestampRank;
  options.timestamp_key = "no-such-key";
  auto matching = best_isomorphism(g1, g2, options);
  ASSERT_TRUE(matching.has_value());
  EXPECT_EQ(matching->cost, 0);
}

// -- WlScarcity + decomposition ablation --------------------------------------

/// A provenance spine with artifact fan-out and transient property
/// noise, the workload WlScarcity's suffix bound is built for.
PropertyGraph spine(int processes, std::uint64_t seed, bool refresh) {
  util::Rng rng(seed);
  PropertyGraph g;
  std::string prev;
  int edge = 0;
  for (int p = 0; p < processes; ++p) {
    std::string pid = "p" + std::to_string(p);
    g.add_node(pid, "Process",
               {{"pid", std::to_string((refresh ? 5000 : 1000) + p)},
                {"name", "proc" + std::to_string(p % 3)}});
    if (!prev.empty()) {
      g.add_edge("e" + std::to_string(edge++), pid, prev, "WasTriggeredBy",
                 {{"operation", "fork"}});
    }
    for (int a = 0; a < 3; ++a) {
      std::string aid = pid + "a" + std::to_string(a);
      g.add_node(aid, "Artifact",
                 {{"path", "/tmp/" + pid + "f" + std::to_string(a)},
                  {"time", std::to_string(rng.next_below(100000))}});
      // Seeded read/write mix: shared between the two trials via `seed`,
      // so the copies stay isomorphic while properties drift.
      bool used = rng.chance(0.5);
      g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                 used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                 {{"operation", used ? "read" : "write"}});
    }
    prev = pid;
  }
  return g;
}

PropertyGraph random_corpus_graph(int index, bool second, util::Rng& rng) {
  static const char* kNodeLabels[] = {"Process", "Artifact", "Agent"};
  static const char* kEdgeLabels[] = {"Used", "WasGeneratedBy", "Was"};
  static const char* kKeys[] = {"pid", "path", "time"};
  int nodes = 2 + index % 5;
  int edges = index % 6;
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    graph::Properties props;
    int prop_count = static_cast<int>(rng.next_below(3));
    for (int p = 0; p < prop_count; ++p) {
      props[kKeys[rng.next_below(3)]] = std::to_string(rng.next_below(4));
    }
    g.add_node((second ? "m" : "n") + std::to_string(i),
               kNodeLabels[rng.next_below(3)], std::move(props));
  }
  for (int i = 0; i < edges; ++i) {
    g.add_edge((second ? "f" : "e") + std::to_string(i),
               (second ? "m" : "n") +
                   std::to_string(rng.next_below(
                       static_cast<std::uint64_t>(nodes))),
               (second ? "m" : "n") +
                   std::to_string(rng.next_below(
                       static_cast<std::uint64_t>(nodes))),
               kEdgeLabels[rng.next_below(3)]);
  }
  return g;
}

TEST(WlScarcityAblation, NeverWorsensOptimalCostOnRandomCorpus) {
  // The acceptance bar for the new strategy: on a corpus that includes
  // disconnected graphs, isolated nodes and infeasible pairs,
  // WlScarcity + decomposition must agree with the PropertyCost
  // baseline on feasibility and optimal cost, bijective and embedding.
  for (int index = 0; index < 40; ++index) {
    util::Rng rng(static_cast<std::uint64_t>(index) * 6151 + 7);
    PropertyGraph g1 = random_corpus_graph(index, false, rng);
    PropertyGraph g2 = random_corpus_graph(index, true, rng);

    SearchOptions base;
    base.cost_model = CostModel::Symmetric;
    base.candidate_order = CandidateOrder::PropertyCost;
    SearchOptions wl = base;
    wl.candidate_order = CandidateOrder::WlScarcity;
    wl.component_decomposition = true;

    auto a = best_isomorphism(g1, g2, base);
    auto b = best_isomorphism(g1, g2, wl);
    ASSERT_EQ(a.has_value(), b.has_value()) << "iso corpus " << index;
    if (a.has_value()) {
      EXPECT_EQ(a->cost, b->cost) << "iso corpus " << index;
    }

    SearchOptions embed_base = base;
    embed_base.cost_model = CostModel::OneSided;
    SearchOptions embed_wl = wl;
    embed_wl.cost_model = CostModel::OneSided;
    auto ea = best_subgraph_embedding(g2, g1, embed_base);
    auto eb = best_subgraph_embedding(g2, g1, embed_wl);
    ASSERT_EQ(ea.has_value(), eb.has_value()) << "embed corpus " << index;
    if (ea.has_value()) {
      EXPECT_EQ(ea->cost, eb->cost) << "embed corpus " << index;
    }
  }
}

TEST(WlScarcityAblation, CollapsesTheSpineProofPhase) {
  // The benchmark claim in miniature: same optimum, orders of magnitude
  // fewer steps than the PropertyCost baseline on the spine instance.
  PropertyGraph g1 = spine(8, 21, false);
  PropertyGraph g2 = spine(8, 21, true);
  SearchOptions property;
  property.cost_model = CostModel::Symmetric;
  property.candidate_order = CandidateOrder::PropertyCost;
  SearchOptions wl = property;
  wl.candidate_order = CandidateOrder::WlScarcity;

  Stats property_stats, wl_stats;
  auto a = best_isomorphism(g1, g2, property, &property_stats);
  auto b = best_isomorphism(g1, g2, wl, &wl_stats);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cost, b->cost);
  EXPECT_LE(wl_stats.steps, property_stats.steps);
}

TEST(WlScarcityAblation, EdgeGroupBoundPrunesPropertyHeavyEdges) {
  // Instance where the optimal cost lives entirely on edge properties:
  // bare nodes (every per-node candidate minimum is 0, so the node part
  // of the suffix bound is blind) and per-trial transient edge
  // timestamps that mismatch against every target edge. The per-edge-
  // group minima folded into the suffix bound price the unassigned
  // remainder exactly, so the proof-of-optimality phase collapses; the
  // node-only bound left WlScarcity at the PropertyCost baseline's
  // step count (3194 on this instance).
  const int k = 6;
  graph::PropertyGraph g1, g2;
  for (int i = 0; i < k; ++i) {
    std::string p = "p" + std::to_string(i);
    for (graph::PropertyGraph* g : {&g1, &g2}) {
      g->add_node(p, "Process");
      g->add_node(p + "f", "Artifact");
    }
    g1.add_edge(p + "e", p, p + "f", "Used",
                {{"operation", "read"}, {"time", std::to_string(1000 + i)}});
    g2.add_edge(p + "e", p, p + "f", "Used",
                {{"operation", "read"}, {"time", std::to_string(2000 + i)}});
  }
  SearchOptions property;
  property.cost_model = CostModel::Symmetric;
  property.candidate_order = CandidateOrder::PropertyCost;
  SearchOptions wl = property;
  wl.candidate_order = CandidateOrder::WlScarcity;

  Stats property_stats, wl_stats;
  auto a = best_isomorphism(g1, g2, property, &property_stats);
  auto b = best_isomorphism(g1, g2, wl, &wl_stats);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Every fragment pairing mismatches `time` in both directions: 2 per
  // edge, and the bound must not change the optimum.
  EXPECT_EQ(a->cost, 2 * k);
  EXPECT_EQ(b->cost, a->cost);
  EXPECT_LT(wl_stats.steps, property_stats.steps);
  // One descent to the optimum plus immediate pruning of every sibling;
  // far under the node-only bound's step count.
  EXPECT_LE(wl_stats.steps, 50u);
}

/// Structural validity of a bijective matching, independent of how the
/// search produced it.
void expect_valid_isomorphism(const PropertyGraph& g1,
                              const PropertyGraph& g2, const Matching& m) {
  ASSERT_EQ(m.node_map.size(), g1.nodes().size());
  std::set<graph::Id> targets;
  for (const auto& [a, b] : m.node_map) {
    const graph::Node* na = g1.find_node(a);
    const graph::Node* nb = g2.find_node(b);
    ASSERT_NE(na, nullptr);
    ASSERT_NE(nb, nullptr);
    EXPECT_EQ(na->label, nb->label);
    EXPECT_TRUE(targets.insert(b).second) << "node map not injective";
  }
  ASSERT_EQ(m.edge_map.size(), g1.edges().size());
  for (const auto& [a, b] : m.edge_map) {
    const graph::Edge* ea = g1.find_edge(a);
    const graph::Edge* eb = g2.find_edge(b);
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(eb, nullptr);
    EXPECT_EQ(ea->label, eb->label);
    EXPECT_EQ(m.node_map.at(ea->src), eb->src);
    EXPECT_EQ(m.node_map.at(ea->tgt), eb->tgt);
  }
}

TEST(ComponentDecomposition, SolvesDisjointFragmentsWithValidMapping) {
  // Three structurally identical fragments (distinct stable paths):
  // decomposition must pick the cost-minimal fragment pairing and emit
  // a structurally valid matching whose cost equals the joint search's.
  PropertyGraph g1, g2;
  for (int f = 0; f < 3; ++f) {
    std::string p = "f" + std::to_string(f);
    for (PropertyGraph* g : {&g1, &g2}) {
      g->add_node(p, "Process", {{"name", "frag"}});
      g->add_node(p + "a", "Artifact",
                  {{"path", "/tmp/" + p},
                   {"time", g == &g1 ? "100" : "999"}});
      g->add_edge(p + "e", p, p + "a", "Used", {{"operation", "creat"}});
    }
  }
  SearchOptions joint;
  joint.cost_model = CostModel::Symmetric;
  SearchOptions decomposed = joint;
  decomposed.component_decomposition = true;

  auto a = best_isomorphism(g1, g2, joint);
  auto b = best_isomorphism(g1, g2, decomposed);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cost, b->cost);
  // Each fragment's time differs (2 per artifact, symmetric): the
  // optimal pairing keeps fragments aligned by their stable paths.
  EXPECT_EQ(b->cost, 6);
  expect_valid_isomorphism(g1, g2, *b);
  for (int f = 0; f < 3; ++f) {
    std::string p = "f" + std::to_string(f);
    EXPECT_EQ(b->node_map.at(p), p);
  }
}

TEST(ComponentDecomposition, ComponentCountMismatchIsInfeasible) {
  PropertyGraph g1, g2;
  // Two components vs one: same node/edge label multisets overall.
  g1.add_node("a", "X");
  g1.add_node("b", "X");
  g1.add_node("c", "X");
  g1.add_edge("e1", "a", "b", "L");
  g1.add_edge("e2", "b", "c", "L");
  g2.add_node("p", "X");
  g2.add_node("q", "X");
  g2.add_node("r", "X");
  g2.add_edge("f1", "p", "q", "L");
  g2.add_edge("f2", "q", "p", "L");
  SearchOptions options;
  options.cost_model = CostModel::Symmetric;
  options.component_decomposition = true;
  EXPECT_FALSE(best_isomorphism(g1, g2, options).has_value());
  options.component_decomposition = false;
  EXPECT_FALSE(best_isomorphism(g1, g2, options).has_value());
}

/// k structurally identical 4-process spine fragments with transient
/// per-trial property noise — the benchmark's decomposition workload.
PropertyGraph fragment_graph(int fragments, bool refresh) {
  util::Rng rng(fragments * 97 + (refresh ? 1 : 0));
  PropertyGraph g;
  int edge = 0;
  for (int f = 0; f < fragments; ++f) {
    std::string prev;
    for (int p = 0; p < 4; ++p) {
      std::string pid = "f" + std::to_string(f) + "p" + std::to_string(p);
      g.add_node(pid, "Process",
                 {{"pid", std::to_string((refresh ? 5000 : 1000) + f * 10 +
                                         p)},
                  {"name", "proc" + std::to_string(p % 3)}});
      if (!prev.empty()) {
        g.add_edge("e" + std::to_string(edge++), pid, prev,
                   "WasTriggeredBy", {{"operation", "fork"}});
      }
      for (int a = 0; a < 4; ++a) {
        std::string aid = pid + "a" + std::to_string(a);
        g.add_node(aid, "Artifact",
                   {{"path", "/tmp/frag" + std::to_string(f) + "f" +
                                 std::to_string(a)},
                    {"time", std::to_string(rng.next_below(100000))}});
        bool used = a % 2 == 0;
        g.add_edge("e" + std::to_string(edge++), used ? pid : aid,
                   used ? aid : pid, used ? "Used" : "WasGeneratedBy",
                   {{"operation", used ? "read" : "write"}});
      }
      prev = pid;
    }
  }
  return g;
}

TEST(ComponentDecomposition, ReducesStepsOnFragmentedInstances) {
  // The additive-vs-multiplicative claim: under the PropertyCost
  // baseline ordering, solving identical fragments jointly costs
  // strictly more steps than solving them per component (the benchmark
  // shows the gap widening to budget exhaustion at 4 fragments).
  PropertyGraph g1 = fragment_graph(2, false);
  PropertyGraph g2 = fragment_graph(2, true);
  SearchOptions joint;
  joint.cost_model = CostModel::Symmetric;
  joint.candidate_order = CandidateOrder::PropertyCost;
  SearchOptions decomposed = joint;
  decomposed.component_decomposition = true;

  Stats joint_stats, decomposed_stats;
  auto a = best_isomorphism(g1, g2, joint, &joint_stats);
  auto b = best_isomorphism(g1, g2, decomposed, &decomposed_stats);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cost, b->cost);
  EXPECT_LT(decomposed_stats.steps, joint_stats.steps);
}

TEST(ComponentDecomposition, SharedBudgetAcrossComponents) {
  // The step budget spans all component sub-searches: a budget the
  // joint search would blow must also stop the decomposed search (with
  // the exhaustion flag, not a bogus partial result).
  PropertyGraph g1, g2;
  for (int f = 0; f < 6; ++f) {
    std::string p = "f" + std::to_string(f);
    for (PropertyGraph* g : {&g1, &g2}) {
      for (int n = 0; n < 4; ++n) {
        std::string id = p + "n" + std::to_string(n);
        g->add_node(id, "X");
        if (n > 0) {
          g->add_edge(id + "e", p + "n" + std::to_string(n - 1), id, "L");
        }
      }
    }
  }
  SearchOptions options;
  options.cost_model = CostModel::None;
  options.candidate_order = CandidateOrder::None;
  options.candidate_pruning = false;
  options.component_decomposition = true;
  options.step_budget = 10;
  Stats stats;
  auto result = best_isomorphism(g1, g2, options, &stats);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace provmark::matcher
