#include "formats/detect.h"

#include <gtest/gtest.h>

#include "datalog/fact_io.h"
#include "formats/dot.h"
#include "formats/neo4j.h"
#include "formats/prov_json.h"

namespace provmark::formats {
namespace {

graph::PropertyGraph tiny() {
  graph::PropertyGraph g;
  g.add_node("a", "entity");
  return g;
}

TEST(Detect, Dot) {
  EXPECT_EQ(detect_format("digraph g { }"), Format::Dot);
  EXPECT_EQ(detect_format("  \n digraph provenance {}"), Format::Dot);
}

TEST(Detect, ProvJsonVsNeo4j) {
  EXPECT_EQ(detect_format(to_prov_json(tiny())), Format::ProvJson);
  EXPECT_EQ(detect_format(to_neo4j_json(tiny())), Format::Neo4jJson);
}

TEST(Detect, Datalog) {
  EXPECT_EQ(detect_format("ng(a,\"X\").\n"), Format::Datalog);
  EXPECT_EQ(detect_format("% comment\nng(a,\"X\").\n"), Format::Datalog);
}

TEST(Detect, Unknown) {
  EXPECT_EQ(detect_format("<xml/>"), Format::Unknown);
  EXPECT_STREQ(format_name(Format::Unknown), "unknown");
}

TEST(ParseAny, AllFormats) {
  EXPECT_EQ(parse_any(to_dot(tiny())).node_count(), 1u);
  EXPECT_EQ(parse_any(to_prov_json(tiny())).node_count(), 1u);
  EXPECT_EQ(parse_any(to_neo4j_json(tiny())).node_count(), 1u);
  EXPECT_EQ(parse_any(datalog::to_datalog(tiny(), "g")).node_count(), 1u);
}

TEST(ParseAny, RejectsUnknown) {
  EXPECT_THROW(parse_any("garbage"), std::runtime_error);
}

TEST(ParseAny, RejectsMultiGraphDatalog) {
  std::string two = datalog::to_datalog(tiny(), "a") +
                    datalog::to_datalog(tiny(), "b");
  EXPECT_THROW(parse_any(two), std::runtime_error);
}

}  // namespace
}  // namespace provmark::formats
