#include "formats/prov_validate.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "systems/camflow.h"

namespace provmark::formats {
namespace {

graph::PropertyGraph valid_prov() {
  graph::PropertyGraph g;
  g.add_node("t", "activity");
  g.add_node("f", "entity");
  g.add_node("u", "agent");
  g.add_edge("e1", "t", "f", "used");
  g.add_edge("e2", "f", "t", "wasGeneratedBy");
  g.add_edge("e3", "t", "u", "wasAssociatedWith");
  g.add_edge("e4", "f", "u", "wasAttributedTo");
  return g;
}

TEST(ProvValidate, AcceptsWellFormedGraph) {
  ProvValidationResult result = validate_prov(valid_prov());
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.extension_relations.empty());
}

TEST(ProvValidate, FlagsBadNodeKind) {
  graph::PropertyGraph g = valid_prov();
  g.add_node("x", "Process");  // OPM label, not PROV
  ProvValidationResult result = validate_prov(g);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].element, "x");
}

TEST(ProvValidate, FlagsWrongEndpointKinds) {
  graph::PropertyGraph g;
  g.add_node("t", "activity");
  g.add_node("f", "entity");
  g.add_edge("e", "f", "t", "used");  // reversed
  ProvValidationResult result = validate_prov(g);
  EXPECT_EQ(result.violations.size(), 2u);  // both endpoints wrong
}

TEST(ProvValidate, WasInvalidatedByAcceptsBothDirections) {
  graph::PropertyGraph g;
  g.add_node("t", "activity");
  g.add_node("f", "entity");
  g.add_edge("e1", "t", "f", "wasInvalidatedBy");
  g.add_edge("e2", "f", "t", "wasInvalidatedBy");
  EXPECT_TRUE(validate_prov(g).ok());
  graph::PropertyGraph bad;
  bad.add_node("a", "activity");
  bad.add_node("b", "activity");
  bad.add_edge("e", "a", "b", "wasInvalidatedBy");
  EXPECT_FALSE(validate_prov(bad).ok());
}

TEST(ProvValidate, ReportsExtensionsWithoutViolation) {
  graph::PropertyGraph g;
  g.add_node("f", "entity");
  g.add_node("p", "entity");
  g.add_edge("e", "f", "p", "named");  // CamFlow extension
  ProvValidationResult result = validate_prov(g);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.extension_relations.size(), 1u);
  EXPECT_EQ(result.extension_relations[0], "named");
}

TEST(ProvValidate, CamflowOutputIsValidProv) {
  // Every CamFlow recording produced in this repository must satisfy the
  // PROV-DM endpoint constraints (with only the "named" extension).
  for (const char* call : {"open", "rename", "setuid", "fork", "chmod",
                           "unlink", "tee", "execve"}) {
    os::EventTrace trace =
        bench_suite::execute_program(
            bench_suite::benchmark_by_name(call), true, 3)
            .trace;
    graph::PropertyGraph g =
        systems::build_camflow_graph(trace, {}, 1);
    ProvValidationResult result = validate_prov(g);
    EXPECT_TRUE(result.ok()) << call << ": "
                             << (result.violations.empty()
                                     ? ""
                                     : result.violations[0].message);
  }
}

}  // namespace
}  // namespace provmark::formats
