#include "formats/neo4j.h"

#include <gtest/gtest.h>

namespace provmark::formats {
namespace {

graph::PropertyGraph sample() {
  graph::PropertyGraph g;
  g.add_node("o1", "Process", {{"pid", "9"}});
  g.add_node("o2", "Global", {{"name", "/tmp/x"}});
  g.add_node("o3", "Local");
  g.add_edge("r1", "o3", "o2", "NAMED");
  g.add_edge("r2", "o3", "o1", "PROC_OBJ", {{"k", "v"}});
  return g;
}

TEST(Neo4j, RoundTrip) {
  graph::PropertyGraph g = sample();
  graph::PropertyGraph back = from_neo4j_json(to_neo4j_json(g));
  EXPECT_EQ(back.node_count(), 3u);
  EXPECT_EQ(back.edge_count(), 2u);
  EXPECT_EQ(back.find_node("o1")->props.at("pid"), "9");
  EXPECT_EQ(back.find_edge("r2")->props.at("k"), "v");
  EXPECT_EQ(back.find_edge("r1")->label, "NAMED");
}

TEST(Neo4j, RejectsMissingNodesArray) {
  EXPECT_THROW(from_neo4j_json("{}"), std::runtime_error);
  EXPECT_THROW(from_neo4j_json(R"({"nodes": 5})"), std::runtime_error);
}

TEST(Neo4j, RejectsDanglingRelationship) {
  const char* text = R"({
    "nodes": [{"id": "a", "labels": ["X"], "properties": {}}],
    "relationships": [{"id": "r", "start": "a", "end": "nope",
                       "type": "T", "properties": {}}]
  })";
  EXPECT_THROW(from_neo4j_json(text), std::invalid_argument);
}

TEST(Neo4jStore, OpenAndExportReproducesGraph) {
  Neo4jStore::Options options;
  options.startup_rounds = 3;
  Neo4jStore store(options);
  store.open(to_neo4j_json(sample()));
  EXPECT_EQ(store.node_count(), 3u);
  EXPECT_EQ(store.relationship_count(), 2u);
  graph::PropertyGraph exported = store.export_graph();
  EXPECT_EQ(exported.node_count(), 3u);
  EXPECT_EQ(exported.edge_count(), 2u);
  EXPECT_EQ(exported.find_node("o2")->props.at("name"), "/tmp/x");
}

TEST(Neo4jStore, LabelIndexQuery) {
  Neo4jStore::Options options;
  options.startup_rounds = 1;
  Neo4jStore store(options);
  store.open(to_neo4j_json(sample()));
  EXPECT_EQ(store.match_nodes_by_label("Process").size(), 1u);
  EXPECT_EQ(store.match_nodes_by_label("Global").size(), 1u);
  EXPECT_TRUE(store.match_nodes_by_label("Nope").empty());
  EXPECT_EQ(store.match_all_nodes().size(), 3u);
  EXPECT_EQ(store.match_all_relationships().size(), 2u);
}

TEST(Neo4jStore, StartupRoundsScaleWork) {
  // More rounds must not change the result, only the cost.
  Neo4jStore::Options cheap;
  cheap.startup_rounds = 1;
  Neo4jStore::Options expensive;
  expensive.startup_rounds = 50;
  Neo4jStore a(cheap), b(expensive);
  a.open(to_neo4j_json(sample()));
  b.open(to_neo4j_json(sample()));
  EXPECT_EQ(a.export_graph(), b.export_graph());
}

}  // namespace
}  // namespace provmark::formats
