#include "formats/dot.h"

#include <gtest/gtest.h>

namespace provmark::formats {
namespace {

graph::PropertyGraph sample() {
  graph::PropertyGraph g;
  g.add_node("v1", "Process", {{"type", "Process"}, {"pid", "42"}});
  g.add_node("v2", "Artifact", {{"type", "Artifact"}, {"path", "/tmp/f"}});
  g.add_edge("e1", "v1", "v2", "Used", {{"operation", "read"}});
  return g;
}

TEST(Dot, WriterEmitsDigraph) {
  std::string dot = to_dot(sample(), "g");
  EXPECT_NE(dot.find("digraph g {"), std::string::npos);
  EXPECT_NE(dot.find("\"v1\" -> \"v2\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Used\""), std::string::npos);
  EXPECT_NE(dot.find("operation=\"read\""), std::string::npos);
}

TEST(Dot, ProcessesAreBoxes) {
  std::string dot = to_dot(sample());
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
}

TEST(Dot, RoundTripPreservesStructureAndProperties) {
  graph::PropertyGraph g = sample();
  graph::PropertyGraph back = from_dot(to_dot(g));
  EXPECT_EQ(back.node_count(), 2u);
  EXPECT_EQ(back.edge_count(), 1u);
  EXPECT_EQ(back.find_node("v1")->label, "Process");
  EXPECT_EQ(back.find_node("v1")->props.at("pid"), "42");
  EXPECT_EQ(back.edges().front().label, "Used");
  EXPECT_EQ(back.edges().front().props.at("operation"), "read");
}

TEST(Dot, RoundTripEscapedCharacters) {
  graph::PropertyGraph g;
  g.add_node("v1", "has \"quote\"", {{"k", "a\\b"}});
  graph::PropertyGraph back = from_dot(to_dot(g));
  EXPECT_EQ(back.find_node("v1")->label, "has \"quote\"");
  EXPECT_EQ(back.find_node("v1")->props.at("k"), "a\\b");
}

TEST(Dot, ParserCreatesImplicitNodes) {
  graph::PropertyGraph g = from_dot("digraph g { a -> b; }");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.find_node("a")->label, "");
}

TEST(Dot, ParserHandlesComments) {
  graph::PropertyGraph g = from_dot(
      "digraph g {\n// comment line\n a [label=\"X\"];\n}");
  EXPECT_EQ(g.find_node("a")->label, "X");
}

TEST(Dot, ParserHandlesMultipleEdgesBetweenSamePair) {
  graph::PropertyGraph g = from_dot(
      "digraph g { a -> b [label=\"r\"]; a -> b [label=\"w\"]; }");
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Dot, ParserRejectsMalformed) {
  EXPECT_THROW(from_dot("graph g { a; }"), std::runtime_error);
  EXPECT_THROW(from_dot("digraph g { a -> ; }"), std::runtime_error);
  EXPECT_THROW(from_dot("digraph g { a "), std::runtime_error);
  EXPECT_THROW(from_dot("digraph g {} trailing"), std::runtime_error);
}

TEST(Dot, EmptyGraph) {
  graph::PropertyGraph g = from_dot("digraph g { }");
  EXPECT_TRUE(g.empty());
}

}  // namespace
}  // namespace provmark::formats
