#include "formats/prov_json.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace provmark::formats {
namespace {

graph::PropertyGraph sample() {
  graph::PropertyGraph g;
  g.add_node("cf:task:1", "activity", {{"prov:type", "task"}});
  g.add_node("cf:inode:2", "entity", {{"prov:type", "inode_file"}});
  g.add_node("cf:agent:3", "agent", {{"prov:type", "machine"}});
  g.add_edge("cf:rel:4", "cf:task:1", "cf:inode:2", "used",
             {{"prov:label", "read"}});
  g.add_edge("cf:rel:5", "cf:inode:2", "cf:task:1", "wasGeneratedBy");
  return g;
}

TEST(ProvJson, WriterGroupsByKind) {
  util::Json doc = util::Json::parse(to_prov_json(sample()));
  EXPECT_NE(doc.find("activity"), nullptr);
  EXPECT_NE(doc.find("entity"), nullptr);
  EXPECT_NE(doc.find("agent"), nullptr);
  EXPECT_NE(doc.find("used"), nullptr);
  EXPECT_NE(doc.find("wasGeneratedBy"), nullptr);
}

TEST(ProvJson, UsedCarriesEndpointKeys) {
  util::Json doc = util::Json::parse(to_prov_json(sample()));
  const util::Json& rel = doc.at("used").at("cf:rel:4");
  EXPECT_EQ(rel.at("prov:activity").as_string(), "cf:task:1");
  EXPECT_EQ(rel.at("prov:entity").as_string(), "cf:inode:2");
}

TEST(ProvJson, RoundTrip) {
  graph::PropertyGraph g = sample();
  graph::PropertyGraph back = from_prov_json(to_prov_json(g));
  EXPECT_EQ(back.node_count(), 3u);
  EXPECT_EQ(back.edge_count(), 2u);
  EXPECT_EQ(back.find_node("cf:task:1")->label, "activity");
  EXPECT_EQ(back.find_edge("cf:rel:4")->label, "used");
  EXPECT_EQ(back.find_edge("cf:rel:4")->props.at("prov:label"), "read");
  EXPECT_EQ(back.find_edge("cf:rel:5")->src, "cf:inode:2");
}

TEST(ProvJson, CustomRelationRoundTrips) {
  graph::PropertyGraph g;
  g.add_node("a", "entity");
  g.add_node("b", "entity");
  g.add_edge("r", "a", "b", "named");
  graph::PropertyGraph back = from_prov_json(to_prov_json(g));
  EXPECT_EQ(back.find_edge("r")->label, "named");
  EXPECT_EQ(back.find_edge("r")->src, "a");
}

TEST(ProvJson, AllSevenStandardRelationsRoundTrip) {
  const char* relations[] = {
      "used", "wasGeneratedBy", "wasInformedBy", "wasDerivedFrom",
      "wasAssociatedWith", "wasAttributedTo", "actedOnBehalfOf"};
  for (const char* relation : relations) {
    graph::PropertyGraph g;
    g.add_node("a", "entity");
    g.add_node("b", "activity");
    g.add_edge("r", "a", "b", relation);
    graph::PropertyGraph back = from_prov_json(to_prov_json(g));
    EXPECT_EQ(back.find_edge("r")->label, relation) << relation;
    EXPECT_EQ(back.find_edge("r")->src, "a") << relation;
    EXPECT_EQ(back.find_edge("r")->tgt, "b") << relation;
  }
}

TEST(ProvJson, RejectsNonObjectDocument) {
  EXPECT_THROW(from_prov_json("[1,2]"), std::runtime_error);
}

TEST(ProvJson, RejectsRelationWithMissingEndpoint) {
  const char* text = R"({
    "activity": {"t": {}},
    "used": {"r": {"prov:activity": "t", "prov:entity": "missing"}}
  })";
  EXPECT_THROW(from_prov_json(text), std::runtime_error);
}

TEST(ProvJson, RejectsRelationWithoutEndpointKeys) {
  const char* text = R"({"used": {"r": {"prov:label": "x"}}})";
  EXPECT_THROW(from_prov_json(text), std::runtime_error);
}

TEST(ProvJson, EmptyGraph) {
  graph::PropertyGraph back =
      from_prov_json(to_prov_json(graph::PropertyGraph{}));
  EXPECT_TRUE(back.empty());
}

}  // namespace
}  // namespace provmark::formats
