#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/property_graph.h"

namespace provmark::graph {
namespace {

PropertyGraph chain(int n, const std::string& label) {
  PropertyGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_node("n" + std::to_string(i), label);
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge("e" + std::to_string(i), "n" + std::to_string(i),
               "n" + std::to_string(i + 1), "next");
  }
  return g;
}

TEST(StructuralDigest, InvariantUnderRelabeling) {
  PropertyGraph g1 = chain(5, "X");
  PropertyGraph g2 = with_id_prefix(g1, "zz_");
  EXPECT_EQ(structural_digest(g1), structural_digest(g2));
}

TEST(StructuralDigest, IgnoresProperties) {
  PropertyGraph g1 = chain(4, "X");
  PropertyGraph g2 = chain(4, "X");
  g2.set_property("n0", "time", "123");
  EXPECT_EQ(structural_digest(g1), structural_digest(g2));
}

TEST(StructuralDigest, DetectsLabelDifference) {
  EXPECT_NE(structural_digest(chain(4, "X")),
            structural_digest(chain(4, "Y")));
}

TEST(StructuralDigest, DetectsSizeDifference) {
  EXPECT_NE(structural_digest(chain(4, "X")),
            structural_digest(chain(5, "X")));
}

TEST(StructuralDigest, DetectsEdgeDirection) {
  PropertyGraph g1;
  g1.add_node("a", "X");
  g1.add_node("b", "Y");
  g1.add_edge("e", "a", "b", "L");
  PropertyGraph g2;
  g2.add_node("a", "X");
  g2.add_node("b", "Y");
  g2.add_edge("e", "b", "a", "L");
  EXPECT_NE(structural_digest(g1), structural_digest(g2));
}

TEST(FullDigest, SensitiveToProperties) {
  PropertyGraph g1 = chain(3, "X");
  PropertyGraph g2 = chain(3, "X");
  g2.set_property("n1", "k", "v");
  EXPECT_NE(full_digest(g1), full_digest(g2));
  EXPECT_EQ(full_digest(g1), full_digest(chain(3, "X")));
}

TEST(FullDigest, InvariantUnderRelabeling) {
  PropertyGraph g1 = chain(3, "X");
  g1.set_property("n1", "k", "v");
  PropertyGraph g2 = with_id_prefix(g1, "q_");
  EXPECT_EQ(full_digest(g1), full_digest(g2));
}

TEST(ConnectedComponents, SingleComponent) {
  EXPECT_EQ(connected_components(chain(4, "X")).size(), 1u);
}

TEST(ConnectedComponents, CountsIslands) {
  PropertyGraph g = chain(3, "X");
  g.add_node("island1", "X");
  g.add_node("island2", "X");
  auto components = connected_components(g);
  EXPECT_EQ(components.size(), 3u);
}

TEST(ConnectedComponents, IgnoresDirection) {
  PropertyGraph g;
  g.add_node("a", "X");
  g.add_node("b", "X");
  g.add_node("c", "X");
  g.add_edge("e1", "b", "a", "L");
  g.add_edge("e2", "b", "c", "L");
  EXPECT_EQ(connected_components(g).size(), 1u);
}

TEST(ConnectedComponents, EmptyGraph) {
  EXPECT_TRUE(connected_components(PropertyGraph{}).empty());
}

TEST(DegreeSignatures, Basics) {
  PropertyGraph g = chain(3, "X");
  auto sigs = degree_signatures(g);
  EXPECT_EQ(sigs.at("n0").out, 1u);
  EXPECT_EQ(sigs.at("n0").in, 0u);
  EXPECT_EQ(sigs.at("n1").in, 1u);
  EXPECT_EQ(sigs.at("n1").out, 1u);
  EXPECT_EQ(sigs.at("n2").label, "X");
}

TEST(LabelHistograms, Counts) {
  PropertyGraph g;
  g.add_node("a", "P");
  g.add_node("b", "A");
  g.add_node("c", "A");
  g.add_edge("e1", "a", "b", "Used");
  g.add_edge("e2", "a", "c", "Used");
  auto nodes = node_label_histogram(g);
  EXPECT_EQ(nodes.at("A"), 2u);
  EXPECT_EQ(nodes.at("P"), 1u);
  auto edges = edge_label_histogram(g);
  EXPECT_EQ(edges.at("Used"), 2u);
}

TEST(WlColours, RefinementSeparatesRoles) {
  // In a chain, endpoints differ from the middle after one round.
  auto colours = wl_colours(chain(3, "X"), 1);
  EXPECT_NE(colours.at("n0"), colours.at("n1"));
  EXPECT_NE(colours.at("n0"), colours.at("n2"));  // source vs sink
}

TEST(StructureSummary, Format) {
  std::string s = structure_summary(chain(3, "X"));
  EXPECT_NE(s.find("3 nodes"), std::string::npos);
  EXPECT_NE(s.find("2 edges"), std::string::npos);
  EXPECT_NE(s.find("1 components"), std::string::npos);
}

}  // namespace
}  // namespace provmark::graph
