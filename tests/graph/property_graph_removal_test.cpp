// Regression coverage for removal-heavy workloads: remove_node /
// remove_edge tombstone elements and the accessors compact lazily, so
// these tests hammer interleavings of removal, lookup, re-insertion and
// iteration, checking the observable state against a naive reference
// model after every operation batch.
#include "graph/property_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace provmark::graph {
namespace {

/// Chain graph with per-node fan-out edges: n0 -> n1 -> ... plus
/// self-descriptive ids so failures read well.
PropertyGraph make_chain(int nodes) {
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    g.add_node("n" + std::to_string(i), "Process",
               {{"pid", std::to_string(i)}});
    if (i > 0) {
      g.add_edge("e" + std::to_string(i), "n" + std::to_string(i - 1),
                 "n" + std::to_string(i), "Next", {});
    }
  }
  return g;
}

TEST(PropertyGraphRemoval, BulkEdgeRemovalKeepsOrderAndCounts) {
  const int n = 200;
  PropertyGraph g = make_chain(n);
  // Remove every third edge with no reads in between: the whole batch
  // must be absorbed without a position-shift pass per removal, and the
  // next read sees the dense survivor sequence in insertion order.
  std::vector<std::string> removed;
  for (int i = 1; i < n; i += 3) {
    ASSERT_TRUE(g.remove_edge("e" + std::to_string(i)));
    removed.push_back("e" + std::to_string(i));
  }
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1) - removed.size());
  std::vector<std::string> seen;
  for (const Edge& e : g.edges()) seen.push_back(e.id);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end(),
                             [](const std::string& a, const std::string& b) {
                               return std::stoi(a.substr(1)) <
                                      std::stoi(b.substr(1));
                             }));
  for (const std::string& id : removed) {
    EXPECT_FALSE(g.has_element(id)) << id;
    EXPECT_FALSE(g.remove_edge(id)) << "double remove must report absent";
  }
}

TEST(PropertyGraphRemoval, NodeRemovalCascadesAndCompactsLazily) {
  PropertyGraph g = make_chain(100);
  // Removing interior nodes drops their incident chain edges.
  for (int i = 10; i < 90; i += 2) {
    ASSERT_TRUE(g.remove_node("n" + std::to_string(i)));
  }
  EXPECT_EQ(g.node_count(), 100u - 40u);
  for (const Node& node : g.nodes()) {
    EXPECT_TRUE(g.has_element(node.id));
  }
  for (const Edge& e : g.edges()) {
    EXPECT_NE(g.find_node(e.src), nullptr) << e.id;
    EXPECT_NE(g.find_node(e.tgt), nullptr) << e.id;
  }
}

TEST(PropertyGraphRemoval, LookupsStayCorrectBetweenRemovals) {
  PropertyGraph g = make_chain(50);
  // Interleave removals with finds: index positions must stay valid
  // while tombstones are pending (no compaction has run yet).
  for (int i = 0; i < 50; i += 5) {
    std::string id = "n" + std::to_string(i);
    ASSERT_TRUE(g.remove_node(id));
    EXPECT_EQ(g.find_node(id), nullptr);
    std::string alive = "n" + std::to_string(i + 1);
    const Node* n = g.find_node(alive);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->id, alive);
    EXPECT_EQ(*g.property(alive, "pid"), std::to_string(i + 1));
  }
}

TEST(PropertyGraphRemoval, ReAddAfterRemoveIsAFreshElement) {
  PropertyGraph g = make_chain(5);
  ASSERT_TRUE(g.remove_node("n2"));
  // Re-adding a removed id must succeed and start clean, even while the
  // tombstone is still pending.
  Node& fresh = g.add_node("n2", "Artifact", {{"path", "/tmp/x"}});
  EXPECT_EQ(fresh.label, "Artifact");
  const Node* found = g.find_node("n2");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->label, "Artifact");
  EXPECT_EQ(g.in_degree("n2"), 0u);
  EXPECT_EQ(g.out_degree("n2"), 0u);
  g.add_edge("fresh-edge", "n1", "n2", "Used", {});
  EXPECT_EQ(g.in_degree("n2"), 1u);
}

TEST(PropertyGraphRemoval, RandomisedChurnMatchesReferenceModel) {
  // Reference model: rebuild the expected graph from scratch after every
  // batch and require exact equality (operator== compacts both sides).
  util::Rng rng(2024);
  PropertyGraph g;
  std::vector<std::string> live_nodes;
  std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
      live_edges;
  int next_node = 0, next_edge = 0;

  for (int batch = 0; batch < 20; ++batch) {
    for (int op = 0; op < 30; ++op) {
      double roll = static_cast<double>(rng.next_below(100)) / 100.0;
      if (roll < 0.4 || live_nodes.size() < 2) {
        std::string id = "n" + std::to_string(next_node++);
        g.add_node(id, "Process", {{"seq", id}});
        live_nodes.push_back(id);
      } else if (roll < 0.65) {
        std::string src = live_nodes[rng.next_below(live_nodes.size())];
        std::string tgt = live_nodes[rng.next_below(live_nodes.size())];
        std::string id = "e" + std::to_string(next_edge++);
        g.add_edge(id, src, tgt, "Link", {});
        live_edges.push_back({id, {src, tgt}});
      } else if (roll < 0.85 && !live_edges.empty()) {
        std::size_t pick = rng.next_below(live_edges.size());
        ASSERT_TRUE(g.remove_edge(live_edges[pick].first));
        live_edges.erase(live_edges.begin() +
                         static_cast<std::ptrdiff_t>(pick));
      } else {
        std::size_t pick = rng.next_below(live_nodes.size());
        std::string victim = live_nodes[pick];
        ASSERT_TRUE(g.remove_node(victim));
        live_nodes.erase(live_nodes.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        live_edges.erase(
            std::remove_if(live_edges.begin(), live_edges.end(),
                           [&](const auto& e) {
                             return e.second.first == victim ||
                                    e.second.second == victim;
                           }),
            live_edges.end());
      }
    }
    // Rebuild the expectation and compare the full observable state.
    PropertyGraph expected;
    for (const std::string& id : live_nodes) {
      expected.add_node(id, "Process", {{"seq", id}});
    }
    for (const auto& [id, ends] : live_edges) {
      expected.add_edge(id, ends.first, ends.second, "Link", {});
    }
    // Note: expected was built in live-list order, which tracks the real
    // graph's insertion order for survivors, so equality is exact.
    ASSERT_EQ(g.node_count(), expected.node_count()) << "batch " << batch;
    ASSERT_EQ(g.edge_count(), expected.edge_count()) << "batch " << batch;
    ASSERT_TRUE(g == expected) << "batch " << batch;
    for (const std::string& id : live_nodes) {
      EXPECT_EQ(g.in_degree(id), expected.in_degree(id)) << id;
      EXPECT_EQ(g.out_degree(id), expected.out_degree(id)) << id;
      EXPECT_EQ(g.incident_edges(id), expected.incident_edges(id)) << id;
    }
  }
}

TEST(PropertyGraphRemoval, RemovalHeavyThroughput) {
  // The old implementation rebuilt both index maps per removal (O(E)
  // each); removing all edges of a 3000-edge graph was quadratic. The
  // tombstone scheme absorbs the whole batch in linear total work —
  // generous wall-clock bound, but far below the quadratic regime.
  const int n = 3000;
  PropertyGraph g;
  g.add_node("hub", "Process", {});
  for (int i = 0; i < n; ++i) {
    std::string id = "a" + std::to_string(i);
    g.add_node(id, "Artifact", {});
    g.add_edge("e" + std::to_string(i), "hub", id, "Used", {});
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(g.remove_edge("e" + std::to_string(i)));
  }
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.node_count(), static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(g.remove_node("a" + std::to_string(i)));
  }
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.nodes().front().id, "hub");
}

}  // namespace
}  // namespace provmark::graph
