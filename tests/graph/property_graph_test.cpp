#include "graph/property_graph.h"

#include <gtest/gtest.h>

namespace provmark::graph {
namespace {

PropertyGraph diamond() {
  PropertyGraph g;
  g.add_node("a", "Process", {{"pid", "1"}});
  g.add_node("b", "Artifact");
  g.add_node("c", "Artifact");
  g.add_node("d", "Process");
  g.add_edge("e1", "a", "b", "Used");
  g.add_edge("e2", "a", "c", "Used");
  g.add_edge("e3", "b", "d", "WasGeneratedBy");
  g.add_edge("e4", "c", "d", "WasGeneratedBy");
  return g;
}

TEST(PropertyGraph, AddAndFind) {
  PropertyGraph g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.size(), 8u);
  ASSERT_NE(g.find_node("a"), nullptr);
  EXPECT_EQ(g.find_node("a")->label, "Process");
  ASSERT_NE(g.find_edge("e3"), nullptr);
  EXPECT_EQ(g.find_edge("e3")->tgt, "d");
  EXPECT_EQ(g.find_node("zz"), nullptr);
  EXPECT_EQ(g.find_edge("zz"), nullptr);
}

TEST(PropertyGraph, RejectsDuplicateIds) {
  PropertyGraph g = diamond();
  EXPECT_THROW(g.add_node("a", "X"), std::invalid_argument);
  EXPECT_THROW(g.add_node("e1", "X"), std::invalid_argument);  // edge id too
  EXPECT_THROW(g.add_edge("e1", "a", "b", "X"), std::invalid_argument);
  EXPECT_THROW(g.add_edge("a", "a", "b", "X"), std::invalid_argument);
}

TEST(PropertyGraph, RejectsDanglingEdges) {
  PropertyGraph g;
  g.add_node("a", "X");
  EXPECT_THROW(g.add_edge("e", "a", "missing", "L"), std::invalid_argument);
  EXPECT_THROW(g.add_edge("e", "missing", "a", "L"), std::invalid_argument);
}

TEST(PropertyGraph, SelfLoopAllowed) {
  PropertyGraph g;
  g.add_node("a", "X");
  g.add_edge("e", "a", "a", "self");
  EXPECT_EQ(g.in_degree("a"), 1u);
  EXPECT_EQ(g.out_degree("a"), 1u);
}

TEST(PropertyGraph, Properties) {
  PropertyGraph g = diamond();
  EXPECT_EQ(g.property("a", "pid"), "1");
  EXPECT_EQ(g.property("a", "missing"), std::nullopt);
  EXPECT_EQ(g.property("zz", "pid"), std::nullopt);
  g.set_property("e1", "operation", "read");
  EXPECT_EQ(g.property("e1", "operation"), "read");
  g.set_property("e1", "operation", "write");  // overwrite
  EXPECT_EQ(g.property("e1", "operation"), "write");
  EXPECT_THROW(g.set_property("zz", "k", "v"), std::invalid_argument);
}

TEST(PropertyGraph, RemoveEdge) {
  PropertyGraph g = diamond();
  EXPECT_TRUE(g.remove_edge("e2"));
  EXPECT_FALSE(g.remove_edge("e2"));
  EXPECT_EQ(g.edge_count(), 3u);
  // Index integrity after removal: remaining edges still addressable.
  EXPECT_EQ(g.find_edge("e4")->label, "WasGeneratedBy");
  EXPECT_EQ(g.find_edge("e1")->src, "a");
}

TEST(PropertyGraph, RemoveNodeCascades) {
  PropertyGraph g = diamond();
  EXPECT_TRUE(g.remove_node("b"));
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);  // e1 and e3 removed with b
  EXPECT_EQ(g.find_edge("e1"), nullptr);
  EXPECT_EQ(g.find_edge("e3"), nullptr);
  EXPECT_NE(g.find_edge("e2"), nullptr);
  EXPECT_FALSE(g.remove_node("b"));
  // Remaining node indices still valid.
  EXPECT_EQ(g.find_node("d")->label, "Process");
}

TEST(PropertyGraph, Degrees) {
  PropertyGraph g = diamond();
  EXPECT_EQ(g.out_degree("a"), 2u);
  EXPECT_EQ(g.in_degree("a"), 0u);
  EXPECT_EQ(g.in_degree("d"), 2u);
  EXPECT_EQ(g.incident_edges("b").size(), 2u);
}

TEST(PropertyGraph, Equality) {
  EXPECT_EQ(diamond(), diamond());
  PropertyGraph g = diamond();
  g.set_property("a", "x", "y");
  EXPECT_FALSE(g == diamond());
}

TEST(PropertyGraph, WithIdPrefix) {
  PropertyGraph g = with_id_prefix(diamond(), "t0_");
  EXPECT_NE(g.find_node("t0_a"), nullptr);
  EXPECT_NE(g.find_edge("t0_e1"), nullptr);
  EXPECT_EQ(g.find_edge("t0_e1")->src, "t0_a");
  EXPECT_EQ(g.size(), diamond().size());
}

TEST(PropertyGraph, EmptyGraph) {
  PropertyGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.incident_edges("x").empty());
}

}  // namespace
}  // namespace provmark::graph
