// Tests for the interned CompactGraph layer: symbol round-trips, CSR
// adjacency cross-checked against the naive PropertyGraph scans, merge
// cost cross-checked against the map-based definition, and WL colour
// equality with graph::wl_colours.
#include "graph/compact.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/property_graph.h"
#include "util/rng.h"

namespace provmark::graph {
namespace {

PropertyGraph random_graph(int nodes, int edges, util::Rng& rng) {
  static const char* kNodeLabels[] = {"Process", "Artifact", "Agent"};
  static const char* kEdgeLabels[] = {"Used", "WasGeneratedBy", "Was"};
  static const char* kKeys[] = {"pid", "path", "time", "op"};
  PropertyGraph g;
  for (int i = 0; i < nodes; ++i) {
    Properties props;
    int prop_count = static_cast<int>(rng.next_below(4));
    for (int p = 0; p < prop_count; ++p) {
      props[kKeys[rng.next_below(4)]] = std::to_string(rng.next_below(6));
    }
    g.add_node("n" + std::to_string(i), kNodeLabels[rng.next_below(3)],
               std::move(props));
  }
  for (int i = 0; i < edges; ++i) {
    g.add_edge("e" + std::to_string(i),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               "n" + std::to_string(
                         rng.next_below(static_cast<std::uint64_t>(nodes))),
               kEdgeLabels[rng.next_below(3)]);
  }
  return g;
}

TEST(SymbolTable, InternResolveRoundTrip) {
  SymbolTable table;
  Symbol a = table.intern("Process");
  Symbol b = table.intern("Artifact");
  Symbol a2 = table.intern("Process");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.resolve(a), "Process");
  EXPECT_EQ(table.resolve(b), "Artifact");
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTable, LookupDoesNotCreate) {
  SymbolTable table;
  EXPECT_EQ(table.lookup("missing"), kNoSymbol);
  EXPECT_EQ(table.size(), 0u);
  Symbol a = table.intern("present");
  EXPECT_EQ(table.lookup("present"), a);
}

TEST(SymbolTable, HashMatchesStableHash) {
  SymbolTable table;
  Symbol a = table.intern("WasGeneratedBy");
  EXPECT_EQ(table.hash(a), util::stable_hash("WasGeneratedBy"));
}

TEST(SymbolTable, ManySymbolsStayStable) {
  // The deque backing must keep resolve() references valid across growth.
  SymbolTable table;
  std::vector<Symbol> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(table.intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.resolve(ids[static_cast<std::size_t>(i)]),
              "sym" + std::to_string(i));
  }
}

TEST(CompactProps, MismatchAgreesWithMapDefinition) {
  // Cross-check the merge against the obvious map-based computation on
  // random property sets.
  util::Rng rng(7);
  SymbolTable table;
  for (int round = 0; round < 200; ++round) {
    Properties pa, pb;
    for (int k = 0; k < 5; ++k) {
      if (rng.chance(0.5)) {
        pa["k" + std::to_string(k)] = std::to_string(rng.next_below(3));
      }
      if (rng.chance(0.5)) {
        pb["k" + std::to_string(k)] = std::to_string(rng.next_below(3));
      }
    }
    // Naive one-sided count.
    int expected_ab = 0, expected_ba = 0;
    for (const auto& [k, v] : pa) {
      auto it = pb.find(k);
      if (it == pb.end() || it->second != v) ++expected_ab;
    }
    for (const auto& [k, v] : pb) {
      auto it = pa.find(k);
      if (it == pa.end() || it->second != v) ++expected_ba;
    }
    // Compact versions (reuse CompactGraph::build via two one-node graphs
    // would work too, but interning directly keeps the test focused).
    CompactProps ca, cb;
    for (const auto& [k, v] : pa) {
      ca.emplace_back(table.intern(k), table.intern(v));
    }
    for (const auto& [k, v] : pb) {
      cb.emplace_back(table.intern(k), table.intern(v));
    }
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
    EXPECT_EQ(one_sided_mismatch(ca, cb), expected_ab);
    EXPECT_EQ(one_sided_mismatch(cb, ca), expected_ba);
    EXPECT_EQ(symmetric_mismatch(ca, cb), expected_ab + expected_ba);
    EXPECT_EQ(symmetric_mismatch(cb, ca), expected_ab + expected_ba);
  }
}

TEST(CompactGraph, RoundTripsLabelsAndProps) {
  PropertyGraph g;
  g.add_node("a", "Process", {{"pid", "42"}, {"name", "sh"}});
  g.add_node("b", "Artifact", {{"path", "/tmp/x"}});
  g.add_edge("e", "a", "b", "Used", {{"op", "read"}});
  SymbolTable table;
  CompactGraph cg = CompactGraph::build(g, table);

  ASSERT_EQ(cg.node_count(), 2u);
  ASSERT_EQ(cg.edge_count(), 1u);
  EXPECT_EQ(table.resolve(cg.node_label[0]), "Process");
  EXPECT_EQ(table.resolve(cg.node_label[1]), "Artifact");
  EXPECT_EQ(table.resolve(cg.edge_label[0]), "Used");
  EXPECT_EQ(cg.edge_src[0], 0u);
  EXPECT_EQ(cg.edge_tgt[0], 1u);

  ASSERT_EQ(cg.node_props[0].size(), 2u);
  std::set<std::pair<std::string, std::string>> round_trip;
  for (const auto& [k, v] : cg.node_props[0]) {
    round_trip.insert({table.resolve(k), table.resolve(v)});
  }
  EXPECT_EQ(round_trip,
            (std::set<std::pair<std::string, std::string>>{
                {"pid", "42"}, {"name", "sh"}}));
  // Props must be sorted by key symbol for the merge costs.
  for (const CompactProps& props : cg.node_props) {
    EXPECT_TRUE(std::is_sorted(props.begin(), props.end()));
  }
}

TEST(CompactGraph, CsrMatchesNaiveAdjacencyOnRandomGraphs) {
  for (int seed = 0; seed < 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 17 + 1);
    PropertyGraph g = random_graph(2 + seed % 8, seed % 12, rng);
    SymbolTable table;
    CompactGraph cg = CompactGraph::build(g, table);

    for (std::uint32_t v = 0; v < cg.node_count(); ++v) {
      const Id& id = g.nodes()[v].id;
      EXPECT_EQ(cg.out_degree(v), g.out_degree(id)) << "seed " << seed;
      EXPECT_EQ(cg.in_degree(v), g.in_degree(id)) << "seed " << seed;

      // The CSR rows must contain exactly the incident edge indices.
      std::multiset<std::string> csr_out, naive_out;
      for (std::uint32_t k = cg.out_offsets[v]; k < cg.out_offsets[v + 1];
           ++k) {
        csr_out.insert(g.edges()[cg.out_edges[k]].id);
      }
      for (const Edge& e : g.edges()) {
        if (e.src == id) naive_out.insert(e.id);
      }
      EXPECT_EQ(csr_out, naive_out) << "seed " << seed;

      std::multiset<std::string> csr_in, naive_in;
      for (std::uint32_t k = cg.in_offsets[v]; k < cg.in_offsets[v + 1];
           ++k) {
        csr_in.insert(g.edges()[cg.in_edges[k]].id);
      }
      for (const Edge& e : g.edges()) {
        if (e.tgt == id) naive_in.insert(e.id);
      }
      EXPECT_EQ(csr_in, naive_in) << "seed " << seed;
    }

    // Label buckets partition the nodes.
    std::size_t bucketed = 0;
    for (const auto& [label, bucket] : cg.label_buckets) {
      for (std::uint32_t v : bucket) {
        EXPECT_EQ(cg.node_label[v], label);
      }
      bucketed += bucket.size();
    }
    EXPECT_EQ(bucketed, cg.node_count());
  }
}

TEST(CompactGraph, SharedTableMakesSymbolsComparable) {
  PropertyGraph g1, g2;
  g1.add_node("a", "Process");
  g2.add_node("z", "Process");
  SymbolTable table;
  CompactGraph c1 = CompactGraph::build(g1, table);
  CompactGraph c2 = CompactGraph::build(g2, table);
  EXPECT_EQ(c1.node_label[0], c2.node_label[0]);
}

TEST(CompactWl, MatchesStringWlColours) {
  for (int seed = 0; seed < 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
    PropertyGraph g = random_graph(2 + seed % 7, seed % 10, rng);
    SymbolTable table;
    CompactGraph cg = CompactGraph::build(g, table);
    for (int rounds : {0, 1, 2, 3}) {
      std::vector<std::uint64_t> compact = compact_wl_colours(cg, rounds);
      std::map<Id, std::uint64_t> reference = wl_colours(g, rounds);
      ASSERT_EQ(compact.size(), reference.size());
      for (std::size_t i = 0; i < g.nodes().size(); ++i) {
        EXPECT_EQ(compact[i], reference.at(g.nodes()[i].id))
            << "seed " << seed << " rounds " << rounds;
      }
    }
  }
}

TEST(CompactGraph, EmptyGraph) {
  PropertyGraph g;
  SymbolTable table;
  CompactGraph cg = CompactGraph::build(g, table);
  EXPECT_EQ(cg.node_count(), 0u);
  EXPECT_EQ(cg.edge_count(), 0u);
  EXPECT_TRUE(cg.label_buckets.empty());
}

TEST(CompactGraph, SelfLoopCountsBothDirections) {
  PropertyGraph g;
  g.add_node("a", "X");
  g.add_edge("e", "a", "a", "self");
  SymbolTable table;
  CompactGraph cg = CompactGraph::build(g, table);
  EXPECT_EQ(cg.out_degree(0), 1u);
  EXPECT_EQ(cg.in_degree(0), 1u);
}

}  // namespace
}  // namespace provmark::graph
