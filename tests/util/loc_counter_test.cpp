#include "util/loc_counter.h"

#include <gtest/gtest.h>

namespace provmark::util {
namespace {

TEST(LocCounter, CountsCodeCommentBlank) {
  LocCount c = count_source_lines(
      "int x;\n"
      "// comment only\n"
      "\n"
      "int y;  // trailing comment still code\n");
  EXPECT_EQ(c.total, 4);
  EXPECT_EQ(c.code, 2);
  EXPECT_EQ(c.comment, 1);
  EXPECT_EQ(c.blank, 1);
}

TEST(LocCounter, BlockComments) {
  LocCount c = count_source_lines(
      "/* one\n"
      "   two\n"
      "   three */\n"
      "int x; /* inline */\n");
  EXPECT_EQ(c.comment, 3);
  EXPECT_EQ(c.code, 1);
}

TEST(LocCounter, BlockCommentWithTrailingCode) {
  LocCount c = count_source_lines("/* c */ int x;\n");
  EXPECT_EQ(c.code, 1);
}

TEST(LocCounter, EmptyText) {
  LocCount c = count_source_lines("");
  EXPECT_EQ(c.total, 0);
}

TEST(LocCounter, MissingDirectoryIsZero) {
  LocCount c = count_directory("/no/such/dir", {".cpp"});
  EXPECT_EQ(c.total, 0);
}

TEST(LocCounter, MissingFileIsZero) {
  LocCount c = count_file("/no/such/file.cpp");
  EXPECT_EQ(c.total, 0);
}

}  // namespace
}  // namespace provmark::util
