#include "util/strings.h"

#include <gtest/gtest.h>

namespace provmark::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("nodelim", ','), (std::vector<std::string>{"nodelim"}));
}

TEST(SplitNonempty, TrimsAndDrops) {
  EXPECT_EQ(split_nonempty(" a , ,b ", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_nonempty("  ,  ", ',').empty());
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("digraph g", "digraph"));
  EXPECT_FALSE(starts_with("di", "digraph"));
  EXPECT_TRUE(ends_with("file.json", ".json"));
  EXPECT_FALSE(ends_with("json", ".json"));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");   // empty needle is no-op
}

TEST(Format, Printf) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace provmark::util
