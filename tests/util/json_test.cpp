#include "util/json.h"

#include <gtest/gtest.h>

namespace provmark::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerance) {
  Json j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  Json j = Json::parse(R"({"a": {"b": [1, {"c": "d"}]}})");
  EXPECT_EQ(j.at("a").at("b").as_array()[1].at("c").as_string(), "d");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParse, StringEscapes) {
  Json j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeEscapes) {
  // U+00E9 (e-acute), and a surrogate pair for U+1F600.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, ErrorsCarryOffset) {
  try {
    Json::parse("{\"a\": }");
    FAIL() << "expected parse error";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonParseError);
}

TEST(JsonDump, CompactRoundTrip) {
  const char* text = R"({"b":1,"a":[true,null,"x"]})";
  Json j = Json::parse(text);
  EXPECT_EQ(j.dump(), text);  // member order preserved
}

TEST(JsonDump, PreservesIntegerLiterals) {
  // Large identifiers must not be mangled through double conversion.
  Json j = Json::parse("{\"id\":9007199254740993}");
  EXPECT_NE(j.dump().find("9007199254740993"), std::string::npos);
}

TEST(JsonDump, IndentedOutputParses) {
  Json j = Json::parse(R"({"a":[1,2],"b":{"c":"d"}})");
  Json round = Json::parse(j.dump(2));
  EXPECT_EQ(j, round);
}

TEST(JsonDump, EscapesControlCharacters) {
  Json j(std::string("a\001b"));
  EXPECT_EQ(j.dump(), "\"a\\u0001b\"");
}

TEST(JsonBuild, SetAndFind) {
  Json obj = Json::object();
  obj.set("x", Json(1));
  obj.set("y", Json("z"));
  obj.set("x", Json(2));  // overwrite keeps position
  EXPECT_EQ(obj.as_object().front().first, "x");
  EXPECT_EQ(obj.at("x").as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), std::out_of_range);
}

TEST(JsonBuild, PushBack) {
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json("two"));
  EXPECT_EQ(arr.as_array().size(), 2u);
}

TEST(JsonEquality, DeepCompare) {
  EXPECT_EQ(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({"a":[1,2]})"));
  EXPECT_FALSE(Json::parse(R"({"a":1})") == Json::parse(R"({"a":2})"));
  EXPECT_FALSE(Json::parse("[1]") == Json::parse("{}"));
}

TEST(JsonEscape, Basics) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("tab\t"), "tab\\t");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace provmark::util
