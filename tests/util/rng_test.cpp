#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace provmark::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(5);
  Rng fork1 = base.fork(1);
  Rng fork2 = base.fork(2);
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(StableHash, StableAndDiscriminating) {
  EXPECT_EQ(stable_hash("spade"), stable_hash("spade"));
  EXPECT_NE(stable_hash("spade"), stable_hash("opus"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

}  // namespace
}  // namespace provmark::util
