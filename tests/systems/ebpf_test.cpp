// The eBPF/LSM-style recorder: exhaustive, literal hook serialization —
// including the hooks CamFlow drops and denied permission checks — with
// seed-driven transient ids and no recording noise.
#include "systems/ebpf.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "formats/detect.h"
#include "formats/prov_json.h"
#include "os/kernel.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed)
      .trace;
}

bool has_edge_labeled(const graph::PropertyGraph& g,
                      const std::string& label) {
  for (const graph::Edge& e : g.edges()) {
    if (e.label == label) return true;
  }
  return false;
}

TEST(Ebpf, OutputIsProvJson) {
  EbpfRecorder recorder;
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::ProvJson);
  EXPECT_GT(formats::from_prov_json(out).node_count(), 0u);
}

TEST(Ebpf, EveryLsmEventBecomesAnEdge) {
  os::EventTrace trace = trace_for("open", true);
  graph::PropertyGraph g = build_ebpf_graph(trace, {}, 1);
  std::size_t object2_events = 0;
  for (const os::LsmEvent& e : trace.lsm) {
    if (e.object2.has_value()) ++object2_events;
  }
  // One edge per hook firing, plus one extra edge per two-object event.
  EXPECT_EQ(g.edge_count(), trace.lsm.size() + object2_events);
}

TEST(Ebpf, SeesHooksCamflowDrops) {
  // CamFlow 0.4.5 skips inode_symlink and task_kill (Table 2 empty
  // cells); a BPF tracer attached to those hooks records them.
  graph::PropertyGraph symlink =
      build_ebpf_graph(trace_for("symlink", true), {}, 1);
  EXPECT_TRUE(has_edge_labeled(symlink, "inode_symlink"));

  // The Table-1 kill benchmark targets an exited child (ESRCH), which
  // fires no hook — kill a live process to exercise task_kill.
  os::Kernel::Options options;
  options.seed = 1;
  options.free_record_probability = 0;
  os::Kernel kernel(options);
  os::Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  os::SyscallResult child = kernel.sys_fork(pid);
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(
      kernel.sys_kill(pid, static_cast<os::Pid>(child.ret), 9).ok());
  graph::PropertyGraph kill = build_ebpf_graph(kernel.trace(), {}, 1);
  EXPECT_TRUE(has_edge_labeled(kill, "task_kill"));
}

TEST(Ebpf, DeniedPermissionChecksAreRecordedAndGateable) {
  // A BPF LSM program observes the hook before the verdict is enforced,
  // so denied checks appear — with a denied marker — unless configured
  // away. Drive an unprivileged open of a root-owned 0600 file.
  os::Kernel::Options options;
  options.seed = 3;
  options.free_record_probability = 0;
  options.initial_creds = os::Credentials{1000, 1000, 1000,
                                          1000, 1000, 1000};
  os::Kernel kernel(options);
  kernel.stage_file("/home/user/secret.txt", 0600, /*uid=*/0);
  os::Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  os::SyscallResult r =
      kernel.sys_open(pid, "/home/user/secret.txt", os::kO_RDWR);
  ASSERT_EQ(r.error, os::Errno::kACCES);

  graph::PropertyGraph with = build_ebpf_graph(kernel.trace(), {}, 1);
  bool saw_denied = false;
  for (const graph::Edge& e : with.edges()) {
    auto it = e.props.find("bpf:denied");
    if (it != e.props.end() && it->second == "true" &&
        e.label == "file_open") {
      saw_denied = true;
    }
  }
  EXPECT_TRUE(saw_denied);

  EbpfConfig quiet;
  quiet.record_denied = false;
  graph::PropertyGraph without = build_ebpf_graph(kernel.trace(), quiet, 1);
  for (const graph::Edge& e : without.edges()) {
    EXPECT_EQ(e.props.count("bpf:denied"), 0u);
  }
  EXPECT_LT(without.edge_count(), with.edge_count());
}

TEST(Ebpf, SocketLifecycleIsFullyVisible) {
  graph::PropertyGraph g = build_ebpf_graph(trace_for("accept", true), {}, 1);
  for (const char* hook :
       {"socket_create", "socket_bind", "socket_listen", "socket_accept"}) {
    EXPECT_TRUE(has_edge_labeled(g, hook)) << hook;
  }
  // The accept's second object materializes the accepted connection.
  EXPECT_TRUE(has_edge_labeled(g, "socket_accept"));
  bool object2_edge = false;
  for (const graph::Edge& e : g.edges()) {
    auto it = e.props.find("prov:label");
    if (it != e.props.end() && it->second == "socket_accept:object2") {
      object2_edge = true;
    }
  }
  EXPECT_TRUE(object2_edge);
}

TEST(Ebpf, NodesArePROVTypedTasksAndEntities) {
  graph::PropertyGraph g = build_ebpf_graph(trace_for("open", true), {}, 1);
  for (const graph::Node& n : g.nodes()) {
    EXPECT_TRUE(n.label == "activity" || n.label == "entity") << n.label;
    EXPECT_TRUE(n.props.count("prov:type")) << n.id;
    if (n.label == "activity") {
      EXPECT_TRUE(n.props.count("bpf:pid")) << n.id;
    }
  }
}

TEST(Ebpf, SeedMintsTransientIdsStructureStable) {
  os::EventTrace trace = trace_for("open", true);
  graph::PropertyGraph a = build_ebpf_graph(trace, {}, 7);
  graph::PropertyGraph a_again = build_ebpf_graph(trace, {}, 7);
  EXPECT_TRUE(a == a_again);
  graph::PropertyGraph b = build_ebpf_graph(trace, {}, 8);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_FALSE(a == b) << "ring-buffer ids must be seed-minted transients";
}

}  // namespace
}  // namespace provmark::systems
