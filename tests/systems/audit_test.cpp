// The Linux-Audit-style recorder: native record shape (one vertex per
// SYSCALL record), the decoded/raw argument vocabulary, the extra rules
// that surface what SPADE's defaults skip, and seed-driven transients.
#include "systems/audit.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "formats/detect.h"
#include "formats/dot.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1,
                         const std::set<std::string>& extra_rules = {}) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed,
             extra_rules)
      .trace;
}

const graph::Node* find_syscall_node(const graph::PropertyGraph& g,
                                     const std::string& syscall) {
  for (const graph::Node& n : g.nodes()) {
    auto it = n.props.find("syscall");
    if (it != n.props.end() && it->second == syscall) return &n;
  }
  return nullptr;
}

TEST(Audit, OutputIsDotAndParses) {
  AuditRecorder recorder;
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::Dot);
  EXPECT_GT(formats::from_dot(out).node_count(), 0u);
}

TEST(Audit, OneVertexPerSyscallRecord) {
  os::EventTrace trace = trace_for("open", true);
  graph::PropertyGraph g = build_audit_graph(trace, {}, 1);
  std::size_t record_nodes = 0;
  for (const graph::Node& n : g.nodes()) {
    if (n.label == "syscall") ++record_nodes;
  }
  EXPECT_EQ(record_nodes, trace.audit.size());
  // Every record vertex links to its emitting process.
  for (const graph::Node& n : g.nodes()) {
    if (n.label != "syscall") continue;
    bool emitted = false;
    for (const graph::Edge& e : g.edges()) {
      if (e.src == n.id && e.label == "emitted") emitted = true;
    }
    EXPECT_TRUE(emitted) << n.id;
  }
}

TEST(Audit, FlagVocabularyDecodedNextToRawRegister) {
  graph::PropertyGraph g = build_audit_graph(trace_for("open", true), {}, 1);
  const graph::Node* open_record = find_syscall_node(g, "open");
  ASSERT_NE(open_record, nullptr);
  // The benchmark opens O_RDONLY (0): raw a1 register plus the decoded
  // vocabulary string, the audit-helpers idiom.
  ASSERT_TRUE(open_record->props.count("a1"));
  ASSERT_TRUE(open_record->props.count("flags"));
  EXPECT_EQ(open_record->props.at("a1"), "0x0");

  // A creat-flavoured open carries the composite vocabulary.
  graph::PropertyGraph cg =
      build_audit_graph(trace_for("creat", true), {}, 1);
  const graph::Node* creat_record = find_syscall_node(cg, "creat");
  ASSERT_NE(creat_record, nullptr);
  EXPECT_NE(creat_record->props.at("flags").find("O_CREAT"),
            std::string::npos);
  // O_WRONLY|O_CREAT|O_TRUNC = 01 | 0100 | 01000 = 0x241.
  EXPECT_EQ(creat_record->props.at("a1"), "0x241");
}

TEST(Audit, DecodeArgumentsOffKeepsRawRegistersOnly) {
  AuditConfig config;
  config.decode_arguments = false;
  graph::PropertyGraph g =
      build_audit_graph(trace_for("creat", true), config, 1);
  const graph::Node* record = find_syscall_node(g, "creat");
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->props.count("a1"));
  EXPECT_FALSE(record->props.count("flags"));
}

TEST(Audit, ExtraRulesSurfaceTheSocketFamily) {
  AuditRecorder recorder;
  std::set<std::string> rules = recorder.extra_audit_rules();
  for (const char* rule : {"socket", "bind", "connect", "accept", "pipe",
                           "mknod", "chown", "setresuid"}) {
    EXPECT_EQ(rules.count(rule), 1u) << rule;
  }

  // Without the rules the socket benchmark's audit stream has no socket
  // record; with them it does — the cell SPADE leaves NR becomes
  // visible to this recorder.
  graph::PropertyGraph without =
      build_audit_graph(trace_for("socket", true), {}, 1);
  EXPECT_EQ(find_syscall_node(without, "socket"), nullptr);
  graph::PropertyGraph with =
      build_audit_graph(trace_for("socket", true, 1, rules), {}, 1);
  EXPECT_NE(find_syscall_node(with, "socket"), nullptr);
}

TEST(Audit, MmapRecordCarriesProtVocabulary) {
  // The loader also mmaps (PROT_READ|PROT_EXEC), so select the
  // benchmark's own read-write mapping.
  graph::PropertyGraph g = build_audit_graph(trace_for("mmap", true), {}, 1);
  const graph::Node* record = nullptr;
  for (const graph::Node& n : g.nodes()) {
    auto sys = n.props.find("syscall");
    auto prot = n.props.find("prot");
    if (sys != n.props.end() && sys->second == "mmap" &&
        prot != n.props.end() && prot->second == "PROT_READ|PROT_WRITE") {
      record = &n;
    }
  }
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->props.at("a2"), "0x3");
  // The mapped file shows up as a PATH record vertex.
  bool path_edge = false;
  for (const graph::Edge& e : g.edges()) {
    if (e.src == record->id && e.label == "path") path_edge = true;
  }
  EXPECT_TRUE(path_edge);
}

TEST(Audit, ForkRecordLinksToChildProcessVertex) {
  graph::PropertyGraph g = build_audit_graph(trace_for("fork", true), {}, 1);
  const graph::Node* record = find_syscall_node(g, "fork");
  ASSERT_NE(record, nullptr);
  bool spawned = false;
  for (const graph::Edge& e : g.edges()) {
    if (e.src == record->id && e.label == "spawned") spawned = true;
  }
  EXPECT_TRUE(spawned);
}

TEST(Audit, SeedMintsTransientIdsStructureStable) {
  os::EventTrace trace = trace_for("open", true);
  graph::PropertyGraph a = build_audit_graph(trace, {}, 1);
  graph::PropertyGraph a_again = build_audit_graph(trace, {}, 1);
  EXPECT_TRUE(a == a_again);
  graph::PropertyGraph b = build_audit_graph(trace, {}, 2);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_FALSE(a == b) << "vertex ids must be seed-minted transients";
}

}  // namespace
}  // namespace provmark::systems
