#include "systems/spade.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "formats/detect.h"
#include "formats/dot.h"
#include "graph/algorithms.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1,
                         const std::set<std::string>& extra_rules = {}) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed,
             extra_rules)
      .trace;
}

int count_edges_with(const graph::PropertyGraph& g, const std::string& key,
                     const std::string& value) {
  int n = 0;
  for (const graph::Edge& e : g.edges()) {
    auto it = e.props.find(key);
    if (it != e.props.end() && it->second == value) ++n;
  }
  return n;
}

TEST(Spade, OutputIsParseableDot) {
  SpadeConfig config;
  config.truncation_probability = 0;
  SpadeRecorder recorder(config);
  std::string out = recorder.record(trace_for("open", true), {42});
  EXPECT_EQ(formats::detect_format(out), formats::Format::Dot);
  graph::PropertyGraph g = formats::from_dot(out);
  EXPECT_GT(g.node_count(), 0u);
}

TEST(Spade, OpenAddsArtifactAndUsedEdge) {
  graph::PropertyGraph bg =
      build_spade_graph(trace_for("open", false), {}, 1);
  graph::PropertyGraph fg = build_spade_graph(trace_for("open", true), {}, 1);
  EXPECT_EQ(fg.node_count(), bg.node_count() + 1);
  EXPECT_EQ(fg.edge_count(), bg.edge_count() + 1);
  EXPECT_GE(count_edges_with(fg, "operation", "open"), 1);
}

TEST(Spade, WriteIsWasGeneratedBy) {
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("write", true), {}, 1);
  bool found = false;
  for (const graph::Edge& e : fg.edges()) {
    if (e.props.count("operation") && e.props.at("operation") == "write") {
      EXPECT_EQ(e.label, "WasGeneratedBy");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Spade, RenameBuildsTwoArtifactsLinked) {
  graph::PropertyGraph bg =
      build_spade_graph(trace_for("rename", false), {}, 1);
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("rename", true), {}, 1);
  // Two nodes for the new and old filenames, edges linking them to each
  // other and to the process (Figure 1a / §4.1).
  EXPECT_EQ(fg.node_count(), bg.node_count() + 2);
  EXPECT_EQ(fg.edge_count(), bg.edge_count() + 3);
  EXPECT_EQ(count_edges_with(fg, "operation", "rename"), 3);
}

TEST(Spade, DupCreatesNoStructure) {
  graph::PropertyGraph bg = build_spade_graph(trace_for("dup", false), {}, 1);
  graph::PropertyGraph fg = build_spade_graph(trace_for("dup", true), {}, 1);
  EXPECT_EQ(fg.node_count(), bg.node_count());
  EXPECT_EQ(fg.edge_count(), bg.edge_count());
}

TEST(Spade, SetresuidDetectedViaCredentialChange) {
  graph::PropertyGraph bg =
      build_spade_graph(trace_for("setresuid", false), {}, 1);
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("setresuid", true), {}, 1);
  // Not audited directly, but the uid change surfaces through the later
  // exit_group record: one new Process vertex + update edge.
  EXPECT_EQ(fg.node_count(), bg.node_count() + 1);
  EXPECT_GE(count_edges_with(fg, "operation", "update"), 1);
}

TEST(Spade, SetresgidNoopInvisible) {
  graph::PropertyGraph bg =
      build_spade_graph(trace_for("setresgid", false), {}, 1);
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("setresgid", true), {}, 1);
  EXPECT_EQ(fg.node_count(), bg.node_count());
  EXPECT_EQ(fg.edge_count(), bg.edge_count());
}

TEST(Spade, VforkChildIsDisconnected) {
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("vfork", true), {}, 1);
  // The child process vertex exists but no WasTriggeredBy(vfork) edge.
  EXPECT_EQ(count_edges_with(fg, "operation", "vfork"), 0);
  // There is a degree-0 Process vertex (the disconnected child).
  auto sigs = graph::degree_signatures(fg);
  bool disconnected_process = false;
  for (const auto& [id, sig] : sigs) {
    if (sig.label == "Process" && sig.in == 0 && sig.out == 0) {
      disconnected_process = true;
    }
  }
  EXPECT_TRUE(disconnected_process);
}

TEST(Spade, ForkChildIsConnected) {
  graph::PropertyGraph fg = build_spade_graph(trace_for("fork", true), {}, 1);
  EXPECT_GE(count_edges_with(fg, "operation", "fork"), 1);
}

TEST(Spade, ExecveGraphIsLarge) {
  graph::PropertyGraph bg =
      build_spade_graph(trace_for("execve", false), {}, 1);
  graph::PropertyGraph fg =
      build_spade_graph(trace_for("execve", true), {}, 1);
  // New process vertex + binary + repeated loader artifacts/edges (§4.2).
  EXPECT_GE(fg.size() - bg.size(), 6u);
}

TEST(Spade, SimplifyOffEmitsSpuriousVertex) {
  SpadeConfig config;
  config.simplify = false;
  SpadeRecorder recorder(config);
  os::EventTrace trace = trace_for("setresuid", true, 1,
                                   recorder.extra_audit_rules());
  graph::PropertyGraph g = build_spade_graph(trace, config, 7);
  auto sigs = graph::degree_signatures(g);
  int disconnected = 0;
  for (const auto& [id, sig] : sigs) {
    if (sig.in == 0 && sig.out == 0) ++disconnected;
  }
  EXPECT_GE(disconnected, 1);

  SpadeConfig fixed = config;
  fixed.fixed_setres_vertex_bug = true;
  graph::PropertyGraph g2 = build_spade_graph(trace, fixed, 7);
  auto sigs2 = graph::degree_signatures(g2);
  int disconnected2 = 0;
  for (const auto& [id, sig] : sigs2) {
    if (sig.in == 0 && sig.out == 0) ++disconnected2;
  }
  EXPECT_EQ(disconnected2, 0);
}

TEST(Spade, SpuriousVertexPropertyIsRandomAcrossRuns) {
  SpadeConfig config;
  config.simplify = false;
  os::EventTrace trace =
      trace_for("setresuid", true, 1, {"setresuid", "setresgid"});
  graph::PropertyGraph a = build_spade_graph(trace, config, 1);
  graph::PropertyGraph b = build_spade_graph(trace, config, 2);
  // Same structure, different random "version" value: the Bob bug.
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(graph::full_digest(a), graph::full_digest(b));
}

TEST(Spade, IorunsFilterBugAndFix) {
  // Trace with a run of 3 reads on the same file.
  bench_suite::BenchmarkProgram p;
  p.name = "reads";
  bench_suite::StageAction stage;
  stage.kind = bench_suite::StageAction::Kind::File;
  stage.path = "test.txt";
  p.staging = {stage};
  bench_suite::Op open;
  open.code = bench_suite::OpCode::Open;
  open.path = "test.txt";
  open.flags = 2;
  open.out = "fd";
  p.ops.push_back(open);
  for (int i = 0; i < 3; ++i) {
    bench_suite::Op read;
    read.code = bench_suite::OpCode::Read;
    read.var = "fd";
    read.a = 64;
    p.ops.push_back(read);
  }
  os::EventTrace trace = bench_suite::execute_program(p, true, 1).trace;

  SpadeConfig off;
  graph::PropertyGraph no_filter = build_spade_graph(trace, off, 1);

  SpadeConfig buggy = off;
  buggy.io_runs_filter = true;
  graph::PropertyGraph with_bug = build_spade_graph(trace, buggy, 1);
  EXPECT_EQ(with_bug.edge_count(), no_filter.edge_count());  // no effect

  SpadeConfig fixed = buggy;
  fixed.fixed_ioruns_property = true;
  graph::PropertyGraph with_fix = build_spade_graph(trace, fixed, 1);
  EXPECT_EQ(with_fix.edge_count(), no_filter.edge_count() - 2);
  bool coalesced = false;
  for (const graph::Edge& e : with_fix.edges()) {
    if (e.props.count("count") && e.props.at("count") == "3") {
      coalesced = true;
    }
  }
  EXPECT_TRUE(coalesced);
}

TEST(Spade, VersioningCreatesArtifactChain) {
  SpadeConfig versioned;
  versioned.versioning = true;
  os::EventTrace trace = trace_for("write", true);
  graph::PropertyGraph plain = build_spade_graph(trace, {}, 1);
  graph::PropertyGraph chain = build_spade_graph(trace, versioned, 1);
  EXPECT_GT(chain.node_count(), plain.node_count());
  bool version_edge = false;
  for (const graph::Edge& e : chain.edges()) {
    if (e.label == "WasDerivedFrom" &&
        e.props.count("operation") &&
        e.props.at("operation") == "version") {
      version_edge = true;
    }
  }
  EXPECT_TRUE(version_edge);
}

TEST(Spade, TruncationProducesUnparseableOutput) {
  SpadeConfig config;
  config.truncation_probability = 1.0;  // force truncation
  SpadeRecorder recorder(config);
  std::string full;
  {
    SpadeConfig clean = config;
    clean.truncation_probability = 0;
    SpadeRecorder ok(clean);
    full = ok.record(trace_for("open", true), {9});
  }
  std::string clipped = recorder.record(trace_for("open", true), {9});
  EXPECT_LT(clipped.size(), full.size());
  // Cut mid-write: the document must fail to parse, so the pipeline
  // excludes the trial as a failed run.
  EXPECT_THROW(formats::from_dot(clipped), std::runtime_error);
}

TEST(Spade, CalibratedLatencyTracksStorageBackend) {
  // Both storage backends report name()=="spade", so the recorder —
  // not a name-keyed lookup — must resolve the calibrated latency:
  // the Neo4j backend pays a per-trial transaction commit on top.
  EXPECT_EQ(make_recorder("spade")->recording_latency(),
            calibrated_recording_latency("spade"));
  EXPECT_EQ(make_recorder("spn")->recording_latency(),
            calibrated_recording_latency("spn"));
  EXPECT_GT(make_recorder("spn")->recording_latency(),
            make_recorder("spg")->recording_latency());
}

TEST(Spade, TransientPropertiesDifferAcrossTrials) {
  os::EventTrace t1 = trace_for("open", true, 1);
  os::EventTrace t2 = trace_for("open", true, 2);
  graph::PropertyGraph g1 = build_spade_graph(t1, {}, 1);
  graph::PropertyGraph g2 = build_spade_graph(t2, {}, 2);
  // Same shape, different transient property values.
  EXPECT_EQ(graph::structural_digest(g1), graph::structural_digest(g2));
  EXPECT_NE(graph::full_digest(g1), graph::full_digest(g2));
}

}  // namespace
}  // namespace provmark::systems
