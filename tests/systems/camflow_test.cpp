#include "systems/camflow.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "formats/detect.h"
#include "formats/prov_json.h"
#include "graph/algorithms.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed)
      .trace;
}

os::EventTrace trace_for_program(const bench_suite::BenchmarkProgram& p,
                                 bool foreground, std::uint64_t seed = 1) {
  return bench_suite::execute_program(p, foreground, seed).trace;
}

TEST(Camflow, OutputIsProvJson) {
  CamflowConfig config;
  config.interference_probability = 0;
  CamflowRecorder recorder(config);
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::ProvJson);
  EXPECT_GT(formats::from_prov_json(out).node_count(), 0u);
}

TEST(Camflow, NodesArePROVTyped) {
  graph::PropertyGraph g =
      build_camflow_graph(trace_for("open", true), {}, 1);
  for (const graph::Node& n : g.nodes()) {
    EXPECT_TRUE(n.label == "activity" || n.label == "entity" ||
                n.label == "agent")
        << n.label;
    EXPECT_TRUE(n.props.count("prov:type")) << n.id;
  }
}

TEST(Camflow, OpenAddsInodePathAndEdges) {
  graph::PropertyGraph bg =
      build_camflow_graph(trace_for("open", false), {}, 1);
  graph::PropertyGraph fg =
      build_camflow_graph(trace_for("open", true), {}, 1);
  // A node for the file object, a node for its path, edges linking them
  // to each other and to the opening process (§4.1).
  EXPECT_EQ(fg.node_count() - bg.node_count(), 2u);
  EXPECT_EQ(fg.edge_count() - bg.edge_count(), 2u);
}

TEST(Camflow, RenameAddsNewPathOldPathAbsent) {
  graph::PropertyGraph fg =
      build_camflow_graph(trace_for("rename", true), {}, 1);
  bool new_path = false, old_path = false;
  for (const graph::Node& n : fg.nodes()) {
    if (n.props.count("cf:pathname")) {
      if (n.props.at("cf:pathname") == "/home/user/new.txt") new_path = true;
      if (n.props.at("cf:pathname") == "/home/user/old.txt") old_path = true;
    }
  }
  EXPECT_TRUE(new_path);
  EXPECT_FALSE(old_path);  // the old path does not appear (§4.1)
}

TEST(Camflow, DupInvisible) {
  graph::PropertyGraph bg =
      build_camflow_graph(trace_for("dup", false), {}, 1);
  graph::PropertyGraph fg = build_camflow_graph(trace_for("dup", true), {}, 1);
  EXPECT_EQ(fg.size(), bg.size());
}

TEST(Camflow, SymlinkAndMknodNotSerializedIn045) {
  for (const char* call : {"symlink", "symlinkat", "mknod", "mknodat"}) {
    graph::PropertyGraph bg =
        build_camflow_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg =
        build_camflow_graph(trace_for(call, true), {}, 1);
    EXPECT_EQ(fg.size(), bg.size()) << call;
  }
}

TEST(Camflow, CredentialCallsAllRecorded) {
  for (const char* call : {"setuid", "setresuid", "setresgid", "setgid"}) {
    graph::PropertyGraph bg =
        build_camflow_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg =
        build_camflow_graph(trace_for(call, true), {}, 1);
    EXPECT_GT(fg.size(), bg.size()) << call;
  }
}

TEST(Camflow, ChownRecordedUnlikeOtherSystems) {
  for (const char* call : {"chown", "fchown", "fchownat"}) {
    graph::PropertyGraph bg =
        build_camflow_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg =
        build_camflow_graph(trace_for(call, true), {}, 1);
    EXPECT_GT(fg.size(), bg.size()) << call;
  }
}

TEST(Camflow, SetattrCreatesEntityVersion) {
  graph::PropertyGraph fg =
      build_camflow_graph(trace_for("chmod", true), {}, 1);
  bool derived = false;
  for (const graph::Edge& e : fg.edges()) {
    if (e.label == "wasDerivedFrom" && e.props.count("prov:label") &&
        e.props.at("prov:label") == "mode") {
      derived = true;
    }
  }
  EXPECT_TRUE(derived);
}

TEST(Camflow, TeeRecordedThroughPermissionHooks) {
  graph::PropertyGraph bg = build_camflow_graph(trace_for("tee", false), {}, 1);
  graph::PropertyGraph fg = build_camflow_graph(trace_for("tee", true), {}, 1);
  EXPECT_GT(fg.size(), bg.size());
  bool fifo_entity = false;
  for (const graph::Node& n : fg.nodes()) {
    if (n.props.count("prov:type") &&
        n.props.at("prov:type") == "inode_fifo") {
      fifo_entity = true;
    }
  }
  EXPECT_TRUE(fifo_entity);
}

TEST(Camflow, PipeAllocationInvisible) {
  graph::PropertyGraph bg =
      build_camflow_graph(trace_for("pipe", false), {}, 1);
  graph::PropertyGraph fg =
      build_camflow_graph(trace_for("pipe", true), {}, 1);
  EXPECT_EQ(fg.size(), bg.size());
}

TEST(Camflow, DeniedEventsSkippedInBaseline) {
  bench_suite::BenchmarkProgram program =
      bench_suite::failed_rename_benchmark();
  os::EventTrace fg_trace = trace_for_program(program, true);
  os::EventTrace bg_trace = trace_for_program(program, false);
  CamflowConfig baseline;
  EXPECT_EQ(build_camflow_graph(fg_trace, baseline, 1).size(),
            build_camflow_graph(bg_trace, baseline, 1).size());
  CamflowConfig denied;
  denied.record_denied = true;
  EXPECT_GT(build_camflow_graph(fg_trace, denied, 1).size(),
            build_camflow_graph(bg_trace, denied, 1).size());
}

TEST(Camflow, InterferenceAddsStructure) {
  CamflowConfig always;
  always.interference_probability = 1.0;
  CamflowConfig never;
  never.interference_probability = 0.0;
  CamflowRecorder noisy(always), clean(never);
  os::EventTrace trace = trace_for("open", true);
  graph::PropertyGraph g_noisy =
      formats::from_prov_json(noisy.record(trace, {3}));
  graph::PropertyGraph g_clean =
      formats::from_prov_json(clean.record(trace, {3}));
  EXPECT_GT(g_noisy.size(), g_clean.size());
}

TEST(Camflow, TransientIdsVaryAcrossTrials) {
  // Same kernel trace, different serialization sessions: the structure is
  // identical, but boot_id / cf:id properties are transient. (Different
  // kernel seeds can also differ *structurally* via deferred inode_free
  // flushes, which is exercised by the pipeline tests.)
  os::EventTrace trace = trace_for("open", true, 1);
  graph::PropertyGraph g1 = build_camflow_graph(trace, {}, 1);
  graph::PropertyGraph g2 = build_camflow_graph(trace, {}, 2);
  EXPECT_EQ(graph::structural_digest(g1), graph::structural_digest(g2));
  EXPECT_NE(graph::full_digest(g1), graph::full_digest(g2));
}

TEST(Camflow, TaskVersioningOnCredChange) {
  graph::PropertyGraph fg =
      build_camflow_graph(trace_for("setuid", true), {}, 1);
  int informed = 0;
  for (const graph::Edge& e : fg.edges()) {
    if (e.label == "wasInformedBy" && e.props.count("prov:label") &&
        e.props.at("prov:label") == "setuid") {
      ++informed;
    }
  }
  EXPECT_EQ(informed, 1);
}

}  // namespace
}  // namespace provmark::systems
