#include "systems/opus.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "formats/detect.h"
#include "formats/neo4j.h"
#include "graph/algorithms.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed)
      .trace;
}

os::EventTrace trace_for_program(const bench_suite::BenchmarkProgram& p,
                                 bool foreground, std::uint64_t seed = 1) {
  return bench_suite::execute_program(p, foreground, seed).trace;
}

TEST(Opus, OutputIsNeo4jExport) {
  OpusRecorder recorder;
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::Neo4jJson);
  EXPECT_GT(formats::from_neo4j_json(out).node_count(), 0u);
}

TEST(Opus, ProcessNodeCarriesEnvironment) {
  graph::PropertyGraph g = build_opus_graph(trace_for("open", true), {}, 1);
  bool found = false;
  for (const graph::Node& n : g.nodes()) {
    if (n.label == "Process") {
      found = true;
      int env_props = 0;
      for (const auto& [k, v] : n.props) {
        if (k.rfind("env:", 0) == 0) ++env_props;
      }
      EXPECT_GE(env_props, 20);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Opus, OpenAddsFourNodes) {
  graph::PropertyGraph bg = build_opus_graph(trace_for("open", false), {}, 1);
  graph::PropertyGraph fg = build_opus_graph(trace_for("open", true), {}, 1);
  // "OPUS creates four new nodes including two corresponding to the
  // file" (§4.1): event + local + global-v2 (+ version edge to v1... the
  // second file node is the previous version when one exists; on a fresh
  // file the chain starts with one version, so >= 3 new nodes).
  EXPECT_GE(fg.node_count() - bg.node_count(), 3u);
}

TEST(Opus, DupAddsTwoDisconnectedNodesOnProcess) {
  graph::PropertyGraph bg = build_opus_graph(trace_for("dup", false), {}, 1);
  graph::PropertyGraph fg = build_opus_graph(trace_for("dup", true), {}, 1);
  EXPECT_EQ(fg.node_count() - bg.node_count(), 2u);
  EXPECT_EQ(fg.edge_count() - bg.edge_count(), 2u);
}

TEST(Opus, RenameAddsAboutADozenNodes) {
  graph::PropertyGraph bg =
      build_opus_graph(trace_for("rename", false), {}, 1);
  graph::PropertyGraph fg = build_opus_graph(trace_for("rename", true), {}, 1);
  std::size_t added = (fg.node_count() + fg.edge_count()) -
                      (bg.node_count() + bg.edge_count());
  EXPECT_GE(added, 10u);
}

TEST(Opus, ReadWriteNotRecordedByDefault) {
  for (const char* call : {"read", "write", "pread", "pwrite"}) {
    graph::PropertyGraph bg = build_opus_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg = build_opus_graph(trace_for(call, true), {}, 1);
    EXPECT_EQ(fg.size(), bg.size()) << call;
  }
}

TEST(Opus, RecordIoConfigEnablesReadWrite) {
  OpusConfig config;
  config.record_io = true;
  graph::PropertyGraph bg =
      build_opus_graph(trace_for("read", false), config, 1);
  graph::PropertyGraph fg =
      build_opus_graph(trace_for("read", true), config, 1);
  EXPECT_GT(fg.size(), bg.size());
}

TEST(Opus, UnwrappedCallsInvisible) {
  for (const char* call : {"clone", "mknodat", "tee", "setresuid"}) {
    graph::PropertyGraph bg = build_opus_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg = build_opus_graph(trace_for(call, true), {}, 1);
    EXPECT_EQ(fg.size(), bg.size()) << call;
  }
}

TEST(Opus, FailedRenameRecordedWithNegativeReturn) {
  bench_suite::BenchmarkProgram program =
      bench_suite::failed_rename_benchmark();
  graph::PropertyGraph fg =
      build_opus_graph(trace_for_program(program, true), {}, 1);
  graph::PropertyGraph bg =
      build_opus_graph(trace_for_program(program, false), {}, 1);
  EXPECT_GT(fg.size(), bg.size());
  bool failed_event = false;
  for (const graph::Node& n : fg.nodes()) {
    if (n.label == "Event" && n.props.count("fn") &&
        n.props.at("fn") == "rename") {
      EXPECT_EQ(n.props.at("ret"), "-1");
      EXPECT_TRUE(n.props.count("errno"));
      failed_event = true;
    }
  }
  EXPECT_TRUE(failed_event);
}

TEST(Opus, ForkReplicatesProcessState) {
  graph::PropertyGraph bg = build_opus_graph(trace_for("fork", false), {}, 1);
  graph::PropertyGraph fg = build_opus_graph(trace_for("fork", true), {}, 1);
  std::size_t added = fg.size() - bg.size();
  EXPECT_GE(added, 8u);  // "large" per §4.2
  // Exactly one additional Process node (the child).
  int bg_procs = 0, fg_procs = 0;
  for (const graph::Node& n : bg.nodes()) {
    if (n.label == "Process") ++bg_procs;
  }
  for (const graph::Node& n : fg.nodes()) {
    if (n.label == "Process") ++fg_procs;
  }
  EXPECT_EQ(fg_procs, bg_procs + 1);
}

TEST(Opus, ExecveAddsFewNodes) {
  graph::PropertyGraph bg =
      build_opus_graph(trace_for("execve", false), {}, 1);
  graph::PropertyGraph fg =
      build_opus_graph(trace_for("execve", true), {}, 1);
  std::size_t added_nodes = fg.node_count() - bg.node_count();
  EXPECT_GE(added_nodes, 1u);
  EXPECT_LE(added_nodes, 12u);  // small relative to fork's replication
}

TEST(Opus, VersionChainsLinkGlobalNodes) {
  // Two opens of the same file: second bumps the Global version with a
  // VERSION_OF edge.
  bench_suite::BenchmarkProgram p;
  p.name = "two-opens";
  bench_suite::StageAction stage;
  stage.kind = bench_suite::StageAction::Kind::File;
  stage.path = "test.txt";
  p.staging = {stage};
  for (int i = 0; i < 2; ++i) {
    bench_suite::Op open;
    open.code = bench_suite::OpCode::Open;
    open.path = "test.txt";
    open.flags = 2;
    open.out = "fd" + std::to_string(i);
    p.ops.push_back(open);
  }
  graph::PropertyGraph g =
      build_opus_graph(trace_for_program(p, true), {}, 1);
  int version_edges = 0;
  for (const graph::Edge& e : g.edges()) {
    if (e.label == "VERSION_OF") ++version_edges;
  }
  EXPECT_GE(version_edges, 1);
}

TEST(Opus, StableAcrossTrialsUpToTransients) {
  graph::PropertyGraph g1 = build_opus_graph(trace_for("open", true, 1), {}, 1);
  graph::PropertyGraph g2 = build_opus_graph(trace_for("open", true, 2), {}, 2);
  EXPECT_EQ(graph::structural_digest(g1), graph::structural_digest(g2));
  // Transients exist (sys_time, XDG_SESSION_ID, pid).
  EXPECT_NE(graph::full_digest(g1), graph::full_digest(g2));
}

TEST(Opus, RecorderOutputDeterministicPerTrialSeed) {
  OpusRecorder a, b;
  os::EventTrace trace = trace_for("open", true);
  EXPECT_EQ(a.record(trace, {5}), b.record(trace, {5}));
  EXPECT_NE(a.record(trace, {5}), b.record(trace, {6}));
}

}  // namespace
}  // namespace provmark::systems
