#include "systems/spade_camflow.h"

#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "formats/detect.h"
#include "formats/dot.h"
#include "systems/recorder.h"
#include "systems/spade.h"

namespace provmark::systems {
namespace {

os::EventTrace trace_for(const std::string& benchmark, bool foreground,
                         std::uint64_t seed = 1) {
  return bench_suite::execute_program(
             bench_suite::benchmark_by_name(benchmark), foreground, seed)
      .trace;
}

TEST(SpadeCamflow, OutputIsSpadeStyleDot) {
  SpadeCamflowConfig config;
  config.interference_probability = 0;
  SpadeCamflowRecorder recorder(config);
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::Dot);
  graph::PropertyGraph g = formats::from_dot(out);
  // OPM vocabulary, not PROV: Process/Artifact vertices.
  for (const graph::Node& n : g.nodes()) {
    EXPECT_TRUE(n.label == "Process" || n.label == "Artifact") << n.label;
  }
}

TEST(SpadeCamflow, CoverageFollowsLsmLayerNotAuditRules) {
  // chown: invisible to audit-SPADE, visible through the LSM reporter.
  graph::PropertyGraph bg =
      build_spade_camflow_graph(trace_for("chown", false), {}, 1);
  graph::PropertyGraph fg =
      build_spade_camflow_graph(trace_for("chown", true), {}, 1);
  EXPECT_GT(fg.size(), bg.size());
  // dup: visible to audit (bookkeeping) but no LSM hook at all.
  graph::PropertyGraph dup_bg =
      build_spade_camflow_graph(trace_for("dup", false), {}, 1);
  graph::PropertyGraph dup_fg =
      build_spade_camflow_graph(trace_for("dup", true), {}, 1);
  EXPECT_EQ(dup_fg.size(), dup_bg.size());
}

TEST(SpadeCamflow, InheritsCamflowVersionGaps) {
  for (const char* call : {"symlink", "mknod", "pipe"}) {
    graph::PropertyGraph bg =
        build_spade_camflow_graph(trace_for(call, false), {}, 1);
    graph::PropertyGraph fg =
        build_spade_camflow_graph(trace_for(call, true), {}, 1);
    EXPECT_EQ(fg.size(), bg.size()) << call;
  }
}

TEST(SpadeCamflow, SetidCreatesProcessVersionEdge) {
  graph::PropertyGraph fg =
      build_spade_camflow_graph(trace_for("setuid", true), {}, 1);
  bool found = false;
  for (const graph::Edge& e : fg.edges()) {
    if (e.label == "WasTriggeredBy" && e.props.count("operation") &&
        e.props.at("operation") == "setuid") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpadeCamflow, FullPipelineRenameOk) {
  core::PipelineOptions options;
  options.recorder = std::make_shared<SpadeCamflowRecorder>();
  options.seed = 2;
  core::BenchmarkResult result = core::run_benchmark(
      bench_suite::benchmark_by_name("rename"), options);
  EXPECT_EQ(result.status, core::BenchmarkStatus::Ok);
  EXPECT_EQ(result.system, "spade-camflow");
}

TEST(SpadeCamflow, FactoryKnowsIt) {
  EXPECT_EQ(make_recorder("spade-camflow")->name(), "spade-camflow");
}

TEST(SpadeStorage, SpnEmitsNeo4jExport) {
  SpadeConfig config;
  config.storage = SpadeStorage::Neo4j;
  config.truncation_probability = 0;
  SpadeRecorder recorder(config);
  EXPECT_EQ(recorder.output_format(), "neo4j-json");
  std::string out = recorder.record(trace_for("open", true), {1});
  EXPECT_EQ(formats::detect_format(out), formats::Format::Neo4jJson);
}

TEST(SpadeStorage, SpnAndSpgProduceSameGraph) {
  // Storage backend must not change the recorded structure.
  os::EventTrace trace = trace_for("rename", true);
  SpadeConfig dot_config;
  dot_config.truncation_probability = 0;
  SpadeConfig neo_config = dot_config;
  neo_config.storage = SpadeStorage::Neo4j;
  SpadeRecorder spg(dot_config), spn(neo_config);
  graph::PropertyGraph via_dot =
      formats::parse_any(spg.record(trace, {4}));
  graph::PropertyGraph via_neo4j =
      formats::parse_any(spn.record(trace, {4}));
  EXPECT_EQ(via_dot.node_count(), via_neo4j.node_count());
  EXPECT_EQ(via_dot.edge_count(), via_neo4j.edge_count());
}

TEST(SpadeStorage, FactoryAbbreviations) {
  EXPECT_EQ(make_recorder("spg")->output_format(), "graphviz-dot");
  EXPECT_EQ(make_recorder("spn")->output_format(), "neo4j-json");
  EXPECT_EQ(make_recorder("opu")->name(), "opus");
  EXPECT_EQ(make_recorder("cam")->name(), "camflow");
  EXPECT_THROW(make_recorder("nope"), std::invalid_argument);
}

TEST(SpadeCamflow, PipelineSpnRenameOk) {
  core::PipelineOptions options;
  options.system = "spn";
  options.seed = 3;
  core::BenchmarkResult result = core::run_benchmark(
      bench_suite::benchmark_by_name("rename"), options);
  EXPECT_EQ(result.status, core::BenchmarkStatus::Ok);
}

}  // namespace
}  // namespace provmark::systems
