// The streaming service: bounded admission and deterministic shedding,
// quarantine isolation, checkpointing, graceful drain, and the
// abandon-then-recover identity (the in-process crash analogue).
//
// Every test runs workers = 0: admitted events queue until pump(), so
// queue depths — and therefore every shed/busy decision — are exact and
// deterministic, no scheduling involved.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "serve/service.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_serve_service_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ServiceOptions test_options(const fs::path& root) {
  ServiceOptions options;
  options.root = root;
  options.workers = 0;  // deterministic: apply only on pump()
  options.pipeline.trials = 2;
  return options;
}

Request event(const std::string& session, const std::string& payload,
              Priority priority = Priority::Normal,
              EventKind kind = EventKind::Fact) {
  Request request;
  request.is_event = true;
  request.event = kind;
  request.session = session;
  request.priority = priority;
  request.payload = payload;
  return request;
}

Request query(const std::string& session, QueryKind kind,
              const std::string& payload = "") {
  Request request;
  request.is_event = false;
  request.query = kind;
  request.session = session;
  request.payload = payload;
  return request;
}

TEST(ServiceAdmission, AcksAssignSequentialSeqs) {
  TempDir tmp("seqs");
  Service service(test_options(tmp.path));
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Response response =
        service.submit(event("alice", "edge(a,b)."));
    EXPECT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.seq, i);
  }
  EXPECT_EQ(service.pump(), 3u);
  EXPECT_EQ(service.stats().applied, 3u);
}

TEST(ServiceAdmission, OversizedPayloadRefusedBeforeJournaling) {
  TempDir tmp("oversize");
  ServiceOptions options = test_options(tmp.path);
  options.max_payload_bytes = 16;
  Service service(options);
  Response response = service.submit(
      event("alice", std::string(17, 'x')));
  EXPECT_EQ(response.status, Status::TooLarge);
  EXPECT_EQ(service.stats().rejected_oversized, 1u);
  EXPECT_EQ(service.stats().admitted, 0u);
  // Nothing was journaled: no session directory exists.
  EXPECT_TRUE(list_sessions(tmp.path).empty());
}

TEST(ServiceShedding, DeterministicWatermarksByPriority) {
  TempDir tmp("shed");
  ServiceOptions options = test_options(tmp.path);
  options.global_queue_cap = 4;
  options.session_queue_cap = 100;
  Service service(options);

  // Backlog 0, 1: every priority admitted.
  EXPECT_EQ(service.submit(event("a", "e(1,2).", Priority::Low)).status,
            Status::Ok);
  EXPECT_EQ(service.submit(event("a", "e(2,3).")).status, Status::Ok);

  // Backlog 2 = cap/2: low sheds, normal and high still admitted.
  EXPECT_EQ(service.submit(event("a", "e(3,4).", Priority::Low)).status,
            Status::Shed);
  EXPECT_EQ(service.submit(event("a", "e(4,5).")).status, Status::Ok);
  EXPECT_EQ(service.submit(event("a", "e(5,6).", Priority::High)).status,
            Status::Ok);

  // Backlog 4 = cap: normal sheds, high gets busy — never silently shed.
  EXPECT_EQ(service.submit(event("a", "e(6,7).")).status, Status::Shed);
  EXPECT_EQ(service.submit(event("a", "e(7,8).", Priority::High)).status,
            Status::Busy);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed_low, 1u);
  EXPECT_EQ(stats.shed_normal, 1u);
  EXPECT_EQ(stats.busy, 1u);

  // Shedding never corrupts the survivors: everything admitted applies.
  EXPECT_EQ(service.pump(), 4u);
  EXPECT_EQ(service.submit(event("a", "e(8,9).", Priority::Low)).status,
            Status::Ok);
}

TEST(ServiceShedding, SessionQueueCapGivesBackpressure) {
  TempDir tmp("backpressure");
  ServiceOptions options = test_options(tmp.path);
  options.session_queue_cap = 2;
  options.global_queue_cap = 100;
  Service service(options);
  EXPECT_EQ(service.submit(event("a", "e(1,2).")).status, Status::Ok);
  EXPECT_EQ(service.submit(event("a", "e(2,3).")).status, Status::Ok);
  // Session a is full -> busy; session b is unaffected.
  EXPECT_EQ(service.submit(event("a", "e(3,4).")).status, Status::Busy);
  EXPECT_EQ(service.submit(event("b", "e(1,2).")).status, Status::Ok);
  service.pump();
  EXPECT_EQ(service.submit(event("a", "e(3,4).")).status, Status::Ok);
}

TEST(ServiceQueries, FixpointAndDigestAndUnknownSession) {
  TempDir tmp("queries");
  Service service(test_options(tmp.path));
  service.submit(event("alice", "edge(a,b)."));
  service.submit(event("alice", "edge(b,c)."));
  service.submit(event("alice",
                       "path(X,Y) :- edge(X,Y).\n"
                       "path(X,Z) :- path(X,Y), edge(Y,Z).",
                       Priority::Normal, EventKind::Rule));
  service.pump();

  Response bindings =
      service.submit(query("alice", QueryKind::Query, "path(a,X)"));
  EXPECT_EQ(bindings.status, Status::Result);
  EXPECT_EQ(bindings.body, "X=b\nX=c\n");

  Response digest = service.submit(query("alice", QueryKind::Digest));
  EXPECT_EQ(digest.status, Status::Result);
  EXPECT_EQ(digest.body.size(), 16u);

  EXPECT_EQ(service.submit(query("nobody", QueryKind::Digest)).status,
            Status::BadRequest);
  // A malformed pattern throws but never quarantines.
  EXPECT_EQ(
      service.submit(query("alice", QueryKind::Query, "(((")).status,
      Status::BadRequest);
  EXPECT_EQ(service.stats().quarantined_sessions, 0u);
}

TEST(ServiceQuarantine, PoisonedSessionIsolatedFromNeighbours) {
  TempDir tmp("quarantine");
  Service service(test_options(tmp.path));
  service.submit(event("victim", "edge(a,b)."));
  service.submit(event("victim", "this is ( not datalog"));
  service.submit(event("healthy", "edge(a,b)."));
  service.pump();

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.quarantined_sessions, 1u);

  // The poisoned session refuses further events with a typed status…
  Response refused = service.submit(event("victim", "edge(b,c)."));
  EXPECT_EQ(refused.status, Status::Quarantined);
  EXPECT_FALSE(refused.body.empty());
  EXPECT_EQ(service.stats().rejected_quarantined, 1u);

  // …while its neighbour streams on untouched.
  EXPECT_EQ(service.submit(event("healthy", "edge(b,c).")).status,
            Status::Ok);
  service.pump();
  Response dump = service.submit(query("healthy", QueryKind::Dump));
  EXPECT_EQ(dump.status, Status::Result);
  EXPECT_EQ(dump.body, "edge(a,b)\nedge(b,c)\n");
}

TEST(ServiceQuarantine, ReplayRequarantinesDeterministically) {
  TempDir tmp("requarantine");
  std::string reason;
  {
    Service service(test_options(tmp.path));
    service.submit(event("victim", "edge(a,b)."));
    service.submit(event("victim", "this is ( not datalog"));
    service.pump();
    reason = service.submit(event("victim", "x(y).")).body;
    ASSERT_FALSE(reason.empty());
  }
  // The poisoning event is journaled (it was acked) and the session was
  // never checkpointed past it, so recovery replays it and lands in the
  // same quarantine with the same typed reason.
  Service recovered(test_options(tmp.path));
  Response refused = recovered.submit(event("victim", "x(y)."));
  EXPECT_EQ(refused.status, Status::Quarantined);
  EXPECT_EQ(refused.body, reason);
  // A quarantined session must never be checkpointed (compaction would
  // drop the poisoning record and "cure" it on restart, forking
  // history).
  recovered.drain();
  EXPECT_FALSE(
      fs::exists(tmp.path / "victim" / "checkpoint.dlog"));
}

TEST(ServiceRecovery, AbandonedEventsReplayToIdenticalFixpoint) {
  // The destructor abandons queued work — the in-process analogue of a
  // crash right after the ack. A fresh Service over the same root must
  // replay the journal into the exact fixpoint a never-interrupted
  // service reaches.
  TempDir tmp_crash("abandon");
  TempDir tmp_ref("reference");
  const std::vector<std::string> facts = {
      "edge(a,b).", "edge(b,c).", "edge(c,d).", "edge(d,a).",
  };
  const std::string rules =
      "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).";

  std::string reference_digest;
  {
    Service reference(test_options(tmp_ref.path));
    for (const std::string& fact : facts) {
      reference.submit(event("alice", fact));
    }
    reference.submit(
        event("alice", rules, Priority::Normal, EventKind::Rule));
    reference.pump();
    reference_digest =
        reference.submit(query("alice", QueryKind::Digest)).body;
  }

  {
    Service crashed(test_options(tmp_crash.path));
    for (const std::string& fact : facts) {
      crashed.submit(event("alice", fact));
    }
    crashed.submit(
        event("alice", rules, Priority::Normal, EventKind::Rule));
    crashed.pump();  // apply a prefix…
    crashed.submit(event("alice", "edge(a,b)."));  // …and abandon this
  }
  {
    // But the reference needs that last event too.
    Service reference(test_options(tmp_ref.path));
    reference.submit(event("alice", "edge(a,b)."));
    reference.pump();
    reference_digest =
        reference.submit(query("alice", QueryKind::Digest)).body;
  }

  Service recovered(test_options(tmp_crash.path));
  EXPECT_GE(recovered.stats().replayed_events, 1u);
  EXPECT_EQ(recovered.submit(query("alice", QueryKind::Digest)).body,
            reference_digest);
}

TEST(ServiceRecovery, RunEventsReplaySeedIdentically) {
  // A run event executes the full pipeline with a seed derived from
  // (session seed, seq); replaying the journal must re-run it into
  // byte-identical asserted facts.
  bench_suite::GeneratorOptions gen;
  gen.seed = 11;
  gen.scale = 3;
  gen.depth = 1;
  gen.fan_out = 1;
  const std::string payload =
      "opus\n" +
      bench_suite::format_program(bench_suite::generate_program(gen));

  TempDir tmp("runreplay");
  std::string live_digest;
  {
    Service service(test_options(tmp.path));
    service.submit(event("alice", payload, Priority::Normal,
                         EventKind::Run));
    service.pump();
    live_digest = service.submit(query("alice", QueryKind::Digest)).body;
    ASSERT_EQ(live_digest.size(), 16u);
    // Destructor abandons nothing here (all applied) — but the journal
    // still holds the run record: no checkpoint was taken.
  }
  Service recovered(test_options(tmp.path));
  EXPECT_EQ(recovered.stats().replayed_events, 1u);
  EXPECT_EQ(recovered.submit(query("alice", QueryKind::Digest)).body,
            live_digest);
}

TEST(ServiceCheckpoint, DrainCheckpointsSoRestartReplaysNothing) {
  TempDir tmp("drain");
  std::string digest;
  {
    Service service(test_options(tmp.path));
    service.submit(event("alice", "edge(a,b)."));
    service.submit(event("bob", "edge(b,c)."));
    service.pump();
    digest = service.submit(query("alice", QueryKind::Digest)).body;
    service.drain();
    EXPECT_GE(service.stats().checkpoints, 2u);
    // Draining stops admission…
    EXPECT_EQ(service.submit(event("alice", "edge(x,y).")).status,
              Status::Busy);
    // …but read-only requests still answer.
    EXPECT_EQ(service.submit(query("alice", QueryKind::Digest)).status,
              Status::Result);
  }
  Service recovered(test_options(tmp.path));
  EXPECT_EQ(recovered.stats().replayed_events, 0u);
  EXPECT_EQ(recovered.submit(query("alice", QueryKind::Digest)).body,
            digest);
}

TEST(ServiceCheckpoint, PeriodicCheckpointBoundsJournalGrowth) {
  TempDir tmp("periodic");
  ServiceOptions options = test_options(tmp.path);
  options.checkpoint_every = 4;
  {
    Service service(options);
    for (int i = 0; i < 10; ++i) {
      service.submit(event("alice", "edge(a,b)."));
      service.pump();
    }
    EXPECT_GE(service.stats().checkpoints, 2u);
  }
  EXPECT_TRUE(fs::exists(tmp.path / "alice" / "checkpoint.dlog"));
  // The compacted journal tail replays at most checkpoint_every events.
  Service recovered(options);
  EXPECT_LE(recovered.stats().replayed_events, 4u);
  EXPECT_EQ(
      recovered.submit(query("alice", QueryKind::Dump)).body,
      "edge(a,b)\n");
}

TEST(ServiceWorkers, ThreadedModeReachesSameFixpointAsPump) {
  TempDir tmp_threaded("threaded");
  TempDir tmp_pump("pumped");
  std::string threaded_digest;
  {
    ServiceOptions options = test_options(tmp_threaded.path);
    options.workers = 2;
    Service service(options);
    for (int i = 0; i < 8; ++i) {
      Response response = service.submit(
          event("alice", "edge(n" + std::to_string(i) + ",n" +
                             std::to_string(i + 1) + ")."));
      ASSERT_EQ(response.status, Status::Ok);
    }
    service.submit(event("alice", "path(X,Y) :- edge(X,Y).",
                         Priority::Normal, EventKind::Rule));
    service.drain();  // barrier: every queued apply finished
    threaded_digest =
        service.submit(query("alice", QueryKind::Digest)).body;
  }
  Service pumped(test_options(tmp_pump.path));
  for (int i = 0; i < 8; ++i) {
    pumped.submit(event("alice", "edge(n" + std::to_string(i) + ",n" +
                                     std::to_string(i + 1) + ")."));
  }
  pumped.submit(event("alice", "path(X,Y) :- edge(X,Y).",
                      Priority::Normal, EventKind::Rule));
  pumped.pump();
  EXPECT_EQ(pumped.submit(query("alice", QueryKind::Digest)).body,
            threaded_digest);
}

}  // namespace
}  // namespace provmark::serve
