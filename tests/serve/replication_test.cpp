// Replication + hot-standby failover tests (docs/serve.md).
//
// The claim under test: kill the primary at ANY acked-record boundary,
// promote the standby, and it answers every session query
// bit-identically to a fresh daemon fed the same acked events. Three
// attack angles:
//
//   * in-process shuttle: a primary Service and a replica Service wired
//     through PrimaryReplicator/ReplicaReplicator with the wire lines
//     shuttled by the test — failover identity is asserted after EVERY
//     record across generator-seeded streams over all six recorders,
//     plus reconnect/resume, checkpoint-reset resync, divergence
//     quarantine and replica-ahead quarantine.
//   * real daemons: two forked `run_daemon` processes over AF_UNIX,
//     SIGKILL the primary mid-replication, `promote` the standby, and
//     compare digests against a reference service fed the dead
//     primary's journal.
//   * sync-mode torn ack: the standby crashes (fault-injected _exit)
//     after journaling a record but before acking it — the client sees
//     `busy`, yet both journals hold the record, and the restarted
//     standby resyncs to identity.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/replicate.h"
#include "serve/service.h"
#include "util/fault.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_serve_repl_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ServiceOptions test_options(const fs::path& root) {
  ServiceOptions options;
  options.root = root;
  options.workers = 0;
  options.checkpoint_every = 0;
  options.pipeline.trials = 2;
  return options;
}

Request event_request(const std::string& session, EventKind kind,
                      const std::string& payload) {
  Request request;
  request.is_event = true;
  request.event = kind;
  request.session = session;
  request.priority = Priority::Normal;
  request.payload = payload;
  return request;
}

std::string digest_of(Service& service, const std::string& session) {
  Request request;
  request.is_event = false;
  request.query = QueryKind::Digest;
  request.session = session;
  Response response = service.submit(request);
  EXPECT_EQ(response.status, Status::Result) << response.body;
  return response.body;
}

bool next_line(std::string& buf, std::string& line) {
  std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return false;
  line = buf.substr(0, nl);
  buf.erase(0, nl + 1);
  return true;
}

const char* kRecorders[] = {"spade",         "opus",  "camflow",
                            "spade-camflow", "audit", "ebpf"};

/// Generator-seeded stream: facts, a recursive rule, a pipeline run on
/// the stream's recorder, and a post-run fact (replication must get the
/// run's asserted facts right AND keep streaming after them).
std::vector<std::pair<EventKind, std::string>> make_stream(
    std::uint64_t seed) {
  const char* recorder = kRecorders[seed % 6];
  bench_suite::GeneratorOptions gen;
  gen.seed = seed;
  gen.scale = 3;
  gen.depth = 1;
  gen.fan_out = 1;
  const std::string program =
      bench_suite::format_program(bench_suite::generate_program(gen));
  const std::string s = std::to_string(seed);
  return {
      {EventKind::Fact, "edge(a" + s + ",b" + s + ")."},
      {EventKind::Fact, "edge(b" + s + ",c" + s + ")."},
      {EventKind::Rule,
       "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z)."},
      {EventKind::Run, std::string(recorder) + "\n" + program},
      {EventKind::Fact, "edge(c" + s + ",a" + s + ")."},
  };
}

/// A primary Service + replica Service wired through the replicators,
/// with the wire shuttled in-process by the test — the deterministic
/// single-threaded twin of the two-daemon setup.
struct ReplPair {
  std::atomic<PrimaryReplicator*> primary_ptr{nullptr};
  std::atomic<ReplicaReplicator*> replica_ptr{nullptr};
  std::unique_ptr<Service> primary_svc;
  std::unique_ptr<Service> replica_svc;
  std::unique_ptr<PrimaryReplicator> primary;
  std::unique_ptr<ReplicaReplicator> replica;

  ReplPair(const fs::path& primary_root, const fs::path& replica_root,
           ReplicationConfig config = {},
           std::uint64_t primary_checkpoint_every = 0,
           std::uint64_t replica_checkpoint_every = 0) {
    ServiceOptions po = test_options(primary_root);
    po.checkpoint_every = primary_checkpoint_every;
    po.on_record = [this](const std::string& s, const JournalRecord& r) {
      if (PrimaryReplicator* p = primary_ptr.load()) p->on_record(s, r);
    };
    po.on_checkpoint = [this](const std::string& s, std::uint64_t q,
                              const std::string& d) {
      if (PrimaryReplicator* p = primary_ptr.load()) p->on_checkpoint(s, q, d);
    };
    primary_svc = std::make_unique<Service>(po);

    ServiceOptions ro = test_options(replica_root);
    ro.checkpoint_every = replica_checkpoint_every;
    ro.on_applied = [this](const std::string& s, std::uint64_t q,
                           const std::function<std::string()>& dn) {
      if (ReplicaReplicator* r = replica_ptr.load()) r->on_applied(s, q, dn);
    };
    ro.on_checkpoint = [this](const std::string& s, std::uint64_t q,
                              const std::string& d) {
      if (ReplicaReplicator* r = replica_ptr.load()) r->on_checkpoint(s, q, d);
    };
    replica_svc = std::make_unique<Service>(ro);

    primary = std::make_unique<PrimaryReplicator>(*primary_svc, config);
    replica = std::make_unique<ReplicaReplicator>(*replica_svc, config);
    primary_ptr.store(primary.get());
    replica_ptr.store(replica.get());
  }

  void connect() {
    primary->on_replica_connected();
    replica->on_link_connected();
    shuttle();
  }

  void disconnect() {
    primary->on_replica_disconnected();
    replica->on_link_disconnected();
  }

  /// Move wire lines both ways (and pump the replica's applies) until
  /// quiescent.
  void shuttle() {
    for (int round = 0; round < 128; ++round) {
      primary->flush_pending_resets();
      std::string down = primary->take_output();
      std::string up = replica->take_output();
      replica_svc->pump();
      if (down.empty() && up.empty()) {
        if (primary->take_output().empty() && replica->take_output().empty()) {
          return;
        }
        continue;
      }
      std::string line;
      while (next_line(down, line)) {
        if (!line.empty()) replica->handle_line(line);
      }
      while (next_line(up, line)) {
        if (!line.empty()) primary->handle_line(line);
      }
      replica_svc->pump();
    }
    FAIL() << "replication shuttle did not quiesce";
  }
};

// ---------------------------------------------------------------------------
// In-process failover identity

TEST(Replication, FailoverIdentityAtEveryRecordBoundary) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("stream seed " + std::to_string(seed));
    const std::string session = "s" + std::to_string(seed);
    const auto stream = make_stream(seed);

    TempDir ref_root("ref" + std::to_string(seed));
    TempDir p_root("p" + std::to_string(seed));
    TempDir r_root("r" + std::to_string(seed));
    Service reference(test_options(ref_root.path));
    ReplPair pair(p_root.path, r_root.path);
    pair.connect();

    for (std::size_t k = 0; k < stream.size(); ++k) {
      SCOPED_TRACE("record boundary " + std::to_string(k + 1));
      Response ref_response = reference.submit(
          event_request(session, stream[k].first, stream[k].second));
      ASSERT_EQ(ref_response.status, Status::Ok);
      reference.pump();

      Response response = pair.primary_svc->submit(
          event_request(session, stream[k].first, stream[k].second));
      ASSERT_EQ(response.status, Status::Ok) << response.body;
      ASSERT_EQ(response.seq, k + 1);
      pair.primary_svc->pump();
      pair.shuttle();

      // This is the kill point: if the primary died right now, the
      // standby would flush and serve. Its session must already be
      // bit-identical to the reference fed the same acked prefix.
      EXPECT_EQ(pair.primary->lag_events(), 0u);
      pair.replica_svc->flush();
      EXPECT_EQ(digest_of(*pair.replica_svc, session),
                digest_of(reference, session));
    }

    // Promote for real: drop the link, keep serving on the replica —
    // post-promotion events must extend the same history.
    pair.disconnect();
    Response post = pair.replica_svc->submit(event_request(
        session, EventKind::Fact, "edge(post,promotion)."));
    ASSERT_EQ(post.status, Status::Ok) << post.body;
    EXPECT_EQ(post.seq, stream.size() + 1);
    pair.replica_svc->pump();
    Response ref_post = reference.submit(event_request(
        session, EventKind::Fact, "edge(post,promotion)."));
    ASSERT_EQ(ref_post.status, Status::Ok);
    reference.pump();
    EXPECT_EQ(digest_of(*pair.replica_svc, session),
              digest_of(reference, session));
  }
}

TEST(Replication, ResumeAfterReconnectShipsOnlyTheMissingTail) {
  TempDir p_root("resume_p");
  TempDir r_root("resume_r");
  ReplPair pair(p_root.path, r_root.path);
  pair.connect();

  const std::string session = "s";
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(a,b)."))
                .status,
            Status::Ok);
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(b,c)."))
                .status,
            Status::Ok);
  pair.primary_svc->pump();
  pair.shuttle();
  ASSERT_EQ(pair.replica_svc->journal_position(session)->last_seq, 2u);

  // Link drops; the primary keeps admitting.
  pair.disconnect();
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(c,d)."))
                .status,
            Status::Ok);
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Rule,
                                       "path(X,Y) :- edge(X,Y)."))
                .status,
            Status::Ok);
  pair.primary_svc->pump();

  // Reconnect: the handshake digest proves the standby's 2 records are
  // our prefix, so only records 3..4 ship (resume, not reset).
  pair.connect();
  pair.replica_svc->flush();
  auto position = pair.replica_svc->journal_position(session);
  ASSERT_TRUE(position.has_value());
  EXPECT_EQ(position->last_seq, 4u);
  EXPECT_EQ(position->checkpoint_seq, 0u);  // no reset happened
  EXPECT_EQ(digest_of(*pair.replica_svc, session),
            digest_of(*pair.primary_svc, session));
  EXPECT_TRUE(pair.replica->quarantined_streams().empty());
}

TEST(Replication, ResetResyncsFromCheckpointAfterCompaction) {
  TempDir p_root("reset_p");
  TempDir r_root("reset_r");
  // Primary checkpoints + compacts every 2 applies: after a disconnect
  // it can no longer prove the standby's tail is a prefix, so the
  // handshake must fall back to a checkpoint reset.
  ReplPair pair(p_root.path, r_root.path, ReplicationConfig{},
                /*primary_checkpoint_every=*/2);
  pair.connect();

  const std::string session = "s";
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(pair.primary_svc
                  ->submit(event_request(
                      session, EventKind::Fact,
                      "edge(a" + std::to_string(i) + ",b)."))
                  .status,
              Status::Ok);
  }
  pair.primary_svc->pump();
  pair.shuttle();

  pair.disconnect();
  for (int i = 2; i < 6; ++i) {
    ASSERT_EQ(pair.primary_svc
                  ->submit(event_request(
                      session, EventKind::Fact,
                      "edge(a" + std::to_string(i) + ",b)."))
                  .status,
              Status::Ok);
  }
  pair.primary_svc->pump();  // checkpoints at 4 and 6, journal compacted
  ASSERT_GE(pair.primary_svc->journal_position(session)->checkpoint_seq, 4u);

  pair.connect();
  pair.replica_svc->flush();
  auto position = pair.replica_svc->journal_position(session);
  ASSERT_TRUE(position.has_value());
  EXPECT_EQ(position->last_seq, 6u);
  // The reset shipped the primary's checkpoint as the new base.
  EXPECT_GE(position->checkpoint_seq, 4u);
  EXPECT_EQ(digest_of(*pair.replica_svc, session),
            digest_of(*pair.primary_svc, session));
  EXPECT_TRUE(pair.replica->quarantined_streams().empty());
}

TEST(Replication, DivergenceQuarantinesTheStreamWithATypedReason) {
  TempDir p_root("div_p");
  TempDir r_root("div_r");
  ReplPair pair(p_root.path, r_root.path);
  pair.connect();

  const std::string session = "s";
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(a,b)."))
                .status,
            Status::Ok);
  pair.primary_svc->pump();
  pair.shuttle();

  // Forge a checkpoint-digest exchange the standby can never satisfy:
  // a pending check at a future seq with a wrong digest.
  pair.replica->handle_line("repl-check s 2 0000000000000bad");
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(b,c)."))
                .status,
            Status::Ok);
  pair.primary_svc->pump();
  pair.shuttle();

  auto quarantined = pair.replica->quarantined_streams();
  ASSERT_EQ(quarantined.size(), 1u);
  ASSERT_TRUE(quarantined.count(session));
  EXPECT_NE(quarantined[session].find("digest mismatch"), std::string::npos)
      << quarantined[session];
  // The repl-diverged report reached the primary and poisoned its side
  // of the stream too: no further records flow.
  EXPECT_NE(pair.primary->stats_text().find("repl_quarantined_streams=1"),
            std::string::npos);
  ASSERT_EQ(pair.primary_svc
                ->submit(event_request(session, EventKind::Fact,
                                       "edge(c,d)."))
                .status,
            Status::Ok);
  pair.primary_svc->pump();
  pair.shuttle();
  // The standby never saw record 3.
  EXPECT_EQ(pair.replica_svc->journal_position(session)->last_seq, 2u);
}

TEST(Replication, ReplicaAheadIsQuarantinedNotMerged) {
  TempDir p_root("ahead_p");
  TempDir r_root("ahead_r");
  const std::string session = "s";
  // Pre-seed both journals out-of-band: the standby has MORE acked
  // records than the primary — a history fork no resync may merge.
  {
    Service primary(test_options(p_root.path));
    ASSERT_EQ(primary
                  .submit(event_request(session, EventKind::Fact,
                                        "edge(a,b)."))
                  .status,
              Status::Ok);
    primary.pump();
    primary.drain();
  }
  {
    Service replica(test_options(r_root.path));
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(replica
                    .submit(event_request(
                        session, EventKind::Fact,
                        "edge(a" + std::to_string(i) + ",b)."))
                    .status,
                Status::Ok);
    }
    replica.pump();
    replica.drain();
  }
  ReplPair pair(p_root.path, r_root.path);
  pair.connect();
  EXPECT_NE(pair.primary->stats_text().find("repl_quarantined_streams=1"),
            std::string::npos)
      << pair.primary->stats_text();
  // Nothing flowed: the standby's journal is untouched.
  EXPECT_EQ(pair.replica_svc->journal_position(session)->last_seq, 3u);
}

// ---------------------------------------------------------------------------
// Service-level apply_replicated contract

TEST(Replication, ApplyReplicatedDupIsIdempotentGapAndSeedMismatchRefuse) {
  TempDir root("applyrepl");
  Service service(test_options(root.path));
  const std::uint64_t seed = 777;

  JournalRecord r1{1, EventKind::Fact, Priority::Normal, "edge(a,b)."};
  Response first = service.apply_replicated("s", seed, r1);
  ASSERT_EQ(first.status, Status::Ok);
  EXPECT_EQ(first.seq, 1u);

  // Duplicate redelivery (reconnect overlap): Ok, not an error — the
  // standby just re-acks.
  Response dup = service.apply_replicated("s", seed, r1);
  EXPECT_EQ(dup.status, Status::Ok);
  EXPECT_EQ(dup.body, "duplicate");

  // A gap must refuse: applying it would fork history.
  JournalRecord r3{3, EventKind::Fact, Priority::Normal, "edge(c,d)."};
  Response gap = service.apply_replicated("s", seed, r3);
  EXPECT_EQ(gap.status, Status::Error);
  EXPECT_NE(gap.body.find("gap"), std::string::npos) << gap.body;

  // A seed mismatch must refuse: run events would diverge silently.
  JournalRecord r2{2, EventKind::Fact, Priority::Normal, "edge(b,c)."};
  Response wrong_seed = service.apply_replicated("s", seed + 1, r2);
  EXPECT_EQ(wrong_seed.status, Status::Error);
  EXPECT_NE(wrong_seed.body.find("seed mismatch"), std::string::npos)
      << wrong_seed.body;

  // The journal still only holds record 1.
  service.pump();
  EXPECT_EQ(service.journal_position("s")->last_seq, 1u);
  EXPECT_EQ(service.journal_position("s")->seed, seed);
}

// ---------------------------------------------------------------------------
// Replication fault rules

TEST(ReplicationFaults, LinkDropRuleFiresAtTheConfiguredRecord) {
  util::fault::arm(
      util::fault::parse_fault_spec("repl-link-drop:after-records=2"), 0, 0);
  EXPECT_FALSE(util::fault::repl_record_forwarded().drop);
  util::fault::ReplLinkFault second = util::fault::repl_record_forwarded();
  EXPECT_TRUE(second.drop);
  EXPECT_EQ(second.partition_ms, 0);
  // Fire-once: the third forwarded record is clean.
  EXPECT_FALSE(util::fault::repl_record_forwarded().drop);
  EXPECT_EQ(util::fault::fired_count(util::fault::FaultKind::ReplLinkDrop), 1);
  util::fault::disarm();
}

TEST(ReplicationFaults, PartitionRuleCarriesItsDuration) {
  util::fault::arm(util::fault::parse_fault_spec(
                       "repl-partition:after-records=1,ms=123"),
                   0, 0);
  util::fault::ReplLinkFault fault = util::fault::repl_record_forwarded();
  EXPECT_FALSE(fault.drop);
  EXPECT_EQ(fault.partition_ms, 123);
  EXPECT_EQ(util::fault::fired_count(util::fault::FaultKind::ReplPartition),
            1);
  util::fault::disarm();
}

TEST(ReplicationFaults, ReplicaCrashRuleExitsWithTheCrashCode) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    util::fault::arm(
        util::fault::parse_fault_spec("replica-crash:after-records=2"), 0, 0);
    util::fault::replica_record_journaled();  // 1st: survives
    util::fault::replica_record_journaled();  // 2nd: _exit(70)
    ::_exit(1);                               // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), util::fault::kCrashExitCode);
}

TEST(ReplicationFaults, MalformedRulesAreRejected) {
  EXPECT_THROW(util::fault::parse_fault_spec("repl-link-drop:after-records=0"),
               std::invalid_argument);
  EXPECT_THROW(util::fault::parse_fault_spec("repl-partition:ms=-1"),
               std::invalid_argument);
  EXPECT_THROW(util::fault::parse_fault_spec("replica-crash:shard=1"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Real two-daemon failover

pid_t spawn_daemon(const fs::path& root, const std::string& socket_path,
                   const std::string& replica_of, bool sync,
                   const std::string& fault_spec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  DaemonOptions options;
  options.service.root = root;
  options.service.workers = 1;
  options.service.checkpoint_every = 0;  // keep journals fully replayable
  options.service.pipeline.trials = 2;
  options.socket_path = socket_path;
  options.replica_of = replica_of;
  options.repl_sync = sync;
  options.heartbeat_ms = 50;
  if (!fault_spec.empty()) {
    util::fault::arm(util::fault::parse_fault_spec(fault_spec), 0, 0);
  }
  ::_exit(run_daemon(options));
}

/// Feed one request line, return the raw response line ("" on
/// connection failure).
std::string feed_one(const std::string& socket_path,
                     const std::string& request) {
  std::istringstream in(request + "\n");
  std::ostringstream out;
  if (run_feed(socket_path, in, out) == 1) return "";
  std::string line = out.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

bool wait_until(const std::function<bool()>& predicate, int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool stats_show(const std::string& socket_path, const std::string& needle) {
  const std::string line = feed_one(socket_path, "stats");
  if (line.empty()) return false;
  try {
    Response response = parse_response(line);
    return response.status == Status::Result &&
           response.body.find(needle) != std::string::npos;
  } catch (const std::exception&) {
    return false;
  }
}

TEST(ReplicationDaemon, SigkillPrimaryPromoteStandbyServesIdentically) {
  TempDir dir("daemon");
  const std::string p_sock = (dir.path / "p.sock").string();
  const std::string r_sock = (dir.path / "r.sock").string();
  const fs::path p_root = dir.path / "pj";
  const fs::path r_root = dir.path / "rj";

  const pid_t primary = spawn_daemon(p_root, p_sock, "", false, "");
  ASSERT_GE(primary, 0);
  ASSERT_TRUE(wait_until(
      [&] { return feed_one(p_sock, "ping") == "result pong"; }, 10000));
  const pid_t replica = spawn_daemon(r_root, r_sock, p_sock, false, "");
  ASSERT_GE(replica, 0);
  ASSERT_TRUE(wait_until(
      [&] { return feed_one(r_sock, "ping") == "result pong"; }, 10000));

  // Two generator-seeded streams, mid-replication: the primary dies
  // while the standby is still tailing.
  const std::vector<std::uint64_t> seeds = {3, 4};
  for (std::uint64_t seed : seeds) {
    const std::string session = "s" + std::to_string(seed);
    for (const auto& [kind, payload] : make_stream(seed)) {
      const std::string line =
          feed_one(p_sock, format_request(event_request(session, kind,
                                                        payload)));
      ASSERT_EQ(line.rfind("ok ", 0), 0u) << line;
    }
  }
  // Health-gated catch-up: assert lag, never sleep.
  ASSERT_TRUE(wait_until(
      [&] {
        return stats_show(p_sock, "repl_connected=1") &&
               stats_show(p_sock, "repl_lag_events=0");
      },
      15000));

  ASSERT_EQ(::kill(primary, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(primary, &status, 0), primary);
  ASSERT_TRUE(WIFSIGNALED(status));

  ASSERT_EQ(feed_one(r_sock, "promote"), "result promoted");
  ASSERT_EQ(feed_one(r_sock, "promote"), "result already-primary");

  // Reference: a fresh service fed exactly the dead primary's journal.
  TempDir ref_dir("daemon_ref");
  Service reference(test_options(ref_dir.path));
  for (std::uint64_t seed : seeds) {
    const std::string session = "s" + std::to_string(seed);
    Journal journal(p_root, session, 0);
    RecoveredSession from_disk = journal.recover();
    ASSERT_FALSE(from_disk.records.empty());
    for (const JournalRecord& record : from_disk.records) {
      Request request;
      request.is_event = true;
      request.event = record.kind;
      request.session = session;
      request.priority = record.priority;
      request.payload = record.payload;
      ASSERT_EQ(reference.submit(request).status, Status::Ok);
    }
  }
  reference.pump();
  for (std::uint64_t seed : seeds) {
    const std::string session = "s" + std::to_string(seed);
    const std::string line = feed_one(r_sock, "digest " + session + " 5000");
    ASSERT_EQ(line, "result " + digest_of(reference, session))
        << "session " << session;
  }
  // The promoted daemon accepts new events.
  EXPECT_EQ(feed_one(r_sock, "event s3 fact normal edge(post,kill)."),
            "ok 6");

  ASSERT_EQ(::kill(replica, SIGTERM), 0);
  ASSERT_EQ(::waitpid(replica, &status, 0), replica);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ReplicationDaemon, SyncModeTornAckIsBusyYetDurableOnBothSides) {
  TempDir dir("sync");
  const std::string p_sock = (dir.path / "p.sock").string();
  const std::string r_sock = (dir.path / "r.sock").string();
  const fs::path p_root = dir.path / "pj";
  const fs::path r_root = dir.path / "rj";

  const pid_t primary = spawn_daemon(p_root, p_sock, "", /*sync=*/true, "");
  ASSERT_GE(primary, 0);
  ASSERT_TRUE(wait_until(
      [&] { return feed_one(p_sock, "ping") == "result pong"; }, 10000));

  // Sync mode with no standby: events are refused un-journaled.
  ASSERT_EQ(feed_one(p_sock, "event s fact normal edge(x,y)."), "busy");

  // Standby crashes after journaling its 3rd record, BEFORE acking it —
  // the torn-ack point.
  const pid_t replica = spawn_daemon(r_root, r_sock, p_sock, false,
                                     "replica-crash:after-records=3");
  ASSERT_GE(replica, 0);
  ASSERT_TRUE(wait_until(
      [&] { return stats_show(p_sock, "repl_connected=1"); }, 10000));

  ASSERT_EQ(feed_one(p_sock, "event s fact normal edge(a,b)."), "ok 1");
  ASSERT_EQ(feed_one(p_sock, "event s fact normal edge(b,c)."), "ok 2");
  // Record 3: journaled on both sides, never acked — the client gets
  // `busy`, which is a valid history (journaled-but-unacked).
  ASSERT_EQ(feed_one(p_sock, "event s fact normal edge(c,d)."), "busy");

  int status = 0;
  ASSERT_EQ(::waitpid(replica, &status, 0), replica);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), util::fault::kCrashExitCode);

  // Both journals hold all 3 records: the acked prefix survived AND
  // the torn ack lost nothing.
  {
    Journal journal(p_root, "s", 0);
    EXPECT_EQ(journal.recover().records.size(), 3u);
  }
  {
    Journal journal(r_root, "s", 0);
    EXPECT_EQ(journal.recover().records.size(), 3u);
  }

  // A restarted standby resyncs from its own journal and sync mode
  // acks again.
  const pid_t replica2 = spawn_daemon(r_root, r_sock, p_sock, false, "");
  ASSERT_GE(replica2, 0);
  ASSERT_TRUE(wait_until(
      [&] {
        return stats_show(p_sock, "repl_connected=1") &&
               stats_show(p_sock, "repl_lag_events=0");
      },
      15000));
  ASSERT_EQ(feed_one(p_sock, "event s fact normal edge(d,e)."), "ok 4");

  ASSERT_EQ(::kill(primary, SIGTERM), 0);
  ASSERT_EQ(::waitpid(primary, &status, 0), primary);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ASSERT_EQ(::kill(replica2, SIGTERM), 0);
  ASSERT_EQ(::waitpid(replica2, &status, 0), replica2);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace provmark::serve
