// Cluster routing unit tests (src/serve/cluster.h): session-to-member
// hashing, the member path layout, router stats text, and the parsing
// rules for the three cluster fault kinds. The end-to-end router —
// SIGKILL recovery, busy windows, digest identity — lives in
// bench/perf_serve_cluster.cpp (real processes are too heavy for unit
// scope).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/cluster.h"
#include "util/fault.h"

namespace provmark::serve {
namespace {

TEST(ClusterRouting, MemberForIsDeterministicAndInRange) {
  const std::vector<std::string> sessions = {
      "alice", "bob", "carol", "session-0", "session-1", "s", "",
      "a-very-long-session-identifier-with-structure-00042"};
  for (int members : {1, 2, 3, 5, 8}) {
    for (const std::string& session : sessions) {
      const int m = member_for(session, members);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, members);
      // Stable across calls — the fairness gate and the unsharded
      // reference reconstruction both re-derive this mapping.
      EXPECT_EQ(m, member_for(session, members));
    }
  }
  // Everything lands on member 0 when there is only one member.
  for (const std::string& session : sessions) {
    EXPECT_EQ(member_for(session, 1), 0);
  }
}

TEST(ClusterRouting, MemberForSpreadsSessionsAcrossMembers) {
  // 64 generator-style session ids over 3 members: every member owns
  // some sessions and no member owns almost all of them. The hash is
  // fixed (util::stable_hash), so this is a deterministic check, not a
  // statistical one.
  const int members = 3;
  std::map<int, int> owned;
  for (int i = 0; i < 64; ++i) {
    ++owned[member_for("session-" + std::to_string(i), members)];
  }
  ASSERT_EQ(owned.size(), static_cast<std::size_t>(members));
  for (const auto& [member, count] : owned) {
    EXPECT_GE(count, 8) << "member " << member << " owns too few";
    EXPECT_LE(count, 40) << "member " << member << " owns too many";
  }
}

TEST(ClusterRouting, MemberPathsFollowTheDocumentedLayout) {
  const std::filesystem::path root = "/tmp/cluster-root";
  EXPECT_EQ(member_root(root, 0), root / "member-0");
  EXPECT_EQ(member_root(root, 2), root / "member-2");
  EXPECT_EQ(member_socket_path(root, 0), (root / "member-0.sock").string());
  EXPECT_EQ(member_socket_path(root, 11),
            (root / "member-11.sock").string());
}

TEST(ClusterRouting, RouterStatsRendersValuesAndMemberRows) {
  RouterStats stats;
  stats.cluster_members = 2;
  stats.members_up = 1;
  stats.member_restarts = 3;
  stats.routed_events = 40;
  stats.busy_member_down = 7;
  stats.members.resize(2);
  stats.members[0].state = "up";
  stats.members[0].routed = 25;
  stats.members[1].state = "backoff";
  stats.members[1].routed = 15;

  const std::string text = stats.to_text();
  EXPECT_NE(text.find("cluster_role=router\n"), std::string::npos);
  EXPECT_NE(text.find("cluster_members=2\n"), std::string::npos);
  EXPECT_NE(text.find("members_up=1\n"), std::string::npos);
  EXPECT_NE(text.find("member_restarts=3\n"), std::string::npos);
  EXPECT_NE(text.find("routed_events=40\n"), std::string::npos);
  EXPECT_NE(text.find("busy_member_down=7\n"), std::string::npos);
  EXPECT_NE(text.find("member0_state=up\n"), std::string::npos);
  EXPECT_NE(text.find("member0_routed=25\n"), std::string::npos);
  EXPECT_NE(text.find("member1_state=backoff\n"), std::string::npos);
  EXPECT_NE(text.find("member1_routed=15\n"), std::string::npos);
}

TEST(ClusterFaults, MemberRulesParseAndTargetByMemberAndIncarnation) {
  namespace fault = util::fault;
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "cluster-member-crash:member=1,after-events=5;"
      "member-hang:member=2,after-events=3,attempt=any;"
      "route-drop:after-requests=7");
  ASSERT_EQ(spec.rules.size(), 3u);

  EXPECT_EQ(spec.rules[0].kind, fault::FaultKind::ClusterMemberCrash);
  EXPECT_EQ(spec.rules[0].shard, 1);  // member id rides the shard slot
  EXPECT_EQ(spec.rules[0].after_events, 5);
  EXPECT_EQ(spec.rules[0].attempt, 0);  // incarnation 0 only, by default

  EXPECT_EQ(spec.rules[1].kind, fault::FaultKind::MemberHang);
  EXPECT_EQ(spec.rules[1].shard, 2);
  EXPECT_EQ(spec.rules[1].attempt, -1);  // attempt=any

  EXPECT_EQ(spec.rules[2].kind, fault::FaultKind::RouteDrop);
  EXPECT_EQ(spec.rules[2].after_requests, 7);
}

TEST(ClusterFaults, ArmingSelectsByProcessCoordinates) {
  namespace fault = util::fault;
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "cluster-member-crash:member=1,after-events=5;"
      "route-drop:after-requests=100000");

  // The router arms with (-1, -1): member rules stay dormant there,
  // router rules arm. (after-requests is huge so nothing fires here.)
  fault::arm(spec, -1, -1);
  EXPECT_TRUE(fault::armed());
  EXPECT_EQ(fault::fired_count(fault::FaultKind::ClusterMemberCrash), 0);

  // Member 0 incarnation 0: the member=1 rule must not arm — hammering
  // events through the hook fires nothing.
  fault::arm(spec, 0, 0);
  for (int i = 0; i < 10; ++i) fault::serve_event_admitted();
  EXPECT_EQ(fault::fired_count(fault::FaultKind::ClusterMemberCrash), 0);

  // Member 1 incarnation 1 (the restarted incarnation): default
  // attempt targeting is incarnation 0, so the crash rule stays
  // dormant — the member recovers fault-free.
  fault::arm(spec, 1, 1);
  for (int i = 0; i < 10; ++i) fault::serve_event_admitted();
  EXPECT_EQ(fault::fired_count(fault::FaultKind::ClusterMemberCrash), 0);

  fault::disarm();
  EXPECT_FALSE(fault::armed());
}

TEST(ClusterFaults, MalformedClusterRulesAreRejected) {
  namespace fault = util::fault;
  // member= is mandatory for member-targeted kinds.
  EXPECT_THROW(fault::parse_fault_spec("cluster-member-crash:after-events=5"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("member-hang:after-events=2"),
               std::invalid_argument);
  // route-drop has no member/attempt coordinates.
  EXPECT_THROW(fault::parse_fault_spec("route-drop:member=1"),
               std::invalid_argument);
  EXPECT_THROW(
      fault::parse_fault_spec("route-drop:after-requests=3,attempt=any"),
      std::invalid_argument);
  // after-requests must be positive.
  EXPECT_THROW(fault::parse_fault_spec("route-drop:after-requests=0"),
               std::invalid_argument);
  // member kinds use after-events, not after-requests.
  EXPECT_THROW(
      fault::parse_fault_spec("member-hang:member=1,after-requests=3"),
      std::invalid_argument);
}

TEST(ClusterFaults, RouteDropFiresOnceAtTheConfiguredRequest) {
  namespace fault = util::fault;
  fault::arm(fault::parse_fault_spec("route-drop:after-requests=3"), -1, -1);
  EXPECT_FALSE(fault::route_request_forwarded());  // request 1
  EXPECT_FALSE(fault::route_request_forwarded());  // request 2
  EXPECT_TRUE(fault::route_request_forwarded());   // request 3: fires
  EXPECT_FALSE(fault::route_request_forwarded());  // fire-once
  EXPECT_EQ(fault::fired_count(fault::FaultKind::RouteDrop), 1);
  fault::disarm();
}

TEST(ClusterFaults, MemberHangSuppressesHeartbeatsOnceFired) {
  namespace fault = util::fault;
  fault::arm(fault::parse_fault_spec("member-hang:member=0,after-events=2"),
             0, 0);
  EXPECT_FALSE(fault::member_heartbeats_suppressed());
  fault::serve_event_admitted();  // event 1
  EXPECT_FALSE(fault::member_heartbeats_suppressed());
  fault::serve_event_admitted();  // event 2: the hang latches
  EXPECT_TRUE(fault::member_heartbeats_suppressed());
  // Latched for the life of the process (until disarm): the daemon
  // keeps serving but goes silent on the control channel.
  EXPECT_TRUE(fault::member_heartbeats_suppressed());
  fault::disarm();
  EXPECT_FALSE(fault::member_heartbeats_suppressed());
}

}  // namespace
}  // namespace provmark::serve
