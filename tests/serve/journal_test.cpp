// The serve journal: record framing, append/recover round trips,
// torn-tail truncation at every byte offset, and the checkpoint +
// compaction cycle.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_serve_journal_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::vector<JournalRecord> sample_records() {
  return {
      {1, EventKind::Fact, Priority::Normal, "edge(a,b)."},
      {2, EventKind::Fact, Priority::Low, "edge(b,c)."},
      {3, EventKind::Rule, Priority::High,
       "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z)."},
      {4, EventKind::Run, Priority::Normal, "spade\nname close\n"},
      {5, EventKind::Fact, Priority::Normal, ""},  // empty payload legal
  };
}

TEST(JournalRecordFraming, RoundTripsEveryKindAndPriority) {
  for (const JournalRecord& record : sample_records()) {
    const JournalRecord back = parse_record(format_record(record));
    EXPECT_EQ(back.seq, record.seq);
    EXPECT_EQ(back.kind, record.kind);
    EXPECT_EQ(back.priority, record.priority);
    EXPECT_EQ(back.payload, record.payload);
  }
}

TEST(JournalRecordFraming, RejectsTamperedLines) {
  const std::string good = format_record(
      {7, EventKind::Fact, Priority::Normal, "edge(a,b)."});
  EXPECT_NO_THROW(parse_record(good));
  // Flip any single byte: length or checksum must catch it.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = bad[i] == 'x' ? 'y' : 'x';
    if (bad == good) continue;
    EXPECT_THROW(parse_record(bad), std::runtime_error)
        << "flip at " << i << ": " << bad;
  }
  EXPECT_THROW(parse_record(""), std::runtime_error);
  EXPECT_THROW(parse_record("R 1 fact normal"), std::runtime_error);
}

TEST(Journal, AppendThenRecoverRoundTrips) {
  TempDir tmp("roundtrip");
  const std::vector<JournalRecord> records = sample_records();
  {
    Journal journal(tmp.path, "alice", 99);
    EXPECT_EQ(journal.recover().records.size(), 0u);
    for (const JournalRecord& record : records) journal.append(record);
  }
  Journal journal(tmp.path, "alice", 0);  // seed comes from the header
  RecoveredSession recovered = journal.recover();
  EXPECT_EQ(recovered.seed, 99u);
  EXPECT_EQ(recovered.checkpoint_seq, 0u);
  EXPECT_EQ(recovered.torn_bytes, 0u);
  ASSERT_EQ(recovered.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(recovered.records[i].seq, records[i].seq);
    EXPECT_EQ(recovered.records[i].payload, records[i].payload);
  }
}

TEST(Journal, TruncationAtEveryByteRecoversLongestGoodPrefix) {
  // Simulate a crash after any number of journal bytes: recovery must
  // keep exactly the records whose full line (newline included) made it
  // to disk, truncate the rest, and leave a journal that accepts
  // further appends.
  TempDir tmp("torn");
  const std::vector<JournalRecord> records = sample_records();
  {
    Journal journal(tmp.path, "alice", 7);
    for (const JournalRecord& record : records) journal.append(record);
  }
  const fs::path log = tmp.path / "alice" / "journal.log";
  const std::string full = slurp(log);
  const std::size_t header_end = full.find('\n') + 1;

  // Record boundaries: byte offsets where i whole records are on disk.
  std::vector<std::size_t> boundary;
  boundary.push_back(header_end);
  for (std::size_t pos = header_end; pos < full.size();) {
    pos = full.find('\n', pos) + 1;
    boundary.push_back(pos);
  }
  ASSERT_EQ(boundary.size(), records.size() + 1);

  for (std::size_t cut = header_end; cut <= full.size(); ++cut) {
    spit(log, full.substr(0, cut));
    Journal journal(tmp.path, "alice", 0);
    RecoveredSession recovered = journal.recover();
    // How many whole records fit in `cut` bytes?
    std::size_t whole = 0;
    while (whole + 1 < boundary.size() && boundary[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(recovered.records.size(), whole) << "cut=" << cut;
    EXPECT_EQ(recovered.torn_bytes, cut - boundary[whole])
        << "cut=" << cut;
    // The truncated journal is a valid log again: append still works
    // and a second recovery sees no torn bytes.
    journal.append({99, EventKind::Fact, Priority::Normal, "tail(x)."});
    Journal reopened(tmp.path, "alice", 0);
    RecoveredSession again = reopened.recover();
    EXPECT_EQ(again.torn_bytes, 0u);
    ASSERT_EQ(again.records.size(), whole + 1);
    EXPECT_EQ(again.records.back().payload, "tail(x).");
  }
}

TEST(Journal, CheckpointCompactsAndSkipsCoveredRecords) {
  TempDir tmp("checkpoint");
  {
    Journal journal(tmp.path, "alice", 5);
    for (const JournalRecord& record : sample_records()) {
      journal.append(record);
    }
    journal.checkpoint("edge(a,b).\nedge(b,c).\n", 3);
  }
  // Compaction kept only seq > 3.
  Journal journal(tmp.path, "alice", 0);
  RecoveredSession recovered = journal.recover();
  EXPECT_EQ(recovered.checkpoint_seq, 3u);
  EXPECT_EQ(recovered.checkpoint_program, "edge(a,b).\nedge(b,c).\n");
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.records[0].seq, 4u);
  EXPECT_EQ(recovered.records[1].seq, 5u);
}

TEST(Journal, CrashBetweenCheckpointAndCompactionIsHarmless) {
  // The checkpoint publishes first; if the crash lands before the
  // journal compaction, recovery sees an overlap (records <= checkpoint
  // seq) and must skip it rather than double-apply.
  TempDir tmp("overlap");
  std::string uncompacted;
  {
    Journal journal(tmp.path, "alice", 5);
    for (const JournalRecord& record : sample_records()) {
      journal.append(record);
    }
    uncompacted = slurp(tmp.path / "alice" / "journal.log");
    journal.checkpoint("edge(a,b).\nedge(b,c).\n", 3);
  }
  // Restore the pre-compaction journal next to the published checkpoint.
  spit(tmp.path / "alice" / "journal.log", uncompacted);
  Journal journal(tmp.path, "alice", 0);
  RecoveredSession recovered = journal.recover();
  EXPECT_EQ(recovered.checkpoint_seq, 3u);
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.records[0].seq, 4u);
  EXPECT_EQ(recovered.records[1].seq, 5u);
}

TEST(Journal, CorruptHeaderIsAHardError) {
  TempDir tmp("header");
  { Journal journal(tmp.path, "alice", 5); }
  spit(tmp.path / "alice" / "journal.log", "not a journal\n");
  Journal journal(tmp.path, "alice", 5);
  EXPECT_THROW(journal.recover(), std::runtime_error);
}

TEST(Journal, ListSessionsSortedAndFiltered) {
  TempDir tmp("list");
  { Journal journal(tmp.path, "bob", 1); }
  { Journal journal(tmp.path, "alice", 2); }
  fs::create_directories(tmp.path / "not-a-session");
  std::vector<std::string> ids = list_sessions(tmp.path);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "alice");
  EXPECT_EQ(ids[1], "bob");
}

}  // namespace
}  // namespace provmark::serve
