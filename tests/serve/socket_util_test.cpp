// Stale-socket handling tests (src/serve/socket_util.h): the daemon
// must reclaim a socket file left behind by a crashed predecessor but
// NEVER clobber a live daemon's socket or a path that is not a socket
// at all — clobbering a live daemon would silently split a cluster
// member's sessions across two journals.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>

#include "serve/socket_util.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

std::string test_path(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("provmark_sockutil_" + tag + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

TEST(SocketUtil, BindsAFreshPath) {
  const std::string path = test_path("fresh");
  ::unlink(path.c_str());
  std::string error;
  const int fd = make_unix_listener(path, &error);
  ASSERT_GE(fd, 0) << error;
  EXPECT_TRUE(fs::exists(path));
  ::close(fd);
  ::unlink(path.c_str());
}

TEST(SocketUtil, ReclaimsAStaleSocketFile) {
  const std::string path = test_path("stale");
  // A daemon that died by SIGKILL leaves its socket file behind with
  // nobody listening. Simulate by binding and closing WITHOUT unlink.
  std::string error;
  int fd = make_unix_listener(path, &error);
  ASSERT_GE(fd, 0) << error;
  ::close(fd);
  ASSERT_TRUE(fs::exists(path));  // the corpse's socket file

  // The restarted daemon probes, finds nobody home, unlinks, binds.
  fd = make_unix_listener(path, &error);
  ASSERT_GE(fd, 0) << error;
  ::close(fd);
  ::unlink(path.c_str());
}

TEST(SocketUtil, RefusesToClobberALiveDaemon) {
  const std::string path = test_path("live");
  std::string error;
  const int first = make_unix_listener(path, &error);
  ASSERT_GE(first, 0) << error;

  // A second daemon pointed at the same socket must fail — the
  // connect-probe succeeds, so somebody live is serving it.
  errno = 0;
  std::string second_error;
  const int second = make_unix_listener(path, &second_error);
  EXPECT_LT(second, 0);
  EXPECT_EQ(errno, EADDRINUSE);
  EXPECT_NE(second_error.find("live daemon"), std::string::npos)
      << second_error;

  // And the live daemon's socket file is untouched.
  EXPECT_TRUE(fs::exists(path));
  ::close(first);
  ::unlink(path.c_str());
}

TEST(SocketUtil, RefusesToUnlinkANonSocketPath) {
  const std::string path = test_path("regular");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("precious\n", f);
    std::fclose(f);
  }
  errno = 0;
  std::string error;
  const int fd = make_unix_listener(path, &error);
  EXPECT_LT(fd, 0);
  EXPECT_EQ(errno, EEXIST);
  // The file survives with its content intact — never unlinked.
  ASSERT_TRUE(fs::exists(path));
  EXPECT_GT(fs::file_size(path), 0u);
  ::unlink(path.c_str());
}

TEST(SocketUtil, ConnectUnixReachesAListenerAndFailsCleanlyWithout) {
  const std::string path = test_path("connect");
  ::unlink(path.c_str());
  EXPECT_LT(connect_unix(path), 0);

  std::string error;
  const int listener = make_unix_listener(path, &error);
  ASSERT_GE(listener, 0) << error;
  const int client = connect_unix(path);
  EXPECT_GE(client, 0);
  if (client >= 0) ::close(client);
  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace provmark::serve
