// Health-key contract tests: the `stats` response body is a published
// monitoring interface — docs/serve.md documents the keys, CI gate
// scripts and external health pollers grep them by name and rely on
// their order. Each daemon role has a golden key list here; renaming,
// dropping or reordering a key is a breaking change and must fail this
// test (and then be made deliberately, updating docs + scripts).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "serve/cluster.h"
#include "serve/replicate.h"
#include "serve/service.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_stats_contract_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// The keys of `text`, one per `key=value` line, in order.
std::vector<std::string> keys_of(const std::string& text) {
  std::vector<std::string> keys;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      ADD_FAILURE() << "not key=value: " << line;
      continue;
    }
    keys.push_back(line.substr(0, eq));
  }
  return keys;
}

const std::vector<std::string> kServiceKeys = {
    "sessions",     "quarantined_sessions",
    "pending",      "admitted",
    "applied",      "shed_low",
    "shed_normal",  "busy",
    "rejected_quarantined", "rejected_oversized",
    "checkpoints",  "replayed_events",
    "torn_bytes_truncated"};

TEST(StatsContract, ServiceCoreKeys) {
  const std::vector<std::string> keys = keys_of(ServiceStats{}.to_text());
  EXPECT_EQ(keys, kServiceKeys);
}

TEST(StatsContract, PrimaryRole) {
  // A standalone primary (and every cluster member) reports the core
  // service keys followed by the primary replication block.
  TempDir tmp("primary");
  ServiceOptions options;
  options.root = tmp.path;
  options.workers = 0;
  Service service(options);
  PrimaryReplicator primary(service, ReplicationConfig{});

  const std::vector<std::string> keys =
      keys_of(service.stats().to_text() + primary.stats_text());

  std::vector<std::string> expected = kServiceKeys;
  const std::vector<std::string> repl = {
      "repl_role",           "repl_mode",
      "repl_connected",      "repl_lag_events",
      "repl_forwarded_records", "repl_quarantined_streams",
      "last_heartbeat_ms"};
  expected.insert(expected.end(), repl.begin(), repl.end());
  EXPECT_EQ(keys, expected);
}

TEST(StatsContract, StandbyRole) {
  TempDir tmp("standby");
  ServiceOptions options;
  options.root = tmp.path;
  options.workers = 0;
  Service service(options);
  ReplicaReplicator replica(service, ReplicationConfig{});

  const std::vector<std::string> keys =
      keys_of(service.stats().to_text() + replica.stats_text());

  std::vector<std::string> expected = kServiceKeys;
  const std::vector<std::string> repl = {
      "repl_role",         "repl_mode",
      "repl_connected",    "repl_replicated_records",
      "repl_quarantined_streams", "repl_missed_heartbeats",
      "last_heartbeat_ms"};
  expected.insert(expected.end(), repl.begin(), repl.end());
  EXPECT_EQ(keys, expected);
}

TEST(StatsContract, ClusterMemberRole) {
  // A cluster member is a primary plus the trailing cluster_member
  // line run_daemon appends (DaemonOptions::cluster_member >= 0).
  TempDir tmp("member");
  ServiceOptions options;
  options.root = tmp.path;
  options.workers = 0;
  Service service(options);
  PrimaryReplicator primary(service, ReplicationConfig{});

  const std::vector<std::string> keys = keys_of(
      service.stats().to_text() + primary.stats_text() + "cluster_member=2\n");
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.back(), "cluster_member");
  EXPECT_EQ(keys.size(), kServiceKeys.size() + 7 + 1);
}

TEST(StatsContract, RouterRole) {
  RouterStats stats;
  stats.cluster_members = 2;
  stats.members.resize(2);

  const std::vector<std::string> keys = keys_of(stats.to_text());

  const std::vector<std::string> expected = {
      "cluster_role",      "cluster_members",
      "members_up",        "member_restarts",
      "hung_kills",        "routed_events",
      "routed_queries",    "proxied_responses",
      "busy_member_down",  "busy_window_full",
      "route_drops",       "heartbeats_seen",
      "member0_state",     "member0_routed",
      "member1_state",     "member1_routed"};
  EXPECT_EQ(keys, expected);
}

}  // namespace
}  // namespace provmark::serve
