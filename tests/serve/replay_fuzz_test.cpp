// Crash-replay identity fuzz for the streaming service.
//
// Two attack angles on the same claim — a crash at *any* point leaves a
// journal whose replay reaches the exact fixpoint the uninterrupted
// stream reaches:
//
//   * kill-at-every-record-boundary: for generator-seeded streams over
//     all six recorders, truncate the journal at every record boundary
//     (and mid-record, the torn-tail case), recover, feed the remainder
//     of the stream, and demand the reference digest — 25 streams, every
//     boundary each.
//   * real SIGKILL: a forked child runs a threaded service over multiple
//     client sessions and SIGKILLs itself mid-stream; the parent
//     recovers the journal root and checks every session's digest
//     against a fresh service fed the same records.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "serve/journal.h"
#include "serve/service.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_serve_fuzz_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

ServiceOptions test_options(const fs::path& root) {
  ServiceOptions options;
  options.root = root;
  options.workers = 0;
  options.checkpoint_every = 0;  // keep every record replayable
  options.pipeline.trials = 2;
  return options;
}

Request event_request(const std::string& session, EventKind kind,
                      const std::string& payload) {
  Request request;
  request.is_event = true;
  request.event = kind;
  request.session = session;
  request.priority = Priority::Normal;
  request.payload = payload;
  return request;
}

std::string digest_of(Service& service, const std::string& session) {
  Request request;
  request.is_event = false;
  request.query = QueryKind::Digest;
  request.session = session;
  Response response = service.submit(request);
  EXPECT_EQ(response.status, Status::Result) << response.body;
  return response.body;
}

const char* kRecorders[] = {"spade",         "opus",  "camflow",
                            "spade-camflow", "audit", "ebpf"};

/// One generator-seeded stream: facts, a recursive rule, a pipeline run
/// on the stream's recorder, and a post-run fact (so replay must get
/// the run's asserted facts right *and* keep appending after them).
std::vector<std::pair<EventKind, std::string>> make_stream(
    std::uint64_t seed) {
  const char* recorder = kRecorders[seed % 6];
  bench_suite::GeneratorOptions gen;
  gen.seed = seed;
  gen.scale = 3;
  gen.depth = 1;
  gen.fan_out = 1;
  const std::string program =
      bench_suite::format_program(bench_suite::generate_program(gen));
  const std::string s = std::to_string(seed);
  return {
      {EventKind::Fact, "edge(a" + s + ",b" + s + ")."},
      {EventKind::Fact, "edge(b" + s + ",c" + s + ")."},
      {EventKind::Rule,
       "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z)."},
      {EventKind::Run, std::string(recorder) + "\n" + program},
      {EventKind::Fact, "edge(c" + s + ",a" + s + ")."},
  };
}

TEST(ReplayFuzz, KillAtEveryRecordBoundaryOver25SeededStreams) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("stream seed " + std::to_string(seed));
    const std::string session = "s" + std::to_string(seed);
    const auto stream = make_stream(seed);

    // Reference: the uninterrupted stream.
    TempDir ref_root("ref" + std::to_string(seed));
    std::string reference_digest;
    std::string full_journal;
    {
      Service reference(test_options(ref_root.path));
      for (const auto& [kind, payload] : stream) {
        Response response =
            reference.submit(event_request(session, kind, payload));
        ASSERT_EQ(response.status, Status::Ok) << response.body;
      }
      reference.pump();
      reference_digest = digest_of(reference, session);
      full_journal = slurp(ref_root.path / session / "journal.log");
    }

    // Record boundaries of the journal (offset after header, after
    // record 1, ...).
    std::vector<std::size_t> boundary;
    boundary.push_back(full_journal.find('\n') + 1);
    for (std::size_t pos = boundary[0]; pos < full_journal.size();) {
      pos = full_journal.find('\n', pos) + 1;
      boundary.push_back(pos);
    }
    ASSERT_EQ(boundary.size(), stream.size() + 1);

    for (std::size_t k = 0; k < boundary.size(); ++k) {
      SCOPED_TRACE("crash after " + std::to_string(k) + " records");
      // Two crash images per boundary: a clean cut (the fsync'd prefix)
      // and a torn cut (half the next record made it to disk).
      std::vector<std::string> images;
      images.push_back(full_journal.substr(0, boundary[k]));
      if (k < boundary.size() - 1) {
        const std::size_t half =
            boundary[k] + (boundary[k + 1] - boundary[k]) / 2;
        images.push_back(full_journal.substr(0, half));
      }
      for (std::size_t image = 0; image < images.size(); ++image) {
        TempDir crash_root("crash");
        fs::create_directories(crash_root.path / session);
        spit(crash_root.path / session / "journal.log", images[image]);

        Service recovered(test_options(crash_root.path));
        EXPECT_EQ(recovered.stats().replayed_events, k);
        if (image == 1) {
          EXPECT_GT(recovered.stats().torn_bytes_truncated, 0u);
        }
        // The client retries everything past its last ack; seqs line up
        // with the original stream because recovery restored next_seq.
        for (std::size_t i = k; i < stream.size(); ++i) {
          Response response = recovered.submit(event_request(
              session, stream[i].first, stream[i].second));
          ASSERT_EQ(response.status, Status::Ok) << response.body;
          EXPECT_EQ(response.seq, i + 1);
        }
        recovered.pump();
        EXPECT_EQ(digest_of(recovered, session), reference_digest);
      }
    }
  }
}

TEST(ReplayFuzz, RealSigkillMidStreamRecoversBitIdentically) {
  TempDir root("sigkill");
  TempDir ref_root("sigkill_ref");
  const std::vector<std::string> clients = {"alice", "bob", "carol"};

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a threaded service under live multi-client load, killed
    // without warning. Everything acked before the kill is journaled.
    ServiceOptions options;
    options.root = root.path;
    options.workers = 2;
    options.checkpoint_every = 0;
    options.pipeline.trials = 2;
    Service service(options);
    for (int i = 0; i < 40; ++i) {
      for (const std::string& client : clients) {
        Request request = event_request(
            client, EventKind::Fact,
            "edge(n" + std::to_string(i) + ",n" +
                std::to_string(i + 1) + ").");
        if (service.submit(request).status != Status::Ok) ::_exit(9);
      }
    }
    for (const std::string& client : clients) {
      Request rule = event_request(client, EventKind::Rule,
                                   "reach(X,Y) :- edge(X,Y).");
      if (service.submit(rule).status != Status::Ok) ::_exit(9);
    }
    // Workers are mid-apply right now; die like a power cut.
    ::raise(SIGKILL);
    ::_exit(8);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Recover the kill site.
  Service recovered(test_options(root.path));
  ASSERT_EQ(recovered.session_ids().size(), clients.size());
  EXPECT_GT(recovered.stats().replayed_events, 0u);
  std::map<std::string, std::string> digests =
      recovered.session_digests();

  // Reference: a fresh service fed exactly the journaled records, in
  // seq order per session — "recovered state == live state" for the
  // acked prefix of every client's stream.
  ServiceOptions ref_options = test_options(ref_root.path);
  Service reference(ref_options);
  for (const std::string& client : clients) {
    Journal journal(root.path, client, 0);
    RecoveredSession from_disk = journal.recover();
    EXPECT_EQ(from_disk.checkpoint_seq, 0u);
    for (const JournalRecord& record : from_disk.records) {
      Request request;
      request.is_event = true;
      request.event = record.kind;
      request.session = client;
      request.priority = record.priority;
      request.payload = record.payload;
      Response response = reference.submit(request);
      ASSERT_EQ(response.status, Status::Ok) << response.body;
      ASSERT_EQ(response.seq, record.seq);
    }
  }
  reference.pump();
  for (const std::string& client : clients) {
    EXPECT_EQ(digests[client], digest_of(reference, client))
        << "session " << client;
  }
}

}  // namespace
}  // namespace provmark::serve
