// `provmark feed --feed-retries N` client-side retry tests
// (docs/cli.md). The retry envelope must be exactly the sweep
// supervisor's seeded exponential backoff — keyed by (seed, request
// index, attempt) so two runs of the same feed sleep the exact same
// schedule — and retries must only ever re-send on `shed`/`busy`;
// every other response stays final.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/supervise.h"
#include "serve/daemon.h"

namespace provmark::serve {
namespace {

namespace fs = std::filesystem;

TEST(FeedRetry, BackoffScheduleIsDeterministicAndMatchesTheSupervisor) {
  FeedOptions options;
  options.seed = 7;
  options.backoff_base_ms = 50;
  options.backoff_cap_ms = 2000;

  core::SuperviseOptions supervisor;
  supervisor.seed = options.seed;
  supervisor.backoff_base_ms = options.backoff_base_ms;
  supervisor.backoff_cap_ms = options.backoff_cap_ms;

  for (int request_index = 0; request_index < 4; ++request_index) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const std::int64_t first =
          feed_backoff_ms(options.seed, request_index, attempt, options);
      // Bit-identical on recomputation: the schedule is a pure function
      // of (seed, request index, attempt).
      EXPECT_EQ(first, feed_backoff_ms(options.seed, request_index, attempt,
                                       options));
      // And it IS the supervisor envelope, not a reimplementation.
      EXPECT_EQ(first, core::backoff_ms(options.seed, request_index, attempt,
                                        supervisor));
      EXPECT_GE(first, 0);
      EXPECT_LE(first, options.backoff_cap_ms);
    }
  }
  // A different seed produces a different schedule somewhere — the
  // jitter is seeded, not constant.
  bool any_differs = false;
  for (int attempt = 1; attempt <= 6 && !any_differs; ++attempt) {
    any_differs = feed_backoff_ms(7, 0, attempt, options) !=
                  feed_backoff_ms(8, 0, attempt, options);
  }
  EXPECT_TRUE(any_differs);
}

/// Minimal scripted line server: accepts one connection, answers each
/// inbound line with the next canned response, records what it saw.
class LineServer {
 public:
  LineServer(std::string socket_path, std::vector<std::string> responses)
      : path_(std::move(socket_path)), responses_(std::move(responses)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + path_);
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      throw std::runtime_error(std::strerror(errno));
    }
    thread_ = std::thread([this] { serve(); });
  }

  ~LineServer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  std::vector<std::string> received() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }

 private:
  void serve() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    std::string buf;
    std::size_t next_response = 0;
    char chunk[4096];
    while (next_response < responses_.size()) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while (next_response < responses_.size() &&
             (nl = buf.find('\n')) != std::string::npos) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          received_.push_back(buf.substr(0, nl));
        }
        buf.erase(0, nl + 1);
        const std::string out = responses_[next_response++] + "\n";
        (void)::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      }
    }
    ::close(fd);
  }

  std::string path_;
  std::vector<std::string> responses_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::mutex mu_;
  std::vector<std::string> received_;
};

std::string test_socket(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("provmark_feed_retry_" + tag + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

TEST(FeedRetry, RetriesResendOnBusyAndPrintOnlyTheFinalResponse) {
  const std::string socket_path = test_socket("busy");
  LineServer server(socket_path, {"busy", "busy", "ok 1"});

  FeedOptions options;
  options.retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 4;
  std::istringstream in("event s fact normal edge(a,b).\n");
  std::ostringstream out;
  EXPECT_EQ(run_feed(socket_path, in, out, options), 0);
  EXPECT_EQ(out.str(), "ok 1\n");

  // The client re-sent the same request line, attempt by attempt.
  const std::vector<std::string> seen = server.received();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "event s fact normal edge(a,b).");
  EXPECT_EQ(seen[1], seen[0]);
  EXPECT_EQ(seen[2], seen[0]);
}

TEST(FeedRetry, ShedAlsoRetriesButTheBudgetIsFinite) {
  const std::string socket_path = test_socket("shed");
  LineServer server(socket_path, {"shed", "shed"});

  FeedOptions options;
  options.retries = 1;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 4;
  std::istringstream in("event s fact normal edge(a,b).\n");
  std::ostringstream out;
  // 1 try + 1 retry, both shed: the final shed is printed and the exit
  // code is the historical refusal code.
  EXPECT_EQ(run_feed(socket_path, in, out, options), 3);
  EXPECT_EQ(out.str(), "shed\n");
  EXPECT_EQ(server.received().size(), 2u);
}

TEST(FeedRetry, ZeroRetriesIsTheHistoricalClient) {
  const std::string socket_path = test_socket("zero");
  LineServer server(socket_path, {"busy"});

  std::istringstream in("event s fact normal edge(a,b).\n");
  std::ostringstream out;
  // The 3-arg overload (and the default FeedOptions) never retry:
  // every shed/busy is final, exactly the pre-retry behaviour.
  EXPECT_EQ(run_feed(socket_path, in, out), 3);
  EXPECT_EQ(out.str(), "busy\n");
  EXPECT_EQ(server.received().size(), 1u);
}

TEST(FeedRetry, ErrorsAreNeverRetried) {
  const std::string socket_path = test_socket("error");
  LineServer server(socket_path, {"error boom"});

  FeedOptions options;
  options.retries = 5;
  options.backoff_base_ms = 1;
  std::istringstream in("event s fact normal edge(a,b).\n");
  std::ostringstream out;
  EXPECT_EQ(run_feed(socket_path, in, out, options), 3);
  EXPECT_EQ(out.str(), "error boom\n");
  // One send only: errors are final, retries are reserved for
  // load-shedding responses.
  EXPECT_EQ(server.received().size(), 1u);
}

/// Scripted server for connection-failure tests: serves a sequence of
/// connections, each with its own canned response script; when a
/// script runs out the connection is closed (mid-stream loss) and the
/// next accept starts the next script.
class MultiServer {
 public:
  MultiServer(std::string socket_path,
              std::vector<std::vector<std::string>> scripts)
      : path_(std::move(socket_path)), scripts_(std::move(scripts)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + path_);
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 4) != 0) {
      throw std::runtime_error(std::strerror(errno));
    }
    thread_ = std::thread([this] { serve(); });
  }

  ~MultiServer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  std::vector<std::string> received() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }

 private:
  void serve() {
    for (const std::vector<std::string>& script : scripts_) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::string buf;
      std::size_t next_response = 0;
      bool open = true;
      char chunk[4096];
      while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while (open && (nl = buf.find('\n')) != std::string::npos) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            received_.push_back(buf.substr(0, nl));
          }
          buf.erase(0, nl + 1);
          if (next_response < script.size()) {
            const std::string out = script[next_response++] + "\n";
            (void)::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
          } else {
            // The request past the script is READ but never acked —
            // the daemon died with it in flight. Drop the connection,
            // exactly what a daemon restart looks like.
            open = false;
          }
        }
      }
      ::close(fd);
    }
  }

  std::string path_;
  std::vector<std::vector<std::string>> scripts_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::mutex mu_;
  std::vector<std::string> received_;
};

TEST(FeedRetry, ConnectRefusedIsRetriedUntilTheDaemonAppears) {
  const std::string socket_path = test_socket("refused");
  ::unlink(socket_path.c_str());

  FeedOptions options;
  options.retries = 20;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 20;

  int rc = -1;
  std::string printed;
  std::thread client([&] {
    std::istringstream in("event s fact normal edge(a,b).\n");
    std::ostringstream out;
    rc = run_feed(socket_path, in, out, options);
    printed = out.str();
  });
  // The daemon comes up only after the client has already burned a few
  // connect attempts — the restart-window shape.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    LineServer server(socket_path, {"ok 1"});
    client.join();
  }
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(printed, "ok 1\n");
}

TEST(FeedRetry, ConnectionLostMidStreamReconnectsAndResends) {
  const std::string socket_path = test_socket("midstream");
  // Connection 1 acks one event then dies; connection 2 finishes the
  // stream. The client must re-send the in-flight request verbatim.
  MultiServer server(socket_path, {{"ok 1"}, {"ok 2"}});

  FeedOptions options;
  options.retries = 5;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 4;
  std::istringstream in(
      "event s fact normal edge(a,b).\n"
      "event s fact normal edge(b,c).\n");
  std::ostringstream out;
  EXPECT_EQ(run_feed(socket_path, in, out, options), 0);
  EXPECT_EQ(out.str(), "ok 1\nok 2\n");

  const std::vector<std::string> seen = server.received();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "event s fact normal edge(a,b).");
  // The lost request was re-sent byte-identically on the new
  // connection (at-least-once delivery, docs/serve.md).
  EXPECT_EQ(seen[1], "event s fact normal edge(b,c).");
  EXPECT_EQ(seen[2], seen[1]);
}

TEST(FeedRetry, ExhaustedConnectionBudgetIsAConnectionFailure) {
  const std::string socket_path = test_socket("nobody");
  ::unlink(socket_path.c_str());

  FeedOptions options;
  options.retries = 2;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 2;
  std::istringstream in("event s fact normal edge(a,b).\n");
  std::ostringstream out;
  // Nothing ever listens: the per-request budget runs out and the
  // historical connection-failure exit code comes back.
  EXPECT_EQ(run_feed(socket_path, in, out, options), 1);
  EXPECT_EQ(out.str(), "");
}

}  // namespace
}  // namespace provmark::serve
