// The worker supervision engine, driven by a scripted host with a
// virtual clock: retry-until-success, quarantine after the attempt
// budget, straggler re-dispatch winner identity, and backoff
// determinism. No real processes, no real sleeps — every millisecond
// below is simulated, so these tests are exact and instant.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/supervise.h"

namespace provmark::core {
namespace {

/// What the scripted host makes one (task, attempt) do.
struct Script {
  enum Kind {
    CleanPublish,  ///< run, publish, exit 0
    CleanSilent,   ///< run, exit 0 without publishing
    Exit,          ///< run, exit `code`
    Signal,        ///< run, die to external signal `code`
    Hang,          ///< never terminate on its own (dies only to kill)
    NoSpawn,       ///< spawn() itself fails
  };
  Kind kind = CleanPublish;
  std::int64_t duration_ms = 100;
  int code = 0;
};

/// Deterministic WorkerHost: a virtual clock and an event queue. Time
/// advances only inside wait_any, exactly as far as the supervisor's
/// timeout (or the next death) allows.
class FakeHost : public WorkerHost {
 public:
  void script(int task, int attempt, Script s) {
    scripts_[{task, attempt}] = s;
  }

  std::uint64_t spawn(int task, int attempt) override {
    Script s;  // default: publish after 100ms
    auto it = scripts_.find({task, attempt});
    if (it != scripts_.end()) s = it->second;
    spawns.push_back({task, attempt, now_});
    if (s.kind == Script::NoSpawn) return 0;
    const std::uint64_t token = next_token_++;
    live_[token] = {task, s};
    if (s.kind != Script::Hang) {
      Pending death;
      death.at_ms = now_ + s.duration_ms;
      death.token = token;
      death.event.token = token;
      death.event.signaled = s.kind == Script::Signal;
      death.event.exit_code = s.kind == Script::Exit ? s.code : 0;
      death.event.signal = s.kind == Script::Signal ? s.code : 0;
      death.publishes = s.kind == Script::CleanPublish;
      queue_.push_back(death);
    }
    return token;
  }

  bool wait_any(std::int64_t timeout_ms, WorkerEvent* event) override {
    auto next = std::min_element(
        queue_.begin(), queue_.end(), [](const Pending& a, const Pending& b) {
          return a.at_ms != b.at_ms ? a.at_ms < b.at_ms
                                    : a.token < b.token;
        });
    if (next == queue_.end() || next->at_ms > now_ + timeout_ms) {
      now_ += timeout_ms;
      return false;
    }
    now_ = std::max(now_, next->at_ms);
    const Pending death = *next;
    queue_.erase(next);
    if (death.publishes) published_.insert(live_[death.token].task);
    live_.erase(death.token);
    *event = death.event;
    return true;
  }

  bool published(int task) override { return published_.count(task) > 0; }

  void kill_worker(std::uint64_t token) override {
    kills.push_back(token);
    auto it = live_.find(token);
    if (it == live_.end()) return;
    // Replace whatever the worker would have done with an immediate
    // SIGKILL death.
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const Pending& p) {
                                  return p.token == token;
                                }),
                 queue_.end());
    Pending death;
    death.at_ms = now_;
    death.token = token;
    death.event.token = token;
    death.event.signaled = true;
    death.event.signal = 9;
    queue_.push_back(death);
  }

  std::int64_t now_ms() override { return now_; }

  void quarantine(int task, int attempt,
                  const std::string& diagnostic) override {
    quarantines.push_back({task, attempt, diagnostic});
  }

  struct SpawnLog {
    int task;
    int attempt;
    std::int64_t at_ms;
  };
  struct QuarantineLog {
    int task;
    int attempt;
    std::string diagnostic;
  };
  std::vector<SpawnLog> spawns;
  std::vector<std::uint64_t> kills;
  std::vector<QuarantineLog> quarantines;

 private:
  struct Pending {
    std::int64_t at_ms = 0;
    std::uint64_t token = 0;
    WorkerEvent event;
    bool publishes = false;
  };
  struct Live {
    int task = 0;
    Script script;
  };
  std::int64_t now_ = 0;
  std::uint64_t next_token_ = 1;
  std::map<std::pair<int, int>, Script> scripts_;
  std::map<std::uint64_t, Live> live_;
  std::vector<Pending> queue_;
  std::set<int> published_;
};

SuperviseOptions fast_options() {
  SuperviseOptions options;
  options.retries = 2;
  options.seed = 42;
  options.backoff_base_ms = 100;
  options.backoff_cap_ms = 5000;
  options.straggler_min_ms = 400;
  options.straggler_factor = 3.0;
  options.poll_ms = 10;
  return options;
}

TEST(Supervise, AllHealthyWorkersPublishFirstTry) {
  FakeHost host;
  SuperviseReport report = supervise(3, host, fast_options());
  EXPECT_TRUE(report.all_published);
  ASSERT_EQ(report.tasks.size(), 3u);
  for (const TaskOutcome& t : report.tasks) {
    EXPECT_TRUE(t.published);
    EXPECT_EQ(t.launches, 1);
    EXPECT_EQ(t.winning_attempt, 0);
    EXPECT_FALSE(t.quarantined);
  }
  ASSERT_EQ(report.history.size(), 3u);
  for (const AttemptRecord& a : report.history) {
    EXPECT_EQ(a.fate, WorkerFate::Published);
  }
  EXPECT_TRUE(host.quarantines.empty());
}

TEST(Supervise, RetryUntilSuccessWithDeterministicBackoff) {
  const SuperviseOptions options = fast_options();
  FakeHost host;
  // Task 1 crashes twice (exit 70), then publishes; tasks 0/2 healthy.
  host.script(1, 0, {Script::Exit, 50, 70});
  host.script(1, 1, {Script::Exit, 50, 70});
  host.script(1, 2, {Script::CleanPublish, 50, 0});

  SuperviseReport report = supervise(3, host, options);
  EXPECT_TRUE(report.all_published);
  EXPECT_EQ(report.tasks[1].launches, 3);
  EXPECT_EQ(report.tasks[1].winning_attempt, 2);
  EXPECT_FALSE(report.tasks[1].quarantined);

  // The relaunch times are exactly death + seeded backoff, exponential
  // between attempts.
  std::vector<FakeHost::SpawnLog> task1;
  for (const auto& s : host.spawns) {
    if (s.task == 1) task1.push_back(s);
  }
  ASSERT_EQ(task1.size(), 3u);
  const std::int64_t first_delay = backoff_ms(options.seed, 1, 1, options);
  const std::int64_t second_delay = backoff_ms(options.seed, 1, 2, options);
  EXPECT_EQ(task1[1].at_ms, task1[0].at_ms + 50 + first_delay);
  EXPECT_EQ(task1[2].at_ms, task1[1].at_ms + 50 + second_delay);
  EXPECT_GT(second_delay, first_delay);

  // Fate sequence for task 1: Failed, Failed, Published.
  std::vector<WorkerFate> fates;
  for (const AttemptRecord& a : report.history) {
    if (a.task == 1) fates.push_back(a.fate);
  }
  EXPECT_EQ(fates, (std::vector<WorkerFate>{WorkerFate::Failed,
                                            WorkerFate::Failed,
                                            WorkerFate::Published}));
}

TEST(Supervise, QuarantineAfterBudgetExhaustion) {
  FakeHost host;
  // Task 0 fails every attempt, in three different ways.
  host.script(0, 0, {Script::Exit, 50, 70});
  host.script(0, 1, {Script::Signal, 50, 11});
  host.script(0, 2, {Script::CleanSilent, 50, 0});

  SuperviseReport report = supervise(2, host, fast_options());
  EXPECT_FALSE(report.all_published);
  EXPECT_FALSE(report.tasks[0].published);
  EXPECT_TRUE(report.tasks[0].quarantined);
  EXPECT_EQ(report.tasks[0].launches, 3);
  EXPECT_TRUE(report.tasks[1].published);

  ASSERT_EQ(host.quarantines.size(), 1u);
  EXPECT_EQ(host.quarantines[0].task, 0);
  EXPECT_EQ(host.quarantines[0].attempt, 2);
  EXPECT_NE(host.quarantines[0].diagnostic.find("all 3 attempts"),
            std::string::npos);
  EXPECT_NE(
      host.quarantines[0].diagnostic.find("without publishing"),
      std::string::npos)
      << "diagnostic should carry the *last* failure: "
      << host.quarantines[0].diagnostic;

  std::vector<WorkerFate> fates;
  for (const AttemptRecord& a : report.history) {
    if (a.task == 0) fates.push_back(a.fate);
  }
  EXPECT_EQ(fates,
            (std::vector<WorkerFate>{WorkerFate::Failed,
                                     WorkerFate::Signaled,
                                     WorkerFate::ExitedUnpublished}));
}

TEST(Supervise, StragglerRedispatchFirstPublishWins) {
  FakeHost host;
  // Tasks 1/2 publish in 100ms; task 0's first attempt hangs forever.
  // Once the majority has published, the supervisor must notice the
  // straggler, dispatch a duplicate attempt, and credit the publish to
  // that duplicate while the hung original is killed as superseded.
  host.script(0, 0, {Script::Hang, 0, 0});
  host.script(0, 1, {Script::CleanPublish, 100, 0});

  SuperviseReport report = supervise(3, host, fast_options());
  EXPECT_TRUE(report.all_published);
  EXPECT_EQ(report.tasks[0].launches, 2);
  EXPECT_EQ(report.tasks[0].winning_attempt, 1);
  EXPECT_FALSE(report.tasks[0].quarantined);
  EXPECT_FALSE(host.kills.empty());

  std::map<int, WorkerFate> task0;
  for (const AttemptRecord& a : report.history) {
    if (a.task == 0) task0[a.attempt] = a.fate;
  }
  EXPECT_EQ(task0[0], WorkerFate::Superseded);
  EXPECT_EQ(task0[1], WorkerFate::Published);

  // The duplicate launched only after the straggler deadline — derived
  // from the published-median (100ms), floored by straggler_min_ms.
  std::int64_t redispatch_at = -1;
  for (const auto& s : host.spawns) {
    if (s.task == 0 && s.attempt == 1) redispatch_at = s.at_ms;
  }
  ASSERT_GE(redispatch_at, fast_options().straggler_min_ms);
}

TEST(Supervise, EveryAttemptHangsThenQuarantine) {
  SuperviseOptions options = fast_options();
  options.retries = 1;
  FakeHost host;
  host.script(0, 0, {Script::Hang, 0, 0});
  host.script(0, 1, {Script::Hang, 0, 0});

  SuperviseReport report = supervise(3, host, options);
  EXPECT_FALSE(report.all_published);
  EXPECT_TRUE(report.tasks[0].quarantined);
  EXPECT_EQ(report.tasks[0].launches, 2);
  EXPECT_TRUE(report.tasks[1].published);
  EXPECT_TRUE(report.tasks[2].published);
  EXPECT_NE(report.tasks[0].diagnostic.find("hung"), std::string::npos);
  // Both hung attempts were killed by the supervisor, not leaked.
  EXPECT_EQ(host.kills.size(), 2u);
}

TEST(Supervise, SpawnFailureIsRetried) {
  FakeHost host;
  host.script(0, 0, {Script::NoSpawn, 0, 0});

  SuperviseReport report = supervise(1, host, fast_options());
  EXPECT_TRUE(report.all_published);
  EXPECT_EQ(report.tasks[0].launches, 2);
  EXPECT_EQ(report.tasks[0].winning_attempt, 1);
  ASSERT_EQ(report.history.size(), 2u);
  EXPECT_EQ(report.history[0].fate, WorkerFate::SpawnFailed);
  EXPECT_EQ(report.history[1].fate, WorkerFate::Published);
}

TEST(Supervise, BackoffIsDeterministicJitteredAndMonotone) {
  const SuperviseOptions options = fast_options();
  for (int task = 0; task < 4; ++task) {
    std::int64_t previous = 0;
    for (int attempt = 1; attempt <= 12; ++attempt) {
      const std::int64_t delay =
          backoff_ms(options.seed, task, attempt, options);
      // Same (seed, task, attempt) → same delay, always.
      EXPECT_EQ(delay, backoff_ms(options.seed, task, attempt, options));
      // Jitter stays inside the documented envelope, capped.
      const double nominal =
          static_cast<double>(options.backoff_base_ms) *
          static_cast<double>(1LL << (attempt - 1));
      EXPECT_GE(delay, std::min<std::int64_t>(
                           options.backoff_cap_ms,
                           static_cast<std::int64_t>(0.75 * nominal)));
      EXPECT_LE(delay,
                std::min<std::int64_t>(
                    options.backoff_cap_ms,
                    static_cast<std::int64_t>(1.25 * nominal) + 1));
      // Monotone non-decreasing across attempts.
      EXPECT_GE(delay, previous) << "task " << task << " attempt "
                                 << attempt;
      previous = delay;
    }
  }
  // Different seeds and tasks decorrelate the jitter: not all equal.
  std::set<std::int64_t> distinct;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    distinct.insert(backoff_ms(seed, 0, 1, options));
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ProcessWorkerHostSignals, SigtermForwardsToLiveWorkersThenDies) {
  // Real processes: an "orchestrator" child installs signal forwarding,
  // spawns a long-sleeping worker grandchild, and is then SIGTERM'd.
  // The worker must die with it (no orphaned shard processes) and the
  // orchestrator must exit *by* SIGTERM, not with a made-up code.
  namespace fs = std::filesystem;
  const fs::path pid_file =
      fs::temp_directory_path() /
      ("provmark_supervise_fwd_" + std::to_string(::getpid()));
  fs::remove(pid_file);

  const pid_t orchestrator = ::fork();
  ASSERT_GE(orchestrator, 0);
  if (orchestrator == 0) {
    ProcessWorkerHost host = ProcessWorkerHost::fork_mode(
        [](int, int) {
          ::sleep(60);  // a worker mid-cell, oblivious to the shutdown
          return 0;
        },
        [](int) { return false; });
    host.install_signal_forwarding(/*grace_ms=*/5'000);
    const std::uint64_t token = host.spawn(0, 0);
    if (token == 0) ::_exit(9);
    {
      std::ofstream out(pid_file);
      out << token << "\n";
    }
    WorkerEvent event;
    while (true) host.wait_any(100, &event);  // forwarding fires in here
  }

  // Wait for the worker grandchild's pid to be published.
  pid_t worker = 0;
  for (int i = 0; i < 200 && worker == 0; ++i) {
    std::ifstream in(pid_file);
    if (!(in >> worker)) {
      worker = 0;
      ::usleep(50'000);
    }
  }
  ASSERT_GT(worker, 0) << "orchestrator never spawned its worker";

  ASSERT_EQ(::kill(orchestrator, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(orchestrator, &status, 0), orchestrator);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  // The worker was reparented to init if leaked; poll until ESRCH.
  bool worker_dead = false;
  for (int i = 0; i < 200 && !worker_dead; ++i) {
    if (::kill(worker, 0) != 0 && errno == ESRCH) {
      worker_dead = true;
    } else {
      ::usleep(50'000);
    }
  }
  if (!worker_dead) ::kill(worker, SIGKILL);  // don't leak it past the test
  EXPECT_TRUE(worker_dead) << "worker outlived the orchestrator";
  fs::remove(pid_file);
}

}  // namespace
}  // namespace provmark::core
