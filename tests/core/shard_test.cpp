// The sharded batch subsystem: plan determinism, cell-record round
// trips, merge determinism (any shard order produces the exact
// single-process bytes), and resume-after-partial-sweep detection.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/shard.h"

namespace provmark::core {
namespace {

namespace fs = std::filesystem;

/// A scratch directory wiped on construction and destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_shard_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

const std::vector<std::string> kSystems = {"spade", "camflow"};
const std::vector<std::string> kBenchmarks = {"open", "rename", "fork"};

TEST(ShardPlan, StableAcrossShardCounts) {
  // The global cell order is a property of the matrix, not of the shard
  // count: every N must see the same cells at the same indices — that
  // is what lets shard artifacts from different layouts interoperate
  // with the single-process sweep.
  ShardPlan reference =
      plan_batch(kSystems, kBenchmarks, 1, 42, "rb", false);
  ASSERT_EQ(reference.cells.size(), kSystems.size() * kBenchmarks.size());
  // Systems outer, benchmarks inner — the single-process loop order.
  EXPECT_EQ(reference.cells[0].system, "spade");
  EXPECT_EQ(reference.cells[0].benchmark, "open");
  EXPECT_EQ(reference.cells[3].system, "camflow");
  EXPECT_EQ(reference.cells[3].benchmark, "open");
  for (std::size_t i = 0; i < reference.cells.size(); ++i) {
    EXPECT_EQ(reference.cells[i].index, i);
  }

  for (int shards = 1; shards <= 5; ++shards) {
    ShardPlan plan =
        plan_batch(kSystems, kBenchmarks, shards, 42, "rb", false);
    EXPECT_EQ(plan.cells, reference.cells) << "shards=" << shards;
    std::set<std::size_t> covered;
    for (int k = 0; k < shards; ++k) {
      ShardSpec spec = plan.shard(k);
      EXPECT_EQ(spec.shard_id, k);
      EXPECT_EQ(spec.shard_count, shards);
      for (const BatchCell& cell : spec.cells) {
        EXPECT_EQ(cell.index % shards, static_cast<std::size_t>(k));
        EXPECT_EQ(cell, reference.cells[cell.index]);
        EXPECT_TRUE(covered.insert(cell.index).second)
            << "cell " << cell.index << " assigned twice";
      }
    }
    EXPECT_EQ(covered.size(), reference.cells.size()) << "shards=" << shards;
  }

  EXPECT_THROW(plan_batch(kSystems, kBenchmarks, 0, 42, "rb", false),
               std::invalid_argument);
  EXPECT_THROW(plan_batch({}, kBenchmarks, 1, 42, "rb", false),
               std::invalid_argument);
}

TEST(ShardCellRecord, RoundTripsHostileContent) {
  BenchmarkResult result;
  result.system = "spade";
  result.benchmark = "rename-fail";
  result.status = BenchmarkStatus::Failed;
  result.failure_reason = "line one\nline \"two\"\twith \\ slashes";
  result.timings.recording = 1.0 / 3.0;
  result.timings.transformation = 0.123456789012345678;
  result.timings.generalization = 1e-9;
  result.timings.comparison = 12345.678901;
  result.trials_run = 12;
  result.trials_discarded = 3;
  result.trials_unparseable = 1;
  result.transient_properties = 7;
  result.threads_used = 4;
  result.similarity_cache_hits = 99;
  result.similarity_cache_lookups = 123;
  result.matcher_steps = 456789;
  result.dummy_nodes = {"dummy one", "d\"2\""};

  result.result.add_node("dummy one", "Process");
  result.result.add_node("d\"2\"", "Artifact",
                         {{"path", "/tmp/a b"}, {"note", "π ≠ ascii"}});
  result.result.add_node("n3", "Artifact", {{"k", "v1,v2\nv3"}});
  result.result.add_edge("e1", "n3", "dummy one", "Used",
                         {{"operation", "read"}});
  // Insertion order that differs from id order, so the round trip is
  // provably order-preserving (zz before aa).
  result.generalized_foreground.add_node("zz", "Process");
  result.generalized_foreground.add_node("aa", "Artifact");
  result.generalized_foreground.add_edge("e9", "zz", "aa", "Used");
  result.generalized_background.add_node("only", "Process");

  std::string encoded = encode_cell_record(17, result);
  std::size_t index = 0;
  BenchmarkResult decoded = decode_cell_record(encoded, &index);

  EXPECT_EQ(index, 17u);
  EXPECT_EQ(decoded.system, result.system);
  EXPECT_EQ(decoded.benchmark, result.benchmark);
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_EQ(decoded.failure_reason, result.failure_reason);
  EXPECT_EQ(decoded.timings.recording, result.timings.recording);
  EXPECT_EQ(decoded.timings.transformation, result.timings.transformation);
  EXPECT_EQ(decoded.timings.generalization, result.timings.generalization);
  EXPECT_EQ(decoded.timings.comparison, result.timings.comparison);
  EXPECT_EQ(decoded.trials_run, result.trials_run);
  EXPECT_EQ(decoded.trials_discarded, result.trials_discarded);
  EXPECT_EQ(decoded.trials_unparseable, result.trials_unparseable);
  EXPECT_EQ(decoded.transient_properties, result.transient_properties);
  EXPECT_EQ(decoded.threads_used, result.threads_used);
  EXPECT_EQ(decoded.similarity_cache_hits, result.similarity_cache_hits);
  EXPECT_EQ(decoded.similarity_cache_lookups,
            result.similarity_cache_lookups);
  EXPECT_EQ(decoded.matcher_steps, result.matcher_steps);
  EXPECT_EQ(decoded.dummy_nodes, result.dummy_nodes);
  EXPECT_EQ(decoded.result, result.result);
  EXPECT_EQ(decoded.generalized_foreground, result.generalized_foreground);
  EXPECT_EQ(decoded.generalized_background, result.generalized_background);
  // Insertion order survived, not just set equality.
  EXPECT_EQ(decoded.generalized_foreground.nodes()[0].id, "zz");
  // And a re-encode is byte-stable — the fixpoint every merge relies on.
  EXPECT_EQ(encode_cell_record(17, decoded), encoded);

  EXPECT_THROW(decode_cell_record("not a record", nullptr),
               std::runtime_error);
  EXPECT_THROW(
      decode_cell_record(encoded.substr(0, encoded.size() / 2), nullptr),
      std::runtime_error);
}

TEST(ShardTimings, DeterministicAndDistinct) {
  StageTimings a = deterministic_timings(42, "spade", "open");
  StageTimings b = deterministic_timings(42, "spade", "open");
  EXPECT_EQ(a.recording, b.recording);
  EXPECT_EQ(a.transformation, b.transformation);
  EXPECT_EQ(a.generalization, b.generalization);
  EXPECT_EQ(a.comparison, b.comparison);
  EXPECT_NE(a.recording, deterministic_timings(42, "spade", "fork").recording);
  EXPECT_NE(a.recording, deterministic_timings(42, "opus", "open").recording);
  EXPECT_NE(a.recording, deterministic_timings(43, "spade", "open").recording);
  EXPECT_GE(a.recording, 0.0);
  EXPECT_LT(a.recording, 1.0);
}

TEST(ShardTrialSeeds, SliceApiIsPositionPure) {
  // The slice contract behind sharding: a trial's seed depends only on
  // (run seed, program, variant, index), so any subset of the matrix
  // recomputes identically in any process.
  EXPECT_EQ(trial_seed(42, "rename", true, 3),
            trial_seed(42, "rename", true, 3));
  EXPECT_NE(trial_seed(42, "rename", true, 3),
            trial_seed(42, "rename", true, 4));
  EXPECT_NE(trial_seed(42, "rename", true, 3),
            trial_seed(42, "rename", false, 3));
  EXPECT_NE(trial_seed(42, "rename", true, 3),
            trial_seed(42, "open", true, 3));
  EXPECT_NE(trial_seed(42, "rename", true, 3),
            trial_seed(7, "rename", true, 3));
}

/// One real mini-sweep (spade × {open, rename, fork}), with
/// deterministic timings so time.log bytes are comparable.
std::vector<BenchmarkResult> run_mini_sweep(const ShardPlan& plan) {
  CellRunOptions options;
  options.seed = plan.seed;
  options.deterministic_timings = plan.deterministic_timings;
  return run_batch_cells(plan.cells, options);
}

TEST(ShardMerge, AnyShardOrderReproducesSingleProcessBytes) {
  const std::vector<std::string> systems = {"spade"};
  ShardPlan plan = plan_batch(systems, kBenchmarks, 2, 42, "rg", true);

  TempDir tmp("merge");
  const std::string single_dir = tmp.str() + "/single";
  std::vector<BenchmarkResult> single = run_mini_sweep(plan);
  write_batch_outputs(single_dir, single, plan.result_type);

  // Workers: run each shard's slice independently.
  std::vector<std::string> shard_dirs;
  for (int k = 0; k < plan.shard_count; ++k) {
    ShardSpec spec = plan.shard(k);
    CellRunOptions options;
    options.seed = spec.seed;
    options.deterministic_timings = spec.deterministic_timings;
    shard_dirs.push_back(tmp.str() + "/sweep");
    write_shard_dir(tmp.str() + "/sweep", spec,
                    run_batch_cells(spec.cells, options));
    shard_dirs.back() = shard_dir_path(tmp.str() + "/sweep", k);
  }

  // Merge in both shard orders; every artifact must be byte-identical
  // to the single-process sweep either way.
  const std::vector<std::vector<std::string>> orders = {
      {shard_dirs[0], shard_dirs[1]}, {shard_dirs[1], shard_dirs[0]}};
  for (std::size_t o = 0; o < orders.size(); ++o) {
    std::string result_type;
    std::vector<BenchmarkResult> merged =
        read_shard_results(orders[o], &result_type);
    EXPECT_EQ(result_type, "rg");
    ASSERT_EQ(merged.size(), single.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].benchmark, single[i].benchmark);
      EXPECT_EQ(merged[i].result, single[i].result);
    }
    const std::string merged_dir =
        tmp.str() + "/merged" + std::to_string(o);
    write_batch_outputs(merged_dir, merged, result_type);
    for (const char* artifact :
         {"time.log", "validation.txt", "spade_open.datalog",
          "spade_rename.dot", "spade_fork.datalog"}) {
      EXPECT_EQ(slurp(fs::path(merged_dir) / artifact),
                slurp(fs::path(single_dir) / artifact))
          << artifact << " order " << o;
    }
  }

  // A missing shard is a hard error, not a silent gap.
  EXPECT_THROW(read_shard_results({shard_dirs[0]}), std::runtime_error);
}

TEST(ShardMerge, RejectsShardsOfDifferentSweeps) {
  // Two sweeps with the same shape (seed, result type, shard count,
  // cell count) but different matrices: their shards must not merge
  // into a franken-sweep just because the index sets happen to tile.
  TempDir tmp("franken");
  for (const char* variant : {"a", "b"}) {
    ShardPlan plan = plan_batch(
        {"spade"},
        variant[0] == 'a' ? std::vector<std::string>{"open", "rename"}
                          : std::vector<std::string>{"open", "fork"},
        2, 42, "rb", true);
    for (int k = 0; k < 2; ++k) {
      ShardSpec spec = plan.shard(k);
      CellRunOptions options;
      options.seed = spec.seed;
      options.deterministic_timings = spec.deterministic_timings;
      write_shard_dir(tmp.str() + "/" + variant, spec,
                      run_batch_cells(spec.cells, options));
    }
  }
  // Same-sweep merge works; cross-sweep merge throws on the matrix
  // fingerprint even though ids/counts line up.
  EXPECT_EQ(read_shard_results({shard_dir_path(tmp.str() + "/a", 0),
                                shard_dir_path(tmp.str() + "/a", 1)})
                .size(),
            2u);
  EXPECT_THROW(read_shard_results({shard_dir_path(tmp.str() + "/a", 0),
                                   shard_dir_path(tmp.str() + "/b", 1)}),
               std::runtime_error);
}

TEST(ShardResume, CompletenessDetection) {
  const std::vector<std::string> systems = {"spade"};
  ShardPlan plan = plan_batch(systems, {"open"}, 1, 42, "rb", true);
  ShardSpec spec = plan.shard(0);

  TempDir tmp("resume");
  const std::string dir = shard_dir_path(tmp.str(), 0);
  // Nothing on disk yet: not complete.
  EXPECT_FALSE(shard_complete(dir, spec));

  std::vector<BenchmarkResult> results = run_mini_sweep(plan);
  write_shard_dir(tmp.str(), spec, results);
  EXPECT_TRUE(shard_complete(dir, spec));

  // A different sweep configuration must not reuse these artifacts —
  // including a different matcher ordering (same optimal costs, but
  // possibly a different tied matching, so different bytes).
  ShardSpec other = spec;
  other.seed = 43;
  EXPECT_FALSE(shard_complete(dir, other));
  ShardSpec more_shards = plan_batch(systems, {"open"}, 2, 42, "rb", true)
                              .shard(0);
  EXPECT_FALSE(shard_complete(dir, more_shards));
  ShardSpec other_order =
      plan_batch(systems, {"open"}, 1, 42, "rb", true, "wl").shard(0);
  EXPECT_FALSE(shard_complete(dir, other_order));
  ShardSpec other_matrix =
      plan_batch(systems, {"rename"}, 1, 42, "rb", true).shard(0);
  EXPECT_FALSE(shard_complete(dir, other_matrix));

  // A truncated manifest (interrupted worker) reads as incomplete.
  const fs::path manifest = fs::path(dir) / "shard.manifest";
  std::string text = slurp(manifest);
  std::ofstream(manifest, std::ios::binary | std::ios::trunc)
      << text.substr(0, text.size() - 10);
  EXPECT_FALSE(shard_complete(dir, spec));
}

TEST(ShardIntegrity, ManifestTruncationFuzzNeverParses) {
  // A crashed writer can leave a prefix of any length on disk. Every
  // one of them must be rejected with a clean runtime_error — never a
  // crash, never a successful strict parse (which would let a torn
  // manifest impersonate a complete shard).
  ShardPlan plan = plan_batch({"spade"}, {"open"}, 1, 42, "rb", true);
  ShardSpec spec = plan.shard(0);
  TempDir tmp("fuzz_manifest");
  write_shard_dir(tmp.str(), spec, run_mini_sweep(plan));
  const std::string text =
      slurp(fs::path(shard_dir_path(tmp.str(), 0)) / "shard.manifest");
  ASSERT_GT(text.size(), 0u);

  // The whole document parses strictly and round-trips the spec.
  ArtifactDigests digests;
  EXPECT_EQ(parse_shard_manifest(text, nullptr, &digests), spec);
  EXPECT_FALSE(digests.empty());

  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(parse_shard_manifest(text.substr(0, len)),
                 std::runtime_error)
        << "prefix of " << len << " bytes parsed as complete";
    // Lenient mode (resume) must classify the same prefix as
    // incomplete or malformed — never complete.
    try {
      bool complete = true;
      parse_shard_manifest(text.substr(0, len), &complete);
      EXPECT_FALSE(complete) << "prefix of " << len << " bytes";
    } catch (const std::runtime_error&) {
      // Structurally unreadable: equally safe.
    }
  }
}

TEST(ShardIntegrity, CellRecordTruncationFuzzNeverParses) {
  BenchmarkResult result;
  result.system = "spade";
  result.benchmark = "open";
  result.trials_run = 2;
  result.result.add_node("p0", "Process", {{"name", "sh"}});
  result.result.add_node("a0", "Artifact");
  result.result.add_edge("e0", "p0", "a0", "Used");
  const std::string encoded = encode_cell_record(3, result);

  std::size_t index = 0;
  EXPECT_EQ(decode_cell_record(encoded, &index).result, result.result);
  EXPECT_EQ(index, 3u);

  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW(decode_cell_record(encoded.substr(0, len), nullptr),
                 std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(ShardIntegrity, TornArtifactFailsResumeAndMergesRetryable) {
  ShardPlan plan = plan_batch({"spade"}, kBenchmarks, 2, 42, "rb", true);
  TempDir tmp("torn");
  std::vector<std::string> shard_dirs;
  for (int k = 0; k < 2; ++k) {
    ShardSpec spec = plan.shard(k);
    CellRunOptions options;
    options.seed = spec.seed;
    options.deterministic_timings = spec.deterministic_timings;
    write_shard_dir(tmp.str(), spec, run_batch_cells(spec.cells, options));
    shard_dirs.push_back(shard_dir_path(tmp.str(), k));
  }
  ASSERT_TRUE(shard_complete(shard_dirs[1], plan.shard(1)));

  // Truncate one artifact of shard 1 (a torn write: the manifest still
  // records the intended digest).
  const fs::path victim = fs::path(shard_dirs[1]) / "validation.txt";
  const std::string original = slurp(victim);
  std::ofstream(victim, std::ios::binary | std::ios::trunc)
      << original.substr(0, original.size() / 2);

  EXPECT_FALSE(shard_complete(shard_dirs[1], plan.shard(1)));
  try {
    read_shard_results(shard_dirs);
    FAIL() << "torn artifact merged";
  } catch (const ShardRetryableError& e) {
    EXPECT_EQ(e.shard_id, 1);
    EXPECT_EQ(e.dir, shard_dirs[1]);
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos);
  }

  // Same-size tampering (bit flip, not truncation) is caught too.
  std::string tampered = original;
  tampered[tampered.size() / 2] ^= 0x20;
  std::ofstream(victim, std::ios::binary | std::ios::trunc) << tampered;
  EXPECT_FALSE(shard_complete(shard_dirs[1], plan.shard(1)));
  EXPECT_THROW(read_shard_results(shard_dirs), ShardRetryableError);

  // Restoring the intended bytes repairs both checks.
  std::ofstream(victim, std::ios::binary | std::ios::trunc) << original;
  EXPECT_TRUE(shard_complete(shard_dirs[1], plan.shard(1)));
  EXPECT_EQ(read_shard_results(shard_dirs).size(), plan.cells.size());

  // A missing shard is retryable and names the shard to re-run; a
  // duplicate shard is structural and is not.
  try {
    read_shard_results({shard_dirs[0]});
    FAIL() << "missing shard merged";
  } catch (const ShardRetryableError& e) {
    EXPECT_EQ(e.shard_id, 1);
    EXPECT_TRUE(e.dir.empty());
  }
  EXPECT_THROW(
      {
        try {
          read_shard_results({shard_dirs[0], shard_dirs[0]});
        } catch (const ShardRetryableError&) {
          ADD_FAILURE() << "duplicate shard classified retryable";
          throw;
        }
      },
      std::runtime_error);
}

TEST(ShardIntegrity, DuplicatePublishIsBenign) {
  // Straggler re-dispatch can complete a shard twice; the second
  // publish must leave the first winner's artifacts untouched.
  ShardPlan plan = plan_batch({"spade"}, {"open"}, 1, 42, "rb", true);
  ShardSpec spec = plan.shard(0);
  std::vector<BenchmarkResult> results = run_mini_sweep(plan);

  TempDir tmp("dup");
  const std::string first = write_shard_dir(tmp.str(), spec, results);
  const std::string manifest =
      slurp(fs::path(first) / "shard.manifest");
  const std::string second = write_shard_dir(tmp.str(), spec, results);
  EXPECT_EQ(first, second);
  EXPECT_EQ(slurp(fs::path(first) / "shard.manifest"), manifest);
  EXPECT_TRUE(shard_complete(first, spec));
  // No staging directory leaks behind either attempt.
  for (const auto& entry : fs::directory_iterator(tmp.path)) {
    EXPECT_EQ(entry.path().filename().string().find(".staging."),
              std::string::npos)
        << entry.path();
  }
}

TEST(ShardStaging, RemoveOrphanedStagingSweepsDeadPidsOnly) {
  TempDir tmp("orphans");
  // A dead pid's staging dir and tmp file: orphaned, must go. Pid 1 is
  // alive on any Linux box (init) — its leftovers must survive; so must
  // names without a pid suffix and published shard dirs.
  const pid_t dead = [] {
    pid_t pid = ::fork();
    if (pid == 0) ::_exit(0);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return pid;
  }();
  const fs::path orphan_dir =
      tmp.path / ("shard-3.staging." + std::to_string(dead));
  const fs::path orphan_tmp =
      tmp.path / ("time.log.tmp." + std::to_string(dead));
  const fs::path live_dir = tmp.path / "shard-4.staging.1";
  const fs::path published = tmp.path / "shard-0";
  const fs::path odd_name = tmp.path / "shard-5.staging.notapid";
  fs::create_directories(orphan_dir);
  fs::create_directories(live_dir);
  fs::create_directories(published);
  fs::create_directories(odd_name);
  { std::ofstream out(orphan_dir / "cell-0.result"); out << "partial"; }
  { std::ofstream out(orphan_tmp); out << "torn"; }

  EXPECT_EQ(remove_orphaned_staging(tmp.str()), 2u);
  EXPECT_FALSE(fs::exists(orphan_dir));
  EXPECT_FALSE(fs::exists(orphan_tmp));
  EXPECT_TRUE(fs::exists(live_dir));
  EXPECT_TRUE(fs::exists(published));
  EXPECT_TRUE(fs::exists(odd_name));

  // Idempotent, and harmless on a missing directory.
  EXPECT_EQ(remove_orphaned_staging(tmp.str()), 0u);
  EXPECT_EQ(remove_orphaned_staging(tmp.str() + "/nope"), 0u);
}

}  // namespace
}  // namespace provmark::core
