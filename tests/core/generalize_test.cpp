#include "core/generalize.h"

#include <gtest/gtest.h>

#include "graph/property_graph.h"

namespace provmark::core {
namespace {

using graph::PropertyGraph;

/// A "recording trial": fixed shape, stable + transient properties.
PropertyGraph trial(const std::string& timestamp, const std::string& pid) {
  PropertyGraph g;
  g.add_node("p", "Process",
             {{"name", "bench"}, {"pid", pid}, {"time", timestamp}});
  g.add_node("f", "Artifact", {{"path", "/tmp/x"}, {"time", timestamp}});
  g.add_edge("e", "p", "f", "Used",
             {{"operation", "open"}, {"serial", timestamp}});
  return g;
}

/// A structurally different (failed) trial.
PropertyGraph garbled() {
  PropertyGraph g;
  g.add_node("p", "Process");
  return g;
}

TEST(SimilarityClasses, GroupsByShape) {
  std::vector<PropertyGraph> trials = {trial("1", "100"), trial("2", "200"),
                                       garbled()};
  auto classes = similarity_classes(trials);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].size(), 2u);  // sorted largest first
  EXPECT_EQ(classes[1].size(), 1u);
}

TEST(SimilarityClasses, AllDistinct) {
  PropertyGraph a = garbled();
  PropertyGraph b = trial("1", "1");
  PropertyGraph c;
  auto classes = similarity_classes({a, b, c});
  EXPECT_EQ(classes.size(), 3u);
}

TEST(SimilarityClasses, EmptyInput) {
  EXPECT_TRUE(similarity_classes({}).empty());
}

TEST(GeneralizePair, StripsTransientKeepsStable) {
  auto result = generalize_pair(trial("111", "a"), trial("222", "b"));
  ASSERT_TRUE(result.has_value());
  const graph::Node* p = result->find_node("p");
  EXPECT_EQ(p->props.count("name"), 1u);   // stable kept
  EXPECT_EQ(p->props.count("pid"), 0u);    // transient dropped
  EXPECT_EQ(p->props.count("time"), 0u);
  const graph::Edge* e = result->find_edge("e");
  EXPECT_EQ(e->props.count("operation"), 1u);
  EXPECT_EQ(e->props.count("serial"), 0u);
}

TEST(GeneralizePair, IdenticalGraphsKeepEverything) {
  auto result = generalize_pair(trial("1", "1"), trial("1", "1"));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->find_node("p")->props.size(), 3u);
}

TEST(GeneralizePair, DissimilarGraphsFail) {
  EXPECT_FALSE(generalize_pair(trial("1", "1"), garbled()).has_value());
}

TEST(GeneralizePair, PicksPropertyOptimalMatching) {
  // Two interchangeable artifacts; only the optimal matching preserves
  // the stable "path" property on both.
  PropertyGraph a;
  a.add_node("p", "Process");
  a.add_node("f1", "Artifact", {{"path", "/x"}});
  a.add_node("f2", "Artifact", {{"path", "/y"}});
  a.add_edge("e1", "p", "f1", "Used");
  a.add_edge("e2", "p", "f2", "Used");
  PropertyGraph b;
  b.add_node("p", "Process");
  b.add_node("g1", "Artifact", {{"path", "/y"}});
  b.add_node("g2", "Artifact", {{"path", "/x"}});
  b.add_edge("e1", "p", "g1", "Used");
  b.add_edge("e2", "p", "g2", "Used");
  auto result = generalize_pair(a, b);
  ASSERT_TRUE(result.has_value());
  int paths_kept = 0;
  for (const graph::Node& n : result->nodes()) {
    paths_kept += static_cast<int>(n.props.count("path"));
  }
  EXPECT_EQ(paths_kept, 2);
}

TEST(GeneralizeTrials, DiscardsSingletonsAndCounts) {
  std::vector<PropertyGraph> trials = {trial("1", "a"), trial("2", "b"),
                                       garbled()};
  auto result = generalize_trials(trials);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->discarded, 1u);
  EXPECT_EQ(result->classes, 2u);
  // Transients stripped: p.pid, p.time, f.time, e.serial.
  EXPECT_EQ(result->transient_properties, 4);
}

TEST(GeneralizeTrials, FailsWhenAllSingletons) {
  std::vector<PropertyGraph> trials = {trial("1", "a"), garbled()};
  EXPECT_FALSE(generalize_trials(trials).has_value());
}

TEST(GeneralizeTrials, SmallestClassWins) {
  // Two viable classes: the small graphs and the larger (noisy) graphs.
  PropertyGraph big1 = trial("1", "a");
  big1.add_node("noise", "Daemon");
  PropertyGraph big2 = trial("2", "b");
  big2.add_node("noise", "Daemon");
  std::vector<PropertyGraph> trials = {big1, big2, trial("3", "c"),
                                       trial("4", "d")};
  auto smallest = generalize_trials(trials);
  ASSERT_TRUE(smallest.has_value());
  EXPECT_EQ(smallest->graph.node_count(), 2u);  // no Daemon node

  GeneralizeOptions largest;
  largest.pick = PickStrategy::LargestClass;
  auto big = generalize_trials(trials, largest);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->graph.node_count(), 3u);
}

TEST(GeneralizeTrials, TwoTrialsSuffice) {
  auto result = generalize_trials({trial("1", "a"), trial("2", "b")});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->discarded, 0u);
}

}  // namespace
}  // namespace provmark::core
