#include "core/compare.h"

#include <gtest/gtest.h>

#include "graph/property_graph.h"

namespace provmark::core {
namespace {

using graph::PropertyGraph;

PropertyGraph background() {
  PropertyGraph g;
  g.add_node("p", "Process", {{"name", "bench"}});
  g.add_node("lib", "Artifact", {{"path", "/lib/libc"}});
  g.add_edge("e1", "p", "lib", "Used", {{"operation", "open"}});
  return g;
}

PropertyGraph foreground_with_target() {
  PropertyGraph g = background();
  g.add_node("f", "Artifact", {{"path", "/tmp/x"}});
  g.add_edge("e2", "p", "f", "Used", {{"operation", "open"}});
  return g;
}

TEST(Compare, SubtractsBackground) {
  CompareResult result =
      compare_graphs(background(), foreground_with_target());
  EXPECT_FALSE(result.embedding_failed);
  // Target structure: the new artifact, the new edge, and the process as
  // a dummy endpoint.
  EXPECT_EQ(result.benchmark.edge_count(), 1u);
  EXPECT_EQ(result.benchmark.node_count(), 2u);
  ASSERT_EQ(result.dummy_nodes.size(), 1u);
  const graph::Node* dummy =
      result.benchmark.find_node(result.dummy_nodes[0]);
  ASSERT_NE(dummy, nullptr);
  EXPECT_EQ(dummy->label, "Process");
  EXPECT_EQ(dummy->props.at("dummy"), "true");
  // The real node keeps its properties.
  EXPECT_EQ(result.benchmark.find_node("f")->props.at("path"), "/tmp/x");
}

TEST(Compare, IdenticalGraphsYieldEmpty) {
  CompareResult result = compare_graphs(background(), background());
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_TRUE(result.benchmark.empty());
  EXPECT_TRUE(result.dummy_nodes.empty());
}

TEST(Compare, EmptyBackgroundKeepsWholeForeground) {
  CompareResult result =
      compare_graphs(PropertyGraph{}, foreground_with_target());
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_EQ(result.benchmark.size(), foreground_with_target().size());
  EXPECT_TRUE(result.dummy_nodes.empty());
}

TEST(Compare, NonEmbeddableBackgroundFails) {
  PropertyGraph bg = background();
  bg.add_node("extra", "Artifact");
  bg.add_edge("e9", "p", "extra", "NotInForeground");
  CompareResult result =
      compare_graphs(bg, foreground_with_target());
  EXPECT_TRUE(result.embedding_failed);
}

TEST(Compare, DisconnectedNewNodeSurvivesWithoutDummies) {
  // The vfork shape: the foreground adds a disconnected node only.
  PropertyGraph fg = background();
  fg.add_node("child", "Process", {{"pid", "7"}});
  CompareResult result = compare_graphs(background(), fg);
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_EQ(result.benchmark.node_count(), 1u);
  EXPECT_EQ(result.benchmark.edge_count(), 0u);
  EXPECT_TRUE(result.dummy_nodes.empty());
}

TEST(Compare, PicksEmbeddingThatMinimizesPropertyCost) {
  // Background process could map onto two foreground processes; the one
  // with matching properties must be chosen so the *other* becomes the
  // benchmark result.
  PropertyGraph bg;
  bg.add_node("p", "Process", {{"name", "bench"}});
  PropertyGraph fg;
  fg.add_node("a", "Process", {{"name", "other"}});
  fg.add_node("b", "Process", {{"name", "bench"}});
  CompareResult result = compare_graphs(bg, fg);
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_EQ(result.embedding_cost, 0);
  ASSERT_EQ(result.benchmark.node_count(), 1u);
  EXPECT_EQ(result.benchmark.nodes().front().id, "a");
}

TEST(Compare, BothEndpointsDummyWhenEdgeAddedBetweenOldNodes) {
  PropertyGraph fg = background();
  fg.add_edge("e2", "lib", "p", "WasGeneratedBy",
              {{"operation", "write"}});
  CompareResult result = compare_graphs(background(), fg);
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_EQ(result.benchmark.edge_count(), 1u);
  EXPECT_EQ(result.benchmark.node_count(), 2u);
  EXPECT_EQ(result.dummy_nodes.size(), 2u);
}

TEST(Compare, ReportsEmbeddingCost) {
  PropertyGraph bg;
  bg.add_node("p", "Process", {{"k", "old"}});
  PropertyGraph fg;
  fg.add_node("p", "Process", {{"k", "new"}});
  CompareResult result = compare_graphs(bg, fg);
  EXPECT_FALSE(result.embedding_failed);
  EXPECT_EQ(result.embedding_cost, 1);
  EXPECT_TRUE(result.benchmark.empty());
}

}  // namespace
}  // namespace provmark::core
