// Integration test: the pipeline reproduces every cell of the paper's
// Table 2 (44 syscalls x 3 systems). This is the repository's headline
// claim, so it is enforced by the test suite, not only by the benchmark
// binary.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "expected_table2.h"

namespace provmark::core {
namespace {

using provmark_bench::expected_table2;

struct Case {
  std::string syscall;
  std::string system;
};

class Table2Test
    : public ::testing::TestWithParam<std::tuple<std::string, const char*>> {
};

TEST_P(Table2Test, CellMatchesPaper) {
  const auto& [syscall, system] = GetParam();
  const auto& row = expected_table2().at(syscall);
  const provmark_bench::ExpectedCell& expected =
      std::string(system) == "spade"  ? row.spade
      : std::string(system) == "opus" ? row.opus
                                      : row.camflow;
  PipelineOptions options;
  options.system = system;
  options.seed = 7;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name(syscall), options);
  EXPECT_STREQ(status_name(result.status), expected.status)
      << syscall << " on " << system << ": " << result.failure_reason;
  if (std::string(expected.note) == "DV") {
    EXPECT_FALSE(result.disconnected_nodes().empty())
        << "expected the disconnected vfork child";
  }
}

std::vector<std::string> all_syscalls() {
  std::vector<std::string> names;
  for (const auto& p : bench_suite::table_benchmarks()) {
    names.push_back(p.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table2Test,
    ::testing::Combine(::testing::ValuesIn(all_syscalls()),
                       ::testing::Values("spade", "opus", "camflow")),
    [](const ::testing::TestParamInfo<Table2Test::ParamType>& info) {
      return std::get<0>(info.param) + "_" +
             std::string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace provmark::core
