// DaemonSupervisor state-machine tests (src/core/supervise.h): the
// long-lived-daemon generalization of the sweep supervisor, driven
// here by a scripted host with a virtual clock so every deadline and
// backoff decision is checked exactly — no sleeps, no real processes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/supervise.h"

namespace provmark::core {
namespace {

/// Scripted DaemonHost: spawns hand out sequential tokens, kills and
/// notes are recorded, time is a plain member the test advances.
class ScriptedHost : public DaemonHost {
 public:
  std::int64_t now = 0;
  std::uint64_t next_token = 100;
  bool fail_spawns = false;

  struct Spawn {
    int member;
    int incarnation;
    std::uint64_t token;
  };
  std::vector<Spawn> spawns;
  std::vector<std::uint64_t> kills;
  std::vector<std::string> notes;

  std::uint64_t spawn_member(int member, int incarnation) override {
    if (fail_spawns) return 0;
    const std::uint64_t token = next_token++;
    spawns.push_back(Spawn{member, incarnation, token});
    return token;
  }
  void kill_member(std::uint64_t token) override { kills.push_back(token); }
  std::int64_t now_ms() override { return now; }
  void note(const std::string& message) override {
    notes.push_back(message);
  }
};

DaemonPolicy test_policy() {
  DaemonPolicy policy;
  policy.seed = 7;
  policy.backoff_base_ms = 100;
  policy.backoff_cap_ms = 5'000;
  policy.heartbeat_deadline_ms = 1'000;
  policy.start_deadline_ms = 3'000;
  return policy;
}

TEST(DaemonSupervisor, StartSpawnsEveryMemberAndHeartbeatsBringThemUp) {
  ScriptedHost host;
  DaemonSupervisor supervisor(3, host, test_policy());
  supervisor.start();

  ASSERT_EQ(host.spawns.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(host.spawns[static_cast<std::size_t>(m)].member, m);
    EXPECT_EQ(host.spawns[static_cast<std::size_t>(m)].incarnation, 0);
    EXPECT_EQ(supervisor.state(m), MemberState::Starting);
    EXPECT_EQ(supervisor.member_of(supervisor.token(m)), m);
  }
  EXPECT_EQ(supervisor.members_up(), 0);

  for (int m = 0; m < 3; ++m) supervisor.heartbeat(m);
  EXPECT_EQ(supervisor.members_up(), 3);
  EXPECT_EQ(supervisor.total_restarts(), 0);
  EXPECT_EQ(supervisor.hung_kills(), 0);
}

TEST(DaemonSupervisor, DeathSchedulesTheExactSeededBackoff) {
  ScriptedHost host;
  const DaemonPolicy policy = test_policy();
  DaemonSupervisor supervisor(2, host, policy);
  supervisor.start();
  supervisor.heartbeat(0);
  supervisor.heartbeat(1);

  // Member 1's process dies (SIGKILL). The restart delay must be the
  // sweep supervisor's envelope, keyed by (member, streak) — not a
  // private reimplementation.
  supervisor.member_exited(supervisor.token(1), /*signaled=*/true, 9);
  EXPECT_EQ(supervisor.state(1), MemberState::Backoff);
  EXPECT_EQ(supervisor.token(1), 0u);

  SuperviseOptions envelope;
  envelope.seed = policy.seed;
  envelope.backoff_base_ms = policy.backoff_base_ms;
  envelope.backoff_cap_ms = policy.backoff_cap_ms;
  const std::int64_t delay = backoff_ms(policy.seed, 1, 1, envelope);

  // One tick early: nothing respawns.
  host.now = delay - 1;
  supervisor.tick();
  EXPECT_EQ(host.spawns.size(), 2u);
  EXPECT_EQ(supervisor.next_deadline_ms(10'000), 1);

  // At the deadline: incarnation 1 spawns and must prove itself again.
  host.now = delay;
  supervisor.tick();
  ASSERT_EQ(host.spawns.size(), 3u);
  EXPECT_EQ(host.spawns[2].member, 1);
  EXPECT_EQ(host.spawns[2].incarnation, 1);
  EXPECT_EQ(supervisor.state(1), MemberState::Starting);
  EXPECT_EQ(supervisor.incarnation(1), 1);
  EXPECT_EQ(supervisor.total_restarts(), 1);
  // Member 0 was untouched throughout.
  EXPECT_EQ(supervisor.state(0), MemberState::Up);
}

TEST(DaemonSupervisor, HeartbeatSilencePastTheDeadlineKills) {
  ScriptedHost host;
  DaemonSupervisor supervisor(1, host, test_policy());
  supervisor.start();
  supervisor.heartbeat(0);

  // Beats keep arriving: the deadline keeps sliding, no kill.
  for (int t = 0; t < 5; ++t) {
    host.now += 500;
    supervisor.heartbeat(0);
    supervisor.tick();
  }
  EXPECT_TRUE(host.kills.empty());

  // Then silence: 1000 ms after the last beat the member is declared
  // hung, killed, and the corpse (delivered later) schedules a restart.
  const std::uint64_t token = supervisor.token(0);
  host.now += 1'000;
  supervisor.tick();
  ASSERT_EQ(host.kills.size(), 1u);
  EXPECT_EQ(host.kills[0], token);
  EXPECT_EQ(supervisor.state(0), MemberState::Stopping);
  EXPECT_EQ(supervisor.hung_kills(), 1);

  supervisor.member_exited(token, /*signaled=*/true, 9);
  EXPECT_EQ(supervisor.state(0), MemberState::Backoff);
}

TEST(DaemonSupervisor, OverdueStartIsAlsoAHungKill) {
  ScriptedHost host;
  DaemonSupervisor supervisor(1, host, test_policy());
  supervisor.start();
  // No heartbeat ever arrives (replay wedged before the bind).
  host.now = 3'000;
  supervisor.tick();
  ASSERT_EQ(host.kills.size(), 1u);
  EXPECT_EQ(supervisor.state(0), MemberState::Stopping);
  EXPECT_EQ(supervisor.hung_kills(), 1);
}

TEST(DaemonSupervisor, ReachingUpResetsTheFailureStreak) {
  ScriptedHost host;
  DaemonPolicy policy = test_policy();
  policy.max_restarts = 2;
  DaemonSupervisor supervisor(1, host, policy);
  supervisor.start();

  // Two consecutive dead-on-arrival incarnations burn the streak to 2.
  for (int round = 0; round < 2; ++round) {
    supervisor.member_exited(supervisor.token(0), false, 1);
    host.now += 100'000;
    supervisor.tick();
    ASSERT_EQ(supervisor.state(0), MemberState::Starting);
  }
  // The third incarnation comes up: the streak resets, so the next
  // death starts a fresh budget instead of tripping max_restarts.
  supervisor.heartbeat(0);
  EXPECT_EQ(supervisor.state(0), MemberState::Up);

  supervisor.member_exited(supervisor.token(0), true, 9);
  EXPECT_EQ(supervisor.state(0), MemberState::Backoff);
  host.now += 100'000;
  supervisor.tick();
  EXPECT_EQ(supervisor.state(0), MemberState::Starting);
}

TEST(DaemonSupervisor, ExhaustedRestartBudgetMarksTheMemberFailed) {
  ScriptedHost host;
  DaemonPolicy policy = test_policy();
  policy.max_restarts = 1;
  DaemonSupervisor supervisor(1, host, policy);
  supervisor.start();

  supervisor.member_exited(supervisor.token(0), false, 70);  // streak 1
  host.now += 100'000;
  supervisor.tick();
  ASSERT_EQ(supervisor.state(0), MemberState::Starting);
  supervisor.member_exited(supervisor.token(0), false, 70);  // streak 2 > 1

  EXPECT_EQ(supervisor.state(0), MemberState::Failed);
  EXPECT_EQ(supervisor.members_up(), 0);
  // Failed is terminal: time passing spawns nothing new.
  host.now += 1'000'000;
  supervisor.tick();
  EXPECT_EQ(host.spawns.size(), 2u);
}

TEST(DaemonSupervisor, FailedSpawnCountsAsAnInstantDeath) {
  ScriptedHost host;
  host.fail_spawns = true;
  DaemonSupervisor supervisor(1, host, test_policy());
  supervisor.start();
  EXPECT_EQ(supervisor.state(0), MemberState::Backoff);
  EXPECT_EQ(supervisor.token(0), 0u);

  // The host recovers; the rescheduled launch succeeds.
  host.fail_spawns = false;
  host.now += 100'000;
  supervisor.tick();
  EXPECT_EQ(supervisor.state(0), MemberState::Starting);
  EXPECT_EQ(supervisor.incarnation(0), 1);
}

TEST(DaemonSupervisor, StaleCorpsesAndStrayHeartbeatsAreIgnored) {
  ScriptedHost host;
  DaemonSupervisor supervisor(1, host, test_policy());
  supervisor.start();
  const std::uint64_t old_token = supervisor.token(0);
  supervisor.member_exited(old_token, true, 9);
  host.now += 100'000;
  supervisor.tick();
  ASSERT_EQ(supervisor.state(0), MemberState::Starting);

  // The old incarnation's token resolves to no member now; a second
  // report of the same corpse must not touch the new incarnation.
  EXPECT_EQ(supervisor.member_of(old_token), -1);
  supervisor.member_exited(old_token, true, 9);
  EXPECT_EQ(supervisor.state(0), MemberState::Starting);

  // A buffered heartbeat byte from the corpse (same member id) brings
  // the *new* incarnation up — that is correct and harmless: the pipe
  // it arrived on belongs to the new incarnation's control channel.
  supervisor.heartbeat(0);
  EXPECT_EQ(supervisor.state(0), MemberState::Up);
}

TEST(DaemonSupervisor, NextDeadlineTracksTheSoonestTimer) {
  ScriptedHost host;
  const DaemonPolicy policy = test_policy();
  DaemonSupervisor supervisor(2, host, policy);
  supervisor.start();
  // Both Starting: the poll timeout is the start deadline.
  EXPECT_EQ(supervisor.next_deadline_ms(60'000), policy.start_deadline_ms);
  // Capped when the caller's budget is smaller.
  EXPECT_EQ(supervisor.next_deadline_ms(200), 200);

  supervisor.heartbeat(0);
  supervisor.heartbeat(1);
  EXPECT_EQ(supervisor.next_deadline_ms(60'000),
            policy.heartbeat_deadline_ms);
}

}  // namespace
}  // namespace provmark::core
