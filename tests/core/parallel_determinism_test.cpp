// Determinism under concurrency: the pipeline's parallel fan-out (trial
// recording/transformation, similarity buckets, bg/fg generalization)
// must produce results bit-identical to the serial run at any thread
// count — every trial derives its randomness from (seed, trial index),
// never from scheduling. These tests pin that contract at 1, 4 and 8
// threads, across the noisy recorders (SPADE truncation, CamFlow
// interference) where a scheduling leak would actually change results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "runtime/thread_pool.h"
#include "systems/spade.h"

namespace provmark::core {
namespace {

BenchmarkResult run_with_threads(const std::string& system,
                                 const std::string& benchmark, int threads,
                                 std::uint64_t seed, int trials = 0) {
  runtime::ThreadPool pool(threads);
  PipelineOptions options;
  options.system = system;
  options.seed = seed;
  options.trials = trials;
  options.pool = &pool;
  return run_benchmark(bench_suite::benchmark_by_name(benchmark), options);
}

/// Full result identity, timings excluded (wall clocks legitimately
/// differ across pool widths).
void expect_identical(const BenchmarkResult& a, const BenchmarkResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << context;
  EXPECT_TRUE(a.result == b.result) << context;
  EXPECT_TRUE(a.generalized_foreground == b.generalized_foreground)
      << context;
  EXPECT_TRUE(a.generalized_background == b.generalized_background)
      << context;
  EXPECT_EQ(a.dummy_nodes, b.dummy_nodes) << context;
  EXPECT_EQ(a.trials_run, b.trials_run) << context;
  EXPECT_EQ(a.trials_discarded, b.trials_discarded) << context;
  EXPECT_EQ(a.trials_unparseable, b.trials_unparseable) << context;
  EXPECT_EQ(a.transient_properties, b.transient_properties) << context;
  EXPECT_EQ(a.similarity_cache_lookups, b.similarity_cache_lookups)
      << context;
  EXPECT_EQ(a.similarity_cache_hits, b.similarity_cache_hits) << context;
}

TEST(ParallelDeterminism, CamflowSixteenTrialsIdenticalAt148Threads) {
  // The trial-heaviest configuration: 16 trials per variant, structural
  // interference noise, similarity buckets fanned out over the pool.
  BenchmarkResult serial = run_with_threads("camflow", "open", 1, 42);
  for (int threads : {4, 8}) {
    BenchmarkResult parallel =
        run_with_threads("camflow", "open", threads, 42);
    expect_identical(serial, parallel,
                     "camflow threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, SpadeTruncationNoiseIdenticalAt148Threads) {
  // SPADE's truncated flushes make some trials unparseable; the
  // unparseable count and the retry behaviour must not depend on which
  // thread hit the garbled trial.
  BenchmarkResult serial = run_with_threads("spade", "rename", 1, 7);
  for (int threads : {4, 8}) {
    BenchmarkResult parallel =
        run_with_threads("spade", "rename", threads, 7);
    expect_identical(serial, parallel,
                     "spade threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, SeedDrivesResultsNotScheduling) {
  // Re-running the same (seed, threads) pair reproduces the result
  // exactly, while a different seed reshuffles the recorder-minted
  // transients (element ids differ even when the structure agrees) —
  // i.e. variation comes from the seed, never from scheduling.
  BenchmarkResult a = run_with_threads("camflow", "open", 4, 1);
  BenchmarkResult a_again = run_with_threads("camflow", "open", 4, 1);
  expect_identical(a, a_again, "same seed, same threads");
  BenchmarkResult b = run_with_threads("camflow", "open", 4, 2);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.result.node_count(), b.result.node_count())
      << "structure is seed-independent for a stable benchmark";
  EXPECT_EQ(a.result.edge_count(), b.result.edge_count());
}

TEST(ParallelDeterminism, HeavyRetryWorkloadIdenticalAcrossThreads) {
  // Aggressive truncation forces retry rounds (doubling trials), the
  // path where the memo cache and cross-round trial reuse interact with
  // the pool the most.
  auto run = [](int threads) {
    runtime::ThreadPool pool(threads);
    systems::SpadeConfig config;
    config.truncation_probability = 0.5;
    PipelineOptions options;
    options.recorder = std::make_shared<systems::SpadeRecorder>(config);
    options.seed = 8;
    options.trials = 8;
    options.pool = &pool;
    return run_benchmark(bench_suite::benchmark_by_name("open"), options);
  };
  BenchmarkResult serial = run(1);
  EXPECT_EQ(serial.status, BenchmarkStatus::Ok);
  for (int threads : {4, 8}) {
    expect_identical(serial, run(threads),
                     "retry threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminism, CacheCountersExposedAndConsistent) {
  // The memo cache fields of BenchmarkResult: lookups cover every
  // similar() the classifier posed; a single-round run computes each
  // pair once (no hits — the memo is exact, not digest-trusting).
  BenchmarkResult result = run_with_threads("camflow", "open", 4, 42);
  EXPECT_GT(result.similarity_cache_lookups, 0u);
  EXPECT_LE(result.similarity_cache_hits, result.similarity_cache_lookups);
  EXPECT_EQ(result.threads_used, 4);
}

TEST(ParallelDeterminism, RetryRoundsRunFromCache) {
  // Retry rounds re-partition all trials, re-posing every previously
  // classified pair: those repeats must be served as memo hits.
  runtime::ThreadPool pool(4);
  systems::SpadeConfig config;
  config.truncation_probability = 0.7;
  PipelineOptions options;
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  options.seed = 8;
  options.trials = 4;
  options.pool = &pool;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  ASSERT_GT(result.trials_run, 4) << "workload must have retried";
  EXPECT_GT(result.similarity_cache_hits, 0u);
  EXPECT_LE(result.similarity_cache_hits, result.similarity_cache_lookups);
}

}  // namespace
}  // namespace provmark::core
