// Metamorphic / invariant tests over the whole pipeline: properties that
// must hold for ANY (benchmark, system) combination, checked across a
// representative sweep. These complement the Table 2 cell assertions —
// a pipeline bug that happens to produce the right status would still
// violate one of these.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "graph/algorithms.h"
#include "matcher/matcher.h"

namespace provmark::core {
namespace {

class PipelineInvariantTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(PipelineInvariantTest, HoldsForBenchmark) {
  const auto& [syscall, system] = GetParam();
  PipelineOptions options;
  options.system = system;
  options.seed = 13;
  BenchmarkResult r =
      run_benchmark(bench_suite::benchmark_by_name(syscall), options);
  ASSERT_NE(r.status, BenchmarkStatus::Failed) << r.failure_reason;

  const graph::PropertyGraph& fg = r.generalized_foreground;
  const graph::PropertyGraph& bg = r.generalized_background;

  // (1) The result is a subgraph of the generalized foreground, element
  // by element (result elements keep their foreground ids).
  for (const graph::Node& n : r.result.nodes()) {
    const graph::Node* fg_node = fg.find_node(n.id);
    ASSERT_NE(fg_node, nullptr) << n.id;
    EXPECT_EQ(fg_node->label, n.label);
  }
  for (const graph::Edge& e : r.result.edges()) {
    const graph::Edge* fg_edge = fg.find_edge(e.id);
    ASSERT_NE(fg_edge, nullptr) << e.id;
    EXPECT_EQ(fg_edge->label, e.label);
    EXPECT_EQ(fg_edge->src, e.src);
    EXPECT_EQ(fg_edge->tgt, e.tgt);
  }

  // (2) Dummy nodes are exactly the matched endpoints: each is incident
  // to at least one result edge, and carries the dummy marker.
  std::set<graph::Id> endpoint_ids;
  for (const graph::Edge& e : r.result.edges()) {
    endpoint_ids.insert(e.src);
    endpoint_ids.insert(e.tgt);
  }
  for (const graph::Id& id : r.dummy_nodes) {
    EXPECT_TRUE(endpoint_ids.count(id) > 0) << id;
    EXPECT_EQ(r.result.find_node(id)->props.at("dummy"), "true");
  }

  // (3) Monotonicity: the background embeds into the foreground.
  matcher::SearchOptions embed;
  embed.cost_model = matcher::CostModel::OneSided;
  EXPECT_TRUE(matcher::best_subgraph_embedding(bg, fg, embed).has_value());

  // (4) Status is exactly emptiness of the non-dummy result.
  bool empty = r.result.node_count() == r.dummy_nodes.size() &&
               r.result.edge_count() == 0;
  EXPECT_EQ(r.status == BenchmarkStatus::Empty, empty);

  // (5) Empty status coincides with fg ~ bg similarity (§3.4's
  // definition of an undetected target).
  EXPECT_EQ(r.status == BenchmarkStatus::Empty, matcher::similar(bg, fg));

  // (6) Generalization removed every volatile property: re-running the
  // whole pipeline with a different seed yields an isomorphic result
  // with identical surviving properties.
  PipelineOptions options2 = options;
  options2.seed = 14;
  BenchmarkResult r2 =
      run_benchmark(bench_suite::benchmark_by_name(syscall), options2);
  ASSERT_NE(r2.status, BenchmarkStatus::Failed) << r2.failure_reason;
  matcher::SearchOptions iso;
  iso.cost_model = matcher::CostModel::Symmetric;
  auto matching = matcher::best_isomorphism(r.result, r2.result, iso);
  ASSERT_TRUE(matching.has_value())
      << "results of independent runs are not similar";
  EXPECT_EQ(matching->cost, 0)
      << "volatile properties leaked through generalization";
}

// A cross-section: every group, every architecture-relevant corner
// (files, processes incl. vfork, permissions incl. change detection,
// pipes), on all three systems.
INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineInvariantTest,
    ::testing::Combine(::testing::Values("open", "creat", "read", "rename",
                                         "unlink", "dup", "execve", "fork",
                                         "vfork", "chmod", "chown",
                                         "setuid", "setresuid", "pipe",
                                         "tee"),
                       ::testing::Values("spade", "opus", "camflow")),
    [](const ::testing::TestParamInfo<PipelineInvariantTest::ParamType>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace provmark::core
