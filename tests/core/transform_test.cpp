#include "core/transform.h"

#include <gtest/gtest.h>

#include "datalog/fact_io.h"
#include "formats/dot.h"
#include "formats/neo4j.h"
#include "formats/prov_json.h"

namespace provmark::core {
namespace {

graph::PropertyGraph sample() {
  graph::PropertyGraph g;
  g.add_node("a", "activity", {{"prov:type", "task"}});
  g.add_node("b", "entity", {{"prov:type", "inode_file"}});
  g.add_edge("e", "a", "b", "used");
  return g;
}

TEST(Transform, DotInput) {
  graph::PropertyGraph g;
  g.add_node("v1", "Process");
  graph::PropertyGraph out = transform_native(formats::to_dot(g));
  EXPECT_EQ(out.node_count(), 1u);
}

TEST(Transform, ProvJsonInput) {
  graph::PropertyGraph out =
      transform_native(formats::to_prov_json(sample()));
  EXPECT_EQ(out.node_count(), 2u);
  EXPECT_EQ(out.edge_count(), 1u);
}

TEST(Transform, Neo4jInputGoesThroughStore) {
  TransformOptions options;
  options.neo4j_startup_rounds = 2;
  graph::PropertyGraph out =
      transform_native(formats::to_neo4j_json(sample()), options);
  EXPECT_EQ(out.node_count(), 2u);
  EXPECT_EQ(out.edge_count(), 1u);
}

TEST(Transform, ToDatalogUsesGid) {
  std::string text =
      transform_to_datalog(formats::to_prov_json(sample()), "fg1");
  EXPECT_NE(text.find("nfg1("), std::string::npos);
  EXPECT_NE(text.find("efg1("), std::string::npos);
  graph::PropertyGraph round =
      datalog::single_graph_from_datalog(text, "fg1");
  EXPECT_EQ(round.node_count(), 2u);
}

TEST(Transform, RejectsGarbage) {
  EXPECT_THROW(transform_native("not a known format"), std::runtime_error);
}

TEST(Transform, PreservesPropertiesEndToEnd) {
  graph::PropertyGraph out =
      transform_native(formats::to_prov_json(sample()));
  EXPECT_EQ(out.find_node("b")->props.at("prov:type"), "inode_file");
}

}  // namespace
}  // namespace provmark::core
