#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/program.h"
#include "core/report.h"
#include "systems/camflow.h"
#include "systems/spade.h"

namespace provmark::core {
namespace {

TEST(Pipeline, OpenOnSpadeIsOk) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 1;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  EXPECT_EQ(result.system, "spade");
  EXPECT_EQ(result.benchmark, "open");
  EXPECT_GT(result.result.edge_count(), 0u);
  EXPECT_GT(result.generalized_foreground.size(),
            result.generalized_background.size());
}

TEST(Pipeline, ExitIsEmptyEverywhere) {
  for (const char* system : {"spade", "opus", "camflow"}) {
    PipelineOptions options;
    options.system = system;
    options.seed = 2;
    BenchmarkResult result =
        run_benchmark(bench_suite::benchmark_by_name("exit"), options);
    EXPECT_EQ(result.status, BenchmarkStatus::Empty) << system;
    EXPECT_TRUE(result.result.empty()) << system;
  }
}

TEST(Pipeline, GeneralizationStripsTransients) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 3;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_GT(result.transient_properties, 0);
  // No timestamps survive in the generalized graphs.
  for (const graph::Node& n : result.generalized_foreground.nodes()) {
    EXPECT_EQ(n.props.count("start_time"), 0u);
  }
  for (const graph::Edge& e : result.generalized_foreground.edges()) {
    EXPECT_EQ(e.props.count("time"), 0u);
    EXPECT_EQ(e.props.count("event_id"), 0u);
  }
}

TEST(Pipeline, StablePropertiesSurviveGeneralization) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 4;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  bool path_found = false;
  for (const graph::Node& n : result.result.nodes()) {
    if (n.props.count("path") &&
        n.props.at("path") == "/home/user/test.txt") {
      path_found = true;
    }
  }
  EXPECT_TRUE(path_found);
}

TEST(Pipeline, VforkOnSpadeYieldsDisconnectedChild) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 5;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("vfork"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  EXPECT_EQ(result.disconnected_nodes().size(), 1u);
  EXPECT_TRUE(result.result.edges().empty());
}

TEST(Pipeline, ForkOnSpadeIsConnected) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 5;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("fork"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  EXPECT_TRUE(result.disconnected_nodes().empty());
  EXPECT_FALSE(result.result.edges().empty());
}

TEST(Pipeline, CustomRecorderOverridesSystem) {
  systems::SpadeConfig config;
  config.truncation_probability = 0;
  PipelineOptions options;
  options.system = "camflow";  // must be ignored
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  options.seed = 6;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_EQ(result.system, "spade");
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
}

TEST(Pipeline, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    PipelineOptions options;
    options.system = "spade";
    options.seed = seed;
    return run_benchmark(bench_suite::benchmark_by_name("rename"), options);
  };
  BenchmarkResult a = run(7);
  BenchmarkResult b = run(7);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.result, b.result);
}

TEST(Pipeline, SurvivesHeavyStructuralNoise) {
  // Even with aggressive truncation, retries find consistent runs.
  systems::SpadeConfig config;
  config.truncation_probability = 0.5;
  PipelineOptions options;
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  options.seed = 8;
  options.trials = 8;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  EXPECT_GT(result.trials_discarded + result.trials_unparseable, 0);
}

TEST(Pipeline, CamflowInterferenceDiscarded) {
  systems::CamflowConfig config;
  config.interference_probability = 0.4;
  PipelineOptions options;
  options.recorder = std::make_shared<systems::CamflowRecorder>(config);
  options.seed = 9;
  options.trials = 10;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_EQ(result.status, BenchmarkStatus::Ok);
  // The interference daemon structure must not leak into the result.
  for (const graph::Node& n : result.result.nodes()) {
    if (n.props.count("cf:pathname")) {
      EXPECT_EQ(n.props.at("cf:pathname"), "/home/user/test.txt");
    }
  }
}

TEST(Pipeline, TimingsArePopulated) {
  PipelineOptions options;
  options.system = "opus";
  options.seed = 10;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  EXPECT_GT(result.timings.recording, 0.0);
  EXPECT_GT(result.timings.transformation, 0.0);
  EXPECT_GT(result.timings.generalization, 0.0);
  EXPECT_GT(result.timings.comparison, 0.0);
  EXPECT_NEAR(result.timings.processing_total(),
              result.timings.transformation +
                  result.timings.generalization + result.timings.comparison,
              1e-9);
}

TEST(Pipeline, DefaultTrialsPerSystem) {
  EXPECT_EQ(default_trials("opus"), 2);
  EXPECT_GT(default_trials("spade"), 2);
  EXPECT_GT(default_trials("camflow"), 2);
}

TEST(Pipeline, StatusNames) {
  EXPECT_STREQ(status_name(BenchmarkStatus::Ok), "ok");
  EXPECT_STREQ(status_name(BenchmarkStatus::Empty), "empty");
  EXPECT_STREQ(status_name(BenchmarkStatus::Failed), "failed");
}

TEST(Report, SummarizeAndTable) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 11;
  BenchmarkResult result =
      run_benchmark(bench_suite::benchmark_by_name("open"), options);
  std::string summary = summarize(result);
  EXPECT_NE(summary.find("spade open: ok"), std::string::npos);
  std::string table = validation_table({result});
  EXPECT_NE(table.find("open"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
  std::string html = html_report({result});
  EXPECT_NE(html.find("<html>"), std::string::npos);
  EXPECT_NE(html.find("digraph"), std::string::npos);
  std::string dot = result_dot(result);
  EXPECT_NE(dot.find("digraph benchmark_open"), std::string::npos);
}

TEST(Pipeline, ScaleBenchmarkResultGrowsWithK) {
  PipelineOptions options;
  options.system = "spade";
  options.seed = 12;
  BenchmarkResult s1 =
      run_benchmark(bench_suite::scale_benchmark(1), options);
  BenchmarkResult s4 =
      run_benchmark(bench_suite::scale_benchmark(4), options);
  ASSERT_EQ(s1.status, BenchmarkStatus::Ok);
  ASSERT_EQ(s4.status, BenchmarkStatus::Ok);
  EXPECT_GT(s4.result.size(), s1.result.size());
}

}  // namespace
}  // namespace provmark::core
