#include "core/regression.h"

#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "systems/spade.h"

namespace provmark::core {
namespace {

BenchmarkResult run_spade(const std::string& name,
                          const systems::SpadeConfig& config,
                          std::uint64_t seed = 1) {
  PipelineOptions options;
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  options.seed = seed;
  return run_benchmark(bench_suite::benchmark_by_name(name), options);
}

TEST(Regression, NoBaselineInitially) {
  RegressionStore store;
  BenchmarkResult result = run_spade("open", {});
  EXPECT_EQ(store.check(result).kind,
            RegressionStore::Verdict::Kind::NoBaseline);
  EXPECT_FALSE(store.get("spade", "open").has_value());
}

TEST(Regression, UnchangedAcrossIdenticalRuns) {
  RegressionStore store;
  store.put(run_spade("open", {}));
  // A different seed changes transient inputs but the benchmark result is
  // generalized, so it must still be unchanged.
  auto verdict = store.check(run_spade("open", {}, 99));
  EXPECT_EQ(verdict.kind, RegressionStore::Verdict::Kind::Unchanged);
  EXPECT_EQ(verdict.property_mismatches, 0);
}

TEST(Regression, StructureChangeDetected) {
  RegressionStore store;
  store.put(run_spade("write", {}));
  systems::SpadeConfig versioned;
  versioned.versioning = true;
  auto verdict = store.check(run_spade("write", versioned));
  EXPECT_EQ(verdict.kind,
            RegressionStore::Verdict::Kind::StructureChanged);
}

TEST(Regression, PutReplacesBaseline) {
  RegressionStore store;
  store.put(run_spade("write", {}));
  systems::SpadeConfig versioned;
  versioned.versioning = true;
  BenchmarkResult updated = run_spade("write", versioned);
  store.put(updated);  // accept the change
  EXPECT_EQ(store.check(updated).kind,
            RegressionStore::Verdict::Kind::Unchanged);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Regression, SaveLoadRoundTrip) {
  RegressionStore store;
  store.put(run_spade("open", {}));
  store.put(run_spade("rename", {}));
  std::string saved = store.save();
  RegressionStore loaded = RegressionStore::load(saved);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.check(run_spade("open", {}, 123)).kind,
            RegressionStore::Verdict::Kind::Unchanged);
  ASSERT_TRUE(loaded.get("spade", "rename").has_value());
  EXPECT_EQ(*loaded.get("spade", "rename"),
            *store.get("spade", "rename"));
}

TEST(Regression, DistinctKeysPerSystemAndBenchmark) {
  RegressionStore store;
  BenchmarkResult open_result = run_spade("open", {});
  store.put(open_result);
  EXPECT_FALSE(store.get("spade", "rename").has_value());
  EXPECT_FALSE(store.get("opus", "open").has_value());
  EXPECT_TRUE(store.get("spade", "open").has_value());
}

TEST(Regression, PropertyDriftDetected) {
  RegressionStore store;
  BenchmarkResult baseline = run_spade("open", {});
  store.put(baseline);
  BenchmarkResult drifted = baseline;
  // Simulate a recorder change that renames a stable property value.
  for (const graph::Node& n : baseline.result.nodes()) {
    if (!n.props.empty()) {
      drifted.result.set_property(n.id, n.props.begin()->first,
                                  "changed-value");
      break;
    }
  }
  auto verdict = store.check(drifted);
  EXPECT_EQ(verdict.kind, RegressionStore::Verdict::Kind::PropertyDrift);
  EXPECT_GT(verdict.property_mismatches, 0);
}

}  // namespace
}  // namespace provmark::core
