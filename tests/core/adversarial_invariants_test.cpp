// The cross-layer differential harness over generated adversarial
// workloads. Table 1 pins the pipeline on 54 hand-written programs; this
// suite drives it with seeded random programs (hostile identifiers,
// socket/mmap/thread churn, expected-failure probes) and asserts the
// invariants that every layer promises regardless of workload shape:
//
//   * every recorder produces a native document the transformation
//     stage accepts, for all six shipped recorders;
//   * the textual program format and the Datalog fact format round-trip
//     to fixpoints;
//   * serial and parallel runs — pipeline pool, matcher workers,
//     Datalog evaluation — are bit-identical;
//   * a 2-shard batch sweep over generated programs merges to the exact
//     bytes of the single-process sweep.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_suite/executor.h"
#include "bench_suite/generator.h"
#include "bench_suite/program_text.h"
#include "core/pipeline.h"
#include "core/shard.h"
#include "core/transform.h"
#include "datalog/engine.h"
#include "datalog/fact_io.h"
#include "runtime/thread_pool.h"
#include "systems/recorder.h"

namespace provmark::core {
namespace {

namespace fs = std::filesystem;

const char* const kAllSystems[] = {"spade",         "opus",  "camflow",
                                   "spade-camflow", "audit", "ebpf"};

bench_suite::BenchmarkProgram program_for_seed(std::uint64_t seed) {
  bench_suite::GeneratorOptions options;
  options.seed = seed;
  options.scale = 8 + static_cast<int>(seed % 12);
  return bench_suite::generate_program(options);
}

// -- invariant 1: every recorder's output is accepted, for 100 programs -----

class AdversarialAcceptanceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversarialAcceptanceTest, AllSixRecordersProduceAcceptedGraphs) {
  bench_suite::BenchmarkProgram program = program_for_seed(GetParam());

  // The program itself must behave deterministically...
  bench_suite::ExecutionResult plain =
      bench_suite::execute_program(program, true, GetParam());
  ASSERT_TRUE(plain.behaviour_ok) << plain.failure_reason;

  // ...and round-trip through the textual format to a fixpoint.
  std::string text = bench_suite::format_program(program);
  EXPECT_EQ(bench_suite::format_program(bench_suite::parse_program(text)),
            text);

  TransformOptions transform;
  transform.neo4j_startup_rounds = 2;  // correctness, not cost profile
  for (const char* system : kAllSystems) {
    std::unique_ptr<systems::Recorder> recorder =
        systems::make_recorder(system);
    // Re-execute with the recorder's own audit rules installed, exactly
    // as the pipeline's recording stage does.
    bench_suite::ExecutionResult run = bench_suite::execute_program(
        program, true, GetParam(), recorder->extra_audit_rules());
    ASSERT_TRUE(run.behaviour_ok) << system << ": " << run.failure_reason;

    // SPADE (and the hybrid) garble a fraction of trials by design —
    // truncated flushes, §3.2 — and the pipeline's recording stage
    // excludes those via trials_unparseable. Mirror it: walk trial
    // seeds until an accepted trial appears (deterministic for a fixed
    // program seed), and fixpoint-check every trial that does parse.
    bool accepted = false;
    for (std::uint64_t attempt = 0; attempt < 12 && !accepted; ++attempt) {
      systems::TrialContext trial{GetParam() + 1000 * attempt};
      std::string native = recorder->record(run.trace, trial);
      ASSERT_FALSE(native.empty()) << system;

      graph::PropertyGraph g;
      try {
        g = transform_native(native, transform);
      } catch (const std::runtime_error&) {
        continue;  // a garbled trial; the pipeline discards these too
      }
      accepted = true;
      EXPECT_GT(g.node_count(), 0u) << system;

      // The uniform representation must round-trip: graph -> facts ->
      // graph -> facts reaches a fixpoint even with hostile
      // identifiers in paths and property values. (Insertion order is
      // not preserved — the writer sorts by id — so byte equality of
      // the serialized form is the invariant, not operator==.)
      std::string facts = datalog::to_datalog(g, "g1");
      graph::PropertyGraph reparsed =
          datalog::single_graph_from_datalog(facts, "g1");
      EXPECT_EQ(datalog::to_datalog(reparsed, "g1"), facts) << system;
      EXPECT_EQ(reparsed.node_count(), g.node_count()) << system;
      EXPECT_EQ(reparsed.edge_count(), g.edge_count()) << system;
    }
    EXPECT_TRUE(accepted)
        << system << " produced no accepted trial in 12 attempts";
  }
}

INSTANTIATE_TEST_SUITE_P(HundredPrograms, AdversarialAcceptanceTest,
                         ::testing::Range<std::uint64_t>(1, 101));

// -- invariant 2: the full pipeline accepts generated workloads -------------

TEST(AdversarialPipeline, AllSystemsCompleteOnGeneratedPrograms) {
  for (std::uint64_t seed : {3u, 14u, 27u}) {
    bench_suite::BenchmarkProgram program = program_for_seed(seed);
    for (const char* system : kAllSystems) {
      PipelineOptions options;
      options.system = system;
      options.seed = 42 + seed;
      options.transform.neo4j_startup_rounds = 2;
      BenchmarkResult result = run_benchmark(program, options);
      EXPECT_NE(result.status, BenchmarkStatus::Failed)
          << system << " on " << program.name << ": "
          << result.failure_reason;
    }
  }
}

// -- invariant 3: serial/parallel bit-identity ------------------------------

/// Full result identity, timings excluded (wall clocks legitimately
/// differ across pool widths).
void expect_identical(const BenchmarkResult& a, const BenchmarkResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << context;
  EXPECT_TRUE(a.result == b.result) << context;
  EXPECT_TRUE(a.generalized_foreground == b.generalized_foreground)
      << context;
  EXPECT_TRUE(a.generalized_background == b.generalized_background)
      << context;
  EXPECT_EQ(a.dummy_nodes, b.dummy_nodes) << context;
  EXPECT_EQ(a.trials_run, b.trials_run) << context;
  EXPECT_EQ(a.trials_discarded, b.trials_discarded) << context;
  EXPECT_EQ(a.trials_unparseable, b.trials_unparseable) << context;
}

BenchmarkResult run_generated(const std::string& system, std::uint64_t seed,
                              int pool_threads, int matcher_threads) {
  runtime::ThreadPool pool(pool_threads);
  PipelineOptions options;
  options.system = system;
  options.seed = 42;
  options.pool = &pool;
  options.matcher.threads = matcher_threads;
  options.transform.neo4j_startup_rounds = 2;
  return run_benchmark(program_for_seed(seed), options);
}

TEST(AdversarialParallelism, PipelinePoolWidthNeverChangesResults) {
  // The noisy recorders (CamFlow interference) and the new record-heavy
  // recorders (audit: one vertex per record) on generated workloads:
  // pool width 1 vs 4 must be bit-identical.
  for (const char* system : {"camflow", "audit", "ebpf"}) {
    BenchmarkResult serial = run_generated(system, 5, 1, 1);
    BenchmarkResult parallel = run_generated(system, 5, 4, 1);
    expect_identical(serial, parallel, std::string(system) + " pool=4");
  }
}

TEST(AdversarialParallelism, MatcherWorkersNeverChangeResults) {
  // Parallel branch-and-bound search inside generalization/comparison:
  // optimal costs are preserved, so results match the serial matcher.
  for (const char* system : {"spade", "audit"}) {
    BenchmarkResult serial = run_generated(system, 9, 1, 1);
    BenchmarkResult parallel = run_generated(system, 9, 4, 4);
    expect_identical(serial, parallel,
                     std::string(system) + " matcher.threads=4");
  }
}

TEST(AdversarialParallelism, DatalogEvaluationIdenticalSerialAndParallel) {
  // Load a generated workload's recorded graph as facts, saturate a
  // recursive reachability program, and compare the derived relations
  // under serial, parallel, and unindexed evaluation.
  bench_suite::BenchmarkProgram program = program_for_seed(11);
  std::unique_ptr<systems::Recorder> recorder =
      systems::make_recorder("ebpf");
  bench_suite::ExecutionResult run = bench_suite::execute_program(
      program, true, 11, recorder->extra_audit_rules());
  ASSERT_TRUE(run.behaviour_ok) << run.failure_reason;
  std::string facts = transform_to_datalog(
      recorder->record(run.trace, systems::TrialContext{11}), "g1");

  auto saturate = [&](datalog::Engine::EvalOptions eval) {
    runtime::ThreadPool pool(eval.threads > 1 ? eval.threads : 1);
    eval.pool = &pool;
    datalog::Engine engine;
    engine.set_eval_options(eval);
    engine.load_program(facts);
    engine.load_program(
        "reach(X,Y) :- eg1(E,X,Y,L).\n"
        "reach(X,Z) :- reach(X,Y), eg1(E,Y,Z,L).\n");
    return engine.relation("reach");
  };

  datalog::Engine::EvalOptions serial;
  std::set<datalog::Tuple> reference = saturate(serial);
  EXPECT_FALSE(reference.empty());

  datalog::Engine::EvalOptions parallel;
  parallel.threads = 4;
  EXPECT_EQ(saturate(parallel), reference);

  datalog::Engine::EvalOptions unindexed;
  unindexed.use_indexes = false;
  EXPECT_EQ(saturate(unindexed), reference);
}

// -- invariant 4: sharded sweeps over generated programs merge exactly ------

/// A scratch directory wiped on construction and destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("provmark_adversarial_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(AdversarialShard, TwoShardMergeIsByteIdenticalToSingleProcess) {
  // Generated programs are name-addressable ("gen<seed>x<scale>"), so
  // the sharded batch layer can sweep them like Table 1 rows. A 2-shard
  // run over the two new recorders must merge to the exact bytes the
  // single process writes — including the per-cell .dot/.datalog stores
  // ("rg") whose content exercises hostile identifiers end to end.
  const std::vector<std::string> systems = {"audit", "ebpf"};
  const std::vector<std::string> benchmarks = {"gen1x10", "gen2x10",
                                               "gen3x10"};
  ShardPlan plan = plan_batch(systems, benchmarks, 2, 42, "rg",
                              /*deterministic_timings=*/true);

  CellRunOptions cell_options;
  cell_options.seed = 42;
  cell_options.deterministic_timings = true;

  TempDir tmp("merge");
  const std::string single_dir = tmp.str() + "/single";
  fs::create_directories(single_dir);
  write_batch_outputs(single_dir, run_batch_cells(plan.cells, cell_options),
                      "rg");

  std::vector<std::string> shard_dirs;
  for (int k = 0; k < 2; ++k) {
    ShardSpec spec = plan.shard(k);
    ASSERT_FALSE(spec.cells.empty());
    write_shard_dir(tmp.str() + "/sweep", spec,
                    run_batch_cells(spec.cells, cell_options));
    shard_dirs.push_back(shard_dir_path(tmp.str() + "/sweep", k));
  }

  std::string result_type;
  std::vector<BenchmarkResult> merged =
      read_shard_results(shard_dirs, &result_type);
  EXPECT_EQ(result_type, "rg");
  const std::string merged_dir = tmp.str() + "/merged";
  fs::create_directories(merged_dir);
  write_batch_outputs(merged_dir, merged, "rg");

  // Byte-compare every artifact the single-process sweep wrote.
  std::size_t compared = 0;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(single_dir)) {
    if (!entry.is_regular_file()) continue;
    fs::path rel = fs::relative(entry.path(), single_dir);
    EXPECT_EQ(slurp(merged_dir / rel), slurp(entry.path())) << rel;
    ++compared;
  }
  EXPECT_GT(compared, 2u) << "time.log, validation table, stores";

  // And nothing extra appeared on the merged side.
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(merged_dir)) {
    if (!entry.is_regular_file()) continue;
    fs::path rel = fs::relative(entry.path(), merged_dir);
    EXPECT_TRUE(fs::exists(single_dir / rel)) << rel;
  }
}

}  // namespace
}  // namespace provmark::core
