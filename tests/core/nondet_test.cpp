#include "core/nondet.h"

#include <gtest/gtest.h>

#include <set>

#include "bench_suite/executor.h"
#include "bench_suite/program.h"

namespace provmark::core {
namespace {

TEST(NondetProgram, SchedulesVaryPerSeed) {
  bench_suite::BenchmarkProgram program =
      bench_suite::nondeterministic_benchmark(3);
  // Over several seeds the link ops run in different orders, so the
  // number of successful links varies.
  std::set<int> successful_links;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    bench_suite::ExecutionResult run =
        bench_suite::execute_program(program, true, seed);
    EXPECT_TRUE(run.behaviour_ok) << run.failure_reason;
    int links_ok = 0;
    for (const os::LibcEvent& e : run.trace.libc) {
      if (e.function == "link" && e.ret == 0) ++links_ok;
    }
    successful_links.insert(links_ok);
  }
  EXPECT_GT(successful_links.size(), 1u);
}

TEST(NondetProgram, BackgroundIsDeterministic) {
  bench_suite::BenchmarkProgram program =
      bench_suite::nondeterministic_benchmark(3);
  // Background runs exclude the targets entirely; shuffling must not
  // apply to them.
  auto a = bench_suite::execute_program(program, false, 1);
  auto b = bench_suite::execute_program(program, false, 2);
  EXPECT_EQ(a.trace.libc.size(), b.trace.libc.size());
}

TEST(Nondet, GroupsSchedulesAndBenchmarksEach) {
  bench_suite::BenchmarkProgram program =
      bench_suite::nondeterministic_benchmark(3);
  PipelineOptions options;
  options.system = "spade";
  options.seed = 5;
  options.trials = 40;  // spread across schedules
  NondetBenchmarkResult result =
      run_nondeterministic_benchmark(program, options);
  // Several schedule classes observed, each with its own benchmark.
  ASSERT_GE(result.schedules.size(), 2u);
  std::set<std::uint64_t> fingerprints;
  for (const ScheduleResult& schedule : result.schedules) {
    EXPECT_GE(schedule.support, 2);
    EXPECT_EQ(schedule.result.status, BenchmarkStatus::Ok);
    EXPECT_FALSE(schedule.result.result.empty());
    fingerprints.insert(schedule.fingerprint);
  }
  // Fingerprints identify schedules uniquely.
  EXPECT_EQ(fingerprints.size(), result.schedules.size());
  // Schedules are ordered by support.
  for (std::size_t i = 1; i < result.schedules.size(); ++i) {
    EXPECT_GE(result.schedules[i - 1].support,
              result.schedules[i].support);
  }
}

TEST(Nondet, ScheduleResultsDifferStructurally) {
  bench_suite::BenchmarkProgram program =
      bench_suite::nondeterministic_benchmark(3);
  PipelineOptions options;
  options.system = "spade";
  options.seed = 6;
  options.trials = 40;
  NondetBenchmarkResult result =
      run_nondeterministic_benchmark(program, options);
  ASSERT_GE(result.schedules.size(), 2u);
  // Different schedules capture different numbers of successful links:
  // the benchmark result sizes differ.
  std::set<std::size_t> sizes;
  for (const ScheduleResult& schedule : result.schedules) {
    sizes.insert(schedule.result.result.size());
  }
  EXPECT_GT(sizes.size(), 1u);
}

TEST(Nondet, DeterministicProgramYieldsOneSchedule) {
  PipelineOptions options;
  options.system = "opus";
  options.seed = 7;
  options.trials = 6;
  NondetBenchmarkResult result = run_nondeterministic_benchmark(
      bench_suite::benchmark_by_name("open"), options);
  ASSERT_EQ(result.schedules.size(), 1u);
  EXPECT_EQ(result.schedules[0].support, 6);
  EXPECT_EQ(result.schedules[0].result.status, BenchmarkStatus::Ok);
}

}  // namespace
}  // namespace provmark::core
