#include "os/kernel.h"

#include <gtest/gtest.h>

namespace provmark::os {
namespace {

Kernel recording_kernel(std::uint64_t seed = 1) {
  Kernel::Options options;
  options.seed = seed;
  options.free_record_probability = 0;  // deterministic traces for tests
  Kernel kernel(options);
  return kernel;
}

TEST(Kernel, LaunchProgramRecordsBoilerplate) {
  Kernel kernel = recording_kernel();
  kernel.start_recording();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.finish_process(pid);
  kernel.stop_recording();
  const EventTrace& trace = kernel.trace();
  // fork + execve + loader opens/reads/closes show up on all layers.
  EXPECT_GT(trace.audit.size(), 5u);
  EXPECT_GT(trace.libc.size(), 5u);
  EXPECT_GT(trace.lsm.size(), 5u);
  bool saw_execve = false, saw_libc_open = false, saw_task_alloc = false;
  for (const AuditEvent& e : trace.audit) {
    if (e.syscall == "execve") saw_execve = true;
  }
  for (const LibcEvent& e : trace.libc) {
    if (e.function == "open") saw_libc_open = true;
  }
  for (const LsmEvent& e : trace.lsm) {
    if (e.hook == "task_alloc") saw_task_alloc = true;
  }
  EXPECT_TRUE(saw_execve);
  EXPECT_TRUE(saw_libc_open);
  EXPECT_TRUE(saw_task_alloc);
}

TEST(Kernel, NothingRecordedWhileStopped) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  EXPECT_TRUE(kernel.trace().libc.empty());
  EXPECT_TRUE(kernel.trace().audit.empty());
  EXPECT_TRUE(kernel.trace().lsm.empty());
}

TEST(Kernel, OpenReadCloseLifecycle) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult fd = kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  ASSERT_TRUE(fd.ok());
  EXPECT_GE(fd.ret, 3);
  EXPECT_TRUE(kernel.sys_read(pid, static_cast<int>(fd.ret), 100).ok());
  EXPECT_TRUE(kernel.sys_close(pid, static_cast<int>(fd.ret)).ok());
  // Second close: EBADF, and audit stays silent about the failure.
  SyscallResult again = kernel.sys_close(pid, static_cast<int>(fd.ret));
  EXPECT_EQ(again.error, Errno::kBADF);
  for (const AuditEvent& e : kernel.trace().audit) {
    EXPECT_TRUE(e.success);
  }
}

TEST(Kernel, FailedCallVisibleToLibcOnly) {
  Kernel::Options options;
  options.seed = 2;
  options.initial_creds = Credentials{1000, 1000, 1000, 1000, 1000, 1000};
  Kernel kernel(options);
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult r = kernel.sys_rename(pid, "/home/user/x", "/etc/passwd");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(kernel.trace().libc.size(), 1u);
  EXPECT_EQ(kernel.trace().libc[0].ret, -1);
  EXPECT_TRUE(kernel.trace().audit.empty());  // success-only audit rules
}

TEST(Kernel, PermissionDeniedRenameEmitsDeniedLsmEvent) {
  Kernel::Options options;
  options.seed = 3;
  options.initial_creds = Credentials{1000, 1000, 1000, 1000, 1000, 1000};
  Kernel kernel(options);
  kernel.stage_file("/home/user/mine", 0644, 1000, 1000);
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult r = kernel.sys_rename(pid, "/home/user/mine", "/etc/passwd");
  EXPECT_EQ(r.error, Errno::kACCES);
  ASSERT_EQ(kernel.trace().lsm.size(), 1u);
  EXPECT_TRUE(kernel.trace().lsm[0].permission_denied);
  EXPECT_EQ(kernel.trace().lsm[0].hook, "inode_rename");
}

TEST(Kernel, DupEmitsNoLsmEvent) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  SyscallResult fd = kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  kernel.start_recording();
  SyscallResult dup = kernel.sys_dup(pid, static_cast<int>(fd.ret));
  ASSERT_TRUE(dup.ok());
  EXPECT_NE(dup.ret, fd.ret);
  EXPECT_TRUE(kernel.trace().lsm.empty());
  EXPECT_EQ(kernel.trace().audit.size(), 1u);  // audited, though
  EXPECT_EQ(kernel.trace().libc.size(), 1u);
}

TEST(Kernel, Dup2TargetsRequestedDescriptor) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  SyscallResult fd = kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  SyscallResult dup = kernel.sys_dup2(pid, static_cast<int>(fd.ret), 10);
  EXPECT_EQ(dup.ret, 10);
  EXPECT_TRUE(kernel.sys_read(pid, 10, 5).ok());
}

TEST(Kernel, PipeAndTee) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  std::pair<int, int> p1, p2;
  ASSERT_TRUE(kernel.sys_pipe(pid, &p1).ok());
  ASSERT_TRUE(kernel.sys_pipe(pid, &p2).ok());
  // tee from read end of p1 to write end of p2 succeeds...
  EXPECT_TRUE(kernel.sys_tee(pid, p1.first, p2.second, 512).ok());
  // ...but rejects non-pipe fds and wrong ends.
  EXPECT_EQ(kernel.sys_tee(pid, p1.second, p2.second, 1).error,
            Errno::kINVAL);
  EXPECT_EQ(kernel.sys_tee(pid, 99, p2.second, 1).error, Errno::kBADF);
  // Pipes are invisible to audit and (for allocation) to LSM; tee shows
  // up as two file_permission hooks.
  EXPECT_TRUE(kernel.trace().audit.empty());
  std::size_t perm_hooks = 0;
  for (const LsmEvent& e : kernel.trace().lsm) {
    if (e.hook == "file_permission") ++perm_hooks;
  }
  EXPECT_EQ(perm_hooks, 2u);
}

TEST(Kernel, ForkCopiesDescriptors) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  SyscallResult fd = kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  SyscallResult child = kernel.sys_fork(pid);
  ASSERT_TRUE(child.ok());
  Pid child_pid = static_cast<Pid>(child.ret);
  EXPECT_TRUE(kernel.sys_read(child_pid, static_cast<int>(fd.ret), 7).ok());
  EXPECT_EQ(kernel.process(child_pid)->ppid, pid);
}

TEST(Kernel, VforkDefersParentAuditUntilChildExit) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult child = kernel.sys_vfork(pid);
  ASSERT_TRUE(child.ok());
  // Before the child exits, the parent's vfork record is invisible.
  bool vfork_seen = false;
  for (const AuditEvent& e : kernel.trace().audit) {
    if (e.syscall == "vfork") vfork_seen = true;
  }
  EXPECT_FALSE(vfork_seen);
  kernel.finish_process(static_cast<Pid>(child.ret));
  // Now it appears, *after* the child's exit_group.
  const auto& audit = kernel.trace().audit;
  std::size_t child_exit_index = audit.size(), vfork_index = audit.size();
  for (std::size_t i = 0; i < audit.size(); ++i) {
    if (audit[i].syscall == "exit_group" &&
        audit[i].pid == static_cast<Pid>(child.ret)) {
      child_exit_index = i;
    }
    if (audit[i].syscall == "vfork") vfork_index = i;
  }
  ASSERT_LT(child_exit_index, audit.size());
  ASSERT_LT(vfork_index, audit.size());
  EXPECT_LT(child_exit_index, vfork_index);
}

TEST(Kernel, ForkAuditPrecedesChildRecords) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult child = kernel.sys_fork(pid);
  kernel.finish_process(static_cast<Pid>(child.ret));
  const auto& audit = kernel.trace().audit;
  ASSERT_GE(audit.size(), 2u);
  EXPECT_EQ(audit[0].syscall, "fork");
  EXPECT_EQ(audit[1].syscall, "exit_group");
}

TEST(Kernel, SetidFamilyUpdatesCredentials) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  ASSERT_TRUE(kernel.sys_setuid(pid, 100).ok());
  EXPECT_EQ(kernel.process(pid)->creds.uid, 100);
  EXPECT_EQ(kernel.process(pid)->creds.euid, 100);
  // After dropping to 100, raising back requires privilege.
  EXPECT_EQ(kernel.sys_setuid(pid, 0).error, Errno::kPERM);
}

TEST(Kernel, SetresCallsAreNotAuditedByDefault) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  ASSERT_TRUE(kernel.sys_setresuid(pid, 1000, 1000, 1000).ok());
  EXPECT_TRUE(kernel.trace().audit.empty());
  ASSERT_EQ(kernel.trace().lsm.size(), 1u);  // but LSM sees cred_prepare
  EXPECT_EQ(kernel.trace().lsm[0].hook, "cred_prepare");
}

TEST(Kernel, ExtraAuditRulesEnableSetres) {
  Kernel::Options options;
  options.seed = 4;
  options.extra_audit_rules = {"setresuid"};
  Kernel kernel(options);
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  kernel.sys_setresuid(pid, 1000, 1000, 1000);
  ASSERT_EQ(kernel.trace().audit.size(), 1u);
  EXPECT_EQ(kernel.trace().audit[0].syscall, "setresuid");
}

TEST(Kernel, KillOfDeadChildFailsWithEsrch) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  SyscallResult child = kernel.sys_fork(pid);
  kernel.finish_process(static_cast<Pid>(child.ret));
  kernel.start_recording();
  SyscallResult r = kernel.sys_kill(pid, static_cast<Pid>(child.ret), 15);
  EXPECT_EQ(r.error, Errno::kSRCH);
  EXPECT_TRUE(kernel.trace().audit.empty());
  EXPECT_TRUE(kernel.trace().lsm.empty());
}

TEST(Kernel, KillOfLiveProcessSuppressesItsExitRecord) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  SyscallResult child = kernel.sys_fork(pid);
  kernel.start_recording();
  ASSERT_TRUE(kernel.sys_kill(pid, static_cast<Pid>(child.ret), 9).ok());
  kernel.finish_process(static_cast<Pid>(child.ret));  // already dead
  for (const AuditEvent& e : kernel.trace().audit) {
    EXPECT_NE(e.syscall, "exit_group");
  }
}

TEST(Kernel, ExitIsIdempotentWithImplicitExit) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  kernel.sys_exit(pid, 0);
  kernel.finish_process(pid);  // the harness's implicit finish
  int exits = 0;
  for (const AuditEvent& e : kernel.trace().audit) {
    if (e.syscall == "exit_group") ++exits;
  }
  EXPECT_EQ(exits, 1);
}

TEST(Kernel, ExecveRunsLoaderAgain) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  ASSERT_TRUE(kernel.sys_execve(pid, "/usr/bin/true").ok());
  EXPECT_EQ(kernel.process(pid)->comm, "true");
  int opens = 0;
  for (const AuditEvent& e : kernel.trace().audit) {
    if (e.syscall == "open") ++opens;
  }
  EXPECT_GE(opens, 2);  // ld.so.cache + libc
}

TEST(Kernel, MknodNotAuditedButLsmSeesIt) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  ASSERT_TRUE(kernel.sys_mknod(pid, "node", 0644).ok());
  EXPECT_TRUE(kernel.trace().audit.empty());
  ASSERT_EQ(kernel.trace().lsm.size(), 1u);
  EXPECT_EQ(kernel.trace().lsm[0].hook, "inode_mknod");
}

TEST(Kernel, RelativePathsResolveAgainstCwd) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  ASSERT_TRUE(kernel.sys_creat(pid, "rel.txt").ok());
  EXPECT_TRUE(kernel.vfs().lookup("/home/user/rel.txt").ok());
}

TEST(Kernel, TransientValuesVaryWithSeed) {
  Kernel a = recording_kernel(1);
  Kernel b = recording_kernel(2);
  a.start_recording();
  b.start_recording();
  Pid pa = a.launch_program("/usr/bin/bench", "bench");
  Pid pb = b.launch_program("/usr/bin/bench", "bench");
  EXPECT_NE(pa, pb);
  ASSERT_FALSE(a.trace().audit.empty());
  ASSERT_FALSE(b.trace().audit.empty());
  EXPECT_NE(a.trace().audit[0].serial, b.trace().audit[0].serial);
}

TEST(Kernel, SameSeedGivesIdenticalTraces) {
  for (int run = 0; run < 2; ++run) {
    Kernel a = recording_kernel(9);
    Kernel b = recording_kernel(9);
    a.start_recording();
    b.start_recording();
    a.launch_program("/usr/bin/bench", "bench");
    b.launch_program("/usr/bin/bench", "bench");
    ASSERT_EQ(a.trace().audit.size(), b.trace().audit.size());
    for (std::size_t i = 0; i < a.trace().audit.size(); ++i) {
      EXPECT_EQ(a.trace().audit[i].serial, b.trace().audit[i].serial);
      EXPECT_EQ(a.trace().audit[i].syscall, b.trace().audit[i].syscall);
    }
  }
}

}  // namespace
}  // namespace provmark::os
