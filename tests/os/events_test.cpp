#include "os/events.h"

#include <gtest/gtest.h>

#include "os/kernel.h"

namespace provmark::os {
namespace {

TEST(Credentials, Equality) {
  Credentials a{0, 0, 0, 0, 0, 0};
  Credentials b = a;
  EXPECT_EQ(a, b);
  b.euid = 1000;
  EXPECT_FALSE(a == b);
}

TEST(Events, SequenceNumbersAreGloballyOrdered) {
  Kernel::Options options;
  options.seed = 1;
  options.free_record_probability = 0;
  Kernel kernel(options);
  kernel.start_recording();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.sys_creat(pid, "f.txt");
  kernel.finish_process(pid);
  const EventTrace& trace = kernel.trace();
  for (std::size_t i = 1; i < trace.libc.size(); ++i) {
    EXPECT_LT(trace.libc[i - 1].seq, trace.libc[i].seq);
  }
  for (std::size_t i = 1; i < trace.lsm.size(); ++i) {
    EXPECT_LT(trace.lsm[i - 1].seq, trace.lsm[i].seq);
  }
}

TEST(Events, AuditRecordsCarrySubjectIdentity) {
  Kernel::Options options;
  options.seed = 5;
  Kernel kernel(options);
  kernel.start_recording();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.sys_creat(pid, "f.txt");
  bool found = false;
  for (const AuditEvent& e : kernel.trace().audit) {
    if (e.syscall == "creat") {
      found = true;
      EXPECT_EQ(e.pid, pid);
      EXPECT_EQ(e.comm, "bench");
      EXPECT_EQ(e.cwd, "/home/user");
      ASSERT_EQ(e.paths.size(), 1u);
      EXPECT_EQ(e.paths[0].name, "/home/user/f.txt");
      EXPECT_EQ(e.paths[0].nametype, "CREATE");
      EXPECT_GT(e.paths[0].inode, 0u);
      EXPECT_NE(e.fields.find("time"), e.fields.end());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Events, LsmObjectsDescribeKernelObjects) {
  Kernel::Options options;
  options.seed = 6;
  Kernel kernel(options);
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  kernel.sys_creat(pid, "f.txt");
  bool create_seen = false;
  for (const LsmEvent& e : kernel.trace().lsm) {
    if (e.hook == "inode_create") {
      create_seen = true;
      ASSERT_TRUE(e.object.has_value());
      EXPECT_EQ(e.object->kind, "file");
      EXPECT_EQ(e.object->path, "/home/user/f.txt");
      EXPECT_GT(e.object->id, 0u);
      EXPECT_EQ(e.creds.uid, 0);
    }
  }
  EXPECT_TRUE(create_seen);
}

TEST(Events, LibcEventsRecordFailuresWithErrno) {
  Kernel::Options options;
  options.seed = 7;
  Kernel kernel(options);
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  kernel.sys_open(pid, "/no/such/file", kO_RDONLY);
  ASSERT_EQ(kernel.trace().libc.size(), 1u);
  const LibcEvent& e = kernel.trace().libc[0];
  EXPECT_EQ(e.function, "open");
  EXPECT_EQ(e.ret, -1);
  EXPECT_EQ(e.err, static_cast<int>(Errno::kNOENT));
  ASSERT_GE(e.args.size(), 1u);
  EXPECT_EQ(e.args[0], "/no/such/file");
}

}  // namespace
}  // namespace provmark::os
