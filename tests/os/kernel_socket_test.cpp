// The network / memory / thread syscall surface added for the extended
// Table 1 rows: per-layer observability (which of libc / audit / LSM
// sees each call), the socket state machine, and the error paths the
// adversarial generator's failure probes rely on.
#include <gtest/gtest.h>

#include <string>

#include "os/kernel.h"

namespace provmark::os {
namespace {

Kernel recording_kernel(std::uint64_t seed = 1) {
  Kernel::Options options;
  options.seed = seed;
  options.free_record_probability = 0;  // deterministic traces for tests
  return Kernel(options);
}

/// A kernel with the audit rules the new recorders install (the default
/// SPADE set omits the whole socket family).
Kernel socket_audited_kernel(std::uint64_t seed = 1) {
  Kernel::Options options;
  options.seed = seed;
  options.free_record_probability = 0;
  options.extra_audit_rules = {"socket", "bind",   "connect",  "listen",
                               "accept", "sendto", "recvfrom"};
  return Kernel(options);
}

bool saw_libc(const EventTrace& t, const std::string& function) {
  for (const LibcEvent& e : t.libc) {
    if (e.function == function) return true;
  }
  return false;
}

bool saw_audit(const EventTrace& t, const std::string& syscall) {
  for (const AuditEvent& e : t.audit) {
    if (e.syscall == syscall) return true;
  }
  return false;
}

const LsmEvent* find_lsm(const EventTrace& t, const std::string& hook) {
  for (const LsmEvent& e : t.lsm) {
    if (e.hook == hook) return &e;
  }
  return nullptr;
}

TEST(KernelSocket, SocketCreateVisibleToLibcAndLsmButNotDefaultAudit) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult fd = kernel.sys_socket(pid, 2, 1);  // AF_INET, SOCK_STREAM
  ASSERT_TRUE(fd.ok());
  EXPECT_GE(fd.ret, 3);
  const EventTrace& t = kernel.trace();
  EXPECT_TRUE(saw_libc(t, "socket"));
  // The SPADE default rule set has no socket-family rules (that is what
  // makes the socket benchmarks Table-2 empty cells for SPADE).
  EXPECT_FALSE(saw_audit(t, "socket"));
  const LsmEvent* create = find_lsm(t, "socket_create");
  ASSERT_NE(create, nullptr);
  ASSERT_TRUE(create->object.has_value());
  EXPECT_EQ(create->object->kind, "socket");
  EXPECT_EQ(create->fields.at("family"), "AF_INET");
  EXPECT_EQ(create->fields.at("type"), "SOCK_STREAM");
}

TEST(KernelSocket, ExtraRulesMakeSocketCallsAuditable) {
  Kernel kernel = socket_audited_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  SyscallResult fd = kernel.sys_socket(pid, 2, 2);  // SOCK_DGRAM
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      kernel.sys_bind(pid, static_cast<int>(fd.ret), "127.0.0.1:53").ok());
  const EventTrace& t = kernel.trace();
  EXPECT_TRUE(saw_audit(t, "socket"));
  EXPECT_TRUE(saw_audit(t, "bind"));
  for (const AuditEvent& e : t.audit) {
    if (e.syscall == "socket") {
      EXPECT_EQ(e.fields.at("family"), "AF_INET");
      EXPECT_EQ(e.fields.at("type"), "SOCK_DGRAM");
    }
  }
}

TEST(KernelSocket, FullServerLifecycleEmitsTheLsmHookChain) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  int fd = static_cast<int>(kernel.sys_socket(pid, 2, 1).ret);
  ASSERT_TRUE(kernel.sys_bind(pid, fd, "0.0.0.0:8080").ok());
  ASSERT_TRUE(kernel.sys_listen(pid, fd, 16).ok());
  SyscallResult conn = kernel.sys_accept(pid, fd);
  ASSERT_TRUE(conn.ok());
  EXPECT_NE(conn.ret, fd);
  ASSERT_TRUE(
      kernel.sys_sendto(pid, static_cast<int>(conn.ret), 128).ok());
  ASSERT_TRUE(
      kernel.sys_recvfrom(pid, static_cast<int>(conn.ret), 128).ok());

  const EventTrace& t = kernel.trace();
  for (const char* hook :
       {"socket_create", "socket_bind", "socket_listen", "socket_accept",
        "socket_sendmsg", "socket_recvmsg"}) {
    EXPECT_NE(find_lsm(t, hook), nullptr) << hook;
  }
  const LsmEvent* bind = find_lsm(t, "socket_bind");
  ASSERT_NE(bind, nullptr);
  EXPECT_EQ(bind->fields.at("addr"), "0.0.0.0:8080");
  // accept carries both sockets: the listener and the new connection.
  const LsmEvent* accept = find_lsm(t, "socket_accept");
  ASSERT_NE(accept, nullptr);
  ASSERT_TRUE(accept->object.has_value());
  ASSERT_TRUE(accept->object2.has_value());
  EXPECT_NE(accept->object->id, accept->object2->id);
  // The accepted connection inherits the listener's bound address.
  const LsmEvent* send = find_lsm(t, "socket_sendmsg");
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->fields.at("bytes"), "128");
}

TEST(KernelSocket, ErrorPathsReturnTypedErrnos) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();

  // Bad fd everywhere: EBADF.
  EXPECT_EQ(kernel.sys_bind(pid, 999, "1.2.3.4:1").error, Errno::kBADF);
  EXPECT_EQ(kernel.sys_connect(pid, 999, "1.2.3.4:1").error, Errno::kBADF);
  EXPECT_EQ(kernel.sys_listen(pid, 999, 1).error, Errno::kBADF);
  EXPECT_EQ(kernel.sys_accept(pid, 999).error, Errno::kBADF);
  EXPECT_EQ(kernel.sys_sendto(pid, 999, 1).error, Errno::kBADF);
  EXPECT_EQ(kernel.sys_recvfrom(pid, 999, 1).error, Errno::kBADF);

  // A regular file is not a socket: EINVAL.
  SyscallResult file = kernel.sys_open(pid, "/etc/passwd", kO_RDONLY);
  ASSERT_TRUE(file.ok());
  int ffd = static_cast<int>(file.ret);
  EXPECT_EQ(kernel.sys_bind(pid, ffd, "1.2.3.4:1").error, Errno::kINVAL);
  EXPECT_EQ(kernel.sys_listen(pid, ffd, 1).error, Errno::kINVAL);
  EXPECT_EQ(kernel.sys_sendto(pid, ffd, 1).error, Errno::kINVAL);

  // accept() without listen(): EINVAL.
  int sfd = static_cast<int>(kernel.sys_socket(pid, 2, 1).ret);
  EXPECT_EQ(kernel.sys_accept(pid, sfd).error, Errno::kINVAL);

  // Failures reach libc (ret -1) but never the success-only audit log.
  int failures = 0;
  for (const LibcEvent& e : kernel.trace().libc) {
    if (e.ret == -1) ++failures;
  }
  EXPECT_GE(failures, 10);
  for (const AuditEvent& e : kernel.trace().audit) {
    EXPECT_TRUE(e.success);
  }
}

TEST(KernelMmap, FileBackedMappingVisibleOnAllLayers) {
  Kernel kernel = recording_kernel();
  kernel.stage_file("/home/user/data.bin");
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  int fd = static_cast<int>(
      kernel.sys_open(pid, "/home/user/data.bin", kO_RDWR).ret);
  SyscallResult map = kernel.sys_mmap(pid, fd, 8192, 3);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.ret, 8192);

  const EventTrace& t = kernel.trace();
  EXPECT_TRUE(saw_libc(t, "mmap"));
  EXPECT_TRUE(saw_audit(t, "mmap"));  // mmap is in the default rule set
  const LsmEvent* hook = find_lsm(t, "mmap_file");
  ASSERT_NE(hook, nullptr);
  ASSERT_TRUE(hook->object.has_value());
  EXPECT_EQ(hook->object->path, "/home/user/data.bin");
  EXPECT_EQ(hook->fields.at("prot"), "PROT_READ|PROT_WRITE");
}

TEST(KernelMmap, BadFdFailsAndMunmapIsLibcOnly) {
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  EXPECT_EQ(kernel.sys_mmap(pid, 999, 4096, 1).error, Errno::kBADF);

  std::size_t audit_before = kernel.trace().audit.size();
  std::size_t lsm_before = kernel.trace().lsm.size();
  EXPECT_TRUE(kernel.sys_munmap(pid, 4096).ok());
  EXPECT_TRUE(saw_libc(kernel.trace(), "munmap"));
  // No munmap audit rule, no LSM unmap hook — the munmap benchmark's
  // all-empty Table-2 row depends on exactly this.
  EXPECT_EQ(kernel.trace().audit.size(), audit_before);
  EXPECT_EQ(kernel.trace().lsm.size(), lsm_before);
}

TEST(KernelThread, CloneThreadSharesProcessStateAndMarksLayers) {
  Kernel kernel = recording_kernel();
  kernel.stage_file("/home/user/shared.txt");
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  int fd = static_cast<int>(
      kernel.sys_open(pid, "/home/user/shared.txt", kO_RDONLY).ret);

  SyscallResult tid = kernel.sys_clone_thread(pid);
  ASSERT_TRUE(tid.ok());
  ASSERT_NE(tid.ret, pid);
  const Process* thread = kernel.process(static_cast<Pid>(tid.ret));
  ASSERT_NE(thread, nullptr);
  // CLONE_VM | CLONE_FILES: the thread sees the parent's fd table.
  EXPECT_EQ(thread->fds.count(fd), 1u);
  EXPECT_EQ(thread->comm, kernel.process(pid)->comm);

  const EventTrace& t = kernel.trace();
  bool saw_thread_flags = false;
  for (const LibcEvent& e : t.libc) {
    if (e.function == "clone" && !e.args.empty() &&
        e.args[0].find("CLONE_THREAD") != std::string::npos) {
      saw_thread_flags = true;
    }
  }
  EXPECT_TRUE(saw_thread_flags);
  bool saw_audit_thread = false;
  for (const AuditEvent& e : t.audit) {
    if (e.syscall == "clone" &&
        e.fields.count("flags") &&
        e.fields.at("flags").find("CLONE_THREAD") != std::string::npos) {
      saw_audit_thread = true;
    }
  }
  EXPECT_TRUE(saw_audit_thread);
  const LsmEvent* alloc = nullptr;
  for (const LsmEvent& e : t.lsm) {
    if (e.hook == "task_alloc" && e.fields.count("thread")) alloc = &e;
  }
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->fields.at("thread"), "1");
}

TEST(KernelSocket, AcceptedConnectionIsItsOwnInode) {
  // The accept hook's derived-from relation (CamFlow) needs two distinct
  // socket inodes; a shared inode would collapse the provenance chain.
  Kernel kernel = recording_kernel();
  Pid pid = kernel.launch_program("/usr/bin/bench", "bench");
  kernel.start_recording();
  int fd = static_cast<int>(kernel.sys_socket(pid, 10, 1).ret);  // AF_INET6
  ASSERT_TRUE(kernel.sys_bind(pid, fd, "[::1]:443").ok());
  ASSERT_TRUE(kernel.sys_listen(pid, fd, 4).ok());
  int conn = static_cast<int>(kernel.sys_accept(pid, fd).ret);
  const Process* p = kernel.process(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->fds.at(fd).ino, p->fds.at(conn).ino);
  EXPECT_TRUE(p->fds.at(conn).is_socket);
  EXPECT_FALSE(p->fds.at(conn).listening);
  EXPECT_EQ(p->fds.at(conn).sock_addr, "[::1]:443");
  const LsmEvent* create = find_lsm(kernel.trace(), "socket_create");
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->fields.at("family"), "AF_INET6");
}

}  // namespace
}  // namespace provmark::os
