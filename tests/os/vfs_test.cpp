#include "os/vfs.h"

#include <gtest/gtest.h>

namespace provmark::os {
namespace {

TEST(Vfs, SeedHierarchyExists) {
  Vfs vfs;
  EXPECT_TRUE(vfs.lookup("/").ok());
  EXPECT_TRUE(vfs.lookup("/etc/passwd").ok());
  EXPECT_TRUE(vfs.lookup("/lib/libc.so.6").ok());
  EXPECT_TRUE(vfs.lookup("/home/user").ok());
  EXPECT_FALSE(vfs.lookup("/no/such").ok());
  EXPECT_EQ(vfs.lookup("/no/such").error, Errno::kNOENT);
}

TEST(Vfs, CreateAndLookup) {
  Vfs vfs;
  VfsResult r = vfs.create("/home/user/a.txt", FileType::Regular, 0644,
                           1000, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(vfs.lookup("/home/user/a.txt").ino, r.ino);
  const Inode* inode = vfs.inode(r.ino);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->owner_uid, 1000);
  EXPECT_EQ(inode->nlink, 1);
}

TEST(Vfs, CreateFailsOnExisting) {
  Vfs vfs;
  EXPECT_EQ(vfs.create("/etc/passwd", FileType::Regular, 0644, 0, 0).error,
            Errno::kEXIST);
}

TEST(Vfs, CreateFailsWithoutParent) {
  Vfs vfs;
  EXPECT_EQ(vfs.create("/nope/x", FileType::Regular, 0644, 0, 0).error,
            Errno::kNOENT);
}

TEST(Vfs, CreateChecksParentWritePermission) {
  Vfs vfs;
  // /etc is root-owned 0755: uid 1000 cannot create there.
  EXPECT_EQ(vfs.create("/etc/evil", FileType::Regular, 0644, 1000, 1000)
                .error,
            Errno::kACCES);
  // root can.
  EXPECT_TRUE(vfs.create("/etc/ok", FileType::Regular, 0644, 0, 0).ok());
}

TEST(Vfs, HardLinkSharesInode) {
  Vfs vfs;
  vfs.create("/tmp/a", FileType::Regular, 0644, 0, 0);
  VfsResult r = vfs.link("/tmp/a", "/tmp/b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(vfs.lookup("/tmp/a").ino, vfs.lookup("/tmp/b").ino);
  EXPECT_EQ(vfs.inode(r.ino)->nlink, 2);
  // Unlinking one name keeps the inode alive.
  EXPECT_TRUE(vfs.unlink("/tmp/a").ok());
  EXPECT_TRUE(vfs.lookup("/tmp/b").ok());
  EXPECT_EQ(vfs.inode(r.ino)->nlink, 1);
  // Unlinking the last name frees it.
  EXPECT_TRUE(vfs.unlink("/tmp/b").ok());
  EXPECT_EQ(vfs.inode(r.ino), nullptr);
}

TEST(Vfs, LinkFailsOnExistingTarget) {
  Vfs vfs;
  vfs.create("/tmp/a", FileType::Regular, 0644, 0, 0);
  vfs.create("/tmp/b", FileType::Regular, 0644, 0, 0);
  EXPECT_EQ(vfs.link("/tmp/a", "/tmp/b").error, Errno::kEXIST);
}

TEST(Vfs, SymlinkResolution) {
  Vfs vfs;
  vfs.create("/tmp/real", FileType::Regular, 0644, 0, 0);
  ASSERT_TRUE(vfs.symlink("/tmp/real", "/tmp/sym", 0, 0).ok());
  // Follow: resolves to the target inode.
  EXPECT_EQ(vfs.lookup("/tmp/sym").ino, vfs.lookup("/tmp/real").ino);
  // lstat semantics: the link inode itself.
  VfsResult nofollow = vfs.lookup("/tmp/sym", false);
  ASSERT_TRUE(nofollow.ok());
  EXPECT_EQ(vfs.inode(nofollow.ino)->type, FileType::Symlink);
  EXPECT_EQ(vfs.inode(nofollow.ino)->symlink_target, "/tmp/real");
}

TEST(Vfs, SymlinkLoopDetected) {
  Vfs vfs;
  vfs.symlink("/tmp/b", "/tmp/a", 0, 0);
  vfs.symlink("/tmp/a", "/tmp/b", 0, 0);
  EXPECT_EQ(vfs.lookup("/tmp/a").error, Errno::kINVAL);
}

TEST(Vfs, DanglingSymlink) {
  Vfs vfs;
  vfs.symlink("/tmp/missing", "/tmp/dangling", 0, 0);
  EXPECT_EQ(vfs.lookup("/tmp/dangling").error, Errno::kNOENT);
  EXPECT_TRUE(vfs.lookup("/tmp/dangling", false).ok());
}

TEST(Vfs, RenameMovesEntry) {
  Vfs vfs;
  VfsResult created = vfs.create("/tmp/old", FileType::Regular, 0644, 0, 0);
  ASSERT_TRUE(vfs.rename("/tmp/old", "/tmp/new").ok());
  EXPECT_FALSE(vfs.lookup("/tmp/old").ok());
  EXPECT_EQ(vfs.lookup("/tmp/new").ino, created.ino);
}

TEST(Vfs, RenameReplacesTargetAndFreesIt) {
  Vfs vfs;
  VfsResult a = vfs.create("/tmp/a", FileType::Regular, 0644, 0, 0);
  VfsResult b = vfs.create("/tmp/b", FileType::Regular, 0644, 0, 0);
  ASSERT_TRUE(vfs.rename("/tmp/a", "/tmp/b").ok());
  EXPECT_EQ(vfs.lookup("/tmp/b").ino, a.ino);
  EXPECT_EQ(vfs.inode(b.ino), nullptr);  // old target inode freed
}

TEST(Vfs, RenameMissingSource) {
  Vfs vfs;
  EXPECT_EQ(vfs.rename("/tmp/ghost", "/tmp/x").error, Errno::kNOENT);
}

TEST(Vfs, UnlinkDirectoryRefused) {
  Vfs vfs;
  EXPECT_EQ(vfs.unlink("/etc").error, Errno::kISDIR);
}

TEST(Vfs, TruncateSetsSize) {
  Vfs vfs;
  VfsResult r = vfs.create("/tmp/t", FileType::Regular, 0644, 0, 0);
  ASSERT_TRUE(vfs.truncate("/tmp/t", 123).ok());
  EXPECT_EQ(vfs.inode(r.ino)->size, 123u);
  EXPECT_EQ(vfs.truncate("/etc", 0).error, Errno::kISDIR);
}

TEST(Vfs, PermissionModel) {
  Inode inode;
  inode.mode = 0640;
  inode.owner_uid = 1000;
  inode.owner_gid = 1000;
  EXPECT_TRUE(Vfs::may_read(inode, 1000, 1000));   // owner
  EXPECT_TRUE(Vfs::may_write(inode, 1000, 1000));
  EXPECT_TRUE(Vfs::may_read(inode, 2000, 1000));   // group
  EXPECT_FALSE(Vfs::may_write(inode, 2000, 1000));
  EXPECT_FALSE(Vfs::may_read(inode, 2000, 2000));  // other
  EXPECT_TRUE(Vfs::may_read(inode, 0, 0));         // root bypass
  EXPECT_TRUE(Vfs::may_write(inode, 0, 0));
}

TEST(Vfs, AnonymousInodes) {
  Vfs vfs;
  std::uint64_t ino = vfs.allocate_anonymous(FileType::Fifo);
  ASSERT_NE(vfs.inode(ino), nullptr);
  EXPECT_EQ(vfs.inode(ino)->type, FileType::Fifo);
}

TEST(Vfs, ParentOf) {
  EXPECT_EQ(Vfs::parent_of("/a/b/c"), "/a/b");
  EXPECT_EQ(Vfs::parent_of("/a"), "/");
  EXPECT_EQ(Vfs::parent_of("/"), "/");
}

TEST(Vfs, ErrnoNames) {
  EXPECT_STREQ(errno_name(Errno::kNOENT), "ENOENT");
  EXPECT_STREQ(errno_name(Errno::kACCES), "EACCES");
  EXPECT_STREQ(errno_name(Errno::None), "OK");
}

}  // namespace
}  // namespace provmark::os
