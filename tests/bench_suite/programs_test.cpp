#include "bench_suite/program.h"

#include <gtest/gtest.h>

#include <set>

#include "bench_suite/executor.h"
#include "expected_names.h"

namespace provmark::bench_suite {
namespace {

TEST(Programs, RegistryCoversTable1) {
  std::vector<BenchmarkProgram> programs = table_benchmarks();
  EXPECT_EQ(programs.size(), 54u);
  std::set<std::string> names;
  for (const BenchmarkProgram& p : programs) names.insert(p.name);
  for (const char* expected : kTable1Names) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

TEST(Programs, EveryProgramHasExactlyOneTargetRegionOrMore) {
  for (const BenchmarkProgram& p : table_benchmarks()) {
    int targets = 0;
    for (const Op& op : p.ops) {
      if (op.target) ++targets;
    }
    EXPECT_GE(targets, 1) << p.name;
  }
}

TEST(Programs, GroupsMatchTable1Families) {
  for (const BenchmarkProgram& p : table_benchmarks()) {
    switch (p.group) {
      case 1: EXPECT_EQ(p.family, "Files") << p.name; break;
      case 2: EXPECT_EQ(p.family, "Processes") << p.name; break;
      case 3: EXPECT_EQ(p.family, "Permissions") << p.name; break;
      case 4: EXPECT_EQ(p.family, "Pipes") << p.name; break;
      case 5: EXPECT_EQ(p.family, "Network") << p.name; break;
      case 6: EXPECT_EQ(p.family, "Memory") << p.name; break;
      default: FAIL() << p.name << " has group " << p.group;
    }
  }
}

TEST(Programs, BenchmarkByName) {
  EXPECT_EQ(benchmark_by_name("rename").name, "rename");
  EXPECT_THROW(benchmark_by_name("nope"), std::out_of_range);
}

TEST(Programs, ScaleBenchmarkGrowsLinearly) {
  BenchmarkProgram s1 = scale_benchmark(1);
  BenchmarkProgram s4 = scale_benchmark(4);
  EXPECT_EQ(s1.ops.size(), 2u);
  EXPECT_EQ(s4.ops.size(), 8u);
  for (const Op& op : s4.ops) EXPECT_TRUE(op.target);
}

TEST(Programs, OpcodeNamesMatchSyscallNames) {
  EXPECT_STREQ(opcode_name(OpCode::Open), "open");
  EXPECT_STREQ(opcode_name(OpCode::SetResUid), "setresuid");
  EXPECT_STREQ(opcode_name(OpCode::VFork), "vfork");
  EXPECT_STREQ(opcode_name(OpCode::Tee), "tee");
}

// The paper's per-benchmark check: the target behaviour is performed
// successfully (or fails when the benchmark is a failure case). Running
// every registered benchmark in both variants is the strongest form.
class BehaviourTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BehaviourTest, ForegroundBehaviourSucceeds) {
  const BenchmarkProgram& program = benchmark_by_name(GetParam());
  ExecutionResult run = execute_program(program, /*include_target=*/true, 1);
  EXPECT_TRUE(run.behaviour_ok) << run.failure_reason;
  EXPECT_FALSE(run.trace.libc.empty());
}

TEST_P(BehaviourTest, BackgroundVariantAlsoExecutes) {
  const BenchmarkProgram& program = benchmark_by_name(GetParam());
  ExecutionResult run = execute_program(program, /*include_target=*/false,
                                        1);
  EXPECT_TRUE(run.behaviour_ok) << run.failure_reason;
}

TEST_P(BehaviourTest, ForegroundTraceContainsBackgroundPrefix) {
  // Monotonicity at the event level: the background libc stream is a
  // prefix-ordered subsequence of the foreground stream (by function
  // name), which underpins the comparison stage's assumption.
  const BenchmarkProgram& program = benchmark_by_name(GetParam());
  auto bg = execute_program(program, false, 2).trace;
  auto fg = execute_program(program, true, 2).trace;
  std::size_t i = 0;
  for (const os::LibcEvent& e : fg.libc) {
    if (i < bg.libc.size() && bg.libc[i].function == e.function) ++i;
  }
  EXPECT_EQ(i, bg.libc.size()) << "background not a subsequence";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BehaviourTest,
                         ::testing::ValuesIn(kTable1Names));

TEST(FailureBenchmarks, FailedRenameFailsAsExpected) {
  BenchmarkProgram program = failed_rename_benchmark();
  ExecutionResult run = execute_program(program, true, 3);
  EXPECT_TRUE(run.behaviour_ok) << run.failure_reason;
  // The rename must actually have failed (ret -1 at the libc layer).
  bool saw_failed_rename = false;
  for (const os::LibcEvent& e : run.trace.libc) {
    if (e.function == "rename" && e.ret == -1) saw_failed_rename = true;
  }
  EXPECT_TRUE(saw_failed_rename);
}

TEST(FailureBenchmarks, BehaviourCheckCatchesUnexpectedFailure) {
  // A program whose op fails although it should succeed must be flagged.
  BenchmarkProgram p;
  p.name = "broken";
  Op open;
  open.code = OpCode::Open;
  open.path = "/no/such/path";
  open.flags = 0;
  open.target = true;
  p.ops.push_back(open);
  ExecutionResult run = execute_program(p, true, 4);
  EXPECT_FALSE(run.behaviour_ok);
  EXPECT_NE(run.failure_reason.find("open"), std::string::npos);
}

}  // namespace
}  // namespace provmark::bench_suite
