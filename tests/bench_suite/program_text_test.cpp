#include "bench_suite/program_text.h"

#include <gtest/gtest.h>

#include "bench_suite/executor.h"
#include "os/kernel.h"

namespace provmark::bench_suite {
namespace {

TEST(ProgramText, ParsesTheCloseBenchmark) {
  // The paper's close.c example in the textual format.
  BenchmarkProgram p = parse_program(
      "# close.c\n"
      "name close\n"
      "group 1 Files\n"
      "stage file test.txt mode=644\n"
      "op open path=test.txt flags=rw out=fd\n"
      "target close var=fd\n");
  EXPECT_EQ(p.name, "close");
  EXPECT_EQ(p.group, 1);
  EXPECT_EQ(p.family, "Files");
  ASSERT_EQ(p.staging.size(), 1u);
  EXPECT_EQ(p.staging[0].mode, 0644);
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_EQ(p.ops[0].code, OpCode::Open);
  EXPECT_EQ(p.ops[0].flags, os::kO_RDWR);
  EXPECT_FALSE(p.ops[0].target);
  EXPECT_EQ(p.ops[1].code, OpCode::Close);
  EXPECT_TRUE(p.ops[1].target);
  EXPECT_EQ(p.ops[1].var, "fd");
}

TEST(ProgramText, ParsedProgramExecutes) {
  BenchmarkProgram p = parse_program(
      "name textual\n"
      "stage file data.txt\n"
      "op open path=data.txt flags=rw out=fd\n"
      "target write var=fd a=64\n");
  ExecutionResult run = execute_program(p, true, 1);
  EXPECT_TRUE(run.behaviour_ok) << run.failure_reason;
  bool wrote = false;
  for (const os::LibcEvent& e : run.trace.libc) {
    if (e.function == "write" && e.ret == 64) wrote = true;
  }
  EXPECT_TRUE(wrote);
}

TEST(ProgramText, FailureAndMayFailMarkers) {
  BenchmarkProgram p = parse_program(
      "name markers\n"
      "creds 1000\n"
      "target! rename path=mine path2=/etc/passwd\n"
      "target? link path=a path2=b\n");
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_TRUE(p.ops[0].expect_failure);
  EXPECT_FALSE(p.ops[0].may_fail);
  EXPECT_TRUE(p.ops[1].may_fail);
  ASSERT_TRUE(p.creds.has_value());
  EXPECT_EQ(p.creds->uid, 1000);
}

TEST(ProgramText, ShuffleTargetsFlag) {
  BenchmarkProgram p = parse_program(
      "name shuffled\nshuffle-targets\ntarget creat path=f0\n");
  EXPECT_TRUE(p.shuffle_targets);
}

TEST(ProgramText, OctalModes) {
  BenchmarkProgram p = parse_program(
      "name modes\ntarget chmod path=f mode=600\n");
  EXPECT_EQ(p.ops[0].mode, 0600);
}

TEST(ProgramText, StageKinds) {
  BenchmarkProgram p = parse_program(
      "name stages\n"
      "stage file a.txt mode=600 uid=1000\n"
      "stage fifo p0\n"
      "stage symlink s0 target=/etc/passwd\n"
      "stage remove junk\n"
      "target open path=a.txt flags=r out=fd\n");
  ASSERT_EQ(p.staging.size(), 4u);
  EXPECT_EQ(p.staging[0].uid, 1000);
  EXPECT_EQ(p.staging[1].kind, StageAction::Kind::Fifo);
  EXPECT_EQ(p.staging[2].target, "/etc/passwd");
  EXPECT_EQ(p.staging[3].kind, StageAction::Kind::Remove);
}

TEST(ProgramText, ErrorsCarryLineNumbers) {
  try {
    parse_program("name x\nop nonsense path=a\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_program("op open path=a\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("name x\n"), std::invalid_argument);
  EXPECT_THROW(parse_program("name x\nstage what a\ntarget creat path=f\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_program("name x\ntarget open path=a flags=zz out=fd\n"),
      std::invalid_argument);
}

TEST(ProgramText, RoundTripAllTableBenchmarks) {
  for (const BenchmarkProgram& original : table_benchmarks()) {
    BenchmarkProgram round = parse_program(format_program(original));
    EXPECT_EQ(round.name, original.name);
    EXPECT_EQ(round.group, original.group);
    ASSERT_EQ(round.ops.size(), original.ops.size()) << original.name;
    for (std::size_t i = 0; i < round.ops.size(); ++i) {
      EXPECT_EQ(round.ops[i].code, original.ops[i].code) << original.name;
      EXPECT_EQ(round.ops[i].target, original.ops[i].target);
      EXPECT_EQ(round.ops[i].path, original.ops[i].path);
      EXPECT_EQ(round.ops[i].var, original.ops[i].var);
      EXPECT_EQ(round.ops[i].a, original.ops[i].a);
      EXPECT_EQ(round.ops[i].mode, original.ops[i].mode);
    }
    EXPECT_EQ(round.staging.size(), original.staging.size());
  }
}

TEST(ProgramText, OpcodeFromName) {
  EXPECT_EQ(opcode_from_name("open"), OpCode::Open);
  EXPECT_EQ(opcode_from_name("setresgid"), OpCode::SetResGid);
  EXPECT_THROW(opcode_from_name("bogus"), std::invalid_argument);
}

TEST(ProgramText, OversizedInputRejectedBeforeParsing) {
  const std::string text = "name close\ntarget close var=fd\n";
  // At or under the limit parses; one byte over throws the typed error
  // carrying both the observed size and the limit.
  EXPECT_NO_THROW(parse_program(text, text.size()));
  try {
    parse_program(text, text.size() - 1);
    FAIL() << "expected util::InputSizeError";
  } catch (const util::InputSizeError& e) {
    EXPECT_EQ(e.size, text.size());
    EXPECT_EQ(e.limit, text.size() - 1);
  }
  // 0 disables the guard entirely.
  EXPECT_NO_THROW(parse_program(text, 0));
}

}  // namespace
}  // namespace provmark::bench_suite
