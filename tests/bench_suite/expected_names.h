// The 54 Table 1 benchmark names (44 from the paper plus the network /
// memory / thread extension rows), shared by suite tests.
#pragma once

namespace provmark::bench_suite {

inline constexpr const char* kTable1Names[] = {
    "close",     "creat",     "dup",       "dup2",      "dup3",
    "link",      "linkat",    "symlink",   "symlinkat", "mknod",
    "mknodat",   "open",      "openat",    "read",      "pread",
    "rename",    "renameat",  "truncate",  "ftruncate", "unlink",
    "unlinkat",  "write",     "pwrite",    "clone",     "execve",
    "exit",      "fork",      "kill",      "vfork",     "thread",
    "chmod",     "fchmod",    "fchmodat",  "chown",     "fchown",
    "fchownat",  "setgid",    "setregid",  "setresgid", "setuid",
    "setreuid",  "setresuid", "pipe",      "pipe2",     "tee",
    "socket",    "bind",      "connect",   "listen",    "accept",
    "sendto",    "recvfrom",  "mmap",      "munmap"};

}  // namespace provmark::bench_suite
