// The 44 Table 1 benchmark names, shared by suite tests.
#pragma once

namespace provmark::bench_suite {

inline constexpr const char* kTable1Names[] = {
    "close",     "creat",     "dup",       "dup2",      "dup3",
    "link",      "linkat",    "symlink",   "symlinkat", "mknod",
    "mknodat",   "open",      "openat",    "read",      "pread",
    "rename",    "renameat",  "truncate",  "ftruncate", "unlink",
    "unlinkat",  "write",     "pwrite",    "clone",     "execve",
    "exit",      "fork",      "kill",      "vfork",     "chmod",
    "fchmod",    "fchmodat",  "chown",     "fchown",    "fchownat",
    "setgid",    "setregid",  "setresgid", "setuid",    "setreuid",
    "setresuid", "pipe",      "pipe2",     "tee"};

}  // namespace provmark::bench_suite
