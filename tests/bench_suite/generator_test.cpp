// The adversarial workload generator: every emitted program must uphold
// the pipeline's execution contract (deterministic behaviour in both
// variants, background = foreground prefix), survive the textual format
// round trip even with hostile identifiers, and be a pure function of
// its options — pinned by a golden digest so an accidental change to
// generation order or the Rng stream fails loudly instead of silently
// invalidating every stored sweep that referenced a "gen..." name.
#include "bench_suite/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bench_suite/executor.h"
#include "bench_suite/program_text.h"
#include "util/rng.h"

namespace provmark::bench_suite {
namespace {

GeneratorOptions options_for(std::uint64_t seed, int scale) {
  GeneratorOptions options;
  options.seed = seed;
  options.scale = scale;
  return options;
}

TEST(Generator, NameRoundTrips) {
  GeneratorOptions options = options_for(7, 16);
  EXPECT_EQ(generated_name(options), "gen7x16");
  auto parsed = parse_generated_name("gen7x16");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->scale, 16);

  EXPECT_FALSE(parse_generated_name("open").has_value());
  EXPECT_FALSE(parse_generated_name("gen").has_value());
  EXPECT_FALSE(parse_generated_name("genx5").has_value());
  EXPECT_FALSE(parse_generated_name("gen5x").has_value());
  EXPECT_FALSE(parse_generated_name("gen5x5x5").has_value());
  EXPECT_FALSE(parse_generated_name("gen5x5 ").has_value());
  EXPECT_FALSE(parse_generated_name("gen-1x5").has_value());
}

TEST(Generator, DeterministicAcrossCalls) {
  for (std::uint64_t seed : {1u, 9u, 123u}) {
    GeneratorOptions options = options_for(seed, 20);
    std::string a = format_program(generate_program(options));
    std::string b = format_program(generate_program(options));
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(Generator, SeedsActuallyDiffer) {
  std::set<std::string> texts;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    texts.insert(format_program(generate_program(options_for(seed, 16))));
  }
  EXPECT_EQ(texts.size(), 8u);
}

TEST(Generator, GoldenDigestPinned) {
  // The seed-stability regression: these digests were recorded when the
  // generator was introduced. A mismatch means generation changed —
  // every stored artifact addressing a "gen<seed>x<scale>" program is
  // invalidated, so such a change must be deliberate and must bump the
  // digests here in the same commit.
  struct Golden {
    std::uint64_t seed;
    int scale;
    std::uint64_t digest;
  };
  const Golden goldens[] = {
      {1, 16, 11814958128246871929ULL},
      {7, 16, 3358899135301662810ULL},
      {42, 32, 15758175074122220877ULL},
  };
  for (const Golden& g : goldens) {
    std::string text =
        format_program(generate_program(options_for(g.seed, g.scale)));
    EXPECT_EQ(util::stable_hash(text), g.digest)
        << "gen" << g.seed << "x" << g.scale << " drifted; program now:\n"
        << text;
  }
}

TEST(Generator, HostileIdentifiersAppearAndQuote) {
  // Hostile decorations force the writer through the quoting path: the
  // serialized text must contain quoted tokens and escape sequences.
  // Which decorations a single program draws is seed-dependent, so pool
  // a handful of fully-hostile programs and assert on the union.
  std::string text;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorOptions options = options_for(seed, 32);
    options.hostile_probability = 1.0;
    text += format_program(generate_program(options));
  }
  EXPECT_NE(text.find('"'), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\x"), std::string::npos);
}

// -- the execution contract, over many seeds --------------------------------

class GeneratorContractTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorContractTest, BothVariantsBehaveDeterministically) {
  GeneratorOptions options =
      options_for(GetParam(), 8 + static_cast<int>(GetParam() % 17));
  BenchmarkProgram program = generate_program(options);
  EXPECT_EQ(program.name, generated_name(options));
  for (std::uint64_t trial_seed : {1u, 2u}) {
    ExecutionResult fg = execute_program(program, true, trial_seed);
    EXPECT_TRUE(fg.behaviour_ok)
        << program.name << " fg: " << fg.failure_reason;
    EXPECT_FALSE(fg.trace.libc.empty());
    ExecutionResult bg = execute_program(program, false, trial_seed);
    EXPECT_TRUE(bg.behaviour_ok)
        << program.name << " bg: " << bg.failure_reason;
  }
}

TEST_P(GeneratorContractTest, BackgroundIsForegroundPrefix) {
  // Stronger than the Table-1 subsequence check: because the generator
  // emits all non-target ops first, the background libc stream must be
  // an exact *prefix* of the foreground stream (function + args) —
  // modulo the shared teardown, the harness's final exit of the main
  // process, which both variants emit as their last event.
  GeneratorOptions options =
      options_for(GetParam(), 8 + static_cast<int>(GetParam() % 17));
  BenchmarkProgram program = generate_program(options);
  auto fg = execute_program(program, true, 5).trace;
  auto bg = execute_program(program, false, 5).trace;
  ASSERT_LE(bg.libc.size(), fg.libc.size());
  ASSERT_FALSE(bg.libc.empty());
  EXPECT_EQ(bg.libc.back().function, "exit");
  EXPECT_EQ(fg.libc.back().function, "exit");
  EXPECT_EQ(bg.libc.back().args, fg.libc.back().args);
  for (std::size_t i = 0; i + 1 < bg.libc.size(); ++i) {
    EXPECT_EQ(bg.libc[i].function, fg.libc[i].function) << "index " << i;
    EXPECT_EQ(bg.libc[i].args, fg.libc[i].args) << "index " << i;
  }
}

TEST_P(GeneratorContractTest, TextRoundTripReachesFixpoint) {
  // format -> parse -> format must be the identity on the formatted
  // text, including hostile identifiers (quotes, newlines, control and
  // non-UTF-8 bytes). One extra round proves the fixpoint.
  GeneratorOptions options = options_for(GetParam(), 24);
  options.hostile_probability = 0.6;
  BenchmarkProgram program = generate_program(options);
  std::string text = format_program(program);
  BenchmarkProgram reparsed = parse_program(text);
  std::string text2 = format_program(reparsed);
  EXPECT_EQ(text, text2);
  EXPECT_EQ(format_program(parse_program(text2)), text2);
  EXPECT_EQ(reparsed.name, program.name);
  EXPECT_EQ(reparsed.ops.size(), program.ops.size());
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, GeneratorContractTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// -- prefix fuzzing of the parser -------------------------------------------

TEST(GeneratorFuzz, EveryPrefixParsesCleanlyOrRoundTrips) {
  // Truncated recorder/CI output must never crash the parser or produce
  // a program that the writer cannot reproduce: every byte-prefix of a
  // hostile formatted program either throws std::invalid_argument or
  // parses to a program whose formatted form is a fixpoint.
  for (std::uint64_t seed : {2u, 11u, 29u}) {
    GeneratorOptions options = options_for(seed, 12);
    options.hostile_probability = 0.8;
    std::string text = format_program(generate_program(options));
    ASSERT_FALSE(text.empty());
    int parsed_ok = 0;
    for (std::size_t len = 0; len <= text.size(); ++len) {
      std::string prefix = text.substr(0, len);
      try {
        BenchmarkProgram p = parse_program(prefix);
        ++parsed_ok;
        std::string out = format_program(p);
        EXPECT_EQ(format_program(parse_program(out)), out)
            << "seed " << seed << " prefix length " << len;
      } catch (const std::invalid_argument&) {
        // A clean, typed rejection is the other acceptable outcome.
      }
    }
    // The full text must be among the parseable prefixes.
    EXPECT_GT(parsed_ok, 0) << "seed " << seed;
  }
}

TEST(GeneratorFuzz, HostileScrambledInputNeverCrashes) {
  // Byte-level mutations (flips, deletions, splices) of a valid program:
  // parse either succeeds or throws std::invalid_argument — nothing
  // else escapes (no std::out_of_range from unchecked indexing, no
  // terminate from unexpected exception types).
  GeneratorOptions options = options_for(17, 12);
  options.hostile_probability = 0.8;
  std::string text = format_program(generate_program(options));
  util::Rng rng(99);
  for (int round = 0; round < 400; ++round) {
    std::string mutated = text;
    int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.next_below(8));
          break;
        default:
          mutated.insert(pos, std::string(1 + rng.next_below(4),
                                          static_cast<char>(
                                              rng.next_below(256))));
          break;
      }
    }
    try {
      parse_program(mutated);
    } catch (const std::invalid_argument&) {
      // expected failure mode
    }
  }
}

TEST(Generator, ScaleControlsTargetCount) {
  for (int scale : {4, 16, 48}) {
    BenchmarkProgram program = generate_program(options_for(5, scale));
    int targets = 0;
    bool seen_target = false;
    for (const Op& op : program.ops) {
      if (op.target) {
        ++targets;
        seen_target = true;
      } else {
        EXPECT_FALSE(seen_target)
            << "non-target op after a target op breaks the bg-prefix "
               "contract";
      }
    }
    EXPECT_GE(targets, scale / 2) << "scale " << scale;
    EXPECT_LE(targets, scale * 3) << "scale " << scale;
  }
}

}  // namespace
}  // namespace provmark::bench_suite
