// Use case "Regression testing" (Charlie, §3.1).
//
// A recorder developer stores benchmark graphs (as Datalog) from a
// baseline run; whenever the system changes, a new run is compared
// against the stored baselines with the same graph-isomorphism machinery
// ProvMark uses during benchmarking. Expected changes update the
// baseline; unexpected ones are flagged.
//
// Here the "system change" is turning on SPADE's artifact versioning,
// which changes the write benchmark's structure.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/regression.h"
#include "systems/spade.h"

using namespace provmark;

namespace {

core::BenchmarkResult run_spade(const std::string& name,
                                const systems::SpadeConfig& config) {
  core::PipelineOptions options;
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  return core::run_benchmark(bench_suite::benchmark_by_name(name), options);
}

const char* verdict_name(core::RegressionStore::Verdict::Kind kind) {
  using Kind = core::RegressionStore::Verdict::Kind;
  switch (kind) {
    case Kind::NoBaseline: return "no baseline";
    case Kind::Unchanged: return "unchanged";
    case Kind::PropertyDrift: return "property drift";
    case Kind::StructureChanged: return "STRUCTURE CHANGED";
  }
  return "?";
}

}  // namespace

int main() {
  const std::vector<std::string> suite = {"open", "write", "rename",
                                          "unlink"};
  systems::SpadeConfig baseline_config;

  // 1. Baseline run: store each result.
  core::RegressionStore store;
  for (const std::string& name : suite) {
    store.put(run_spade(name, baseline_config));
  }
  std::printf("stored %zu baselines; serialized store:\n%s\n",
              store.size(), store.save().substr(0, 400).c_str());

  // Round-trip through the Datalog serialization, as Charlie's script
  // would between runs.
  core::RegressionStore reloaded =
      core::RegressionStore::load(store.save());

  // 2. Re-run with the unchanged system: everything should be unchanged.
  std::printf("re-run with the same version:\n");
  bool all_unchanged = true;
  for (const std::string& name : suite) {
    auto verdict = reloaded.check(run_spade(name, baseline_config));
    std::printf("  %-8s %s\n", name.c_str(), verdict_name(verdict.kind));
    all_unchanged &= verdict.kind ==
                     core::RegressionStore::Verdict::Kind::Unchanged;
  }

  // 3. "Upgrade" SPADE: enable artifact versioning; the write benchmark's
  // structure legitimately changes and the regression harness catches it.
  std::printf("re-run with versioning enabled (a system change):\n");
  systems::SpadeConfig versioned = baseline_config;
  versioned.versioning = true;
  int changes = 0;
  for (const std::string& name : suite) {
    core::BenchmarkResult result = run_spade(name, versioned);
    auto verdict = reloaded.check(result);
    std::printf("  %-8s %s\n", name.c_str(), verdict_name(verdict.kind));
    if (verdict.kind ==
        core::RegressionStore::Verdict::Kind::StructureChanged) {
      ++changes;
      // Expected change: accept the new graph as the baseline.
      reloaded.put(result);
    }
  }
  std::printf("\nflagged %d structural change(s); baselines updated.\n",
              changes);
  return all_unchanged && changes > 0 ? 0 : 1;
}
