// Use case "Configuration validation" (Bob, §3.1).
//
// A system administrator benchmarks alternative SPADE configurations and,
// in the process, reproduces the two real bugs the paper reports:
//
//  1. With `simplify` disabled (so setresuid/setresgid are explicitly
//     audited), one of the flushed vertices carries a property
//     initialized to a random value, which shows up in the benchmark as a
//     disconnected subgraph. Fixed upstream (`fixed_setres_vertex_bug`).
//
//  2. The IORuns filter, which should coalesce runs of identical read or
//     write edges, matches on a property key that SPADE does not emit —
//     so enabling it has no effect. Fixed upstream
//     (`fixed_ioruns_property`).
#include <cstdio>
#include <memory>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "systems/spade.h"

using namespace provmark;

namespace {

core::BenchmarkResult run_with(const bench_suite::BenchmarkProgram& program,
                               const systems::SpadeConfig& config) {
  core::PipelineOptions options;
  options.recorder = std::make_shared<systems::SpadeRecorder>(config);
  return core::run_benchmark(program, options);
}

/// A read-heavy program for the IORuns experiment: open then four reads.
bench_suite::BenchmarkProgram read_run_program() {
  bench_suite::BenchmarkProgram p;
  p.name = "read-run";
  p.group = 1;
  p.family = "Files";
  bench_suite::StageAction stage;
  stage.kind = bench_suite::StageAction::Kind::File;
  stage.path = "test.txt";
  p.staging = {stage};
  bench_suite::Op open;
  open.code = bench_suite::OpCode::Open;
  open.path = "test.txt";
  open.flags = 2;  // O_RDWR
  open.out = "fd";
  p.ops.push_back(open);
  for (int i = 0; i < 4; ++i) {
    bench_suite::Op read;
    read.code = bench_suite::OpCode::Read;
    read.var = "fd";
    read.a = 128;
    read.target = true;
    p.ops.push_back(read);
  }
  return p;
}

}  // namespace

int main() {
  // --- Bug 1: simplify=false random-property vertex -----------------------
  std::printf("Experiment 1: disabling `simplify` to audit setresuid "
              "explicitly\n\n");
  const bench_suite::BenchmarkProgram& setresuid =
      bench_suite::benchmark_by_name("setresuid");

  systems::SpadeConfig buggy;
  buggy.simplify = false;
  core::BenchmarkResult buggy_result = run_with(setresuid, buggy);
  std::printf("simplify=off (benchmarked version): %s, disconnected "
              "non-dummy nodes: %zu\n",
              core::status_name(buggy_result.status),
              buggy_result.disconnected_nodes().size());
  for (const graph::Id& id : buggy_result.disconnected_nodes()) {
    std::printf("  spurious vertex %s  <-- the random-property bug\n",
                id.c_str());
  }

  systems::SpadeConfig fixed = buggy;
  fixed.fixed_setres_vertex_bug = true;
  core::BenchmarkResult fixed_result = run_with(setresuid, fixed);
  std::printf("simplify=off (after upstream fix): %s, disconnected "
              "non-dummy nodes: %zu\n\n",
              core::status_name(fixed_result.status),
              fixed_result.disconnected_nodes().size());

  // --- Bug 2: IORuns filter has no effect ---------------------------------
  std::printf("Experiment 2: the IORuns filter on a run of 4 reads\n\n");
  bench_suite::BenchmarkProgram reads = read_run_program();

  systems::SpadeConfig base;
  core::BenchmarkResult no_filter = run_with(reads, base);

  systems::SpadeConfig with_filter = base;
  with_filter.io_runs_filter = true;
  core::BenchmarkResult filter_buggy = run_with(reads, with_filter);

  systems::SpadeConfig with_fixed_filter = with_filter;
  with_fixed_filter.fixed_ioruns_property = true;
  core::BenchmarkResult filter_fixed = run_with(reads, with_fixed_filter);

  std::printf("result edges without filter:            %zu\n",
              no_filter.result.edge_count());
  std::printf("result edges with IORuns (benchmarked): %zu  %s\n",
              filter_buggy.result.edge_count(),
              filter_buggy.result.edge_count() ==
                      no_filter.result.edge_count()
                  ? "<-- no effect: the property-name bug"
                  : "");
  std::printf("result edges with IORuns (after fix):   %zu\n\n",
              filter_fixed.result.edge_count());

  bool bug1_reproduced = !buggy_result.disconnected_nodes().empty() &&
                         fixed_result.disconnected_nodes().empty();
  bool bug2_reproduced =
      filter_buggy.result.edge_count() == no_filter.result.edge_count() &&
      filter_fixed.result.edge_count() < no_filter.result.edge_count();
  std::printf("bug 1 reproduced: %s\nbug 2 reproduced: %s\n",
              bug1_reproduced ? "yes" : "NO", bug2_reproduced ? "yes" : "NO");
  return bug1_reproduced && bug2_reproduced ? 0 : 1;
}
