// Use case "Tracking failed calls" (Alice, §3.1).
//
// A security analyst wants to know which recorders track syscalls that
// fail due to access-control violations: an unprivileged user attempts to
// overwrite /etc/passwd by renaming another file onto it.
//
// Expected outcome (paper):
//   * SPADE records nothing — its default audit rules only report
//     successful calls.
//   * OPUS intercepts the libc call before the kernel refuses it, so it
//     produces the same structure as a successful rename but with a
//     return-value property of -1.
//   * CamFlow could in principle observe the refused permission check but
//     does not serialize it in the baseline configuration.
#include <cstdio>
#include <memory>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "systems/camflow.h"

using namespace provmark;

int main() {
  bench_suite::BenchmarkProgram program =
      bench_suite::failed_rename_benchmark();
  std::printf("Alice's scenario: unprivileged rename of %s onto %s\n\n",
              "~/myfile", "/etc/passwd");

  for (const char* system : {"spade", "opus", "camflow"}) {
    core::PipelineOptions options;
    options.system = system;
    core::BenchmarkResult result = core::run_benchmark(program, options);
    std::printf("== %s: %s ==\n", system,
                core::status_name(result.status));
    if (result.status == core::BenchmarkStatus::Ok) {
      std::printf("%s", core::result_dot(result).c_str());
      // Surface the return-value property OPUS attaches.
      for (const graph::Node& n : result.result.nodes()) {
        auto ret = n.props.find("ret");
        if (ret != n.props.end()) {
          std::printf("   -> node %s records ret=%s (errno=%s)\n",
                      n.id.c_str(), ret->second.c_str(),
                      n.props.count("errno") ? n.props.at("errno").c_str()
                                             : "?");
        }
      }
    }
    std::printf("\n");
  }

  // CamFlow *can* monitor failed permission checks; show what a
  // deny-recording configuration would capture.
  std::printf("== camflow (record_denied=true, non-baseline) ==\n");
  systems::CamflowConfig config;
  config.record_denied = true;
  core::PipelineOptions options;
  options.recorder = std::make_shared<systems::CamflowRecorder>(config);
  core::BenchmarkResult result = core::run_benchmark(program, options);
  std::printf("status: %s\n", core::status_name(result.status));
  if (result.status == core::BenchmarkStatus::Ok) {
    std::printf("%s", core::result_dot(result).c_str());
  }
  std::printf("\nAlice's conclusion: for auditing failed calls, OPUS is the "
              "only recorder\nthat captures them out of the box.\n");
  return 0;
}
