// Quickstart: benchmark one syscall on one provenance system.
//
// Mirrors the paper's single-execution usage:
//   ./fullAutomation.py spg <SPADE> benchmarkProgram/.../cmdRename 2
//
// Usage: quickstart [system] [syscall]
//   system   spade | opus | camflow     (default: spade)
//   syscall  any Table 1 benchmark name (default: rename)
#include <cstdio>
#include <string>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datalog/fact_io.h"

using namespace provmark;

int main(int argc, char** argv) {
  std::string system = argc > 1 ? argv[1] : "spade";
  std::string syscall = argc > 2 ? argv[2] : "rename";

  const bench_suite::BenchmarkProgram& program =
      bench_suite::benchmark_by_name(syscall);

  core::PipelineOptions options;
  options.system = system;
  core::BenchmarkResult result = core::run_benchmark(program, options);

  std::printf("%s\n\n", core::summarize(result).c_str());
  std::printf("benchmark result (Graphviz DOT):\n%s\n",
              core::result_dot(result).c_str());
  std::printf("benchmark result (Datalog, the paper's uniform format):\n%s\n",
              datalog::to_datalog(result.result, "result").c_str());
  std::printf("pipeline stages: recording %.3fs, transformation %.3fs, "
              "generalization %.3fs, comparison %.3fs\n",
              result.timings.recording, result.timings.transformation,
              result.timings.generalization, result.timings.comparison);
  std::printf("trials: %d run, %d discarded as inconsistent, "
              "%d transient properties stripped\n",
              result.trials_run, result.trials_discarded,
              result.transient_properties);
  return result.status == core::BenchmarkStatus::Failed ? 1 : 0;
}
