// Use case "Suspicious activity detection" (Dora, §3.1).
//
// A security researcher instruments an attack script so the privilege
// escalation step is the target activity, then uses ProvMark to extract
// exactly the provenance structure CamFlow records for that step. The
// extracted pattern — queried here with the Datalog engine over the
// benchmark result — is what an online detector would watch for.
#include <cstdio>
#include <string>

#include "bench_suite/program.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datalog/engine.h"
#include "datalog/fact_io.h"

using namespace provmark;

namespace {

/// The attack script: ordinary activity (drop a file), then the privilege
/// escalation (setuid 0) followed by reading a sensitive file — the
/// escalation and its payoff are the target activity.
bench_suite::BenchmarkProgram attack_program() {
  bench_suite::BenchmarkProgram p;
  p.name = "priv-escalation";
  p.group = 2;
  p.family = "Attacks";
  // The sensitive file, root-only.
  bench_suite::StageAction shadow;
  shadow.kind = bench_suite::StageAction::Kind::File;
  shadow.path = "/etc/shadow";
  shadow.mode = 0600;
  p.staging = {shadow};

  bench_suite::Op drop;  // background: attacker stages a file
  drop.code = bench_suite::OpCode::Creat;
  drop.path = "loot.txt";
  drop.out = "loot";
  p.ops.push_back(drop);

  bench_suite::Op escalate;  // target: become root
  escalate.code = bench_suite::OpCode::SetUid;
  escalate.a = 0;
  escalate.target = true;
  p.ops.push_back(escalate);

  bench_suite::Op open_shadow;  // target: read the sensitive file
  open_shadow.code = bench_suite::OpCode::Open;
  open_shadow.path = "/etc/shadow";
  open_shadow.flags = 0;  // O_RDONLY
  open_shadow.out = "fd";
  open_shadow.target = true;
  p.ops.push_back(open_shadow);

  bench_suite::Op read_shadow;
  read_shadow.code = bench_suite::OpCode::Read;
  read_shadow.var = "fd";
  read_shadow.a = 512;
  read_shadow.target = true;
  p.ops.push_back(read_shadow);
  return p;
}

}  // namespace

int main() {
  bench_suite::BenchmarkProgram program = attack_program();

  core::PipelineOptions options;
  options.system = "camflow";
  core::BenchmarkResult result = core::run_benchmark(program, options);
  std::printf("target-activity extraction: %s\n\n",
              core::summarize(result).c_str());
  std::printf("%s\n", core::result_dot(result).c_str());

  // Query the extracted pattern with Datalog: a task version change
  // (privilege transition) followed by that task using a file entity.
  datalog::Engine engine;
  engine.load_program(datalog::to_datalog(result.result, "r"));
  engine.load_program(
      "escalation(New, Old) :- er(E, New, Old, \"wasInformedBy\").\n"
      "sensitive_read(Task, File) :- er(E, Task, File, \"used\").\n"
      "alert(New, File) :- escalation(New, Old), "
      "sensitive_read(New, File).\n");
  auto alerts = engine.query("alert(Task, File)");
  std::printf("detector query results (task escalated then read a file):\n");
  for (const auto& binding : alerts) {
    std::printf("  ALERT task=%s file=%s\n",
                binding.at("Task").c_str(), binding.at("File").c_str());
  }
  if (alerts.empty()) {
    std::printf("  (no escalation-then-read pattern found)\n");
  }
  std::printf("\nDora now deploys this graph pattern as a CamFlow runtime "
              "detection rule.\n");
  return alerts.empty() ? 1 : 0;
}
