// Session-sharded serve cluster: one routing front end, N supervised
// member daemons (docs/serve.md, "Cluster sharding").
//
// `provmark cluster` hosts a router that accepts the existing
// feed/query wire protocol on one AF_UNIX socket and proxies each
// session's requests to the member that owns it — ownership is
// stable_hash(session id) mod N, so a session's whole event stream
// lands in exactly one member's journal and PR-8's fsync-before-ack
// contract survives sharding end to end: `ok <seq>` still means "one
// member journaled and fsynced this event".
//
// Members are long-lived `run_daemon` children, each with its own
// journal subdirectory (<root>/member-K) and socket (<root>/
// member-K.sock). Supervision is core::DaemonSupervisor — the
// daemon-mode generalization of the PR-6 sweep supervisor: every
// member streams liveness heartbeats over an inherited control pipe;
// silence past the deadline or a reaped corpse means kill + restart
// with the same seeded backoff envelope (core::backoff_ms). During a
// member's restart window — from death until the new incarnation
// finishes journal replay and binds its socket — the router answers
// `busy` for that member's sessions and for every request already in
// flight to it. Nothing is ever silently dropped: a client that
// retries busy (feed --feed-retries) rides the window out, and the
// restarted member recovers bit-identically from its journal.
//
// The router itself holds no session state and journals nothing, so
// request proxying is O(1): parse, hash, bounded-window forward. Each
// member link caps its in-flight requests (`member_window`); a full
// window answers `busy` (backpressure, never queueing unbounded bytes
// in the router).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/service.h"

namespace provmark::serve {

struct ClusterOptions {
  /// Front socket the router listens on (the one clients feed).
  std::string socket_path;
  /// Cluster root; member K journals into <root>/member-K and listens
  /// on <root>/member-K.sock.
  std::filesystem::path root;
  int members = 3;
  /// Per-member in-flight request cap; a full window answers `busy`.
  int member_window = 32;
  /// Member liveness heartbeat period (control pipe).
  double heartbeat_ms = 200;
  /// Silence budget before a member is declared hung and killed;
  /// 0 = 8 × heartbeat_ms.
  double heartbeat_deadline_ms = 0;
  /// Starting budget (bind + journal replay) before the first beat.
  double start_deadline_ms = 30'000;
  /// Restart backoff envelope (core::backoff_ms, seeded by
  /// service.seed).
  std::int64_t backoff_base_ms = 250;
  std::int64_t backoff_cap_ms = 10'000;
  /// Consecutive failed incarnations before a member is given up on;
  /// -1 = restart forever.
  int max_restarts = -1;
  /// Template for every member's Service (workers, queue caps, seed,
  /// checkpoint cadence). All members share the same seed: a session's
  /// seed derives from (seed, session id), so digests are bit-identical
  /// to an unsharded daemon fed the same per-session streams.
  ServiceOptions service;
  /// Forwarded fault-injection spec: member-targeted rules re-arm in
  /// each member child with (member, incarnation); route-drop rules
  /// fire in the router.
  std::string fault_spec;
};

/// The member that owns `session`: stable_hash mod members.
/// Deterministic across runs and processes — the routing fairness gate
/// and the unsharded reference reconstruction both rely on it.
int member_for(const std::string& session, int members);

/// <root>/member-K — member K's journal directory.
std::filesystem::path member_root(const std::filesystem::path& root,
                                  int member);

/// <root>/member-K.sock — member K's listening socket.
std::string member_socket_path(const std::filesystem::path& root,
                               int member);

/// Router health counters, the body of a `stats` response on the front
/// socket. Key order is a published contract
/// (tests/serve/stats_contract_test.cpp) — CI polling scripts grep
/// these names.
struct RouterStats {
  int cluster_members = 0;
  int members_up = 0;
  std::int64_t member_restarts = 0;
  std::int64_t hung_kills = 0;
  std::uint64_t routed_events = 0;
  std::uint64_t routed_queries = 0;
  std::uint64_t proxied_responses = 0;
  /// `busy` answered because the owning member was down/restarting.
  std::uint64_t busy_member_down = 0;
  /// `busy` answered because the member's in-flight window was full.
  std::uint64_t busy_window_full = 0;
  std::uint64_t route_drops = 0;
  std::uint64_t heartbeats_seen = 0;

  struct Member {
    std::string state = "backoff";  ///< core::member_state_name
    std::uint64_t routed = 0;       ///< requests forwarded to it
  };
  std::vector<Member> members;

  /// key=value lines: the fixed keys above in order, then
  /// member<k>_state= / member<k>_routed= per member.
  std::string to_text() const;
};

/// Run the router + member fleet until SIGTERM/SIGINT: spawn members,
/// proxy, supervise, restart. On shutdown members are SIGTERMed (each
/// drains + checkpoints) and reaped. Returns the process exit code
/// (0 on clean shutdown, 1 when the front listener cannot be bound).
int run_cluster(const ClusterOptions& options);

}  // namespace provmark::serve
