#include "serve/daemon.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace provmark::serve {

namespace {

int g_signal_pipe_write = -1;

void on_signal(int) {
  // async-signal-safe: one byte wakes the poll loop.
  const char byte = 1;
  if (g_signal_pipe_write >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

struct Connection {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
};

bool flush_outbuf(Connection& conn) {
  while (!conn.outbuf.empty()) {
    ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer gone
    }
    conn.outbuf.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

int make_listener(const std::string& socket_path) {
  ::unlink(socket_path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int run_daemon(const DaemonOptions& options) {
  Service service(options.service);

  int listener = make_listener(options.socket_path);
  if (listener < 0) {
    std::fprintf(stderr, "serve: cannot listen on %s: %s\n",
                 options.socket_path.c_str(), std::strerror(errno));
    return 1;
  }

  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    ::close(listener);
    std::fprintf(stderr, "serve: cannot create signal pipe\n");
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::printf("serve: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);

  std::map<int, Connection> connections;
  bool shutting_down = false;
  while (!shutting_down) {
    std::vector<pollfd> fds;
    fds.push_back({signal_pipe[0], POLLIN, 0});
    fds.push_back({listener, POLLIN, 0});
    for (auto& [fd, conn] : connections) {
      short events = POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      shutting_down = true;
      break;
    }
    if (fds[1].revents & POLLIN) {
      int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        Connection conn;
        conn.fd = fd;
        connections.emplace(fd, std::move(conn));
      }
    }

    std::vector<int> closed;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      Connection& conn = connections[fds[i].fd];
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (conn.outbuf.empty() || !(fds[i].revents & POLLHUP)) {
          closed.push_back(conn.fd);
          continue;
        }
      }
      if (fds[i].revents & POLLIN) {
        char buffer[4096];
        ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
        if (n <= 0 && errno != EINTR && errno != EAGAIN) {
          closed.push_back(conn.fd);
          continue;
        }
        if (n > 0) conn.inbuf.append(buffer, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = conn.inbuf.find('\n')) != std::string::npos) {
          std::string line = conn.inbuf.substr(0, nl);
          conn.inbuf.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty()) continue;
          Response response;
          try {
            response = service.submit(parse_request(line));
          } catch (const std::exception& e) {
            response = Response{Status::BadRequest, 0, e.what()};
          }
          conn.outbuf += format_response(response) + "\n";
        }
      }
      if (!conn.outbuf.empty() && !flush_outbuf(conn)) {
        closed.push_back(conn.fd);
      }
    }
    for (int fd : closed) {
      ::close(fd);
      connections.erase(fd);
    }
  }

  // Graceful drain: finish queued applies, checkpoint + compact every
  // healthy session, then leave. Clients see their sockets close after
  // any buffered responses are flushed best-effort.
  std::fprintf(stderr, "serve: draining\n");
  service.drain();
  for (auto& [fd, conn] : connections) {
    flush_outbuf(conn);
    ::close(fd);
  }
  ::close(listener);
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  g_signal_pipe_write = -1;
  ::unlink(options.socket_path.c_str());
  std::fprintf(stderr, "serve: clean shutdown\n");
  return 0;
}

int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    std::fprintf(stderr, "feed: socket path too long\n");
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "feed: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }
  ::signal(SIGPIPE, SIG_IGN);

  bool all_ok = true;
  std::string line;
  std::string response_buf;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "feed: connection lost\n");
        ::close(fd);
        return 1;
      }
      sent += static_cast<std::size_t>(n);
    }
    // Synchronous request/response: one line back per line sent.
    std::size_t nl;
    while ((nl = response_buf.find('\n')) == std::string::npos) {
      char buffer[4096];
      ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "feed: connection closed by daemon\n");
        ::close(fd);
        return 1;
      }
      response_buf.append(buffer, static_cast<std::size_t>(n));
    }
    const std::string response_line = response_buf.substr(0, nl);
    response_buf.erase(0, nl + 1);
    out << response_line << "\n";
    try {
      Response response = parse_response(response_line);
      if (response.status != Status::Ok &&
          response.status != Status::Result) {
        all_ok = false;
      }
    } catch (const std::exception&) {
      all_ok = false;
    }
  }
  ::close(fd);
  return all_ok ? 0 : 3;
}

}  // namespace provmark::serve
