#include "serve/daemon.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/supervise.h"
#include "serve/replicate.h"
#include "serve/socket_util.h"
#include "util/fault.h"

namespace provmark::serve {

namespace {

using Clock = std::chrono::steady_clock;

int g_signal_pipe_write = -1;

void on_signal(int) {
  // async-signal-safe: one byte wakes the poll loop.
  const char byte = 1;
  if (g_signal_pipe_write >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

/// One response awaiting delivery on a connection. Responses go back
/// in request order, so a sync-mode event ack parked behind the
/// standby's fsync also parks every later response on that connection.
struct Parked {
  bool ready = false;
  bool gated = false;  ///< waiting on the standby's cumulative ack
  std::string session;
  std::uint64_t seq = 0;
  std::string line;  ///< response line, no newline
};

struct Connection {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  bool is_replica_link = false;  ///< inbound conn that sent repl-hello
  std::deque<Parked> parked;
};

// Socket plumbing (listener with stale-socket probe, connects, line
// framing) lives in serve/socket_util.h, shared with the cluster
// router.
bool flush_outbuf(Connection& conn) {
  return flush_buffer(conn.fd, conn.outbuf);
}

}  // namespace

int run_daemon(const DaemonOptions& options) {
  // The Service is constructed before the replicators but its sinks
  // must reach them, so the sinks capture atomics filled in afterwards
  // (a sink fired during recovery simply sees nullptr and no-ops).
  std::atomic<PrimaryReplicator*> primary_ptr{nullptr};
  std::atomic<ReplicaReplicator*> replica_ptr{nullptr};
  std::atomic<bool> serving_as_replica{!options.replica_of.empty()};

  DaemonOptions opts = options;
  opts.service.on_record = [&primary_ptr](const std::string& session,
                                          const JournalRecord& record) {
    if (PrimaryReplicator* p = primary_ptr.load()) p->on_record(session, record);
  };
  opts.service.on_checkpoint = [&primary_ptr, &replica_ptr](
                                   const std::string& session,
                                   std::uint64_t seq,
                                   const std::string& digest) {
    if (PrimaryReplicator* p = primary_ptr.load()) {
      p->on_checkpoint(session, seq, digest);
    }
    if (ReplicaReplicator* r = replica_ptr.load()) {
      r->on_checkpoint(session, seq, digest);
    }
  };
  opts.service.on_applied =
      [&replica_ptr, &serving_as_replica](
          const std::string& session, std::uint64_t seq,
          const std::function<std::string()>& digest_now) {
        if (!serving_as_replica.load()) return;
        if (ReplicaReplicator* r = replica_ptr.load()) {
          r->on_applied(session, seq, digest_now);
        }
      };
  const int cluster_member = options.cluster_member;
  opts.service.stats_extra = [&primary_ptr, &replica_ptr,
                              &serving_as_replica,
                              cluster_member]() -> std::string {
    std::string text;
    if (serving_as_replica.load()) {
      if (ReplicaReplicator* r = replica_ptr.load()) text = r->stats_text();
    } else if (PrimaryReplicator* p = primary_ptr.load()) {
      text = p->stats_text();
    }
    if (cluster_member >= 0) {
      text += "cluster_member=" + std::to_string(cluster_member) + "\n";
    }
    return text;
  };

  Service service(opts.service);

  ReplicationConfig repl_config;
  repl_config.sync_mode = options.repl_sync;
  repl_config.heartbeat_ms = options.heartbeat_ms;
  repl_config.promote_after_missed = options.promote_after_missed;
  repl_config.seed = options.service.seed;
  PrimaryReplicator primary(service, repl_config);
  ReplicaReplicator replica(service, repl_config);
  primary_ptr.store(&primary);
  replica_ptr.store(&replica);

  std::string listen_error;
  int listener = make_unix_listener(options.socket_path, &listen_error);
  if (listener < 0) {
    std::fprintf(stderr, "serve: %s\n", listen_error.c_str());
    return 1;
  }

  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    ::close(listener);
    std::fprintf(stderr, "serve: cannot create signal pipe\n");
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::printf("serve: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);
  if (serving_as_replica.load()) {
    std::fprintf(stderr, "serve: standby of %s (mode %s)\n",
                 options.replica_of.c_str(),
                 options.repl_sync ? "sync" : "async");
  }

  // Cluster-member liveness: one byte per period on the control pipe
  // to the supervising router. The first beat is sent only now —
  // after the Service constructor finished journal replay and the
  // listener is bound — so the router's Starting→Up transition means
  // "replay complete, routable". A fired member-hang fault goes
  // silent here and lets the router's deadline machinery kill us.
  auto send_heartbeat = [&options] {
    if (options.heartbeat_fd < 0) return;
    if (util::fault::member_heartbeats_suppressed()) return;
    const char byte = 'h';
    ssize_t n;
    do {
      n = ::write(options.heartbeat_fd, &byte, 1);
    } while (n < 0 && errno == EINTR);
  };
  Clock::time_point last_member_heartbeat = Clock::now();
  send_heartbeat();

  std::map<int, Connection> connections;
  int replica_conn_fd = -1;  ///< primary: the inbound replication link

  // Standby link to the primary, with seeded-backoff reconnect.
  int link_fd = -1;
  std::string link_inbuf;
  std::string link_outbuf;
  int connect_attempt = 0;
  Clock::time_point next_connect = Clock::now();
  Clock::time_point last_heartbeat = Clock::now();

  // repl-partition fault enactment: black-hole the replication link
  // (drop inbound, hold outbound) until the deadline, then drop it.
  bool partitioned = false;
  Clock::time_point partition_until{};

  core::SuperviseOptions backoff_opts;
  backoff_opts.seed = repl_config.seed;
  backoff_opts.backoff_base_ms = repl_config.backoff_base_ms;
  backoff_opts.backoff_cap_ms = repl_config.backoff_cap_ms;

  auto fail_gated_parked = [&connections] {
    // The standby is gone (or its stream died): every parked sync-mode
    // ack becomes `busy` — journaled but unacknowledged is a valid
    // history, and the client's retry path owns it from here.
    for (auto& [fd, conn] : connections) {
      for (Parked& parked : conn.parked) {
        if (parked.gated && !parked.ready) {
          parked.gated = false;
          parked.ready = true;
          parked.line = format_response(Response{Status::Busy, 0, ""});
        }
      }
    }
  };

  auto drop_replica_conn = [&](const char* why) {
    if (replica_conn_fd < 0) return;
    std::fprintf(stderr, "serve: replication link closed (%s)\n", why);
    auto it = connections.find(replica_conn_fd);
    if (it != connections.end()) {
      ::close(it->second.fd);
      connections.erase(it);
    }
    replica_conn_fd = -1;
    partitioned = false;
    primary.on_replica_disconnected();
    fail_gated_parked();
  };

  auto drop_link = [&](const char* why) {
    if (link_fd < 0) return;
    std::fprintf(stderr, "serve: link to primary lost (%s)\n", why);
    ::close(link_fd);
    link_fd = -1;
    link_inbuf.clear();
    link_outbuf.clear();
    replica.on_link_disconnected();
  };

  auto promote = [&](const char* how) {
    drop_link(how);
    serving_as_replica.store(false);
    // Finish replicated catch-up so the first answers we give as
    // primary already cover every record the dead primary acked.
    service.flush();
    std::fprintf(stderr, "serve: promoted to primary (%s)\n", how);
  };

  auto resolve_parked = [&](Connection& conn) {
    for (Parked& parked : conn.parked) {
      if (!parked.gated || parked.ready) continue;
      switch (primary.ack_state(parked.session, parked.seq)) {
        case PrimaryReplicator::AckState::Acked:
          parked.gated = false;
          parked.ready = true;
          break;
        case PrimaryReplicator::AckState::Failed:
          parked.gated = false;
          parked.ready = true;
          parked.line = format_response(Response{Status::Busy, 0, ""});
          break;
        case PrimaryReplicator::AckState::Pending:
          break;
      }
    }
    while (!conn.parked.empty() && conn.parked.front().ready) {
      conn.outbuf += conn.parked.front().line;
      conn.outbuf += '\n';
      conn.parked.pop_front();
    }
  };

  auto respond = [&](Connection& conn, const Response& response) {
    if (conn.parked.empty()) {
      conn.outbuf += format_response(response);
      conn.outbuf += '\n';
    } else {
      Parked parked;
      parked.ready = true;
      parked.line = format_response(response);
      conn.parked.push_back(std::move(parked));
    }
  };

  auto handle_request_line = [&](Connection& conn, const std::string& line) {
    Request request;
    try {
      request = parse_request(line);
    } catch (const std::exception& e) {
      respond(conn, Response{Status::BadRequest, 0, e.what()});
      return;
    }
    if (!request.is_event && request.query == QueryKind::Promote) {
      if (serving_as_replica.load()) {
        promote("promote request");
        respond(conn, Response{Status::Result, 0, "promoted"});
      } else {
        respond(conn, Response{Status::Result, 0, "already-primary"});
      }
      return;
    }
    if (request.is_event && serving_as_replica.load()) {
      respond(conn,
              Response{Status::Error, 0,
                       "standby: events are refused until promotion; "
                       "feed the primary or run `provmark promote`"});
      return;
    }
    if (request.is_event && !serving_as_replica.load() &&
        primary.sync_mode()) {
      if (!primary.replica_connected()) {
        // Nothing journaled: in sync mode an ack promises standby
        // durability, which no standby can currently provide.
        respond(conn, Response{Status::Busy, 0, ""});
        return;
      }
      Response response = service.submit(request);
      if (response.status == Status::Ok) {
        Parked parked;
        parked.gated = true;
        parked.session = request.session;
        parked.seq = response.seq;
        parked.line = format_response(response);
        conn.parked.push_back(std::move(parked));
      } else {
        respond(conn, response);
      }
      return;
    }
    respond(conn, service.submit(request));
  };

  auto handle_repl_line = [&](Connection& conn, const std::string& line) {
    if (serving_as_replica.load()) {
      respond(conn, Response{Status::Error, 0,
                             "standby: cannot host a replication link"});
      return;
    }
    if (!conn.is_replica_link) {
      if (line.rfind("repl-hello ", 0) != 0) {
        respond(conn, Response{Status::BadRequest, 0,
                               "replication verbs require repl-hello first"});
        return;
      }
      if (replica_conn_fd >= 0) {
        // A newer standby supersedes the old link.
        drop_replica_conn("superseded by a new standby");
      }
      conn.is_replica_link = true;
      replica_conn_fd = conn.fd;
      primary.on_replica_connected();
      std::fprintf(stderr, "serve: replication link attached\n");
    }
    try {
      primary.handle_line(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: replication protocol error: %s\n",
                   e.what());
      drop_replica_conn("protocol error");
    }
  };

  bool shutting_down = false;
  while (!shutting_down) {
    const Clock::time_point now = Clock::now();

    if (options.heartbeat_fd >= 0 &&
        now - last_member_heartbeat >=
            std::chrono::duration<double, std::milli>(
                options.member_heartbeat_ms)) {
      last_member_heartbeat = now;
      send_heartbeat();
    }

    // Standby link maintenance: (re)connect with seeded backoff.
    if (serving_as_replica.load() && link_fd < 0 && now >= next_connect) {
      link_fd = connect_unix(options.replica_of);
      if (link_fd >= 0) {
        connect_attempt = 0;
        link_inbuf.clear();
        link_outbuf.clear();
        replica.on_link_connected();
        link_outbuf += replica.take_output();
        last_heartbeat = now;
        std::fprintf(stderr, "serve: connected to primary %s\n",
                     options.replica_of.c_str());
      } else {
        ++connect_attempt;
        next_connect =
            now + std::chrono::milliseconds(core::backoff_ms(
                      repl_config.seed, 0, connect_attempt, backoff_opts));
      }
    }

    // Standby heartbeats: tick, then enforce the reconnect and
    // auto-promote budgets.
    if (serving_as_replica.load() && link_fd >= 0 &&
        now - last_heartbeat >=
            std::chrono::duration<double, std::milli>(
                repl_config.heartbeat_ms)) {
      last_heartbeat = now;
      replica.heartbeat_tick();
      link_outbuf += replica.take_output();
      const int missed = replica.missed_heartbeats();
      if (repl_config.promote_after_missed > 0 &&
          missed >= repl_config.promote_after_missed) {
        std::fprintf(stderr,
                     "serve: %d heartbeats unanswered, auto-promoting\n",
                     missed);
        promote("missed-heartbeat budget");
      } else if (missed >= options.reconnect_after_missed) {
        drop_link("heartbeats unanswered");
        connect_attempt = 1;
        next_connect =
            now + std::chrono::milliseconds(core::backoff_ms(
                      repl_config.seed, 0, connect_attempt, backoff_opts));
      }
    }

    // repl-partition: deadline passed -> drop the link for real.
    if (partitioned && now >= partition_until) {
      drop_replica_conn("partition deadline");
    }

    const bool repl_active = serving_as_replica.load() ||
                             replica_conn_fd >= 0 || partitioned ||
                             link_fd >= 0;
    int timeout =
        repl_active
            ? std::max(10, static_cast<int>(repl_config.heartbeat_ms / 4))
            : -1;
    if (options.heartbeat_fd >= 0) {
      // Wake often enough to keep the liveness beat ahead of the
      // router's deadline even when no client traffic arrives.
      const int beat =
          std::max(10, static_cast<int>(options.member_heartbeat_ms / 2));
      timeout = timeout < 0 ? beat : std::min(timeout, beat);
    }

    std::vector<pollfd> fds;
    fds.push_back({signal_pipe[0], POLLIN, 0});
    fds.push_back({listener, POLLIN, 0});
    for (auto& [fd, conn] : connections) {
      short events = POLLIN;
      const bool held = partitioned && fd == replica_conn_fd;
      if (!conn.outbuf.empty() && !held) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const std::size_t link_index = fds.size();
    if (link_fd >= 0) {
      short events = POLLIN;
      if (!link_outbuf.empty()) events |= POLLOUT;
      fds.push_back({link_fd, events, 0});
    }

    if (::poll(fds.data(), fds.size(), timeout) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      shutting_down = true;
      break;
    }
    if (fds[1].revents & POLLIN) {
      int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        Connection conn;
        conn.fd = fd;
        connections.emplace(fd, std::move(conn));
      }
    }

    std::vector<int> closed;
    for (std::size_t i = 2; i < fds.size() && i < link_index; ++i) {
      auto conn_it = connections.find(fds[i].fd);
      if (conn_it == connections.end()) continue;
      Connection& conn = conn_it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (conn.outbuf.empty() || !(fds[i].revents & POLLHUP)) {
          closed.push_back(conn.fd);
          continue;
        }
      }
      const int cfd = conn.fd;
      if (fds[i].revents & POLLIN) {
        if (!read_available(conn.fd, conn.inbuf)) {
          closed.push_back(conn.fd);
          continue;
        }
        if (partitioned && conn.fd == replica_conn_fd) {
          conn.inbuf.clear();  // black-hole: inbound bytes vanish
        }
        // handle_repl_line can drop this very connection (protocol
        // error on the replication link), so re-find it per line.
        std::string line;
        while (true) {
          auto alive = connections.find(cfd);
          if (alive == connections.end()) break;
          if (!next_line(alive->second.inbuf, line)) break;
          if (line.empty()) continue;
          if (alive->second.is_replica_link ||
              line.rfind("repl-", 0) == 0) {
            handle_repl_line(alive->second, line);
          } else {
            handle_request_line(alive->second, line);
          }
        }
      }
      auto alive = connections.find(cfd);
      if (alive == connections.end()) continue;
      const bool held = partitioned && cfd == replica_conn_fd;
      if (!held && !alive->second.outbuf.empty() &&
          !flush_outbuf(alive->second)) {
        closed.push_back(cfd);
      }
    }
    for (int fd : closed) {
      if (fd == replica_conn_fd) {
        drop_replica_conn("peer closed");
      } else {
        auto it = connections.find(fd);
        if (it != connections.end()) {
          ::close(it->second.fd);
          connections.erase(it);
        }
      }
    }

    // Standby link I/O.
    if (link_fd >= 0 && link_index < fds.size()) {
      const pollfd& lp = fds[link_index];
      bool lost = false;
      if (lp.revents & (POLLERR | POLLHUP | POLLNVAL)) lost = true;
      if (!lost && (lp.revents & POLLIN)) {
        if (!read_available(link_fd, link_inbuf)) {
          lost = true;
        } else {
          std::string line;
          while (next_line(link_inbuf, line)) {
            if (line.empty()) continue;
            try {
              replica.handle_line(line);
            } catch (const std::exception& e) {
              std::fprintf(stderr,
                           "serve: replication protocol error: %s\n",
                           e.what());
              lost = true;
              break;
            }
            if (!serving_as_replica.load()) break;  // promoted mid-batch
          }
        }
      }
      if (lost) {
        drop_link("peer closed");
        connect_attempt = 1;
        next_connect = Clock::now() +
                       std::chrono::milliseconds(core::backoff_ms(
                           repl_config.seed, 0, connect_attempt,
                           backoff_opts));
      }
    }

    // Drain replicator output: worker-thread sinks (repl-check,
    // repl-ack, repl-diverged) queue lines between poll wakes.
    if (!serving_as_replica.load()) {
      primary.flush_pending_resets();
      if (replica_conn_fd >= 0) {
        auto it = connections.find(replica_conn_fd);
        if (it != connections.end()) {
          it->second.outbuf += primary.take_output();
          // Link faults fire at forwarded records; enact them here.
          if (primary.take_link_drop_request()) {
            drop_replica_conn("fault-injection: repl-link-drop");
          } else {
            const double ms = primary.take_partition_request_ms();
            if (ms > 0 && !partitioned) {
              partitioned = true;
              partition_until =
                  Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(ms));
            }
          }
        }
      }
    }
    if (link_fd >= 0) {
      link_outbuf += replica.take_output();
      if (!link_outbuf.empty()) {
        Connection shim;
        shim.fd = link_fd;
        shim.outbuf = std::move(link_outbuf);
        if (!flush_outbuf(shim)) {
          drop_link("peer closed");
        } else {
          link_outbuf = std::move(shim.outbuf);
        }
      }
    }

    // Sync-mode acks: release what the standby has fsynced.
    for (auto& [fd, conn] : connections) {
      if (conn.parked.empty()) continue;
      resolve_parked(conn);
      const bool held = partitioned && fd == replica_conn_fd;
      if (!held && !conn.outbuf.empty()) flush_outbuf(conn);
    }
  }

  // Graceful drain: finish queued applies, checkpoint + compact every
  // healthy session, then leave. Clients see their sockets close after
  // any buffered responses are flushed best-effort.
  std::fprintf(stderr, "serve: draining\n");
  service.drain();
  fail_gated_parked();
  for (auto& [fd, conn] : connections) {
    resolve_parked(conn);
    flush_outbuf(conn);
    ::close(fd);
  }
  if (link_fd >= 0) ::close(link_fd);
  ::close(listener);
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  g_signal_pipe_write = -1;
  ::unlink(options.socket_path.c_str());
  std::fprintf(stderr, "serve: clean shutdown\n");
  return 0;
}

std::int64_t feed_backoff_ms(std::uint64_t seed, int request_index,
                             int attempt, const FeedOptions& options) {
  core::SuperviseOptions sup;
  sup.seed = seed;
  sup.backoff_base_ms = options.backoff_base_ms;
  sup.backoff_cap_ms = options.backoff_cap_ms;
  // Keyed by (seed, request index, attempt): the exact schedule two
  // runs of the same feed sleep is reproducible, which the retry tests
  // assert literally.
  return core::backoff_ms(seed, request_index, attempt, sup);
}

int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out, const FeedOptions& options) {
  ::signal(SIGPIPE, SIG_IGN);
  int fd = -1;

  bool all_ok = true;
  std::string line;
  std::string response_buf;
  int request_index = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++request_index;
    const std::string framed = line + "\n";
    for (int attempt = 0;; ++attempt) {
      // Connection failures — refused connects, resets, the daemon
      // closing mid-request — consume the same per-request retry
      // budget as shed/busy, so a feed with --feed-retries rides out a
      // daemon or cluster-member restart window. Re-sending after a
      // mid-request loss is at-least-once delivery by design.
      auto connection_lost = [&](const char* what) -> int {
        if (fd >= 0) ::close(fd);
        fd = -1;
        response_buf.clear();
        if (attempt < options.retries) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              feed_backoff_ms(options.seed, request_index, attempt + 1,
                              options)));
          return 0;  // retry
        }
        std::fprintf(stderr, "feed: %s\n", what);
        return 1;  // budget spent: fatal
      };

      if (fd < 0) {
        fd = connect_unix(socket_path);
        if (fd < 0) {
          const std::string what =
              "cannot connect to " + socket_path + ": " +
              std::strerror(errno);
          if (connection_lost(what.c_str()) != 0) return 1;
          continue;
        }
      }

      std::size_t sent = 0;
      bool lost = false;
      while (sent < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          lost = true;
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      if (lost) {
        if (connection_lost("connection lost") != 0) return 1;
        continue;
      }
      // Synchronous request/response: one line back per line sent.
      std::size_t nl;
      while ((nl = response_buf.find('\n')) == std::string::npos) {
        char buffer[4096];
        ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          lost = true;
          break;
        }
        response_buf.append(buffer, static_cast<std::size_t>(n));
      }
      if (lost) {
        if (connection_lost("connection closed by daemon") != 0) return 1;
        continue;
      }
      const std::string response_line = response_buf.substr(0, nl);
      response_buf.erase(0, nl + 1);

      bool retry = false;
      bool ok = true;
      try {
        Response response = parse_response(response_line);
        ok = response.status == Status::Ok ||
             response.status == Status::Result;
        retry = (response.status == Status::Shed ||
                 response.status == Status::Busy) &&
                attempt < options.retries;
      } catch (const std::exception&) {
        ok = false;
      }
      if (retry) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            feed_backoff_ms(options.seed, request_index, attempt + 1,
                            options)));
        continue;
      }
      out << response_line << "\n";
      if (!ok) all_ok = false;
      break;
    }
  }
  if (fd >= 0) ::close(fd);
  return all_ok ? 0 : 3;
}

int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out) {
  return run_feed(socket_path, in, out, FeedOptions{});
}

}  // namespace provmark::serve
