// One client's streaming session: an incremental Datalog fixpoint fed
// by journaled events.
//
// A session is pure logic — no I/O, no locks, no queues; the Service
// owns its journal, its mutex and its scheduling. That split is what
// makes the recovery proof simple: replay calls exactly this apply()
// on exactly the journal's records, so "recovered state == live state"
// reduces to apply() being a deterministic function of (seed, records).
//
//   * fact / rule events load Datalog program text into the engine,
//     which re-saturates incrementally (the saturated_rows watermark:
//     a fact-only batch seeds deltas with just the new rows).
//   * run events execute the full ProvMark pipeline — payload
//     "<system>\n<program text>" — with a seed derived purely from
//     (session seed, event seq), then assert the result graph as facts
//     under graph id r<seq>. Replaying the journal re-runs the same
//     pipeline with the same seed and lands on the same facts.
//   * any apply-time failure (malformed clauses, arity conflicts,
//     unstratified rules, oversized payloads) quarantines the session:
//     state stops advancing, the typed reason is kept, and — because
//     the failure is deterministic — replay re-quarantines at the same
//     seq. One poisoned session never touches its neighbours.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/pipeline.h"
#include "datalog/engine.h"
#include "serve/journal.h"

namespace provmark::serve {

struct SessionOptions {
  /// Payload ceiling for every event, enforced again at apply time (the
  /// admission check already rejects oversized payloads; this keeps a
  /// hand-edited journal from bypassing the guard on replay).
  std::size_t max_payload_bytes = std::size_t{1} << 20;
  /// Base pipeline options for run events. `pool`, `seed` and `cancel`
  /// are overridden per apply; everything else (trials, matcher,
  /// latency) is the service operator's choice.
  core::PipelineOptions pipeline;
};

class Session {
 public:
  Session(std::string id, std::uint64_t seed, SessionOptions options);

  /// Restore the checkpointed base state: load `program_text` into the
  /// fresh engine and set the applied watermark to `seq`. Only valid on
  /// a virgin session (recovery calls it exactly once, before replaying
  /// the journal tail). Throws on malformed text — checkpoints are
  /// published atomically from a known-good state, so corruption here
  /// is a hard error, not a torn tail.
  void restore(const std::string& program_text, std::uint64_t seq);

  /// Apply one admitted event. Returns false only when `cancel` went
  /// true mid-run (shutdown): the session is unchanged and the event —
  /// already journaled — will be replayed by the next recovery. All
  /// other failures quarantine the session and return true.
  bool apply(const JournalRecord& record,
             const std::atomic<bool>* cancel = nullptr);

  bool quarantined() const { return quarantined_; }
  const std::string& quarantine_reason() const { return quarantine_reason_; }

  /// Highest seq apply() has consumed (0 before the first).
  std::uint64_t applied_seq() const { return applied_seq_; }
  /// Events applied since construction / the last checkpoint_taken().
  std::uint64_t applied_since_checkpoint() const {
    return applied_since_checkpoint_;
  }
  void checkpoint_taken() { applied_since_checkpoint_ = 0; }

  /// The base program text reproducing this session's engine state —
  /// what the journal checkpoints. Run results are included as their
  /// asserted facts, so a checkpointed restore never re-runs pipelines.
  const std::string& program_log() const { return program_log_; }

  /// Canonical fixpoint serialization: every relation in sorted name
  /// order, tuples in sorted order, one escaped fact per line. Two
  /// sessions are state-identical iff their dumps are byte-identical.
  std::string dump();

  /// 16-hex-digit FNV-1a digest of dump() — the identity the recovery
  /// gates compare.
  std::string digest();

  /// Run a query pattern (e.g. "path(a,X)") against the fixpoint.
  /// Returns one "VAR=value ..." line per binding. Read-only: a
  /// malformed pattern throws but never quarantines.
  std::string query(const std::string& pattern_text);

  const std::string& id() const { return id_; }
  std::uint64_t seed() const { return seed_; }

 private:
  void quarantine(const std::string& reason);

  std::string id_;
  std::uint64_t seed_;
  SessionOptions options_;
  datalog::Engine engine_;
  std::string program_log_;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t applied_since_checkpoint_ = 0;
  bool quarantined_ = false;
  std::string quarantine_reason_;
};

}  // namespace provmark::serve
