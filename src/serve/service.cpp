#include "serve/service.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/fault.h"
#include "util/rng.h"
#include "util/strings.h"

namespace provmark::serve {

namespace {

std::uint64_t session_seed(std::uint64_t root_seed, const std::string& id) {
  return util::Rng(root_seed ^ util::stable_hash(id)).next_u64();
}

}  // namespace

std::string ServiceStats::to_text() const {
  std::string out;
  auto line = [&out](const char* key, std::uint64_t value) {
    out += util::format("%s=%llu\n", key,
                        static_cast<unsigned long long>(value));
  };
  line("sessions", sessions);
  line("quarantined_sessions", quarantined_sessions);
  line("pending", pending);
  line("admitted", admitted);
  line("applied", applied);
  line("shed_low", shed_low);
  line("shed_normal", shed_normal);
  line("busy", busy);
  line("rejected_quarantined", rejected_quarantined);
  line("rejected_oversized", rejected_oversized);
  line("checkpoints", checkpoints);
  line("replayed_events", replayed_events);
  line("torn_bytes_truncated", torn_bytes_truncated);
  return out;
}

Service::SessionState::SessionState(const std::filesystem::path& root,
                                    const std::string& id,
                                    std::uint64_t seed,
                                    SessionOptions options)
    : journal(root, id, seed),
      recovered(journal.recover()),
      session(id, recovered.seed, std::move(options)),
      next_seq(recovered.checkpoint_seq) {
  if (!recovered.checkpoint_program.empty() || recovered.checkpoint_seq > 0) {
    session.restore(recovered.checkpoint_program, recovered.checkpoint_seq);
  }
  for (const JournalRecord& record : recovered.records) {
    session.apply(record);
    if (record.seq > next_seq) next_seq = record.seq;
  }
  ++next_seq;  // first fresh seq is strictly above everything on disk
}

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  session_options_.max_payload_bytes = options_.max_payload_bytes;
  session_options_.pipeline = options_.pipeline;
  std::filesystem::create_directories(options_.root);

  // Recover every session already on disk before accepting traffic —
  // replay runs through the same Session::apply as live events, so a
  // recovered fixpoint is the fixpoint the uninterrupted run had.
  for (const std::string& id : list_sessions(options_.root)) {
    auto state = std::make_unique<SessionState>(
        options_.root, id, session_seed(options_.seed, id),
        session_options_);
    stats_.replayed_events += state->recovered.records.size();
    stats_.torn_bytes_truncated += state->recovered.torn_bytes;
    sessions_.emplace(id, std::move(state));
  }

  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cancel_.store(true);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Service::SessionState* Service::find_session(const std::string& id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Service::SessionState& Service::open_session(const std::string& id) {
  return open_session_seeded(id, session_seed(options_.seed, id));
}

Service::SessionState& Service::open_session_seeded(const std::string& id,
                                                    std::uint64_t seed) {
  if (SessionState* state = find_session(id)) return *state;
  auto state =
      std::make_unique<SessionState>(options_.root, id, seed,
                                     session_options_);
  SessionState& ref = *state;
  sessions_.emplace(id, std::move(state));
  return ref;
}

Response Service::submit(const Request& request) {
  if (!request.is_event) return handle_query(request);

  if (request.payload.size() > options_.max_payload_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_oversized;
    return Response{Status::TooLarge,
                    0,
                    util::format("payload is %zu bytes, limit %zu",
                                 request.payload.size(),
                                 options_.max_payload_bytes)};
  }

  std::uint64_t seq = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_ || stop_) {
      ++stats_.busy;
      return Response{Status::Busy, 0, ""};
    }
    SessionState& state = open_session(request.session);
    if (state.session.quarantined()) {
      ++stats_.rejected_quarantined;
      return Response{Status::Quarantined, 0,
                      state.session.quarantine_reason()};
    }
    // Deterministic load decisions, all before the journal append: a
    // refused event was never acked, so refusing it cannot corrupt
    // anything — the journal holds acked events only.
    if (state.queue.size() >= options_.session_queue_cap) {
      ++stats_.busy;
      return Response{Status::Busy, 0, ""};
    }
    const std::uint64_t backlog = pending_ + in_flight_;
    if (request.priority == Priority::Low &&
        backlog >= options_.global_queue_cap / 2) {
      ++stats_.shed_low;
      return Response{Status::Shed, 0, ""};
    }
    if (request.priority == Priority::Normal &&
        backlog >= options_.global_queue_cap) {
      ++stats_.shed_normal;
      return Response{Status::Shed, 0, ""};
    }
    if (request.priority == Priority::High &&
        backlog >= options_.global_queue_cap) {
      ++stats_.busy;
      return Response{Status::Busy, 0, ""};
    }

    JournalRecord record{state.next_seq, request.event, request.priority,
                         request.payload};
    {
      std::lock_guard<std::mutex> journal_lock(state.journal_mutex);
      state.journal.append(record);  // fsync: the ack barrier
    }
    seq = record.seq;
    ++state.next_seq;
    // The record sink fires under mu_, which serializes all appends —
    // so a standby sees records in exactly journal order. Sinks only
    // buffer (see the typedef contract), so holding mu_ here is cheap.
    if (options_.on_record) options_.on_record(request.session, record);
    state.queue.push_back(std::move(record));
    ++pending_;
    ++stats_.admitted;
    if (!state.scheduled) {
      state.scheduled = true;
      ready_.push_back(&state);
      work_cv_.notify_one();
    }
  }
  // The crash-injection point: the event is durable and about to be
  // acked — the hardest moment for recovery to get right.
  util::fault::serve_event_admitted();
  return Response{Status::Ok, seq, ""};
}

Response Service::handle_query(const Request& request) {
  switch (request.query) {
    case QueryKind::Ping:
      return Response{Status::Result, 0, "pong"};
    case QueryKind::Stats: {
      std::string body = stats().to_text();
      if (options_.stats_extra) body += options_.stats_extra();
      return Response{Status::Result, 0, std::move(body)};
    }
    case QueryKind::Promote:
      // The daemon intercepts promote before the Service; reaching the
      // Service means there is no replication layer to promote.
      return Response{Status::BadRequest, 0,
                      "promote: this service is not a replica"};
    default:
      break;
  }

  SessionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = find_session(request.session);
  }
  if (state == nullptr) {
    return Response{Status::BadRequest, 0,
                    "unknown session '" + request.session + "'"};
  }

  // Per-request deadline: a query waits at most deadline_ms for the
  // apply lock (a long pipeline run may hold it), then reports `busy`
  // instead of stalling its connection.
  std::unique_lock<std::timed_mutex> apply_lock(state->apply_mutex,
                                                std::defer_lock);
  const auto deadline =
      std::chrono::duration<double, std::milli>(request.deadline_ms);
  if (!apply_lock.try_lock_for(deadline)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.busy;
    return Response{Status::Busy, 0, ""};
  }
  try {
    switch (request.query) {
      case QueryKind::Digest:
        return Response{Status::Result, 0, state->session.digest()};
      case QueryKind::Dump:
        return Response{Status::Result, 0, state->session.dump()};
      case QueryKind::Query:
        return Response{Status::Result, 0,
                        state->session.query(request.payload)};
      default:
        return Response{Status::BadRequest, 0, "unhandled query kind"};
    }
  } catch (const std::exception& e) {
    // Read-only requests never quarantine: the session is untouched.
    return Response{Status::BadRequest, 0, e.what()};
  }
}

void Service::maybe_checkpoint(SessionState& state,
                               std::uint64_t threshold) {
  // Never checkpoint a quarantined session: its engine may hold the
  // partial effects of the poisoning event, which only replaying that
  // event reproduces. Compacting it away would "cure" the session on
  // restart and fork its history.
  if (state.session.quarantined()) return;
  if (state.session.applied_since_checkpoint() < threshold ||
      state.session.applied_seq() == 0) {
    return;
  }
  const std::uint64_t seq = state.session.applied_seq();
  {
    std::lock_guard<std::mutex> journal_lock(state.journal_mutex);
    state.journal.checkpoint(state.session.program_log(), seq);
  }
  state.session.checkpoint_taken();
  if (options_.on_checkpoint) {
    // Callers hold the apply lock, so the digest is the fixpoint at
    // exactly `seq` — the divergence check compares it on the standby
    // once the standby has applied through the same seq.
    options_.on_checkpoint(state.session.id(), seq, state.session.digest());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.checkpoints;
}

bool Service::apply_one(std::unique_lock<std::mutex>& lock) {
  if (ready_.empty()) return false;
  SessionState* state = ready_.front();
  ready_.pop_front();
  JournalRecord record = std::move(state->queue.front());
  state->queue.pop_front();
  --pending_;
  ++in_flight_;
  lock.unlock();

  util::fault::serve_before_apply();
  bool applied;
  {
    std::lock_guard<std::timed_mutex> apply_lock(state->apply_mutex);
    applied = state->session.apply(record, &cancel_);
    if (applied && options_.checkpoint_every > 0) {
      maybe_checkpoint(*state, options_.checkpoint_every);
    }
    if (applied && options_.on_applied) {
      options_.on_applied(state->session.id(), record.seq,
                          [state] { return state->session.digest(); });
    }
  }

  lock.lock();
  --in_flight_;
  if (applied) {
    ++stats_.applied;
  } else {
    // Cancelled mid-run (shutdown): the event is journaled and will be
    // replayed by the next recovery; put it back so pending counts
    // stay truthful while this process winds down.
    state->queue.push_front(std::move(record));
    ++pending_;
  }
  if (!state->queue.empty() && applied && !stop_) {
    ready_.push_back(state);
  } else {
    state->scheduled = false;
  }
  if (pending_ + in_flight_ == 0) idle_cv_.notify_all();
  return true;
}

void Service::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
    if (stop_) return;
    apply_one(lock);
  }
}

std::size_t Service::pump() {
  std::size_t applied = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (apply_one(lock)) ++applied;
  return applied;
}

void Service::drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (workers_.empty()) {
      while (apply_one(lock)) {
      }
    }
    idle_cv_.wait(lock, [this] { return pending_ + in_flight_ == 0; });
  }
  // Checkpoint every healthy session so the next start replays nothing.
  std::vector<SessionState*> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : sessions_) all.push_back(state.get());
  }
  for (SessionState* state : all) {
    std::lock_guard<std::timed_mutex> apply_lock(state->apply_mutex);
    maybe_checkpoint(*state, 1);
  }
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.sessions = sessions_.size();
  out.pending = pending_ + in_flight_;
  out.quarantined_sessions = 0;
  for (const auto& [id, state] : sessions_) {
    if (state->session.quarantined()) ++out.quarantined_sessions;
  }
  return out;
}

std::vector<std::string> Service::session_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [id, state] : sessions_) out.push_back(id);
  return out;
}

std::map<std::string, std::string> Service::session_digests() {
  std::vector<std::pair<std::string, SessionState*>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : sessions_) all.emplace_back(id, state.get());
  }
  std::map<std::string, std::string> out;
  for (auto& [id, state] : all) {
    std::lock_guard<std::timed_mutex> apply_lock(state->apply_mutex);
    out[id] = state->session.digest();
  }
  return out;
}

void Service::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (workers_.empty()) {
    while (apply_one(lock)) {
    }
  }
  idle_cv_.wait(lock, [this] { return pending_ + in_flight_ == 0; });
}

std::optional<Service::JournalPosition> Service::journal_position(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionState* state = find_session(id);
  if (state == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> journal_lock(state->journal_mutex);
  return JournalPosition{state->session.seed(),
                         state->journal.checkpoint_seq(),
                         state->journal.last_seq()};
}

std::optional<std::uint64_t> Service::records_digest(const std::string& id,
                                                     std::uint64_t after,
                                                     std::uint64_t through) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionState* state = find_session(id);
  if (state == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> journal_lock(state->journal_mutex);
  return state->journal.records_digest(after, through);
}

std::vector<JournalRecord> Service::records_after(const std::string& id,
                                                  std::uint64_t after) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionState* state = find_session(id);
  if (state == nullptr) return {};
  std::lock_guard<std::mutex> journal_lock(state->journal_mutex);
  return state->journal.records_after(after);
}

std::optional<Service::ResyncSnapshot> Service::resync_snapshot(
    const std::string& id) {
  SessionState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = find_session(id);
  }
  if (state == nullptr) return std::nullopt;
  // Journal state only — no apply lock — so a snapshot never waits
  // behind a long pipeline run, and quarantined sessions (which are
  // never checkpointed after poisoning) snapshot their pre-poisoning
  // checkpoint plus the poisoning tail: replaying it re-quarantines
  // the standby deterministically.
  std::lock_guard<std::mutex> journal_lock(state->journal_mutex);
  ResyncSnapshot out;
  out.seed = state->session.seed();
  out.base_seq = state->journal.checkpoint_seq();
  out.base_program = state->journal.checkpoint_program();
  out.records = state->journal.records_after(out.base_seq);
  return out;
}

Response Service::apply_replicated(const std::string& id, std::uint64_t seed,
                                   const JournalRecord& record) {
  if (record.payload.size() > options_.max_payload_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_oversized;
    return Response{Status::TooLarge,
                    0,
                    util::format("payload is %zu bytes, limit %zu",
                                 record.payload.size(),
                                 options_.max_payload_bytes)};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ || stop_) return Response{Status::Busy, 0, ""};
  SessionState& state = open_session_seeded(id, seed);
  if (state.session.seed() != seed) {
    return Response{Status::Error, 0,
                    util::format("seed mismatch for session '%s': "
                                 "journal has %llu, primary sent %llu",
                                 id.c_str(),
                                 static_cast<unsigned long long>(
                                     state.session.seed()),
                                 static_cast<unsigned long long>(seed))};
  }
  if (record.seq < state.next_seq) {
    // Idempotent redelivery after a reconnect: already journaled, so
    // acking again is safe and expected.
    return Response{Status::Ok, record.seq, "duplicate"};
  }
  if (record.seq != state.next_seq) {
    return Response{Status::Error, 0,
                    util::format("sequence gap for session '%s': "
                                 "expected %llu, got %llu",
                                 id.c_str(),
                                 static_cast<unsigned long long>(
                                     state.next_seq),
                                 static_cast<unsigned long long>(
                                     record.seq))};
  }
  // No shed/busy/quarantine refusal: the primary already admitted this
  // record, so refusing it here would silently fork history. Session::
  // apply on a quarantined session is a deterministic no-op, so both
  // sides skip poisoned tails identically.
  {
    std::lock_guard<std::mutex> journal_lock(state.journal_mutex);
    state.journal.append(record);  // fsync: the replication ack barrier
  }
  ++state.next_seq;
  if (options_.on_record) options_.on_record(id, record);
  state.queue.push_back(record);
  ++pending_;
  ++stats_.admitted;
  if (!state.scheduled) {
    state.scheduled = true;
    ready_.push_back(&state);
    work_cv_.notify_one();
  }
  return Response{Status::Ok, record.seq, ""};
}

void Service::reset_session(const std::string& id, std::uint64_t seed,
                            std::uint64_t base_seq,
                            const std::string& base_program) {
  std::unique_ptr<SessionState> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      if (it->second->scheduled || !it->second->queue.empty()) {
        throw std::runtime_error("reset_session('" + id +
                                 "'): applies pending — flush() first");
      }
      old = std::move(it->second);
      sessions_.erase(it);
    }
  }
  old.reset();  // close the journal fd before removing the directory
  std::filesystem::remove_all(options_.root / id);
  {
    // Seed a fresh journal holding only the primary's checkpoint, then
    // reopen it through the normal SessionState recovery path — reset
    // streams reuse exactly the machinery a restart would.
    Journal journal(options_.root, id, seed);
    journal.recover();
    if (base_seq > 0 || !base_program.empty()) {
      journal.checkpoint(base_program, base_seq);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  open_session_seeded(id, seed);
}

}  // namespace provmark::serve
