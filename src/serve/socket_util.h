// AF_UNIX plumbing shared by the serve daemon and the cluster router:
// listener creation with stale-socket recovery, client connects, and
// the buffered line-framing helpers both poll loops are built on.
//
// Stale sockets: a SIGKILLed daemon leaves its socket path behind, and
// a blind unlink-before-bind would also steal the address out from
// under a *live* daemon. make_unix_listener therefore connect-probes an
// existing path first: a successful connect means someone is serving —
// fail with EADDRINUSE; a refused connect means the inode is an orphan
// — unlink it and bind. Non-socket files are never unlinked.
#pragma once

#include <string>

namespace provmark::serve {

/// Create, bind and listen on an AF_UNIX stream socket at `path`.
/// Returns the listening fd, or -1 with errno set (EADDRINUSE when a
/// live daemon already answers at `path`; EEXIST when the path exists
/// but is not a socket). On failure `*error`, when non-null, receives a
/// one-line human diagnostic.
int make_unix_listener(const std::string& path, std::string* error = nullptr);

/// Blocking connect to the AF_UNIX stream socket at `path`. Returns the
/// fd, or -1 with errno set.
int connect_unix(const std::string& path);

/// Read whatever is available on `fd` into `inbuf`. Returns false when
/// the peer is gone. EOF (n == 0) always closes — errno is stale there
/// and must not be consulted.
bool read_available(int fd, std::string& inbuf);

/// Pop one complete line from `inbuf` ('\r' stripped); false when no
/// full line is buffered.
bool next_line(std::string& inbuf, std::string& line);

/// Flush as much of `outbuf` as the socket will take (MSG_NOSIGNAL).
/// Returns false when the peer is gone; EAGAIN leaves the remainder
/// buffered and returns true.
bool flush_buffer(int fd, std::string& outbuf);

}  // namespace provmark::serve
