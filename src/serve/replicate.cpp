#include "serve/replicate.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "util/fault.h"
#include "util/strings.h"

namespace provmark::serve {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  if (text.empty()) throw std::invalid_argument(std::string(what) + " is empty");
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    throw std::invalid_argument(std::string(what) + " '" + text +
                                "' is not a number");
  }
  return static_cast<std::uint64_t>(value);
}

std::uint64_t parse_hex64(const std::string& text, const char* what) {
  if (text.empty()) throw std::invalid_argument(std::string(what) + " is empty");
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text.c_str(), &end, 16);
  if (errno != 0 || end != text.c_str() + text.size()) {
    throw std::invalid_argument(std::string(what) + " '" + text +
                                "' is not hex");
  }
  return static_cast<std::uint64_t>(value);
}

void check_fields(const std::vector<std::string>& fields, std::size_t n,
                  const char* verb) {
  if (fields.size() != n) {
    throw std::invalid_argument(util::format(
        "%s expects %zu fields, got %zu", verb, n, fields.size()));
  }
}

void check_session(const std::string& id) {
  // Session ids off the replication wire become journal directory
  // names — re-validate before anything touches the filesystem.
  if (!valid_session_id(id)) {
    throw std::invalid_argument("illegal session id '" + id +
                                "' on replication link");
  }
}

long long ms_since(bool heard, std::chrono::steady_clock::time_point last) {
  if (!heard) return -1;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - last)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// PrimaryReplicator

PrimaryReplicator::PrimaryReplicator(Service& service,
                                     ReplicationConfig config)
    : service_(service), config_(config) {}

void PrimaryReplicator::on_replica_connected() {
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = true;
  handshaking_ = true;  // nothing flows until repl-hello arrives
  have_expected_ = 0;
  have_.clear();
  streams_.clear();
  pending_resets_ = false;
  out_.clear();
}

void PrimaryReplicator::on_replica_disconnected() {
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = false;
  handshaking_ = false;
  streams_.clear();
  pending_resets_ = false;
  out_.clear();
}

bool PrimaryReplicator::replica_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

void PrimaryReplicator::emit_locked(const std::string& line) {
  out_ += line;
  out_ += '\n';
}

void PrimaryReplicator::quarantine_locked(const std::string& session,
                                          Stream& stream,
                                          const std::string& reason) {
  if (stream.state == StreamState::Quarantined) return;
  stream.state = StreamState::Quarantined;
  stream.reason = reason;
  stream.pending.clear();
  std::fprintf(stderr, "serve: replication stream '%s' quarantined: %s\n",
               session.c_str(), reason.c_str());
}

void PrimaryReplicator::drain_pending_locked(const std::string& session,
                                             Stream& stream) {
  while (!stream.pending.empty()) {
    JournalRecord record = std::move(stream.pending.front());
    stream.pending.pop_front();
    if (record.seq <= stream.sent) continue;  // already shipped in snapshot
    emit_locked(util::format("repl-rec %s %s", session.c_str(),
                             escape_field(format_record(record)).c_str()));
    stream.sent = record.seq;
    ++forwarded_records_;
    util::fault::ReplLinkFault fault = util::fault::repl_record_forwarded();
    if (fault.drop) link_drop_request_ = true;
    if (fault.partition_ms > 0) partition_request_ms_ = fault.partition_ms;
  }
}

void PrimaryReplicator::handle_line(const std::string& line) {
  std::vector<std::string> fields = split_fields(line);
  const std::string& verb = fields[0];
  bool finish = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    heard_from_replica_ = true;
    last_inbound_ = std::chrono::steady_clock::now();
    if (verb == "repl-hello") {
      check_fields(fields, 3, "repl-hello");
      if (fields[1] != "v1") {
        throw std::invalid_argument("unsupported replication version '" +
                                    fields[1] + "'");
      }
      handshaking_ = true;
      have_expected_ =
          static_cast<std::size_t>(parse_u64(fields[2], "session count"));
      have_.clear();
      finish = have_.size() == have_expected_;
    } else if (verb == "repl-have") {
      check_fields(fields, 5, "repl-have");
      check_session(fields[1]);
      if (!handshaking_) {
        throw std::invalid_argument("repl-have outside a handshake");
      }
      have_.push_back(HaveEntry{fields[1], parse_u64(fields[2], "last seq"),
                                parse_u64(fields[3], "checkpoint seq"),
                                parse_hex64(fields[4], "records digest")});
      finish = have_.size() == have_expected_;
    } else if (verb == "repl-ack") {
      check_fields(fields, 3, "repl-ack");
      check_session(fields[1]);
      Stream& stream = streams_[fields[1]];
      const std::uint64_t seq = parse_u64(fields[2], "ack seq");
      if (seq > stream.acked) stream.acked = seq;
    } else if (verb == "repl-ping") {
      check_fields(fields, 2, "repl-ping");
      parse_u64(fields[1], "ping counter");
      emit_locked("repl-pong " + fields[1]);
    } else if (verb == "repl-diverged") {
      check_fields(fields, 4, "repl-diverged");
      check_session(fields[1]);
      parse_u64(fields[2], "diverged seq");
      quarantine_locked(fields[1], streams_[fields[1]],
                        "standby reported divergence at seq " + fields[2] +
                            ": " + unescape_field(fields[3]));
    } else {
      throw std::invalid_argument("unknown replication verb '" + verb + "'");
    }
  }
  if (finish) finish_handshake();
}

void PrimaryReplicator::finish_handshake() {
  // Snapshot the standby's announcements, then query the Service with
  // no replicator lock held (on_record blocks on mu_ while holding the
  // admission mutex — holding mu_ across a Service call would deadlock).
  std::vector<HaveEntry> have;
  {
    std::lock_guard<std::mutex> lock(mu_);
    have = have_;
  }
  const std::vector<std::string> ids = service_.session_ids();

  for (const std::string& id : ids) {
    auto position = service_.journal_position(id);
    if (!position) continue;  // raced with nothing: sessions never vanish
    const HaveEntry* entry = nullptr;
    for (const HaveEntry& candidate : have) {
      if (candidate.session == id) {
        entry = &candidate;
        break;
      }
    }

    if (entry != nullptr && entry->last > position->last_seq) {
      // The standby journaled records we never acked — a history fork
      // (e.g. it briefly served as primary). Never silently merge.
      std::lock_guard<std::mutex> lock(mu_);
      quarantine_locked(
          id, streams_[id],
          util::format("replica-ahead: standby at seq %" PRIu64
                       ", primary at %" PRIu64,
                       entry->last, position->last_seq));
      continue;
    }

    bool resume = false;
    if (entry != nullptr && entry->last >= entry->ckpt &&
        entry->ckpt >= position->checkpoint_seq) {
      // Resume iff our journal still covers (ckpt, last] and the bytes
      // match — the digest proves the standby's tail is our prefix.
      auto ours = service_.records_digest(id, entry->ckpt, entry->last);
      resume = ours.has_value() && *ours == entry->digest;
    }

    if (resume) {
      const std::vector<JournalRecord> missing =
          service_.records_after(id, entry->last);
      std::lock_guard<std::mutex> lock(mu_);
      Stream& stream = streams_[id];
      if (stream.state == StreamState::Quarantined) continue;
      emit_locked(util::format("repl-resume %s %" PRIu64 " %" PRIu64,
                               id.c_str(), position->seed, entry->last));
      stream.sent = entry->last;
      stream.acked = entry->last;
      for (const JournalRecord& record : missing) {
        if (record.seq <= stream.sent) continue;
        emit_locked(util::format(
            "repl-rec %s %s", id.c_str(),
            escape_field(format_record(record)).c_str()));
        stream.sent = record.seq;
        ++forwarded_records_;
        util::fault::ReplLinkFault fault =
            util::fault::repl_record_forwarded();
        if (fault.drop) link_drop_request_ = true;
        if (fault.partition_ms > 0) partition_request_ms_ = fault.partition_ms;
      }
      drain_pending_locked(id, stream);
      stream.state = StreamState::Streaming;
    } else {
      auto snapshot = service_.resync_snapshot(id);
      if (!snapshot) continue;
      std::lock_guard<std::mutex> lock(mu_);
      Stream& stream = streams_[id];
      if (stream.state == StreamState::Quarantined) continue;
      emit_locked(util::format(
          "repl-reset %s %" PRIu64 " %" PRIu64 " %s", id.c_str(),
          snapshot->seed, snapshot->base_seq,
          escape_field(snapshot->base_program).c_str()));
      stream.sent = snapshot->base_seq;
      stream.acked = snapshot->base_seq;
      for (const JournalRecord& record : snapshot->records) {
        if (record.seq <= stream.sent) continue;
        emit_locked(util::format(
            "repl-rec %s %s", id.c_str(),
            escape_field(format_record(record)).c_str()));
        stream.sent = record.seq;
        ++forwarded_records_;
        util::fault::ReplLinkFault fault =
            util::fault::repl_record_forwarded();
        if (fault.drop) link_drop_request_ = true;
        if (fault.partition_ms > 0) partition_request_ms_ = fault.partition_ms;
      }
      drain_pending_locked(id, stream);
      stream.state = StreamState::Streaming;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Standby sessions we know nothing about are a fork too (stale state
  // from some earlier life): quarantine them so the operator sees it.
  for (const HaveEntry& entry : have) {
    bool known = false;
    for (const std::string& id : ids) {
      if (id == entry.session) {
        known = true;
        break;
      }
    }
    if (!known) {
      quarantine_locked(entry.session, streams_[entry.session],
                        "unknown-to-primary: standby announced a session "
                        "this primary has no journal for");
    }
  }
  // Sessions born while the handshake ran buffered their records in
  // Idle streams; promote them to pending resets for the daemon loop.
  handshaking_ = false;
  for (auto& [id, stream] : streams_) {
    if (stream.state == StreamState::Idle && !stream.pending.empty()) {
      stream.state = StreamState::PendingReset;
      pending_resets_ = true;
    }
  }
}

std::string PrimaryReplicator::take_output() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(out_, std::string());
}

void PrimaryReplicator::on_record(const std::string& session,
                                  const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) return;
  Stream& stream = streams_[session];
  switch (stream.state) {
    case StreamState::Quarantined:
      return;
    case StreamState::Streaming: {
      emit_locked(util::format(
          "repl-rec %s %s", session.c_str(),
          escape_field(format_record(record)).c_str()));
      stream.sent = record.seq;
      ++forwarded_records_;
      util::fault::ReplLinkFault fault = util::fault::repl_record_forwarded();
      if (fault.drop) link_drop_request_ = true;
      if (fault.partition_ms > 0) partition_request_ms_ = fault.partition_ms;
      return;
    }
    case StreamState::Idle:
    case StreamState::PendingReset:
      // Can't forward yet (handshake in flight or the stream needs a
      // full reset, which requires Service queries we must not make
      // from under the admission mutex). Buffer; the daemon loop ships
      // it via flush_pending_resets().
      stream.pending.push_back(record);
      if (!handshaking_) {
        stream.state = StreamState::PendingReset;
        pending_resets_ = true;
      }
      return;
  }
}

void PrimaryReplicator::on_checkpoint(const std::string& session,
                                      std::uint64_t seq,
                                      const std::string& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) return;
  auto it = streams_.find(session);
  if (it == streams_.end() || it->second.state != StreamState::Streaming) {
    return;
  }
  // Only meaningful when the standby has (or will have) the records
  // through seq; sent >= seq holds because checkpoints trail applies,
  // which trail admission-order forwarding.
  if (seq > it->second.sent) return;
  emit_locked(util::format("repl-check %s %" PRIu64 " %s", session.c_str(),
                           seq, digest.c_str()));
}

bool PrimaryReplicator::flush_pending_resets() {
  std::vector<std::string> todo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pending_resets_ || !connected_ || handshaking_) return false;
    pending_resets_ = false;
    for (auto& [id, stream] : streams_) {
      if (stream.state == StreamState::PendingReset) todo.push_back(id);
    }
  }
  bool emitted = false;
  for (const std::string& id : todo) {
    auto snapshot = service_.resync_snapshot(id);
    if (!snapshot) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (!connected_) return emitted;
    Stream& stream = streams_[id];
    if (stream.state != StreamState::PendingReset) continue;
    emit_locked(util::format(
        "repl-reset %s %" PRIu64 " %" PRIu64 " %s", id.c_str(),
        snapshot->seed, snapshot->base_seq,
        escape_field(snapshot->base_program).c_str()));
    stream.sent = snapshot->base_seq;
    stream.acked = snapshot->base_seq;
    for (const JournalRecord& record : snapshot->records) {
      if (record.seq <= stream.sent) continue;
      emit_locked(util::format(
          "repl-rec %s %s", id.c_str(),
          escape_field(format_record(record)).c_str()));
      stream.sent = record.seq;
      ++forwarded_records_;
      util::fault::ReplLinkFault fault = util::fault::repl_record_forwarded();
      if (fault.drop) link_drop_request_ = true;
      if (fault.partition_ms > 0) partition_request_ms_ = fault.partition_ms;
    }
    // Records admitted after the snapshot was cut buffered into
    // pending (the sink kept running); the seq > sent guard dedups the
    // overlap with the snapshot.
    drain_pending_locked(id, stream);
    stream.state = StreamState::Streaming;
    emitted = true;
  }
  return emitted;
}

PrimaryReplicator::AckState PrimaryReplicator::ack_state(
    const std::string& session, std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(session);
  if (it == streams_.end()) return AckState::Pending;
  if (it->second.state == StreamState::Quarantined) return AckState::Failed;
  return it->second.acked >= seq ? AckState::Acked : AckState::Pending;
}

std::uint64_t PrimaryReplicator::lag_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t lag = 0;
  for (const auto& [id, stream] : streams_) {
    if (stream.sent > stream.acked) lag += stream.sent - stream.acked;
    lag += stream.pending.size();
  }
  return lag;
}

std::string PrimaryReplicator::stats_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t lag = 0;
  std::uint64_t quarantined = 0;
  for (const auto& [id, stream] : streams_) {
    if (stream.sent > stream.acked) lag += stream.sent - stream.acked;
    lag += stream.pending.size();
    if (stream.state == StreamState::Quarantined) ++quarantined;
  }
  std::string out;
  out += "repl_role=primary\n";
  out += util::format("repl_mode=%s\n", config_.sync_mode ? "sync" : "async");
  out += util::format("repl_connected=%d\n", connected_ ? 1 : 0);
  out += util::format("repl_lag_events=%" PRIu64 "\n", lag);
  out += util::format("repl_forwarded_records=%" PRIu64 "\n",
                      forwarded_records_);
  out += util::format("repl_quarantined_streams=%" PRIu64 "\n", quarantined);
  out += util::format("last_heartbeat_ms=%lld\n",
                      ms_since(heard_from_replica_, last_inbound_));
  return out;
}

bool PrimaryReplicator::take_link_drop_request() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(link_drop_request_, false);
}

double PrimaryReplicator::take_partition_request_ms() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(partition_request_ms_, 0.0);
}

// ---------------------------------------------------------------------------
// ReplicaReplicator

ReplicaReplicator::ReplicaReplicator(Service& service,
                                     ReplicationConfig config)
    : service_(service), config_(config) {}

void ReplicaReplicator::emit_locked(const std::string& line) {
  out_ += line;
  out_ += '\n';
}

void ReplicaReplicator::note_inbound_locked() {
  missed_heartbeats_ = 0;
  heard_from_primary_ = true;
  last_inbound_ = std::chrono::steady_clock::now();
}

void ReplicaReplicator::on_link_connected() {
  // Describe every local session from its journal: last seq, checkpoint
  // seq, digest over the live tail — queried before taking mu_ (the
  // no-Service-calls-under-mu_ rule).
  struct Announce {
    std::string id;
    std::uint64_t last = 0;
    std::uint64_t ckpt = 0;
    std::uint64_t digest = 0;
  };
  std::vector<Announce> announce;
  for (const std::string& id : service_.session_ids()) {
    auto position = service_.journal_position(id);
    if (!position) continue;
    auto digest =
        service_.records_digest(id, position->checkpoint_seq,
                                position->last_seq);
    announce.push_back(Announce{id, position->last_seq,
                                position->checkpoint_seq,
                                digest.value_or(0)});
  }
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = true;
  missed_heartbeats_ = 0;
  streams_.clear();
  checks_.clear();
  last_applied_.clear();
  out_.clear();
  emit_locked(util::format("repl-hello v1 %zu", announce.size()));
  for (const Announce& a : announce) {
    emit_locked(util::format("repl-have %s %" PRIu64 " %" PRIu64 " %016llx",
                             a.id.c_str(), a.last, a.ckpt,
                             static_cast<unsigned long long>(a.digest)));
  }
}

void ReplicaReplicator::on_link_disconnected() {
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = false;
  streams_.clear();
  checks_.clear();
  last_applied_.clear();
  out_.clear();
}

bool ReplicaReplicator::link_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

void ReplicaReplicator::quarantine(const std::string& session,
                                   std::uint64_t seq,
                                   const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream& stream = streams_[session];
  if (stream.quarantined) return;
  stream.quarantined = true;
  stream.reason = reason;
  std::fprintf(stderr, "serve: replication stream '%s' quarantined: %s\n",
               session.c_str(), reason.c_str());
  emit_locked(util::format("repl-diverged %s %" PRIu64 " %s", session.c_str(),
                           seq, escape_field(reason).c_str()));
}

void ReplicaReplicator::compare_digest_locked(const std::string& session,
                                              std::uint64_t seq,
                                              const std::string& ours,
                                              const std::string& theirs) {
  if (ours == theirs) return;
  Stream& stream = streams_[session];
  if (stream.quarantined) return;
  stream.quarantined = true;
  stream.reason = util::format(
      "digest mismatch at seq %" PRIu64 ": ours %s, primary %s", seq,
      ours.c_str(), theirs.c_str());
  std::fprintf(stderr, "serve: replication stream '%s' quarantined: %s\n",
               session.c_str(), stream.reason.c_str());
  emit_locked(util::format("repl-diverged %s %" PRIu64 " %s", session.c_str(),
                           seq, escape_field(stream.reason).c_str()));
}

void ReplicaReplicator::handle_line(const std::string& line) {
  std::vector<std::string> fields = split_fields(line);
  const std::string& verb = fields[0];
  {
    std::lock_guard<std::mutex> lock(mu_);
    note_inbound_locked();
  }

  if (verb == "repl-pong") {
    check_fields(fields, 2, "repl-pong");
    return;
  }

  if (verb == "repl-resume") {
    check_fields(fields, 4, "repl-resume");
    const std::string& session = fields[1];
    check_session(session);
    const std::uint64_t seed = parse_u64(fields[2], "session seed");
    const std::uint64_t from = parse_u64(fields[3], "resume seq");
    auto position = service_.journal_position(session);
    const std::uint64_t local_last = position ? position->last_seq : 0;
    if (position && position->seed != seed) {
      quarantine(session, local_last,
                 util::format("resume seed mismatch: local %" PRIu64
                              ", primary %" PRIu64,
                              position->seed, seed));
      return;
    }
    if (local_last != from) {
      quarantine(session, local_last,
                 util::format("resume position mismatch: local last %" PRIu64
                              ", primary resumes from %" PRIu64,
                              local_last, from));
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    Stream& stream = streams_[session];
    stream.seed = seed;
    stream.next = from + 1;
    last_applied_[session] = 0;
    return;
  }

  if (verb == "repl-reset") {
    check_fields(fields, 5, "repl-reset");
    const std::string& session = fields[1];
    check_session(session);
    const std::uint64_t seed = parse_u64(fields[2], "session seed");
    const std::uint64_t base = parse_u64(fields[3], "base seq");
    const std::string program = unescape_field(fields[4]);
    // flush() first: reset_session refuses while applies are pending.
    service_.flush();
    service_.reset_session(session, seed, base, program);
    std::lock_guard<std::mutex> lock(mu_);
    Stream& stream = streams_[session];
    stream = Stream{};
    stream.seed = seed;
    stream.next = base + 1;
    checks_[session].clear();
    last_applied_[session] = base;
    own_ckpt_.erase(session);
    // Ack the base so the primary's lag accounting starts truthful.
    emit_locked(util::format("repl-ack %s %" PRIu64, session.c_str(), base));
    return;
  }

  if (verb == "repl-rec") {
    check_fields(fields, 3, "repl-rec");
    const std::string& session = fields[1];
    check_session(session);
    JournalRecord record = parse_record(unescape_field(fields[2]));
    std::uint64_t seed = 0;
    std::uint64_t next = 0;
    bool known = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = streams_.find(session);
      if (it != streams_.end()) {
        if (it->second.quarantined) return;
        known = true;
        seed = it->second.seed;
        next = it->second.next;
      }
    }
    if (!known) {
      quarantine(session, 0,
                 "record for a stream the primary never announced");
      return;
    }
    if (record.seq < next) {
      // Idempotent redelivery after a reconnect: re-ack our position.
      std::lock_guard<std::mutex> lock(mu_);
      emit_locked(util::format("repl-ack %s %" PRIu64, session.c_str(),
                               next - 1));
      return;
    }
    if (record.seq > next) {
      quarantine(session, next - 1,
                 util::format("sequence gap: expected %" PRIu64
                              ", primary sent %" PRIu64,
                              next, record.seq));
      return;
    }
    const std::uint64_t seq = record.seq;
    Response response = service_.apply_replicated(session, seed, record);
    if (response.status == Status::Ok) {
      // Journaled + fsynced, ack not yet sent — the hardest replication
      // crash point; the replica-crash fault rule fires exactly here.
      util::fault::replica_record_journaled();
      std::lock_guard<std::mutex> lock(mu_);
      auto it = streams_.find(session);
      if (it != streams_.end()) it->second.next = seq + 1;
      ++replicated_records_;
      emit_locked(util::format("repl-ack %s %" PRIu64, session.c_str(), seq));
    } else if (response.status == Status::Busy) {
      // Draining for shutdown: drop silently, no ack — the primary
      // re-sends after reconnect.
    } else {
      quarantine(session, next - 1,
                 util::format("apply refused (%s): %s",
                              status_name(response.status),
                              response.body.c_str()));
    }
    return;
  }

  if (verb == "repl-check") {
    check_fields(fields, 4, "repl-check");
    const std::string& session = fields[1];
    check_session(session);
    const std::uint64_t seq = parse_u64(fields[2], "check seq");
    const std::string& digest = fields[3];
    std::lock_guard<std::mutex> lock(mu_);
    auto applied_it = last_applied_.find(session);
    const std::uint64_t applied =
        applied_it == last_applied_.end() ? 0 : applied_it->second;
    if (seq > applied) {
      // Not there yet: the applied-sink compares at exactly seq.
      checks_[session][seq] = digest;
      return;
    }
    // Already applied past it. If our own checkpoint landed at the
    // same seq (same cadence, same records), compare those digests;
    // otherwise the check is unverifiable and dropped — the next
    // checkpoint exchange covers the stream again.
    auto own = own_ckpt_.find(session);
    if (own != own_ckpt_.end() && own->second.first == seq) {
      compare_digest_locked(session, seq, own->second.second, digest);
    }
    return;
  }

  throw std::invalid_argument("unknown replication verb '" + verb + "'");
}

std::string ReplicaReplicator::take_output() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(out_, std::string());
}

void ReplicaReplicator::heartbeat_tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) return;
  emit_locked(util::format("repl-ping %" PRIu64, ++ping_counter_));
  ++missed_heartbeats_;
}

int ReplicaReplicator::missed_heartbeats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return missed_heartbeats_;
}

void ReplicaReplicator::on_applied(
    const std::string& session, std::uint64_t seq,
    const std::function<std::string()>& digest_now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t& applied = last_applied_[session];
  if (seq > applied) applied = seq;
  auto checks_it = checks_.find(session);
  if (checks_it == checks_.end()) return;
  auto check = checks_it->second.find(seq);
  if (check == checks_it->second.end()) return;
  const std::string expected = check->second;
  checks_it->second.erase(check);
  // digest_now() reads the session under the apply lock our caller
  // already holds; it takes no further locks, so holding mu_ is safe.
  compare_digest_locked(session, seq, digest_now(), expected);
}

void ReplicaReplicator::on_checkpoint(const std::string& session,
                                      std::uint64_t seq,
                                      const std::string& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  own_ckpt_[session] = {seq, digest};
  auto checks_it = checks_.find(session);
  if (checks_it == checks_.end()) return;
  auto check = checks_it->second.find(seq);
  if (check == checks_it->second.end()) return;
  const std::string expected = check->second;
  checks_it->second.erase(check);
  compare_digest_locked(session, seq, digest, expected);
}

std::string ReplicaReplicator::stats_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t quarantined = 0;
  for (const auto& [id, stream] : streams_) {
    if (stream.quarantined) ++quarantined;
  }
  std::string out;
  out += "repl_role=replica\n";
  out += util::format("repl_mode=%s\n", config_.sync_mode ? "sync" : "async");
  out += util::format("repl_connected=%d\n", connected_ ? 1 : 0);
  out += util::format("repl_replicated_records=%" PRIu64 "\n",
                      replicated_records_);
  out += util::format("repl_quarantined_streams=%" PRIu64 "\n", quarantined);
  out += util::format("repl_missed_heartbeats=%d\n", missed_heartbeats_);
  out += util::format("last_heartbeat_ms=%lld\n",
                      ms_since(heard_from_primary_, last_inbound_));
  return out;
}

std::map<std::string, std::string> ReplicaReplicator::quarantined_streams()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [id, stream] : streams_) {
    if (stream.quarantined) out[id] = stream.reason;
  }
  return out;
}

}  // namespace provmark::serve
