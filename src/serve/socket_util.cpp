#include "serve/socket_util.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.h"

namespace provmark::serve {

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  std::strncpy(addr->sun_path, path.c_str(), sizeof(addr->sun_path) - 1);
  return true;
}

}  // namespace

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr;
  if (!fill_addr(path, &addr)) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int make_unix_listener(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why, int err) {
    if (error) *error = why;
    errno = err;
    return -1;
  };

  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return fail(util::format("%s exists and is not a socket; refusing to "
                               "unlink it",
                               path.c_str()),
                  EEXIST);
    }
    // Connect-probe: a live daemon answers, a SIGKILL orphan refuses.
    int probe = connect_unix(path);
    if (probe >= 0) {
      ::close(probe);
      return fail(util::format("a live daemon already serves %s",
                               path.c_str()),
                  EADDRINUSE);
    }
    if (errno != ECONNREFUSED && errno != ENOENT) {
      return fail(util::format("cannot probe existing socket %s: %s",
                               path.c_str(), std::strerror(errno)),
                  errno);
    }
    ::unlink(path.c_str());
  }

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return fail(util::format("socket(): %s", std::strerror(errno)), errno);
  }
  sockaddr_un addr;
  if (!fill_addr(path, &addr)) {
    ::close(fd);
    return fail(util::format("socket path %s is too long", path.c_str()),
                ENAMETOOLONG);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    return fail(util::format("cannot listen on %s: %s", path.c_str(),
                             std::strerror(saved)),
                saved);
  }
  if (error) error->clear();
  return fd;
}

bool read_available(int fd, std::string& inbuf) {
  char buffer[4096];
  ssize_t n;
  do {
    n = ::recv(fd, buffer, sizeof(buffer), 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return false;
  if (n < 0) return errno == EAGAIN || errno == EWOULDBLOCK;
  inbuf.append(buffer, static_cast<std::size_t>(n));
  return true;
}

bool next_line(std::string& inbuf, std::string& line) {
  std::size_t nl = inbuf.find('\n');
  if (nl == std::string::npos) return false;
  line = inbuf.substr(0, nl);
  inbuf.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool flush_buffer(int fd, std::string& outbuf) {
  while (!outbuf.empty()) {
    ssize_t n = ::send(fd, outbuf.data(), outbuf.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer gone
    }
    outbuf.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace provmark::serve
