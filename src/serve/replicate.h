// Journal replication + hot standby for the streaming service
// (docs/serve.md, "Replication & failover").
//
// A primary `provmark serve` streams every acked journal record to one
// standby started with `provmark serve --replica-of <socket>`. The
// standby journals + fsyncs each record through the *same*
// Service::apply path the primary used, acks its applied position
// upstream, and keeps a warm Session per stream — so promotion is
// instant: drain the link, flush the queues, start answering. Because
// both sides run identical deterministic applies over identical
// journals, a promoted standby answers every query about an acked
// event bit-identically to the primary it replaced.
//
// Wire grammar — rides the PR-8 newline/space framing and escape_field;
// the daemon routes any request line starting with "repl-" here:
//
//   repl-hello v1 <nsessions>                      standby -> primary
//   repl-have <session> <last> <ckpt> <digest>     standby -> primary
//   repl-resume <session> <seed> <from-seq>        primary -> standby
//   repl-reset <session> <seed> <base-seq> <escaped-program>
//                                                  primary -> standby
//   repl-rec <session> <escaped-record-line>       primary -> standby
//   repl-ack <session> <seq>                       standby -> primary
//   repl-ping <n> / repl-pong <n>                  standby-initiated
//   repl-check <session> <seq> <digest>            primary -> standby
//   repl-diverged <session> <seq> <escaped-reason> standby -> primary
//
// Handshake: the standby announces, per local session, its last
// journaled seq R, checkpoint seq C and an FNV digest over the record
// lines in (C, R]. The primary resumes from R iff its own journal
// still covers (C, R] with the same digest and R is not ahead of it;
// otherwise it ships a full reset (its checkpoint base + live tail).
// A standby that is *ahead* of the primary is quarantined with a typed
// reason — that history fork must never be silently merged.
//
// Acks are cumulative: `repl-ack s N` means the standby has journaled
// + fsynced everything through N. In `--repl-mode sync` the daemon
// parks each client `ok` until the ack covers it, so an acked event
// survives even the primary's disk dying. Divergence detection rides
// checkpoints: the primary sends its fixpoint digest at each
// checkpoint seq; the standby compares at exactly that seq and
// quarantines the stream (typed reason, `repl-diverged` upstream) on
// mismatch — it never serves silently diverged state.
//
// Both classes are socket-agnostic line processors: the daemon feeds
// inbound lines to handle_line() and writes take_output() to the link.
// Locking contract: on_record / on_checkpoint / on_applied are invoked
// under service locks, so methods here never call into the Service
// while holding the replicator mutex (flush_pending_resets and the
// handshake snapshot-then-emit dance exist exactly for this).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/journal.h"
#include "serve/service.h"

namespace provmark::serve {

struct ReplicationConfig {
  /// sync: the daemon holds each client event ack until the standby's
  /// cumulative ack covers its seq. async: ack on local fsync (default).
  bool sync_mode = false;
  /// Standby heartbeat period; the primary answers pings, the standby
  /// counts unanswered ones.
  double heartbeat_ms = 500;
  /// Standby: auto-promote after this many consecutive missed
  /// heartbeats (0 = only explicit `provmark promote`).
  int promote_after_missed = 0;
  /// Seeds the reconnect backoff envelope (core::backoff_ms).
  std::uint64_t seed = 42;
  std::int64_t backoff_base_ms = 100;
  std::int64_t backoff_cap_ms = 5000;
};

/// Primary side: forwards acked records to the standby, negotiates the
/// handshake, tracks cumulative acks (the sync-mode release gate) and
/// answers heartbeats.
class PrimaryReplicator {
 public:
  PrimaryReplicator(Service& service, ReplicationConfig config);

  /// A standby connection attached (identified itself with repl-hello
  /// is still pending — this just resets per-link state).
  void on_replica_connected();
  /// The standby link dropped; streams reset, the next connection
  /// renegotiates from journal state.
  void on_replica_disconnected();
  bool replica_connected() const;

  /// Process one inbound "repl-*" line from the standby. Malformed
  /// lines throw std::invalid_argument (the daemon drops the link).
  void handle_line(const std::string& line);

  /// Drain queued outbound lines (each '\n'-terminated).
  std::string take_output();

  /// ServiceOptions::on_record target — called under the admission
  /// mutex, in journal order. Only buffers.
  void on_record(const std::string& session, const JournalRecord& record);
  /// ServiceOptions::on_checkpoint target — called under the session's
  /// apply lock. Queues the divergence-check digest exchange.
  void on_checkpoint(const std::string& session, std::uint64_t seq,
                     const std::string& digest);

  /// Ship queued full resets for streams the record sink could not
  /// forward directly (unknown or reset-pending sessions). Must be
  /// called with no service locks held (the daemon loop); returns true
  /// when anything was emitted.
  bool flush_pending_resets();

  /// Fate of a parked sync-mode client ack: Pending while the standby
  /// has not acked (session, seq) yet, Acked once its cumulative ack
  /// covers it, Failed when the stream is quarantined (the standby
  /// will never ack — the daemon converts the parked ack to `busy`).
  enum class AckState { Pending, Acked, Failed };
  AckState ack_state(const std::string& session, std::uint64_t seq) const;
  bool ack_covers(const std::string& session, std::uint64_t seq) const {
    return ack_state(session, seq) == AckState::Acked;
  }

  bool sync_mode() const { return config_.sync_mode; }
  /// Records forwarded but not yet acked, summed over streams.
  std::uint64_t lag_events() const;
  /// key=value lines for the stats response (never touches the
  /// Service — safe as ServiceOptions::stats_extra).
  std::string stats_text() const;

  /// Link faults requested by --fault-spec hooks at forwarded records;
  /// the daemon polls and enacts them on the connection.
  bool take_link_drop_request();
  double take_partition_request_ms();

 private:
  enum class StreamState { Idle, Streaming, PendingReset, Quarantined };
  struct Stream {
    StreamState state = StreamState::Idle;
    std::uint64_t sent = 0;   ///< highest seq forwarded
    std::uint64_t acked = 0;  ///< standby's cumulative ack
    std::string reason;       ///< quarantine reason
    /// Records that arrived while the stream could not forward
    /// directly (handshake or reset pending); drained seq-deduped when
    /// the stream goes Streaming.
    std::deque<JournalRecord> pending;
  };
  struct HaveEntry {
    std::string session;
    std::uint64_t last = 0;
    std::uint64_t ckpt = 0;
    std::uint64_t digest = 0;
  };

  void finish_handshake();
  void emit_locked(const std::string& line);
  /// Drain stream.pending with seq > stream.sent into the output;
  /// caller holds mu_.
  void drain_pending_locked(const std::string& session, Stream& stream);
  void quarantine_locked(const std::string& session, Stream& stream,
                         const std::string& reason);

  Service& service_;
  ReplicationConfig config_;

  mutable std::mutex mu_;
  bool connected_ = false;
  bool handshaking_ = false;
  std::size_t have_expected_ = 0;
  std::vector<HaveEntry> have_;
  std::map<std::string, Stream> streams_;
  bool pending_resets_ = false;
  std::string out_;
  std::uint64_t forwarded_records_ = 0;
  bool link_drop_request_ = false;
  double partition_request_ms_ = 0;
  bool heard_from_replica_ = false;
  std::chrono::steady_clock::time_point last_inbound_{};
};

/// Standby side: announces local journal state, applies the record
/// stream through Service::apply_replicated, acks fsynced positions,
/// initiates heartbeats and verifies checkpoint digests.
class ReplicaReplicator {
 public:
  ReplicaReplicator(Service& service, ReplicationConfig config);

  /// The link to the primary is up: emits repl-hello + repl-have lines
  /// describing every local session. Call with no service locks held.
  void on_link_connected();
  void on_link_disconnected();
  bool link_connected() const;

  /// Process one inbound "repl-*" line from the primary. May call into
  /// the Service (apply/reset) — never call while holding service
  /// locks. Malformed lines throw std::invalid_argument.
  void handle_line(const std::string& line);

  std::string take_output();

  /// Emit one repl-ping and count it as potentially missed; any
  /// inbound line zeroes the miss counter. The daemon calls this every
  /// heartbeat period and reads missed_heartbeats() against the
  /// reconnect / auto-promote budgets.
  void heartbeat_tick();
  int missed_heartbeats() const;

  /// ServiceOptions::on_applied target — called under the session's
  /// apply lock. Compares a pending checkpoint digest at exactly this
  /// seq; mismatch quarantines the stream and queues repl-diverged.
  void on_applied(const std::string& session, std::uint64_t seq,
                  const std::function<std::string()>& digest_now);
  /// ServiceOptions::on_checkpoint target on the *standby's own*
  /// Service. Remembers the digest at our checkpoint seq so a primary
  /// check arriving after we already applied past it can still be
  /// compared (the standby usually applies ahead of the check line).
  void on_checkpoint(const std::string& session, std::uint64_t seq,
                     const std::string& digest);

  /// key=value lines for the stats response.
  std::string stats_text() const;
  /// Streams quarantined by divergence detection (id -> reason).
  std::map<std::string, std::string> quarantined_streams() const;

 private:
  struct Stream {
    std::uint64_t seed = 0;
    std::uint64_t next = 1;  ///< next seq expected from the primary
    bool quarantined = false;
    std::string reason;
  };

  void emit_locked(const std::string& line);
  void note_inbound_locked();
  void quarantine(const std::string& session, std::uint64_t seq,
                  const std::string& reason);
  /// Compare a primary digest against ours at the same seq; quarantine
  /// on mismatch. Caller holds mu_.
  void compare_digest_locked(const std::string& session, std::uint64_t seq,
                             const std::string& ours,
                             const std::string& theirs);

  Service& service_;
  ReplicationConfig config_;

  mutable std::mutex mu_;
  bool connected_ = false;
  std::string out_;
  std::map<std::string, Stream> streams_;
  /// session -> (checkpoint seq -> expected digest) awaiting local
  /// apply progress.
  std::map<std::string, std::map<std::uint64_t, std::string>> checks_;
  /// session -> (seq, digest) of our own most recent checkpoint — the
  /// comparison point for primary checks we already applied past.
  std::map<std::string, std::pair<std::uint64_t, std::string>> own_ckpt_;
  std::map<std::string, std::uint64_t> last_applied_;
  std::uint64_t replicated_records_ = 0;
  std::uint64_t ping_counter_ = 0;
  int missed_heartbeats_ = 0;
  bool heard_from_primary_ = false;
  std::chrono::steady_clock::time_point last_inbound_{};
};

}  // namespace provmark::serve
