#include "serve/cluster.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/supervise.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/socket_util.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/strings.h"

namespace provmark::serve {

namespace {

using Clock = std::chrono::steady_clock;

int g_signal_pipe_write = -1;

void on_signal(int) {
  // async-signal-safe: one byte wakes the poll loop.
  const char byte = 1;
  if (g_signal_pipe_write >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

/// One response slot on a client connection, filled in request order.
/// Forwarded requests park unready; locally answered requests behind
/// them park ready and wait their turn.
struct RouterParked {
  std::uint64_t slot = 0;
  bool ready = false;
  std::string line;  ///< response line, no newline
};

struct ClientConn {
  int fd = -1;
  std::uint64_t id = 0;  ///< generation id: fd numbers get reused
  std::string inbuf;
  std::string outbuf;
  std::deque<RouterParked> parked;
  std::uint64_t next_slot = 1;
};

/// A request forwarded to a member, awaiting its in-order response.
struct Outstanding {
  std::uint64_t conn_id = 0;
  std::uint64_t slot = 0;
};

/// The router's side of one member: proxy socket, heartbeat pipe, and
/// the FIFO of in-flight requests (the member answers per-connection
/// in request order, so front() always owns the next response line).
struct MemberLink {
  int fd = -1;
  int hb_fd = -1;
  std::string inbuf;
  std::string outbuf;
  std::deque<Outstanding> outstanding;
  Clock::time_point next_connect{};
  std::uint64_t routed = 0;
};

/// DaemonHost over forked run_daemon children. The fork happens in the
/// single-threaded router, so the child is safe to run the full
/// Service machinery; it re-arms the fault spec with its own
/// (member, incarnation) coordinates and closes every inherited router
/// descriptor so connection lifetimes stay accurate.
class RouterHost final : public core::DaemonHost {
 public:
  RouterHost(const ClusterOptions& options, std::vector<MemberLink>& links)
      : options_(options), links_(links) {}

  std::function<void()> close_inherited_in_child;

  std::uint64_t spawn_member(int member, int incarnation) override {
    int hb[2];
    if (::pipe(hb) != 0) return 0;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(hb[0]);
      ::close(hb[1]);
      return 0;
    }
    if (pid == 0) {
      ::close(hb[0]);
      if (close_inherited_in_child) close_inherited_in_child();
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGPIPE, SIG_IGN);
      if (!options_.fault_spec.empty()) {
        try {
          util::fault::arm(
              util::fault::parse_fault_spec(options_.fault_spec), member,
              incarnation);
        } catch (...) {
          ::_exit(2);
        }
      } else {
        util::fault::disarm();
      }
      DaemonOptions daemon;
      daemon.service = options_.service;
      daemon.service.root = member_root(options_.root, member);
      daemon.socket_path = member_socket_path(options_.root, member);
      daemon.cluster_member = member;
      daemon.heartbeat_fd = hb[1];
      daemon.member_heartbeat_ms = options_.heartbeat_ms;
      int code = 1;
      try {
        code = run_daemon(daemon);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    ::close(hb[1]);
    MemberLink& link = links_[static_cast<std::size_t>(member)];
    if (link.hb_fd >= 0) ::close(link.hb_fd);
    link.hb_fd = hb[0];
    note(util::format("member %d incarnation %d spawned (pid %d)", member,
                      incarnation, static_cast<int>(pid)));
    return static_cast<std::uint64_t>(pid);
  }

  void kill_member(std::uint64_t token) override {
    ::kill(static_cast<pid_t>(token), SIGKILL);
  }

  std::int64_t now_ms() override {
    static const auto t0 = Clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - t0)
        .count();
  }

  void note(const std::string& message) override {
    std::fprintf(stderr, "cluster: %s\n", message.c_str());
    std::fflush(stderr);
  }

 private:
  const ClusterOptions& options_;
  std::vector<MemberLink>& links_;
};

}  // namespace

int member_for(const std::string& session, int members) {
  if (members <= 1) return 0;
  return static_cast<int>(util::stable_hash(session) %
                          static_cast<std::uint64_t>(members));
}

std::filesystem::path member_root(const std::filesystem::path& root,
                                  int member) {
  return root / ("member-" + std::to_string(member));
}

std::string member_socket_path(const std::filesystem::path& root,
                               int member) {
  return (root / ("member-" + std::to_string(member) + ".sock")).string();
}

std::string RouterStats::to_text() const {
  std::string text;
  text += "cluster_role=router\n";
  text += util::format("cluster_members=%d\n", cluster_members);
  text += util::format("members_up=%d\n", members_up);
  text += util::format("member_restarts=%lld\n",
                       static_cast<long long>(member_restarts));
  text += util::format("hung_kills=%lld\n",
                       static_cast<long long>(hung_kills));
  text += util::format("routed_events=%llu\n",
                       static_cast<unsigned long long>(routed_events));
  text += util::format("routed_queries=%llu\n",
                       static_cast<unsigned long long>(routed_queries));
  text += util::format("proxied_responses=%llu\n",
                       static_cast<unsigned long long>(proxied_responses));
  text += util::format("busy_member_down=%llu\n",
                       static_cast<unsigned long long>(busy_member_down));
  text += util::format("busy_window_full=%llu\n",
                       static_cast<unsigned long long>(busy_window_full));
  text += util::format("route_drops=%llu\n",
                       static_cast<unsigned long long>(route_drops));
  text += util::format("heartbeats_seen=%llu\n",
                       static_cast<unsigned long long>(heartbeats_seen));
  for (std::size_t k = 0; k < members.size(); ++k) {
    text += util::format("member%zu_state=%s\n", k,
                         members[k].state.c_str());
    text += util::format("member%zu_routed=%llu\n", k,
                         static_cast<unsigned long long>(members[k].routed));
  }
  return text;
}

int run_cluster(const ClusterOptions& options) {
  namespace fault = util::fault;

  if (options.members < 1) {
    std::fprintf(stderr, "cluster: need at least one member\n");
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(options.root, ec);
  for (int m = 0; m < options.members; ++m) {
    std::filesystem::create_directories(member_root(options.root, m), ec);
    if (ec) {
      std::fprintf(stderr, "cluster: cannot create %s: %s\n",
                   member_root(options.root, m).string().c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  std::string listen_error;
  int listener = make_unix_listener(options.socket_path, &listen_error);
  if (listener < 0) {
    std::fprintf(stderr, "cluster: %s\n", listen_error.c_str());
    return 1;
  }

  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    ::close(listener);
    std::fprintf(stderr, "cluster: cannot create signal pipe\n");
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<MemberLink> links(static_cast<std::size_t>(options.members));
  std::map<int, ClientConn> connections;
  std::uint64_t next_conn_id = 1;

  RouterHost host(options, links);
  host.close_inherited_in_child = [&] {
    ::close(listener);
    ::close(signal_pipe[0]);
    ::close(signal_pipe[1]);
    for (const auto& [fd, conn] : connections) ::close(fd);
    for (const MemberLink& link : links) {
      if (link.fd >= 0) ::close(link.fd);
      if (link.hb_fd >= 0) ::close(link.hb_fd);
    }
  };

  core::DaemonPolicy policy;
  policy.seed = options.service.seed;
  policy.backoff_base_ms = options.backoff_base_ms;
  policy.backoff_cap_ms = options.backoff_cap_ms;
  policy.heartbeat_deadline_ms = static_cast<std::int64_t>(
      options.heartbeat_deadline_ms > 0 ? options.heartbeat_deadline_ms
                                        : 8 * options.heartbeat_ms);
  policy.start_deadline_ms =
      static_cast<std::int64_t>(options.start_deadline_ms);
  policy.max_restarts = options.max_restarts;
  core::DaemonSupervisor supervisor(options.members, host, policy);

  std::uint64_t routed_events = 0;
  std::uint64_t routed_queries = 0;
  std::uint64_t proxied_responses = 0;
  std::uint64_t busy_member_down = 0;
  std::uint64_t busy_window_full = 0;
  std::uint64_t route_drops = 0;
  std::uint64_t heartbeats_seen = 0;

  const std::string busy_line = format_response(Response{Status::Busy, 0, ""});

  auto flush_ready = [](ClientConn& conn) {
    while (!conn.parked.empty() && conn.parked.front().ready) {
      conn.outbuf += conn.parked.front().line;
      conn.outbuf += '\n';
      conn.parked.pop_front();
    }
  };

  auto fill_slot = [&](const Outstanding& o, const std::string& line) {
    for (auto& [fd, conn] : connections) {
      if (conn.id != o.conn_id) continue;
      for (RouterParked& parked : conn.parked) {
        if (parked.slot != o.slot) continue;
        parked.ready = true;
        parked.line = line;
        break;
      }
      flush_ready(conn);
      return;
    }
    // The client hung up while its request was in flight; nothing to
    // deliver.
  };

  auto drop_member_link = [&](int member, const char* why) {
    MemberLink& link = links[static_cast<std::size_t>(member)];
    if (link.fd >= 0) {
      host.note(util::format("member %d link closed (%s)", member, why));
      ::close(link.fd);
      link.fd = -1;
    }
    link.inbuf.clear();
    link.outbuf.clear();
    // Never silently drop: every request in flight to the dead link is
    // answered busy — journaled-but-unacked is a valid history the
    // client's retry path owns (same contract as sync-mode failover).
    while (!link.outstanding.empty()) {
      fill_slot(link.outstanding.front(), busy_line);
      link.outstanding.pop_front();
    }
    link.next_connect = Clock::now() + std::chrono::milliseconds(20);
  };

  auto collect_stats = [&]() {
    RouterStats stats;
    stats.cluster_members = options.members;
    stats.members_up = supervisor.members_up();
    stats.member_restarts = supervisor.total_restarts();
    stats.hung_kills = supervisor.hung_kills();
    stats.routed_events = routed_events;
    stats.routed_queries = routed_queries;
    stats.proxied_responses = proxied_responses;
    stats.busy_member_down = busy_member_down;
    stats.busy_window_full = busy_window_full;
    stats.route_drops = route_drops;
    stats.heartbeats_seen = heartbeats_seen;
    stats.members.resize(static_cast<std::size_t>(options.members));
    for (int m = 0; m < options.members; ++m) {
      auto& member = stats.members[static_cast<std::size_t>(m)];
      member.state = core::member_state_name(supervisor.state(m));
      member.routed = links[static_cast<std::size_t>(m)].routed;
    }
    return stats;
  };

  auto respond = [&](ClientConn& conn, const Response& response) {
    if (conn.parked.empty()) {
      conn.outbuf += format_response(response);
      conn.outbuf += '\n';
    } else {
      RouterParked parked;
      parked.slot = conn.next_slot++;
      parked.ready = true;
      parked.line = format_response(response);
      conn.parked.push_back(std::move(parked));
    }
  };

  auto handle_client_line = [&](ClientConn& conn, const std::string& line) {
    Request request;
    try {
      request = parse_request(line);
    } catch (const std::exception& e) {
      respond(conn, Response{Status::BadRequest, 0, e.what()});
      return;
    }
    if (!request.is_event) {
      if (request.query == QueryKind::Ping) {
        respond(conn, Response{Status::Result, 0, "pong"});
        return;
      }
      if (request.query == QueryKind::Stats) {
        respond(conn,
                Response{Status::Result, 0, collect_stats().to_text()});
        return;
      }
      if (request.query == QueryKind::Promote) {
        respond(conn, Response{Status::BadRequest, 0,
                               "cluster members are primaries; promote "
                               "targets a standby daemon"});
        return;
      }
    }
    const int m = member_for(request.session, options.members);
    MemberLink& link = links[static_cast<std::size_t>(m)];
    if (link.fd < 0) {
      // Down or mid-restart: busy until the new incarnation finishes
      // journal replay and binds its socket. Never a silent drop.
      ++busy_member_down;
      respond(conn, Response{Status::Busy, 0, ""});
      return;
    }
    if (static_cast<int>(link.outstanding.size()) >= options.member_window) {
      ++busy_window_full;
      respond(conn, Response{Status::Busy, 0, ""});
      return;
    }
    link.outbuf += line;
    link.outbuf += '\n';
    RouterParked parked;
    parked.slot = conn.next_slot++;
    conn.parked.push_back(parked);
    link.outstanding.push_back(Outstanding{conn.id, parked.slot});
    ++link.routed;
    if (request.is_event) {
      ++routed_events;
    } else {
      ++routed_queries;
    }
    if (fault::route_request_forwarded()) {
      ++route_drops;
      drop_member_link(m, "fault-injection: route-drop");
    }
  };

  std::printf("cluster: routing %s across %d members under %s\n",
              options.socket_path.c_str(), options.members,
              options.root.string().c_str());
  std::fflush(stdout);

  supervisor.start();

  bool shutting_down = false;
  while (!shutting_down) {
    // Reap member corpses; their deaths drive the restart schedule.
    for (;;) {
      int status = 0;
      pid_t pid;
      do {
        pid = ::waitpid(-1, &status, WNOHANG);
      } while (pid < 0 && errno == EINTR);
      if (pid <= 0) break;
      const std::uint64_t token = static_cast<std::uint64_t>(pid);
      const int member = supervisor.member_of(token);
      if (member >= 0) drop_member_link(member, "member process died");
      supervisor.member_exited(token, WIFSIGNALED(status),
                               WIFSIGNALED(status) ? WTERMSIG(status)
                                                   : WEXITSTATUS(status));
    }
    supervisor.tick();

    const Clock::time_point now = Clock::now();
    bool connecting = false;
    for (int m = 0; m < options.members; ++m) {
      MemberLink& link = links[static_cast<std::size_t>(m)];
      const core::MemberState state = supervisor.state(m);
      if (link.fd >= 0 ||
          (state != core::MemberState::Starting &&
           state != core::MemberState::Up)) {
        continue;
      }
      connecting = true;
      if (now < link.next_connect) continue;
      link.fd = connect_unix(member_socket_path(options.root, m));
      if (link.fd < 0) {
        link.next_connect = now + std::chrono::milliseconds(20);
      } else {
        link.inbuf.clear();
        link.outbuf.clear();
        host.note(util::format("member %d routable", m));
      }
    }

    std::vector<pollfd> fds;
    std::vector<int> owners;  ///< parallel: member id, or -1 for client
    std::vector<char> kinds;  ///< 'h' heartbeat, 'm' member link, 'c' client
    fds.push_back({signal_pipe[0], POLLIN, 0});
    owners.push_back(-1);
    kinds.push_back('s');
    fds.push_back({listener, POLLIN, 0});
    owners.push_back(-1);
    kinds.push_back('l');
    for (int m = 0; m < options.members; ++m) {
      MemberLink& link = links[static_cast<std::size_t>(m)];
      if (link.hb_fd >= 0) {
        fds.push_back({link.hb_fd, POLLIN, 0});
        owners.push_back(m);
        kinds.push_back('h');
      }
      if (link.fd >= 0) {
        short events = POLLIN;
        if (!link.outbuf.empty()) events |= POLLOUT;
        fds.push_back({link.fd, events, 0});
        owners.push_back(m);
        kinds.push_back('m');
      }
    }
    for (auto& [fd, conn] : connections) {
      short events = POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      owners.push_back(-1);
      kinds.push_back('c');
    }

    std::int64_t timeout = supervisor.next_deadline_ms(200);
    if (connecting) timeout = std::min<std::int64_t>(timeout, 20);
    if (::poll(fds.data(), fds.size(), static_cast<int>(timeout)) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      shutting_down = true;
      break;
    }
    if (fds[1].revents & POLLIN) {
      int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        ClientConn conn;
        conn.fd = fd;
        conn.id = next_conn_id++;
        connections.emplace(fd, std::move(conn));
      }
    }

    std::vector<int> closed_clients;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      if (kinds[i] == 'h') {
        const int m = owners[i];
        MemberLink& link = links[static_cast<std::size_t>(m)];
        if (link.hb_fd != fds[i].fd) continue;  // replaced this iteration
        if (revents & POLLIN) {
          char beats[256];
          ssize_t n;
          do {
            n = ::read(link.hb_fd, beats, sizeof(beats));
          } while (n < 0 && errno == EINTR);
          if (n > 0) {
            heartbeats_seen += static_cast<std::uint64_t>(n);
            for (ssize_t b = 0; b < n; ++b) supervisor.heartbeat(m);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        }
        // EOF or error: the writer is gone; the corpse arrives via
        // waitpid. A fresh spawn installs a fresh pipe.
        ::close(link.hb_fd);
        link.hb_fd = -1;
        continue;
      }
      if (kinds[i] == 'm') {
        const int m = owners[i];
        MemberLink& link = links[static_cast<std::size_t>(m)];
        if (link.fd != fds[i].fd) continue;  // dropped this iteration
        if (revents & (POLLERR | POLLNVAL)) {
          drop_member_link(m, "socket error");
          continue;
        }
        if (revents & POLLIN) {
          if (!read_available(link.fd, link.inbuf)) {
            drop_member_link(m, "peer closed");
            continue;
          }
          std::string line;
          while (link.fd >= 0 && next_line(link.inbuf, line)) {
            if (line.empty()) continue;
            if (link.outstanding.empty()) {
              drop_member_link(m, "unsolicited response");
              break;
            }
            const Outstanding o = link.outstanding.front();
            link.outstanding.pop_front();
            ++proxied_responses;
            fill_slot(o, line);
          }
          if (link.fd < 0) continue;
        } else if (revents & POLLHUP) {
          drop_member_link(m, "peer closed");
          continue;
        }
        if (!link.outbuf.empty() && !flush_buffer(link.fd, link.outbuf)) {
          drop_member_link(m, "peer closed");
        }
        continue;
      }
      if (kinds[i] != 'c') continue;
      auto conn_it = connections.find(fds[i].fd);
      if (conn_it == connections.end()) continue;
      ClientConn& conn = conn_it->second;
      if (revents & (POLLERR | POLLNVAL)) {
        closed_clients.push_back(conn.fd);
        continue;
      }
      if (revents & POLLIN) {
        if (!read_available(conn.fd, conn.inbuf)) {
          closed_clients.push_back(conn.fd);
          continue;
        }
        std::string line;
        while (next_line(conn.inbuf, line)) {
          if (line.empty()) continue;
          handle_client_line(conn, line);
        }
      } else if (revents & POLLHUP) {
        if (conn.outbuf.empty()) {
          closed_clients.push_back(conn.fd);
          continue;
        }
      }
    }
    for (int fd : closed_clients) {
      auto it = connections.find(fd);
      if (it != connections.end()) {
        ::close(it->second.fd);
        connections.erase(it);
      }
    }

    // Flush whatever the member deliveries queued up.
    std::vector<int> flush_failed;
    for (auto& [fd, conn] : connections) {
      if (!conn.outbuf.empty() && !flush_buffer(conn.fd, conn.outbuf)) {
        flush_failed.push_back(fd);
      }
    }
    for (int fd : flush_failed) {
      auto it = connections.find(fd);
      if (it != connections.end()) {
        ::close(it->second.fd);
        connections.erase(it);
      }
    }
    for (int m = 0; m < options.members; ++m) {
      MemberLink& link = links[static_cast<std::size_t>(m)];
      if (link.fd >= 0 && !link.outbuf.empty() &&
          !flush_buffer(link.fd, link.outbuf)) {
        drop_member_link(m, "peer closed");
      }
    }
  }

  std::fprintf(stderr, "cluster: shutting down\n");
  ::close(listener);

  // In-flight proxied requests become busy; clients get their buffered
  // responses flushed best-effort before the sockets close.
  for (int m = 0; m < options.members; ++m) {
    MemberLink& link = links[static_cast<std::size_t>(m)];
    while (!link.outstanding.empty()) {
      fill_slot(link.outstanding.front(), busy_line);
      link.outstanding.pop_front();
    }
  }
  for (auto& [fd, conn] : connections) {
    flush_ready(conn);
    flush_buffer(conn.fd, conn.outbuf);
    ::close(fd);
  }

  // Graceful member shutdown: SIGTERM (each drains + checkpoints),
  // SIGKILL whatever outlives the grace window, reap everything.
  for (int m = 0; m < options.members; ++m) {
    const std::uint64_t token = supervisor.token(m);
    if (token != 0) ::kill(static_cast<pid_t>(token), SIGTERM);
  }
  const Clock::time_point kill_deadline =
      Clock::now() + std::chrono::seconds(5);
  bool any_live = true;
  bool killed = false;
  while (any_live) {
    any_live = false;
    for (int m = 0; m < options.members; ++m) {
      any_live |= supervisor.token(m) != 0;
    }
    if (!any_live) break;
    int status = 0;
    pid_t pid;
    do {
      pid = ::waitpid(-1, &status, WNOHANG);
    } while (pid < 0 && errno == EINTR);
    if (pid > 0) {
      supervisor.member_exited(static_cast<std::uint64_t>(pid),
                               WIFSIGNALED(status),
                               WIFSIGNALED(status) ? WTERMSIG(status)
                                                   : WEXITSTATUS(status));
      // member_exited schedules a restart; drop the token so the loop
      // above sees the member as reaped rather than respawning it.
      continue;
    }
    if (pid < 0 && errno == ECHILD) break;
    if (Clock::now() >= kill_deadline) {
      if (killed) break;
      for (int m = 0; m < options.members; ++m) {
        const std::uint64_t token = supervisor.token(m);
        if (token != 0) ::kill(static_cast<pid_t>(token), SIGKILL);
      }
      killed = true;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (MemberLink& link : links) {
    if (link.fd >= 0) ::close(link.fd);
    if (link.hb_fd >= 0) ::close(link.hb_fd);
  }
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  g_signal_pipe_write = -1;
  ::unlink(options.socket_path.c_str());
  std::fprintf(stderr, "cluster: clean shutdown\n");
  return 0;
}

}  // namespace provmark::serve
