#include "serve/protocol.h"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "util/strings.h"

namespace provmark::serve {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("serve protocol: " + message);
}

EventKind parse_event_kind(const std::string& name) {
  if (name == "fact") return EventKind::Fact;
  if (name == "rule") return EventKind::Rule;
  if (name == "run") return EventKind::Run;
  fail("unknown event kind '" + name + "' (fact | rule | run)");
}

Priority parse_priority(const std::string& name) {
  if (name == "low") return Priority::Low;
  if (name == "normal") return Priority::Normal;
  if (name == "high") return Priority::High;
  fail("unknown priority '" + name + "' (low | normal | high)");
}

double parse_deadline(const std::string& text) {
  char* end = nullptr;
  double ms = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || ms < 0) {
    fail("deadline-ms needs a non-negative number, got '" + text + "'");
  }
  return ms;
}

/// Session ids become journal directory names, so restrict them to a
/// filesystem- and protocol-safe alphabet.
void check_session(const std::string& id) {
  if (!valid_session_id(id)) {
    fail("session id '" + id +
         "' must be 1..128 characters of [A-Za-z0-9._-]");
  }
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Fact: return "fact";
    case EventKind::Rule: return "rule";
    case EventKind::Run: return "run";
  }
  return "?";
}

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::Query: return "query";
    case QueryKind::Digest: return "digest";
    case QueryKind::Dump: return "dump";
    case QueryKind::Stats: return "stats";
    case QueryKind::Ping: return "ping";
    case QueryKind::Promote: return "promote";
  }
  return "?";
}

bool valid_session_id(std::string_view id) {
  if (id.empty() || id.size() > 128 || id == "." || id == "..") return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::Low: return "low";
    case Priority::Normal: return "normal";
    case Priority::High: return "high";
  }
  return "?";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Result: return "result";
    case Status::Shed: return "shed";
    case Status::Busy: return "busy";
    case Status::Quarantined: return "quarantined";
    case Status::TooLarge: return "too-large";
    case Status::BadRequest: return "bad-request";
    case Status::Error: return "error";
  }
  return "?";
}

std::string escape_field(std::string_view s) {
  if (s.empty()) return "\\0";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view s) {
  if (s == "\\0") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) fail("dangling escape in field");
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: fail(std::string("unknown escape '\\") + s[i] + "'");
    }
  }
  return out;
}

std::string format_request(const Request& request) {
  if (request.is_event) {
    return std::string("event ") + request.session + " " +
           event_kind_name(request.event) + " " +
           priority_name(request.priority) + " " +
           escape_field(request.payload);
  }
  switch (request.query) {
    case QueryKind::Stats: return "stats";
    case QueryKind::Ping: return "ping";
    case QueryKind::Promote: return "promote";
    case QueryKind::Query:
      return "query " + request.session + " " +
             util::format("%g", request.deadline_ms) + " " +
             escape_field(request.payload);
    case QueryKind::Digest:
    case QueryKind::Dump:
      return std::string(query_kind_name(request.query)) + " " +
             request.session + " " + util::format("%g", request.deadline_ms);
  }
  return "ping";
}

Request parse_request(std::string_view line) {
  std::vector<std::string> fields = util::split_nonempty(line, ' ');
  if (fields.empty()) fail("empty request");
  Request request;
  const std::string& verb = fields[0];
  if (verb == "event") {
    if (fields.size() != 5) {
      fail("event needs: event <session> <kind> <priority> <payload>");
    }
    request.is_event = true;
    request.session = fields[1];
    check_session(request.session);
    request.event = parse_event_kind(fields[2]);
    request.priority = parse_priority(fields[3]);
    request.payload = unescape_field(fields[4]);
    return request;
  }
  if (verb == "query") {
    if (fields.size() != 4) {
      fail("query needs: query <session> <deadline-ms> <pattern>");
    }
    request.query = QueryKind::Query;
    request.session = fields[1];
    check_session(request.session);
    request.deadline_ms = parse_deadline(fields[2]);
    request.payload = unescape_field(fields[3]);
    return request;
  }
  if (verb == "digest" || verb == "dump") {
    if (fields.size() != 3) {
      fail(verb + " needs: " + verb + " <session> <deadline-ms>");
    }
    request.query = verb == "digest" ? QueryKind::Digest : QueryKind::Dump;
    request.session = fields[1];
    check_session(request.session);
    request.deadline_ms = parse_deadline(fields[2]);
    return request;
  }
  if (verb == "stats" && fields.size() == 1) {
    request.query = QueryKind::Stats;
    return request;
  }
  if (verb == "ping" && fields.size() == 1) {
    request.query = QueryKind::Ping;
    return request;
  }
  if (verb == "promote" && fields.size() == 1) {
    request.query = QueryKind::Promote;
    return request;
  }
  fail("unknown request '" + verb +
       "' (event | query | digest | dump | stats | ping | promote)");
}

std::string format_response(const Response& response) {
  switch (response.status) {
    case Status::Ok:
      return util::format("ok %llu",
                          static_cast<unsigned long long>(response.seq));
    case Status::Result:
      return "result " + escape_field(response.body);
    case Status::Shed:
      return "shed";
    case Status::Busy:
      return "busy";
    case Status::Quarantined:
      return "quarantined " + escape_field(response.body);
    case Status::TooLarge:
      return "too-large " + escape_field(response.body);
    case Status::BadRequest:
      return "bad-request " + escape_field(response.body);
    case Status::Error:
      return "error " + escape_field(response.body);
  }
  return "error " + escape_field("unknown status");
}

Response parse_response(std::string_view line) {
  std::vector<std::string> fields = util::split_nonempty(line, ' ');
  if (fields.empty()) fail("empty response");
  Response response;
  const std::string& verb = fields[0];
  if (verb == "ok") {
    if (fields.size() != 2) fail("ok needs a sequence number");
    response.status = Status::Ok;
    response.seq = std::strtoull(fields[1].c_str(), nullptr, 10);
    return response;
  }
  if ((verb == "shed" || verb == "busy") && fields.size() == 1) {
    response.status = verb == "shed" ? Status::Shed : Status::Busy;
    return response;
  }
  for (Status status : {Status::Result, Status::Quarantined, Status::TooLarge,
                        Status::BadRequest, Status::Error}) {
    if (verb == status_name(status)) {
      if (fields.size() != 2) fail(verb + " needs one payload field");
      response.status = status;
      response.body = unescape_field(fields[1]);
      return response;
    }
  }
  fail("unknown response '" + verb + "'");
}

}  // namespace provmark::serve
