// AF_UNIX front end of the streaming service: `provmark serve` hosts a
// Service behind a stream socket; `provmark feed` streams request lines
// to it and prints the responses.
//
// The daemon is a single poll loop — accept, buffered line reads,
// buffered writes — because admission is O(1)+fsync and all heavy work
// lives on the Service's apply workers. Responses go back in request
// order per connection. SIGTERM/SIGINT reach the loop via a self-pipe;
// the loop then stops accepting, drains the service (finish queued
// applies, checkpoint + compact every healthy session) and exits 0 —
// the graceful half of the crash-recovery story. The ungraceful half
// (SIGKILL, serve-crash fault injection) is what the journal exists
// for.
//
// Replication (docs/serve.md, "Replication & failover"): a primary
// daemon hosts a PrimaryReplicator; an inbound connection that opens
// with `repl-hello` becomes the replication link and every acked
// record streams down it. A daemon started with `replica_of` runs as a
// hot standby instead: it dials the primary, tails the record stream
// through ReplicaReplicator, keeps warm sessions, answers read-only
// queries locally, refuses events, and promotes to a full primary on
// `provmark promote` or after `promote_after_missed` unanswered
// heartbeats. In `repl_sync` mode the daemon parks each client event
// ack until the standby's cumulative ack covers it — parked acks
// become `busy` if the standby drops (journaled-but-unacked is a valid
// history; the client retries).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/service.h"

namespace provmark::serve {

struct DaemonOptions {
  ServiceOptions service;
  std::string socket_path;

  /// Non-empty: run as a hot standby of the primary at this socket.
  std::string replica_of;
  /// Primary: hold client event acks until the standby fsynced them.
  bool repl_sync = false;
  /// Standby heartbeat period (and the daemon's replication poll tick).
  double heartbeat_ms = 500;
  /// Standby: auto-promote after this many consecutive unanswered
  /// heartbeats; 0 = only explicit `provmark promote`.
  int promote_after_missed = 0;
  /// Standby: consecutive missed heartbeats before dropping the link
  /// and reconnecting with seeded backoff.
  int reconnect_after_missed = 3;

  /// Cluster member mode (docs/serve.md "Cluster sharding"): >= 0 when
  /// this daemon is member K of a routed fleet. Surfaces as a
  /// `cluster_member=K` stats line so health pollers can tell members
  /// apart from standalone primaries.
  int cluster_member = -1;
  /// Liveness control channel: when >= 0, the daemon writes one
  /// heartbeat byte to this fd (a pipe to the supervising router)
  /// every `member_heartbeat_ms`, starting the moment the listener is
  /// bound — i.e. after journal replay completed. Silence past the
  /// router's deadline means a wedged event loop; the router kills and
  /// restarts the member.
  int heartbeat_fd = -1;
  double member_heartbeat_ms = 200;
};

/// Run the daemon until SIGTERM/SIGINT; returns the process exit code
/// (0 on clean drain). Replaces a stale socket file at `socket_path`.
int run_daemon(const DaemonOptions& options);

/// Client-side retry envelope for `provmark feed` (docs/cli.md). With
/// retries = 0 (the default) behaviour is identical to the historical
/// client: every `shed`/`busy` is final and any connection failure is
/// fatal. With retries > 0 a shed or busy response is retried after a
/// deterministic seeded exponential backoff — the same envelope the
/// sweep supervisor uses (core::backoff_ms), keyed by (seed, request
/// index, attempt) so two runs of the same feed sleep the exact same
/// schedule. Connection failures (connect refused, ECONNRESET, the
/// daemon closing mid-request) consume the same per-request budget:
/// the client reconnects and re-sends the current request, which is
/// what lets a feed ride out a daemon or cluster-member restart
/// window. Re-sending after a mid-request connection loss is
/// at-least-once delivery — the daemon may have journaled the event
/// before dying — which is the documented client choice (both
/// histories are valid; see docs/serve.md).
struct FeedOptions {
  int retries = 0;
  std::uint64_t seed = 42;
  std::int64_t backoff_base_ms = 50;
  std::int64_t backoff_cap_ms = 2000;
};

/// The deterministic sleep before retry `attempt` (1-based) of the
/// request at `request_index` (0-based). Exposed so tests can assert
/// the exact schedule.
std::int64_t feed_backoff_ms(std::uint64_t seed, int request_index,
                             int attempt, const FeedOptions& options);

/// Stream newline-framed request lines from `in` (blank lines and
/// `#` comments skipped) to the daemon at `socket_path`, writing one
/// response line each to `out` (only the final response of a retried
/// request is printed). Returns 0 when every event was acked and every
/// query answered, 3 when any request was shed, refused or errored,
/// 1 on connection failure.
int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out, const FeedOptions& options);
int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out);

}  // namespace provmark::serve
