// AF_UNIX front end of the streaming service: `provmark serve` hosts a
// Service behind a stream socket; `provmark feed` streams request lines
// to it and prints the responses.
//
// The daemon is a single poll loop — accept, buffered line reads,
// buffered writes — because admission is O(1)+fsync and all heavy work
// lives on the Service's apply workers. Responses go back in request
// order per connection. SIGTERM/SIGINT reach the loop via a self-pipe;
// the loop then stops accepting, drains the service (finish queued
// applies, checkpoint + compact every healthy session) and exits 0 —
// the graceful half of the crash-recovery story. The ungraceful half
// (SIGKILL, serve-crash fault injection) is what the journal exists
// for.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/service.h"

namespace provmark::serve {

struct DaemonOptions {
  ServiceOptions service;
  std::string socket_path;
};

/// Run the daemon until SIGTERM/SIGINT; returns the process exit code
/// (0 on clean drain). Replaces a stale socket file at `socket_path`.
int run_daemon(const DaemonOptions& options);

/// Stream newline-framed request lines from `in` (blank lines and
/// `#` comments skipped) to the daemon at `socket_path`, writing one
/// response line each to `out`. Returns 0 when every event was acked
/// and every query answered, 3 when any request was shed, refused or
/// errored, 1 on connection failure.
int run_feed(const std::string& socket_path, std::istream& in,
             std::ostream& out);

}  // namespace provmark::serve
