// Per-session write-ahead journal of the streaming service.
//
// Durability contract (docs/serve.md): an event is acked only after its
// record is appended to the session journal and fsynced — so any acked
// event survives SIGKILL, and recovery rebuilds the exact session state
// by replaying the checkpoint plus the journal tail through the same
// apply path the live service uses. Events the client never saw acked
// may or may not be present; both outcomes are valid histories.
//
// On-disk layout under `<root>/<session>/`:
//   journal.log        header line + one record line per admitted event
//   checkpoint.dlog    base program text at the checkpoint (atomic
//                      tmp+fsync+rename publish, util/atomic_io.h)
//
// journal.log framing (one '\n'-terminated line each):
//   H provmark-serve-journal v1 <session> <seed>
//   R <seq> <kind> <priority> <bytes> <fnv64-hex> <escaped payload>
//
// `bytes` and the FNV-1a checksum cover the *escaped* payload field, and
// a record only counts if its line ends in '\n' — so a crash mid-append
// leaves a tail that fails one of (field parse, length, checksum,
// terminator) and recovery truncates the journal to the last good
// record instead of propagating garbage into a session. The checkpoint
// file carries the same header plus `C <seq>`: a crash between
// checkpoint publish and journal compaction replays a harmless overlap
// (records <= checkpoint seq are skipped by seq comparison).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace provmark::serve {

/// One journaled event.
struct JournalRecord {
  std::uint64_t seq = 0;
  EventKind kind = EventKind::Fact;
  Priority priority = Priority::Normal;
  std::string payload;
};

/// What recovery found on disk for one session.
struct RecoveredSession {
  std::uint64_t seed = 0;
  std::uint64_t checkpoint_seq = 0;  ///< 0 = no checkpoint
  std::string checkpoint_program;    ///< base program text ("" without one)
  std::vector<JournalRecord> records;  ///< strictly seq > checkpoint_seq
  std::uint64_t torn_bytes = 0;  ///< journal tail discarded as torn
};

class Journal {
 public:
  /// Open (creating if needed) the journal for `session` under `root`.
  /// A fresh session writes its header immediately — the seed is fixed
  /// at creation and never changes, which is what makes `run` events
  /// replayable from the journal alone.
  Journal(const std::filesystem::path& root, const std::string& session,
          std::uint64_t seed);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Parse journal + checkpoint from disk. Truncates a torn journal
  /// tail in place (rewriting the file) so later appends extend a
  /// well-formed log. Throws std::runtime_error on unreadable files or
  /// a corrupt header.
  RecoveredSession recover();

  /// Append one record and fsync before returning — the ack barrier.
  /// Throws std::runtime_error when the write cannot be made durable.
  void append(const JournalRecord& record);

  /// Publish `program_text` as the checkpoint at `seq` and compact the
  /// journal down to records with seq > `seq`. Both steps are atomic
  /// publishes; the checkpoint lands first, so every crash point leaves
  /// a recoverable (checkpoint, journal) pair.
  void checkpoint(const std::string& program_text, std::uint64_t seq);

  const std::filesystem::path& dir() const { return dir_; }
  std::uint64_t seed() const { return seed_; }

  // -- replication accessors (docs/serve.md, Replication & failover) --
  // The replication layer describes a journal by (checkpoint seq, last
  // seq, digest over the live record range) so a standby and its
  // primary can find the last common prefix without shipping payloads.

  /// Seq of the current checkpoint (0 = none). Tracked from recover()
  /// and checkpoint().
  std::uint64_t checkpoint_seq() const { return checkpoint_seq_; }

  /// Highest journaled seq: the last live record, or the checkpoint seq
  /// when the journal is fully compacted.
  std::uint64_t last_seq() const;

  /// Records with seq > `after`, in order (a copy of the live tail).
  std::vector<JournalRecord> records_after(std::uint64_t after) const;

  /// FNV-1a over the formatted record lines with `after` < seq <=
  /// `through` (newline-terminated, exactly the journal bytes modulo
  /// compaction). nullopt when the range is not fully covered by live
  /// records — the caller must fall back to a checkpoint reset.
  std::optional<std::uint64_t> records_digest(std::uint64_t after,
                                              std::uint64_t through) const;

  /// Re-read the checkpoint's program text from disk ("" when no
  /// checkpoint exists) — the base a replica reset ships.
  std::string checkpoint_program() const;

 private:
  void open_for_append();
  std::string header_line() const;

  std::filesystem::path dir_;
  std::string session_;
  std::uint64_t seed_;
  std::uint64_t checkpoint_seq_ = 0;
  int fd_ = -1;
  /// Records since recover()/checkpoint, kept so compaction can rewrite
  /// the journal without re-reading disk.
  std::vector<JournalRecord> live_records_;
};

/// Format / parse one `R` record line (without the trailing newline).
/// parse_record throws std::runtime_error on any framing violation —
/// the strictness recover() turns into tail truncation.
std::string format_record(const JournalRecord& record);
JournalRecord parse_record(std::string_view line);

/// Session ids present under a journal root (sorted; directories with a
/// journal.log).
std::vector<std::string> list_sessions(const std::filesystem::path& root);

}  // namespace provmark::serve
