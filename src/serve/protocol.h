// Wire protocol of the streaming provenance service (docs/serve.md).
//
// A request is one line of space-separated fields; payload fields are
// escaped so any byte sequence — clause text with spaces and newlines,
// whole benchmark programs — rides in a single field. The same framing
// is used on the AF_UNIX socket (`provmark serve` / `provmark feed`),
// in the in-process Service API tests, and for the journal's record
// payloads, so a journaled event replays through exactly the code path
// that admitted it.
//
// Requests:
//   event <session> <fact|rule|run> <low|normal|high> <payload>
//   query <session> <deadline-ms> <pattern>     e.g. path(a,X)
//   digest <session> <deadline-ms>              fixpoint digest
//   dump <session> <deadline-ms>                canonical fixpoint dump
//   stats                                       service counters
//   ping
//   promote                                     replica -> primary switch
//
// Responses:
//   ok <seq>                  event journaled and acked (durable)
//   result <body>             query/digest/dump/stats/ping payload
//   shed                      load-shed: retry later, event NOT journaled
//   busy                      backpressure: queue full / lock deadline
//   quarantined <reason>      session is poisoned; events refused
//   too-large <message>       payload exceeds the input-size guard
//   bad-request <message>     malformed request line
//   error <message>           internal failure
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace provmark::serve {

/// Mutating, journaled event kinds. `fact` and `rule` payloads are
/// Datalog program text loaded into the session engine; `run` payloads
/// are "<system>\n<benchmark program text>" — the pipeline runs with a
/// seed derived from (session seed, event seq) and the result graph is
/// asserted into the engine as facts.
enum class EventKind { Fact, Rule, Run };

/// Read-only request kinds; never journaled, never mutate a session.
/// Promote is the one exception to "read-only": it asks a standby
/// daemon to stop tailing its primary and start serving (docs/serve.md,
/// Replication & failover) — the daemon intercepts it before the
/// Service ever sees it, so sessions are still never mutated by a
/// QueryKind.
enum class QueryKind { Query, Digest, Dump, Stats, Ping, Promote };

/// Shedding priority of an event. Under load, Low sheds first (at half
/// the global budget), Normal at the full budget; High is never
/// silently shed — it gets `busy` backpressure instead.
enum class Priority { Low = 0, Normal = 1, High = 2 };

struct Request {
  bool is_event = false;
  EventKind event = EventKind::Fact;
  QueryKind query = QueryKind::Ping;
  std::string session;
  Priority priority = Priority::Normal;
  double deadline_ms = 1000;  ///< read-only requests: lock-wait budget
  std::string payload;
};

enum class Status {
  Ok,
  Result,
  Shed,
  Busy,
  Quarantined,
  TooLarge,
  BadRequest,
  Error,
};

struct Response {
  Status status = Status::Error;
  std::uint64_t seq = 0;  ///< journal sequence (Ok only)
  std::string body;       ///< result payload or diagnostic message
};

const char* event_kind_name(EventKind kind);
const char* query_kind_name(QueryKind kind);
const char* priority_name(Priority priority);
const char* status_name(Status status);

/// Escape a payload into one space-free field: '\\'->"\\\\", ' '->"\\s",
/// '\t'->"\\t", '\n'->"\\n", '\r'->"\\r". Empty payloads encode as "\\0".
std::string escape_field(std::string_view s);

/// Inverse of escape_field. Throws std::invalid_argument on a dangling
/// or unknown escape — strictness the journal relies on to detect torn
/// tails.
std::string unescape_field(std::string_view s);

/// Serialize a request as one line (no trailing newline).
std::string format_request(const Request& request);

/// Parse one request line. Throws std::invalid_argument with a pointed
/// message on any malformed field.
Request parse_request(std::string_view line);

/// Serialize a response as one line (no trailing newline).
std::string format_response(const Response& response);

/// Parse one response line (the feed client and tests use this).
Response parse_response(std::string_view line);

/// True when `id` is a protocol-legal session id: 1..128 chars of
/// [A-Za-z0-9._-] and not "." / "..". Session ids become journal
/// directory names, so the replication layer re-validates every id
/// arriving on the wire with this before touching the filesystem.
bool valid_session_id(std::string_view id);

}  // namespace provmark::serve
