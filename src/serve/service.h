// The streaming provenance service: bounded admission, per-session
// WAL-backed state, overload shedding, crash recovery, graceful drain.
//
// Architecture (docs/serve.md): admission is the client-facing fast
// path — validate, decide shed/busy from queue depths, append+fsync the
// journal, ack. Everything expensive (Datalog saturation, pipeline
// runs) happens on worker threads, one session at a time per session,
// so admission latency never depends on matcher or fixpoint work and a
// slow session can only back up its own queue.
//
// Shedding is deterministic — decided purely from queue-depth counters
// at admission, never from clocks or scheduling:
//   * per-session queue at capacity          -> busy (backpressure)
//   * global backlog >= cap/2, priority low  -> shed
//   * global backlog >= cap, priority normal -> shed
//   * global backlog >= cap, priority high   -> busy (never silently
//                                               shed)
// A shed or busy event is refused *before* the journal append, so the
// journal only ever contains acked events: shedding can drop work but
// can never corrupt a session.
//
// Crash recovery: the constructor scans the journal root, truncates
// torn tails, restores each session's checkpoint and replays the
// journal tail through Session::apply — the same function the live
// path uses — so a SIGKILL'd service restarts into bit-identical
// per-session fixpoints (enforced by tests/serve/ and BENCH_serve).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace provmark::serve {

// -- replication sinks (docs/serve.md, Replication & failover) --------------
// The replication layer observes the service through three optional
// callbacks instead of owning any service internals. Sinks run under
// service locks (record: the admission mutex; checkpoint/applied: the
// session's apply lock) and therefore must only buffer — never call
// back into the Service.

/// One record was appended + fsynced to a session's journal (both the
/// live submit path and replica catch-up fire it, in journal order).
using RecordSink =
    std::function<void(const std::string& session, const JournalRecord&)>;

/// A session checkpointed at `seq`; `digest` is its fixpoint digest at
/// exactly that seq — the divergence-detection exchange rides on it.
using CheckpointSink = std::function<void(
    const std::string& session, std::uint64_t seq, const std::string& digest)>;

/// A session applied the record at `seq`; `digest_now()` computes the
/// fixpoint digest at exactly this seq (only called when the observer
/// has a pending check — digests are not free).
using AppliedSink = std::function<void(
    const std::string& session, std::uint64_t seq,
    const std::function<std::string()>& digest_now)>;

struct ServiceOptions {
  /// Journal root; one subdirectory per session.
  std::filesystem::path root;
  /// Apply-worker threads. 0 = no threads: admitted events queue until
  /// the caller runs pump() — the deterministic single-threaded mode
  /// the admission and shedding tests drive.
  int workers = 1;
  /// Per-session pending-event cap; at capacity new events get `busy`.
  std::size_t session_queue_cap = 64;
  /// Global pending-event budget; the shedding watermarks above.
  std::size_t global_queue_cap = 256;
  /// Payload ceiling (util::check_input_size) — oversized events are
  /// refused with `too-large` before any allocation or journaling.
  std::size_t max_payload_bytes = std::size_t{1} << 20;
  /// Root seed; a session's seed is derived from (seed, session id) at
  /// creation and then pinned in its journal header.
  std::uint64_t seed = 42;
  /// Checkpoint + compact a session's journal after this many applied
  /// events (0 = only on drain()).
  std::uint64_t checkpoint_every = 64;
  /// Base pipeline options for run events (trials, matcher, latency).
  core::PipelineOptions pipeline;
  /// Replication observers (see the sink typedefs above); empty = off.
  RecordSink on_record;
  CheckpointSink on_checkpoint;
  AppliedSink on_applied;
  /// Extra key=value lines appended to the `stats` response body —
  /// how the daemon surfaces replication health (repl_lag_events,
  /// last_heartbeat_ms, repl_mode) without the Service knowing about
  /// replication. Called without service locks held.
  std::function<std::string()> stats_extra;
};

struct ServiceStats {
  std::uint64_t sessions = 0;
  std::uint64_t quarantined_sessions = 0;
  std::uint64_t pending = 0;   ///< admitted, not yet applied
  std::uint64_t admitted = 0;
  std::uint64_t applied = 0;
  std::uint64_t shed_low = 0;
  std::uint64_t shed_normal = 0;
  std::uint64_t busy = 0;
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t rejected_oversized = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t replayed_events = 0;   ///< journal records re-applied
  std::uint64_t torn_bytes_truncated = 0;

  /// key=value lines, the `stats` request body.
  std::string to_text() const;
};

class Service {
 public:
  /// Opens the journal root and recovers every session found there
  /// (checkpoint restore + journal-tail replay). Throws on unreadable
  /// or corrupt-beyond-torn-tail journals.
  explicit Service(ServiceOptions options);

  /// Abandons queued and in-flight work (cooperative cancel, then
  /// join). Admitted events stay journaled; the next construction
  /// replays them. This is the in-process analogue of a crash, which
  /// is exactly what the destructor-vs-recovery tests exploit.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Handle one request. Events: O(1) + one journal fsync, never
  /// blocks on apply work. Read-only requests run on the calling
  /// thread against the applied prefix of the stream, waiting at most
  /// `deadline_ms` for the session's apply lock (`busy` on timeout).
  Response submit(const Request& request);

  /// Apply queued events on the calling thread until the queues are
  /// empty; returns how many were applied. The workers==0 test mode —
  /// with workers it is also safe, competing for the same queues.
  std::size_t pump();

  /// Graceful shutdown (SIGTERM): stop admitting (events get `busy`),
  /// finish every queued apply, checkpoint + compact every healthy
  /// session. Idempotent; submit keeps answering read-only requests.
  void drain();

  ServiceStats stats() const;
  std::vector<std::string> session_ids() const;

  /// Fixpoint digest of every session (drains nothing; callers that
  /// need queues empty call drain()/pump() first). The recovery
  /// identity gates compare these maps across a kill.
  std::map<std::string, std::string> session_digests();

  /// Wait until every admitted event is applied (pumping on the calling
  /// thread when workers == 0). Unlike drain() this does not stop
  /// admission — promotion uses it to finish replicated catch-up before
  /// the standby starts answering as primary.
  void flush();

  // -- replication API (docs/serve.md, Replication & failover) --------------

  /// Where a session's journal stands: its pinned seed, checkpoint seq
  /// and highest journaled seq. nullopt for unknown sessions.
  struct JournalPosition {
    std::uint64_t seed = 0;
    std::uint64_t checkpoint_seq = 0;
    std::uint64_t last_seq = 0;
  };
  std::optional<JournalPosition> journal_position(const std::string& id);

  /// Journal::records_digest under the session's locks — how the
  /// handshake decides whether a standby's tail is a prefix of ours.
  std::optional<std::uint64_t> records_digest(const std::string& id,
                                              std::uint64_t after,
                                              std::uint64_t through);

  /// Live journal records with seq > `after` (what a resuming standby
  /// is missing). Empty for unknown sessions.
  std::vector<JournalRecord> records_after(const std::string& id,
                                           std::uint64_t after);

  /// Everything a standby needs to rebuild a session from our last
  /// checkpoint: the pinned seed, the checkpoint (seq, program) and the
  /// live records above it. Quarantined sessions resync the same way —
  /// their checkpoint predates the poisoning record, so replaying the
  /// tail re-quarantines the replica deterministically.
  struct ResyncSnapshot {
    std::uint64_t seed = 0;
    std::uint64_t base_seq = 0;
    std::string base_program;
    std::vector<JournalRecord> records;  ///< seq > base_seq, in order
  };
  std::optional<ResyncSnapshot> resync_snapshot(const std::string& id);

  /// Apply one record streamed from a primary: journal + fsync it with
  /// the primary-assigned seq, queue the apply, return Ok — the ack the
  /// standby sends upstream. No admission/shedding (the primary already
  /// admitted it; refusing here would silently fork history) and no
  /// quarantine refusal (the primary's journal can extend past a
  /// poisoning record; Session::apply skips them identically on both
  /// sides). A duplicate seq is Ok (idempotent redelivery after
  /// reconnect); a gap is an Error — the stream must reset.
  Response apply_replicated(const std::string& id, std::uint64_t seed,
                            const JournalRecord& record);

  /// Drop a session's state and journal and re-seed it from a primary's
  /// checkpoint snapshot (reset stream). The caller must ensure no
  /// applies are pending for the session (flush() first); throws
  /// otherwise.
  void reset_session(const std::string& id, std::uint64_t seed,
                     std::uint64_t base_seq,
                     const std::string& base_program);

 private:
  struct SessionState {
    SessionState(const std::filesystem::path& root, const std::string& id,
                 std::uint64_t seed, SessionOptions options);

    Journal journal;
    RecoveredSession recovered;  ///< what recover() found at open
    Session session;
    std::uint64_t next_seq;

    /// Serializes Session::apply and read-only access; timed so query
    /// deadlines bound the wait behind a long pipeline run.
    std::timed_mutex apply_mutex;
    /// Serializes journal append (admission) vs checkpoint (worker).
    std::mutex journal_mutex;
    std::deque<JournalRecord> queue;  ///< admitted, not yet applied
    bool scheduled = false;           ///< queued in ready_ / being worked
  };

  SessionState* find_session(const std::string& id);
  SessionState& open_session(const std::string& id);
  /// open_session with an explicit seed — replica streams pin the
  /// *primary's* session seed instead of deriving one locally.
  SessionState& open_session_seeded(const std::string& id,
                                    std::uint64_t seed);
  Response handle_query(const Request& request);
  /// Apply one event of one ready session; returns false when no work
  /// was available. `lock` holds mu_ on entry and exit.
  bool apply_one(std::unique_lock<std::mutex>& lock);
  void maybe_checkpoint(SessionState& state, std::uint64_t threshold);
  void worker_loop();

  ServiceOptions options_;
  SessionOptions session_options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: ready_ non-empty / stop
  std::condition_variable idle_cv_;   ///< drain: pending reached zero
  std::map<std::string, std::unique_ptr<SessionState>> sessions_;
  std::deque<SessionState*> ready_;
  std::uint64_t pending_ = 0;
  std::uint64_t in_flight_ = 0;  ///< events popped, apply not finished
  bool draining_ = false;
  bool stop_ = false;
  ServiceStats stats_;

  std::atomic<bool> cancel_{false};  ///< PipelineOptions::cancel target
  std::vector<std::thread> workers_;
};

}  // namespace provmark::serve
