#include "serve/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/atomic_io.h"
#include "util/rng.h"
#include "util/strings.h"

namespace provmark::serve {

namespace {

constexpr const char* kJournalName = "journal.log";
constexpr const char* kCheckpointName = "checkpoint.dlog";
constexpr const char* kHeaderMagic = "provmark-serve-journal";
constexpr const char* kHeaderVersion = "v1";

[[noreturn]] void corrupt(const std::string& message) {
  throw std::runtime_error("serve journal: " + message);
}

std::uint64_t parse_u64_strict(const std::string& field,
                               const std::string& what) {
  if (field.empty()) corrupt(what + " is empty");
  char* end = nullptr;
  errno = 0;
  std::uint64_t value = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    corrupt(what + " is not a number: '" + field + "'");
  }
  return value;
}

std::uint64_t parse_hex_strict(const std::string& field,
                               const std::string& what) {
  if (field.empty()) corrupt(what + " is empty");
  char* end = nullptr;
  errno = 0;
  std::uint64_t value = std::strtoull(field.c_str(), &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') {
    corrupt(what + " is not hex: '" + field + "'");
  }
  return value;
}

EventKind parse_kind_strict(const std::string& field) {
  if (field == "fact") return EventKind::Fact;
  if (field == "rule") return EventKind::Rule;
  if (field == "run") return EventKind::Run;
  corrupt("unknown record kind '" + field + "'");
}

Priority parse_priority_strict(const std::string& field) {
  if (field == "low") return Priority::Low;
  if (field == "normal") return Priority::Normal;
  if (field == "high") return Priority::High;
  corrupt("unknown record priority '" + field + "'");
}

std::string read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) corrupt("cannot read " + path.string());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

std::string format_record(const JournalRecord& record) {
  const std::string escaped = escape_field(record.payload);
  return util::format("R %llu %s %s %zu %016llx ",
                      static_cast<unsigned long long>(record.seq),
                      event_kind_name(record.kind),
                      priority_name(record.priority), escaped.size(),
                      static_cast<unsigned long long>(
                          util::stable_hash(escaped))) +
         escaped;
}

JournalRecord parse_record(std::string_view line) {
  std::vector<std::string> fields = util::split_nonempty(line, ' ');
  if (fields.size() != 7 || fields[0] != "R") {
    corrupt("malformed record line");
  }
  JournalRecord record;
  record.seq = parse_u64_strict(fields[1], "record seq");
  record.kind = parse_kind_strict(fields[2]);
  record.priority = parse_priority_strict(fields[3]);
  const std::uint64_t bytes = parse_u64_strict(fields[4], "record length");
  const std::uint64_t fnv = parse_hex_strict(fields[5], "record checksum");
  const std::string& escaped = fields[6];
  if (escaped.size() != bytes) {
    corrupt(util::format("record length mismatch: header %llu, field %zu",
                         static_cast<unsigned long long>(bytes),
                         escaped.size()));
  }
  if (util::stable_hash(escaped) != fnv) corrupt("record checksum mismatch");
  record.payload = unescape_field(escaped);
  return record;
}

Journal::Journal(const std::filesystem::path& root,
                 const std::string& session, std::uint64_t seed)
    : dir_(root / session), session_(session), seed_(seed) {
  std::filesystem::create_directories(dir_);
  const std::filesystem::path log = dir_ / kJournalName;
  if (!std::filesystem::exists(log)) {
    // Fresh session: the header (and with it the seed) is committed
    // atomically before any event can be admitted. The session
    // directory entry itself is also new, so the journal *root* must be
    // fsynced too — otherwise power loss could drop the whole session
    // directory out from under already-acked events.
    util::write_file_atomic(log, header_line() + "\n");
    util::sync_dir(root);
  }
  open_for_append();
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Journal::header_line() const {
  return util::format("H %s %s %s %llu", kHeaderMagic, kHeaderVersion,
                      session_.c_str(),
                      static_cast<unsigned long long>(seed_));
}

void Journal::open_for_append() {
  if (fd_ >= 0) ::close(fd_);
  const std::filesystem::path log = dir_ / kJournalName;
  fd_ = ::open(log.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    throw std::runtime_error("serve journal: cannot open " + log.string() +
                             ": " + std::strerror(errno));
  }
}

RecoveredSession Journal::recover() {
  RecoveredSession out;
  live_records_.clear();

  // -- checkpoint (optional) --------------------------------------------------
  const std::filesystem::path ckpt = dir_ / kCheckpointName;
  if (std::filesystem::exists(ckpt)) {
    // Format: header line, "C <seq>" line, then the program text. The
    // checkpoint was published atomically, so it is all-or-nothing; a
    // malformed one is a hard error, not a torn tail.
    const std::string text = read_whole_file(ckpt);
    std::size_t first_nl = text.find('\n');
    std::size_t second_nl =
        first_nl == std::string::npos ? std::string::npos
                                      : text.find('\n', first_nl + 1);
    if (second_nl == std::string::npos) corrupt("checkpoint too short");
    std::vector<std::string> header =
        util::split_nonempty(text.substr(0, first_nl), ' ');
    if (header.size() != 5 || header[0] != "H" || header[1] != kHeaderMagic ||
        header[2] != kHeaderVersion || header[3] != session_) {
      corrupt("checkpoint header mismatch in " + ckpt.string());
    }
    out.seed = parse_u64_strict(header[4], "checkpoint seed");
    std::vector<std::string> cline = util::split_nonempty(
        text.substr(first_nl + 1, second_nl - first_nl - 1), ' ');
    if (cline.size() != 2 || cline[0] != "C") {
      corrupt("checkpoint seq line mismatch");
    }
    out.checkpoint_seq = parse_u64_strict(cline[1], "checkpoint seq");
    out.checkpoint_program = text.substr(second_nl + 1);
  }

  // -- journal ----------------------------------------------------------------
  const std::filesystem::path log = dir_ / kJournalName;
  const std::string text = read_whole_file(log);
  std::size_t pos = 0;
  std::size_t good_end = 0;  ///< byte offset past the last intact record
  bool header_seen = false;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated tail: torn
    const std::string_view line(text.data() + pos, nl - pos);
    if (!header_seen) {
      std::vector<std::string> header = util::split_nonempty(line, ' ');
      if (header.size() != 5 || header[0] != "H" ||
          header[1] != kHeaderMagic || header[2] != kHeaderVersion ||
          header[3] != session_) {
        corrupt("journal header mismatch in " + log.string());
      }
      const std::uint64_t seed = parse_u64_strict(header[4], "journal seed");
      if (!out.checkpoint_program.empty() && out.seed != seed) {
        corrupt("checkpoint/journal seed mismatch");
      }
      out.seed = seed;
      header_seen = true;
      good_end = nl + 1;
      pos = nl + 1;
      continue;
    }
    JournalRecord record;
    try {
      record = parse_record(line);
    } catch (const std::exception&) {
      break;  // torn or corrupt from here on: truncate
    }
    if (record.seq > out.checkpoint_seq) {
      out.records.push_back(std::move(record));
    }
    good_end = nl + 1;
    pos = nl + 1;
  }
  if (!header_seen) corrupt("journal has no header: " + log.string());

  out.torn_bytes = text.size() - good_end;
  if (out.torn_bytes > 0) {
    // Truncate the torn tail via an atomic rewrite so the next append
    // extends a well-formed log instead of a half-record.
    util::write_file_atomic(log, text.substr(0, good_end));
    open_for_append();
  }
  seed_ = out.seed;
  checkpoint_seq_ = out.checkpoint_seq;
  live_records_ = out.records;
  return out;
}

std::uint64_t Journal::last_seq() const {
  return live_records_.empty() ? checkpoint_seq_ : live_records_.back().seq;
}

std::vector<JournalRecord> Journal::records_after(std::uint64_t after) const {
  std::vector<JournalRecord> out;
  for (const JournalRecord& record : live_records_) {
    if (record.seq > after) out.push_back(record);
  }
  return out;
}

std::optional<std::uint64_t> Journal::records_digest(
    std::uint64_t after, std::uint64_t through) const {
  if (after > through) return std::nullopt;
  // The range must be fully covered by live records: every seq in
  // (after, through] present exactly once, in order. A range reaching
  // below the checkpoint is gone from this journal (compaction) and a
  // range past last_seq() does not exist yet — both mean "no common
  // digest", which the handshake resolves with a checkpoint reset.
  if (after < checkpoint_seq_ || through > last_seq()) return std::nullopt;
  std::string bytes;
  std::uint64_t expected = after + 1;
  for (const JournalRecord& record : live_records_) {
    if (record.seq <= after) continue;
    if (record.seq > through) break;
    if (record.seq != expected) return std::nullopt;
    ++expected;
    bytes += format_record(record);
    bytes += '\n';
  }
  if (expected != through + 1) return std::nullopt;
  return util::stable_hash(bytes);
}

std::string Journal::checkpoint_program() const {
  const std::filesystem::path ckpt = dir_ / kCheckpointName;
  if (!std::filesystem::exists(ckpt)) return "";
  const std::string text = read_whole_file(ckpt);
  const std::size_t first_nl = text.find('\n');
  const std::size_t second_nl =
      first_nl == std::string::npos ? std::string::npos
                                    : text.find('\n', first_nl + 1);
  if (second_nl == std::string::npos) corrupt("checkpoint too short");
  return text.substr(second_nl + 1);
}

void Journal::append(const JournalRecord& record) {
  const std::string line = format_record(record) + "\n";
  std::size_t written = 0;
  while (written < line.size()) {
    ssize_t n = ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("serve journal: append failed: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("serve journal: fsync failed: " +
                             std::string(std::strerror(errno)));
  }
  live_records_.push_back(record);
}

void Journal::checkpoint(const std::string& program_text,
                         std::uint64_t seq) {
  // 1. Publish the checkpoint. After this rename, every crash point
  //    recovers to (checkpoint, journal-tail) — a compaction that never
  //    happens only costs a replay overlap that seq comparison skips.
  util::write_file_atomic(
      dir_ / kCheckpointName,
      header_line() + "\n" +
          util::format("C %llu", static_cast<unsigned long long>(seq)) +
          "\n" + program_text);

  // 2. Compact the journal down to records newer than the checkpoint.
  std::string compacted = header_line() + "\n";
  std::vector<JournalRecord> keep;
  for (const JournalRecord& record : live_records_) {
    if (record.seq > seq) {
      compacted += format_record(record) + "\n";
      keep.push_back(record);
    }
  }
  util::write_file_atomic(dir_ / kJournalName, compacted);
  live_records_ = std::move(keep);
  checkpoint_seq_ = seq;
  open_for_append();
}

std::vector<std::string> list_sessions(const std::filesystem::path& root) {
  std::vector<std::string> out;
  if (!std::filesystem::is_directory(root)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / kJournalName)) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace provmark::serve
