#include "serve/session.h"

#include <stdexcept>
#include <utility>

#include "bench_suite/program_text.h"
#include "datalog/fact_io.h"
#include "runtime/thread_pool.h"
#include "util/limits.h"
#include "util/rng.h"
#include "util/strings.h"

namespace provmark::serve {

Session::Session(std::string id, std::uint64_t seed, SessionOptions options)
    : id_(std::move(id)), seed_(seed), options_(std::move(options)) {}

void Session::quarantine(const std::string& reason) {
  quarantined_ = true;
  quarantine_reason_ = reason;
}

void Session::restore(const std::string& program_text, std::uint64_t seq) {
  engine_.load_program(program_text);
  engine_.run();
  program_log_ = program_text;
  applied_seq_ = seq;
}

bool Session::apply(const JournalRecord& record,
                    const std::atomic<bool>* cancel) {
  if (quarantined_) {
    // Admission refuses events for quarantined sessions, and quarantine
    // is deterministic, so replay can only reach this via a journal
    // written before the poisoning event was understood — skipping is
    // the state-preserving choice.
    return true;
  }
  try {
    util::check_input_size("serve event payload", record.payload.size(),
                           options_.max_payload_bytes);
    switch (record.kind) {
      case EventKind::Fact:
      case EventKind::Rule: {
        engine_.load_program(record.payload);
        program_log_ += record.payload;
        if (!record.payload.empty() && record.payload.back() != '\n') {
          program_log_ += '\n';
        }
        break;
      }
      case EventKind::Run: {
        // Payload: "<system>\n<benchmark program text>".
        const std::size_t nl = record.payload.find('\n');
        if (nl == std::string::npos) {
          throw std::invalid_argument(
              "run payload needs '<system>\\n<program text>'");
        }
        const std::string system = record.payload.substr(0, nl);
        bench_suite::BenchmarkProgram program = bench_suite::parse_program(
            record.payload.substr(nl + 1), options_.max_payload_bytes);

        core::PipelineOptions pipeline = options_.pipeline;
        pipeline.system = system;
        pipeline.recorder.reset();
        // The run's seed is a pure function of (session seed, seq):
        // replaying this record — today, or after a crash — re-derives
        // the same trials and the same result graph.
        pipeline.seed = util::Rng(seed_).fork(record.seq).next_u64();
        // A serial 1-thread pool: apply() may execute on any service
        // worker concurrently with other sessions' applies, and the
        // shared default pool is not a cross-thread entry point.
        runtime::ThreadPool serial(1);
        pipeline.pool = &serial;
        pipeline.cancel = cancel;

        core::BenchmarkResult result =
            core::run_benchmark(program, pipeline);
        if (result.status == core::BenchmarkStatus::Failed &&
            result.failure_reason == "cancelled") {
          return false;  // shutdown: unchanged, replayed next recovery
        }
        // Assert the outcome as facts under graph id r<seq>. A failed
        // run is a legitimate, deterministic outcome — it still lands
        // in the fixpoint so queries (and the recovery identity gates)
        // see it.
        const std::string gid =
            "r" + std::to_string(static_cast<unsigned long long>(record.seq));
        std::string facts = "runstatus(" + gid + "," +
                            core::status_name(result.status) + ").\n";
        facts += datalog::to_datalog(result.result, gid);
        engine_.load_program(facts);
        program_log_ += facts;
        break;
      }
    }
    // Surface malformed clauses (and unstratified rule sets) now, at
    // the event that introduced them, instead of at the next query:
    // quarantine must be attributable to one seq for replay to agree.
    engine_.run();
  } catch (const std::exception& e) {
    quarantine(e.what());
  }
  applied_seq_ = record.seq;
  ++applied_since_checkpoint_;
  return true;
}

std::string Session::dump() {
  std::string out;
  for (const std::string& name : engine_.relation_names()) {
    for (const datalog::Tuple& tuple : engine_.relation(name)) {
      out += name;
      out += '(';
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) out += ',';
        out += escape_field(tuple[i]);
      }
      out += ")\n";
    }
  }
  return out;
}

std::string Session::digest() {
  return util::format("%016llx", static_cast<unsigned long long>(
                                     util::stable_hash(dump())));
}

std::string Session::query(const std::string& pattern_text) {
  std::string out;
  for (const auto& binding : engine_.query(pattern_text)) {
    std::string line;
    for (const auto& [var, value] : binding) {
      if (!line.empty()) line += ' ';
      line += var + "=" + escape_field(value);
    }
    if (line.empty()) line = "match";
    out += line + "\n";
  }
  return out;
}

}  // namespace provmark::serve
