#include "formats/detect.h"

#include <stdexcept>

#include "datalog/fact_io.h"
#include "formats/dot.h"
#include "formats/neo4j.h"
#include "formats/prov_json.h"
#include "util/strings.h"

namespace provmark::formats {

Format detect_format(std::string_view text) {
  std::string_view t = util::trim(text);
  if (util::starts_with(t, "digraph")) return Format::Dot;
  if (util::starts_with(t, "{")) {
    // Distinguish PROV-JSON from Neo4j export by their top-level keys.
    if (t.find("\"nodes\"") != std::string_view::npos &&
        t.find("\"relationships\"") != std::string_view::npos) {
      return Format::Neo4jJson;
    }
    return Format::ProvJson;
  }
  if (util::starts_with(t, "n") || util::starts_with(t, "e") ||
      util::starts_with(t, "p") || util::starts_with(t, "%")) {
    return Format::Datalog;
  }
  return Format::Unknown;
}

const char* format_name(Format f) {
  switch (f) {
    case Format::Dot: return "graphviz-dot";
    case Format::ProvJson: return "prov-json";
    case Format::Neo4jJson: return "neo4j-json";
    case Format::Datalog: return "datalog";
    case Format::Unknown: return "unknown";
  }
  return "unknown";
}

graph::PropertyGraph parse_any(std::string_view text) {
  switch (detect_format(text)) {
    case Format::Dot: return from_dot(text);
    case Format::ProvJson: return from_prov_json(text);
    case Format::Neo4jJson: return from_neo4j_json(text);
    case Format::Datalog: {
      auto graphs = datalog::from_datalog(text);
      if (graphs.size() != 1) {
        throw std::runtime_error(
            "expected a single graph in datalog document, found " +
            std::to_string(graphs.size()));
      }
      return std::move(graphs.begin()->second);
    }
    case Format::Unknown: break;
  }
  throw std::runtime_error("unrecognized provenance output format");
}

}  // namespace provmark::formats
