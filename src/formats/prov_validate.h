// W3C PROV-DM structural validation.
//
// The paper observes that recorders "do use standards such as W3C PROV
// that establish a common vocabulary" while disagreeing on content. This
// module checks the part a standard *can* check: that a graph claiming
// PROV vocabulary uses it consistently — relation endpoints have the
// right node kinds, node kinds are known, every relation is known or
// explicitly marked an extension. Used by the CamFlow tests and available
// to users who want to validate a recorder's output before benchmarking.
#pragma once

#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace provmark::formats {

struct ProvViolation {
  graph::Id element;    ///< offending node or edge id
  std::string message;  ///< human-readable description
};

struct ProvValidationResult {
  std::vector<ProvViolation> violations;
  /// Relations outside the PROV-DM core (e.g. CamFlow's "named"): legal
  /// extensions, reported separately so callers can audit them.
  std::vector<std::string> extension_relations;

  bool ok() const { return violations.empty(); }
};

/// Validate a graph against PROV-DM endpoint-kind constraints:
///   used:               activity -> entity
///   wasGeneratedBy:     entity   -> activity
///   wasInformedBy:      activity -> activity
///   wasDerivedFrom:     entity   -> entity
///   wasAssociatedWith:  activity -> agent
///   wasAttributedTo:    entity   -> agent
///   actedOnBehalfOf:    agent    -> agent
///   wasInvalidatedBy:   accepts activity->entity or entity->activity
///                       (serializer order differs between tools)
/// Node labels must be entity / activity / agent.
ProvValidationResult validate_prov(const graph::PropertyGraph& g);

}  // namespace provmark::formats
