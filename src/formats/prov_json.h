// W3C PROV-JSON reader/writer.
//
// CamFlow serializes provenance as PROV-JSON: a JSON object with one member
// per node type ("entity", "activity", "agent") and one per relation type
// ("used", "wasGeneratedBy", "wasInformedBy", "wasDerivedFrom", ...), each
// mapping identifiers to attribute dictionaries. Relation records carry
// their endpoints in role-specific keys (e.g. "prov:entity" +
// "prov:activity" for `used`).
//
// The property-graph mapping: each node keeps its PROV type as its label;
// each relation becomes an edge labelled with the relation name; all other
// attributes become properties.
#pragma once

#include <string>
#include <string_view>

#include "graph/property_graph.h"

namespace provmark::formats {

/// Serialize to PROV-JSON. Node labels must be one of the PROV node kinds
/// ("entity", "activity", "agent"); edge labels name the relation. Edges
/// whose label is unknown to PROV are emitted under that label verbatim,
/// which PROV-JSON tolerates as an extension.
std::string to_prov_json(const graph::PropertyGraph& g);

/// Parse PROV-JSON into a property graph. Unknown top-level sections are
/// treated as relation sections. Throws std::runtime_error when a relation
/// references a missing endpoint.
graph::PropertyGraph from_prov_json(std::string_view text);

}  // namespace provmark::formats
