// Neo4j-export format and an in-memory Neo4j-like store emulation.
//
// OPUS persists its Provenance Versioning Model graph in a Neo4j database;
// ProvMark's transformation stage for OPUS runs queries against that
// database to extract nodes and relationships. Here the database is
// emulated: recorder output is a Neo4j export document
//
//   { "nodes":        [ {"id": "...", "labels": ["..."],
//                        "properties": {...}}, ... ],
//     "relationships":[ {"id": "...", "start": "...", "end": "...",
//                        "type": "...", "properties": {...}}, ... ] }
//
// and `Neo4jStore` reproduces the *cost profile* the paper reports for
// OPUS transformation (one-time database/JVM startup plus per-query work,
// §5.1): opening a store builds label and property indices from scratch,
// and export queries walk those indices. The work performed is genuine
// (index construction over the stored data, repeated `startup_rounds`
// times to model JVM warm-up and page-cache population); no sleeps are
// involved. EXPERIMENTS.md discusses the calibration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "graph/property_graph.h"

namespace provmark::formats {

/// Serialize a property graph as a Neo4j export document.
std::string to_neo4j_json(const graph::PropertyGraph& g);

/// Parse a Neo4j export document. Throws std::runtime_error on missing
/// endpoints or malformed records.
graph::PropertyGraph from_neo4j_json(std::string_view text);

/// In-memory emulation of a Neo4j store with the OPUS access pattern.
class Neo4jStore {
 public:
  struct Options {
    /// Rounds of redundant index rebuilding performed at open() to model
    /// JVM startup + cold page cache. The default was calibrated so the
    /// OPUS transformation stage dominates its pipeline like Figure 6.
    int startup_rounds = 400;
  };

  Neo4jStore() : options_(Options{}) {}
  explicit Neo4jStore(Options options) : options_(options) {}

  /// Load a Neo4j export document into the store and build indices
  /// (the expensive step).
  void open(std::string_view export_json);

  /// Cypher-lite: `MATCH (n) RETURN n` — all nodes via the label index.
  std::vector<graph::Node> match_all_nodes() const;

  /// Cypher-lite: `MATCH ()-[r]->() RETURN r` — all relationships.
  std::vector<graph::Edge> match_all_relationships() const;

  /// Nodes carrying a given label (uses the label index).
  std::vector<graph::Node> match_nodes_by_label(
      const std::string& label) const;

  /// Full reconstruction of the stored graph through the query interface.
  graph::PropertyGraph export_graph() const;

  std::size_t node_count() const { return graph_.node_count(); }
  std::size_t relationship_count() const { return graph_.edge_count(); }

 private:
  void build_indices();

  Options options_;
  graph::PropertyGraph graph_;
  std::map<std::string, std::vector<graph::Id>> label_index_;
  std::map<std::string, std::vector<graph::Id>> property_key_index_;
  std::uint64_t index_checksum_ = 0;  // forces the index work to be kept
};

}  // namespace provmark::formats
