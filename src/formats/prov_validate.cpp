#include "formats/prov_validate.h"

#include <algorithm>
#include <map>

namespace provmark::formats {

namespace {

struct EndpointRule {
  const char* src;
  const char* tgt;
};

const std::map<std::string, EndpointRule>& endpoint_rules() {
  static const std::map<std::string, EndpointRule> kRules = {
      {"used", {"activity", "entity"}},
      {"wasGeneratedBy", {"entity", "activity"}},
      {"wasInformedBy", {"activity", "activity"}},
      {"wasDerivedFrom", {"entity", "entity"}},
      {"wasAssociatedWith", {"activity", "agent"}},
      {"wasAttributedTo", {"entity", "agent"}},
      {"actedOnBehalfOf", {"agent", "agent"}},
  };
  return kRules;
}

bool is_prov_kind(const std::string& label) {
  return label == "entity" || label == "activity" || label == "agent";
}

}  // namespace

ProvValidationResult validate_prov(const graph::PropertyGraph& g) {
  ProvValidationResult result;
  for (const graph::Node& n : g.nodes()) {
    if (!is_prov_kind(n.label)) {
      result.violations.push_back(
          {n.id, "node label '" + n.label + "' is not a PROV node kind"});
    }
  }
  for (const graph::Edge& e : g.edges()) {
    const graph::Node* src = g.find_node(e.src);
    const graph::Node* tgt = g.find_node(e.tgt);
    auto rule = endpoint_rules().find(e.label);
    if (rule != endpoint_rules().end()) {
      if (src != nullptr && src->label != rule->second.src) {
        result.violations.push_back(
            {e.id, e.label + " source must be " +
                       std::string(rule->second.src) + ", found " +
                       src->label});
      }
      if (tgt != nullptr && tgt->label != rule->second.tgt) {
        result.violations.push_back(
            {e.id, e.label + " target must be " +
                       std::string(rule->second.tgt) + ", found " +
                       tgt->label});
      }
      continue;
    }
    if (e.label == "wasInvalidatedBy") {
      // Serializer order differs across tools; accept either direction
      // between an activity and an entity.
      bool ok = src != nullptr && tgt != nullptr &&
                ((src->label == "activity" && tgt->label == "entity") ||
                 (src->label == "entity" && tgt->label == "activity"));
      if (!ok) {
        result.violations.push_back(
            {e.id, "wasInvalidatedBy must connect an activity and an "
                   "entity"});
      }
      continue;
    }
    // Unknown relation: a vocabulary extension.
    if (std::find(result.extension_relations.begin(),
                  result.extension_relations.end(),
                  e.label) == result.extension_relations.end()) {
      result.extension_relations.push_back(e.label);
    }
  }
  return result;
}

}  // namespace provmark::formats
