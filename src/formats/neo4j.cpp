#include "formats/neo4j.h"

#include <algorithm>
#include <stdexcept>

#include "util/json.h"
#include "util/rng.h"

namespace provmark::formats {

namespace {

using util::Json;

Json properties_to_json(const graph::Properties& props) {
  Json obj = Json::object();
  for (const auto& [k, v] : props) obj.set(k, Json(v));
  return obj;
}

graph::Properties json_to_properties(const Json& obj) {
  graph::Properties props;
  if (!obj.is_object()) return props;
  for (const auto& [k, v] : obj.as_object()) {
    props[k] = v.is_string() ? v.as_string() : v.dump();
  }
  return props;
}

}  // namespace

std::string to_neo4j_json(const graph::PropertyGraph& g) {
  Json nodes = Json::array();
  for (const graph::Node& n : g.nodes()) {
    Json record = Json::object();
    record.set("id", Json(n.id));
    Json labels = Json::array();
    labels.push_back(Json(n.label));
    record.set("labels", std::move(labels));
    record.set("properties", properties_to_json(n.props));
    nodes.push_back(std::move(record));
  }
  Json rels = Json::array();
  for (const graph::Edge& e : g.edges()) {
    Json record = Json::object();
    record.set("id", Json(e.id));
    record.set("start", Json(e.src));
    record.set("end", Json(e.tgt));
    record.set("type", Json(e.label));
    record.set("properties", properties_to_json(e.props));
    rels.push_back(std::move(record));
  }
  Json doc = Json::object();
  doc.set("nodes", std::move(nodes));
  doc.set("relationships", std::move(rels));
  return doc.dump(2);
}

graph::PropertyGraph from_neo4j_json(std::string_view text) {
  Json doc = Json::parse(text);
  graph::PropertyGraph g;
  const Json* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    throw std::runtime_error("neo4j export lacks a nodes array");
  }
  for (const Json& record : nodes->as_array()) {
    const Json& labels = record.at("labels");
    std::string label;
    if (labels.is_array() && !labels.as_array().empty()) {
      label = labels.as_array().front().as_string();
    }
    const Json* props = record.find("properties");
    g.add_node(record.at("id").as_string(), label,
               props ? json_to_properties(*props) : graph::Properties{});
  }
  const Json* rels = doc.find("relationships");
  if (rels != nullptr) {
    for (const Json& record : rels->as_array()) {
      const Json* props = record.find("properties");
      g.add_edge(record.at("id").as_string(), record.at("start").as_string(),
                 record.at("end").as_string(), record.at("type").as_string(),
                 props ? json_to_properties(*props) : graph::Properties{});
    }
  }
  return g;
}

void Neo4jStore::open(std::string_view export_json) {
  graph_ = from_neo4j_json(export_json);
  // Model the one-time database startup cost: repeated full index builds.
  // The checksum keeps the optimizer from eliding the work and doubles as
  // an internal consistency check across rounds.
  std::uint64_t first_round = 0;
  for (int round = 0; round < options_.startup_rounds; ++round) {
    build_indices();
    if (round == 0) {
      first_round = index_checksum_;
    } else if (index_checksum_ != first_round) {
      throw std::logic_error("neo4j index build is not deterministic");
    }
  }
}

void Neo4jStore::build_indices() {
  label_index_.clear();
  property_key_index_.clear();
  std::uint64_t checksum = 0;
  for (const graph::Node& n : graph_.nodes()) {
    label_index_[n.label].push_back(n.id);
    checksum ^= util::stable_hash(n.label) * util::stable_hash(n.id);
    for (const auto& [k, v] : n.props) {
      property_key_index_[k].push_back(n.id);
      checksum += util::stable_hash(k) ^ util::stable_hash(v);
    }
  }
  for (const graph::Edge& e : graph_.edges()) {
    checksum ^= util::stable_hash(e.label) * util::stable_hash(e.id);
    for (const auto& [k, v] : e.props) {
      property_key_index_[k].push_back(e.id);
      checksum += util::stable_hash(k) ^ util::stable_hash(v);
    }
  }
  for (auto& [label, ids] : label_index_) std::sort(ids.begin(), ids.end());
  for (auto& [key, ids] : property_key_index_) {
    std::sort(ids.begin(), ids.end());
  }
  index_checksum_ = checksum;
}

std::vector<graph::Node> Neo4jStore::match_all_nodes() const {
  std::vector<graph::Node> out;
  out.reserve(graph_.node_count());
  for (const auto& [label, ids] : label_index_) {
    for (const graph::Id& id : ids) {
      out.push_back(*graph_.find_node(id));
    }
  }
  return out;
}

std::vector<graph::Edge> Neo4jStore::match_all_relationships() const {
  return graph_.edges();
}

std::vector<graph::Node> Neo4jStore::match_nodes_by_label(
    const std::string& label) const {
  std::vector<graph::Node> out;
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return out;
  for (const graph::Id& id : it->second) {
    out.push_back(*graph_.find_node(id));
  }
  return out;
}

graph::PropertyGraph Neo4jStore::export_graph() const {
  graph::PropertyGraph g;
  for (const graph::Node& n : match_all_nodes()) {
    g.add_node(n.id, n.label, n.props);
  }
  for (const graph::Edge& e : match_all_relationships()) {
    g.add_edge(e.id, e.src, e.tgt, e.label, e.props);
  }
  return g;
}

}  // namespace provmark::formats
