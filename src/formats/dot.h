// Graphviz DOT reader/writer for property graphs.
//
// SPADE's Graphviz storage emits one DOT file per recording; ProvMark's
// transformation stage parses it back into the uniform property-graph
// representation. The writer is also used to visualize benchmark results
// (Figure 1 / Table 3 reproductions).
//
// Supported DOT subset: `digraph name { ... }` with node statements
// `id [key="value", ...];` and edge statements `a -> b [key="value", ...];`.
// The property-graph label is carried in the `label` attribute when
// present; remaining attributes become properties. This mirrors how SPADE
// serializes OPM vertices/edges.
#pragma once

#include <string>
#include <string_view>

#include "graph/property_graph.h"

namespace provmark::formats {

/// Render `g` as a DOT digraph. Node/edge labels become `label` attributes
/// and properties become further attributes; `type` styling follows the
/// paper's figures (rectangles for processes, ovals for artifacts).
std::string to_dot(const graph::PropertyGraph& g,
                   std::string_view graph_name = "provenance");

/// Parse the DOT subset described above. Nodes referenced only in edge
/// statements are created implicitly with an empty label, matching
/// Graphviz semantics. Throws std::runtime_error on syntax errors.
graph::PropertyGraph from_dot(std::string_view text);

}  // namespace provmark::formats
