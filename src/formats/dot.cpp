#include "formats/dot.h"

#include <cctype>
#include <stdexcept>

#include "util/strings.h"

namespace provmark::formats {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Shape per element type, echoing the paper's figure conventions.
std::string shape_for(const graph::Node& n) {
  auto it = n.props.find("type");
  std::string type = it != n.props.end() ? it->second : n.label;
  if (type == "Process" || type == "Activity" || type == "activity" ||
      type == "task") {
    return "box";
  }
  if (type == "Agent" || type == "agent") return "octagon";
  if (type == "dummy") return "ellipse";
  return "ellipse";
}

class DotParser {
 public:
  explicit DotParser(std::string_view text) : text_(text) {}

  graph::PropertyGraph parse() {
    expect_keyword("digraph");
    name();  // graph name, discarded
    expect('{');
    graph::PropertyGraph g;
    int synthetic_edge_id = 0;
    while (true) {
      skip_space();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      std::string first = name();
      skip_space();
      if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
          text_[pos_ + 1] == '>') {
        pos_ += 2;
        std::string second = name();
        graph::Properties attrs = attributes();
        expect(';');
        std::string label;
        if (auto it = attrs.find("label"); it != attrs.end()) {
          label = it->second;
          attrs.erase(it);
        }
        ensure_node(g, first);
        ensure_node(g, second);
        std::string edge_id =
            "dot_e" + std::to_string(synthetic_edge_id++);
        g.add_edge(edge_id, first, second, label, std::move(attrs));
      } else {
        graph::Properties attrs = attributes();
        expect(';');
        std::string label;
        if (auto it = attrs.find("label"); it != attrs.end()) {
          label = it->second;
          attrs.erase(it);
        }
        // Drop pure styling attributes the writer adds.
        attrs.erase("shape");
        if (graph::Node* existing = g.find_node(first)) {
          existing->label = label;
          for (auto& [k, v] : attrs) existing->props[k] = v;
        } else {
          g.add_node(first, label, std::move(attrs));
        }
      }
    }
    skip_space();
    if (pos_ != text_.size()) fail("trailing content after digraph");
    return g;
  }

 private:
  void ensure_node(graph::PropertyGraph& g, const std::string& id) {
    if (g.find_node(id) == nullptr) g.add_node(id, "");
  }

  [[noreturn]] void fail(const std::string& message) {
    throw std::runtime_error("dot parse error at offset " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_keyword(std::string_view kw) {
    skip_space();
    if (text_.substr(pos_, kw.size()) != kw) {
      fail("expected keyword " + std::string(kw));
    }
    pos_ += kw.size();
  }

  std::string name() {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == '"') return quoted();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string quoted() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        out += text_[pos_++];
      } else {
        out += c;
      }
    }
  }

  graph::Properties attributes() {
    graph::Properties attrs;
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != '[') return attrs;
    ++pos_;
    while (true) {
      skip_space();
      if (peek() == ']') {
        ++pos_;
        return attrs;
      }
      std::string key = name();
      skip_space();
      expect('=');
      std::string value = name();
      attrs[key] = value;
      skip_space();
      if (pos_ < text_.size() && text_[pos_] == ',') ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_dot(const graph::PropertyGraph& g,
                   std::string_view graph_name) {
  std::string out = "digraph " + std::string(graph_name) + " {\n";
  for (const graph::Node& n : g.nodes()) {
    out += "  \"" + dot_escape(n.id) + "\" [label=\"" + dot_escape(n.label) +
           "\", shape=" + shape_for(n);
    for (const auto& [k, v] : n.props) {
      out += ", " + k + "=\"" + dot_escape(v) + "\"";
    }
    out += "];\n";
  }
  for (const graph::Edge& e : g.edges()) {
    out += "  \"" + dot_escape(e.src) + "\" -> \"" + dot_escape(e.tgt) +
           "\" [label=\"" + dot_escape(e.label) + "\"";
    for (const auto& [k, v] : e.props) {
      out += ", " + k + "=\"" + dot_escape(v) + "\"";
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

graph::PropertyGraph from_dot(std::string_view text) {
  return DotParser(text).parse();
}

}  // namespace provmark::formats
