// Recorder output format auto-detection for the transformation stage.
#pragma once

#include <string_view>

#include "graph/property_graph.h"

namespace provmark::formats {

enum class Format { Dot, ProvJson, Neo4jJson, Datalog, Unknown };

/// Sniff the format of a recorder output document.
Format detect_format(std::string_view text);

const char* format_name(Format f);

/// Parse any supported format into a property graph (Datalog documents must
/// contain a single graph). Throws std::runtime_error for Unknown.
graph::PropertyGraph parse_any(std::string_view text);

}  // namespace provmark::formats
