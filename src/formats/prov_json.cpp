#include "formats/prov_json.h"

#include <array>
#include <stdexcept>

#include "util/json.h"

namespace provmark::formats {

namespace {

using util::Json;

constexpr std::array<std::string_view, 3> kNodeKinds = {"entity", "activity",
                                                        "agent"};

/// Endpoint attribute keys per PROV relation: {source key, target key}.
/// Source/target follow the PROV-DM argument order (first argument is the
/// edge source in our graphs, pointing to the second).
struct RelationKeys {
  std::string_view relation;
  std::string_view src_key;
  std::string_view tgt_key;
};

constexpr std::array<RelationKeys, 7> kKnownRelations = {{
    {"used", "prov:activity", "prov:entity"},
    {"wasGeneratedBy", "prov:entity", "prov:activity"},
    {"wasInformedBy", "prov:informed", "prov:informant"},
    {"wasDerivedFrom", "prov:generatedEntity", "prov:usedEntity"},
    {"wasAssociatedWith", "prov:activity", "prov:agent"},
    {"wasAttributedTo", "prov:entity", "prov:agent"},
    {"actedOnBehalfOf", "prov:delegate", "prov:responsible"},
}};

const RelationKeys* known_relation(std::string_view name) {
  for (const RelationKeys& r : kKnownRelations) {
    if (r.relation == name) return &r;
  }
  return nullptr;
}

bool is_node_kind(std::string_view name) {
  for (std::string_view k : kNodeKinds) {
    if (k == name) return true;
  }
  return false;
}

}  // namespace

std::string to_prov_json(const graph::PropertyGraph& g) {
  Json doc = Json::object();
  for (std::string_view kind : kNodeKinds) {
    Json section = Json::object();
    for (const graph::Node& n : g.nodes()) {
      if (n.label != kind) continue;
      Json attrs = Json::object();
      for (const auto& [k, v] : n.props) attrs.set(k, Json(v));
      section.set(n.id, std::move(attrs));
    }
    if (!section.as_object().empty()) doc.set(kind, std::move(section));
  }
  // Group edges by relation label.
  std::map<std::string, std::vector<const graph::Edge*>> by_relation;
  for (const graph::Edge& e : g.edges()) {
    by_relation[e.label].push_back(&e);
  }
  for (const auto& [relation, edges] : by_relation) {
    const RelationKeys* keys = known_relation(relation);
    std::string src_key = keys ? std::string(keys->src_key) : "prov:from";
    std::string tgt_key = keys ? std::string(keys->tgt_key) : "prov:to";
    Json section = Json::object();
    for (const graph::Edge* e : edges) {
      Json attrs = Json::object();
      attrs.set(src_key, Json(e->src));
      attrs.set(tgt_key, Json(e->tgt));
      for (const auto& [k, v] : e->props) attrs.set(k, Json(v));
      section.set(e->id, std::move(attrs));
    }
    doc.set(relation, std::move(section));
  }
  return doc.dump(2);
}

graph::PropertyGraph from_prov_json(std::string_view text) {
  Json doc = Json::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("PROV-JSON document must be an object");
  }
  graph::PropertyGraph g;
  // First pass: node sections.
  for (const auto& [section_name, section] : doc.as_object()) {
    if (!is_node_kind(section_name)) continue;
    if (!section.is_object()) {
      throw std::runtime_error("PROV-JSON section " + section_name +
                               " must be an object");
    }
    for (const auto& [id, attrs] : section.as_object()) {
      graph::Properties props;
      for (const auto& [k, v] : attrs.as_object()) {
        props[k] = v.is_string() ? v.as_string() : v.dump();
      }
      g.add_node(id, section_name, std::move(props));
    }
  }
  // Second pass: relation sections.
  for (const auto& [section_name, section] : doc.as_object()) {
    if (is_node_kind(section_name) || section_name == "prefix") continue;
    const RelationKeys* keys = known_relation(section_name);
    for (const auto& [id, attrs] : section.as_object()) {
      std::string src_key = keys ? std::string(keys->src_key) : "prov:from";
      std::string tgt_key = keys ? std::string(keys->tgt_key) : "prov:to";
      const Json* src = attrs.find(src_key);
      const Json* tgt = attrs.find(tgt_key);
      if (src == nullptr || tgt == nullptr) {
        throw std::runtime_error("PROV-JSON relation " + id +
                                 " lacks endpoint attributes");
      }
      graph::Properties props;
      for (const auto& [k, v] : attrs.as_object()) {
        if (k == src_key || k == tgt_key) continue;
        props[k] = v.is_string() ? v.as_string() : v.dump();
      }
      if (g.find_node(src->as_string()) == nullptr ||
          g.find_node(tgt->as_string()) == nullptr) {
        throw std::runtime_error("PROV-JSON relation " + id +
                                 " references missing node");
      }
      g.add_edge(id, src->as_string(), tgt->as_string(), section_name,
                 std::move(props));
    }
  }
  return g;
}

}  // namespace provmark::formats
