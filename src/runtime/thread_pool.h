// Deterministic parallel-execution runtime for the pipeline.
//
// The four-stage pipeline runs every trial of every program variant
// independently (§3.2 makes CamFlow/SPADE runs trial-heavy by design),
// and the figure/table reproductions sweep independent (benchmark,
// system) pairs. This module provides the shared execution substrate:
// a fixed-size thread pool — deliberately work-stealing-free, so the
// scheduling model stays simple enough to reason about determinism —
// plus `parallel_for`/`parallel_map` helpers that write results into
// index-addressed slots.
//
// Determinism contract: tasks receive their index and must derive any
// randomness from a seed and that index — never from scheduling order,
// thread identity, or shared mutable state. `task_seed` is the stock
// derivation for new parallel code; the pipeline keeps its pre-runtime
// per-trial formula (util::Rng fork in core/pipeline.cpp) so recorded
// outputs stay byte-stable across the serial-to-parallel change. Under
// the contract every parallel_for produces bit-identical results at
// any thread count, which `tests/core/parallel_determinism_test.cpp`
// enforces for the whole pipeline.
//
// Nesting: parallel_for called from inside one of the *same* pool's
// workers runs the loop inline on that worker (no new tasks are
// queued). Outer parallelism — e.g. the CLI sweeping (benchmark,
// system) pairs — therefore composes with the trial-level parallelism
// inside run_benchmark without deadlocking or oversubscribing. A loop
// on a *different* pool fans out normally onto that pool's workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace provmark::runtime {

class ThreadPool {
 public:
  /// A pool with `threads` workers; values < 1 clamp to 1. A 1-thread
  /// pool spawns no workers at all: every parallel_for runs inline, so
  /// `-DPROVMARK_THREADS=1` builds are genuinely serial programs.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Run fn(0), fn(1), ..., fn(n-1), distributing indices over the pool
  /// workers plus the calling thread. Blocks until all calls return.
  /// Indices are claimed from a shared atomic counter (no work stealing,
  /// no per-thread queues); callers must not depend on claim order.
  /// The first exception thrown by any task is rethrown here after all
  /// workers have drained.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for over `items`, collecting fn(item, index) into a vector
  /// in item order (index-addressed slots: scheduling never reorders
  /// results).
  template <typename T, typename Item, typename Fn>
  std::vector<T> parallel_map(const std::vector<Item>& items, Fn&& fn) {
    std::vector<T> out(items.size());
    parallel_for(items.size(), [&](std::size_t i) {
      out[i] = fn(items[i], i);
    });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

/// The number of threads a default-constructed runtime uses, resolved in
/// priority order: the PROVMARK_THREADS environment variable (if set and
/// > 0), the compile-time PROVMARK_THREADS definition (if defined and
/// > 0, e.g. the CI serial job's -DPROVMARK_THREADS=1), then
/// std::thread::hardware_concurrency().
int default_thread_count();

/// Process-wide shared pool, lazily constructed with
/// default_thread_count() workers. All pipeline entry points fall back
/// to this pool when the caller does not supply one.
ThreadPool& default_pool();

/// An independent per-task RNG seed: mixes `base_seed` and `task_index`
/// through SplitMix64 so sibling tasks get decorrelated streams that
/// depend only on (seed, index) — never on which thread ran the task.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index);

}  // namespace provmark::runtime
