#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace provmark::runtime {

namespace {

/// The pool (Impl address) this thread is a worker of; nullptr on
/// non-worker threads. parallel_for consults it to run nested loops on
/// the *same* pool inline instead of re-entering the queue; loops on a
/// different pool still fan out normally — that pool's workers are
/// idle and make progress independently, so there is no deadlock and
/// no silent loss of its parallelism.
thread_local const void* t_worker_of = nullptr;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_available;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    t_worker_of = this;  // for the thread's whole lifetime
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_available.wait(lock,
                            [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), threads_(threads < 1 ? 1 : threads) {
  for (int i = 1; i < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_available.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial pool, tiny loop, or a nested call from one of this pool's
  // own workers: run inline. Workers must never block waiting on queue
  // capacity they are themselves responsible for draining.
  if (threads_ == 1 || n == 1 || t_worker_of == impl_) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared claim counter; each participant (pool workers plus the
  // calling thread) pulls the next unclaimed index until none remain.
  // The whole loop state — including a copy of fn — lives in one
  // shared_ptr: queued drain closures may be popped after parallel_for
  // has returned (the claim counter is exhausted, so they do no work),
  // and must not reference the caller's dead stack frame.
  struct State {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  state->fn = fn;
  state->n = n;

  auto drain = [state] {
    for (;;) {
      std::size_t i = state->next.fetch_add(1);
      if (i >= state->n) return;
      if (!state->failed.load()) {
        try {
          state->fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true);
        }
      }
      if (state->done.fetch_add(1) + 1 == state->n) {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        state->all_done.notify_all();
      }
    }
  };

  std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_ - 1), n - 1);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (std::size_t i = 0; i < helpers; ++i) impl_->queue.push_back(drain);
  }
  impl_->work_available.notify_all();

  drain();  // the caller participates

  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->all_done.wait(lock, [&] { return state->done.load() == n; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

int default_thread_count() {
  if (const char* env = std::getenv("PROVMARK_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
#if defined(PROVMARK_THREADS) && PROVMARK_THREADS > 0
  return PROVMARK_THREADS;
#else
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#endif
}

ThreadPool& default_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Two SplitMix64 finalization rounds over (seed, index): adjacent
  // indices land in unrelated regions of the stream.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace provmark::runtime
