// An interned, indexed Datalog evaluation engine.
//
// The paper stores benchmark graphs "as Datalog" and the regression-testing
// use case (Charlie, §3.1) queries and compares them, so this engine sits
// on the same critical path as the matcher. It applies the matcher's PR 1
// treatment to the query layer:
//
//   * every constant is interned through a graph::SymbolTable, so tuples
//     are flat uint32 symbol rows and bindings are arrays indexed by
//     pre-numbered variable slots — no string compares or map allocations
//     in the join loop;
//   * relations are append-only columnar tuple pools with lazily built
//     hash indexes keyed on bound-position signatures: each body atom
//     resolves via an index probe instead of a full relation scan, under
//     a greedy most-bound-first join order computed per rule per round;
//   * semi-naive evaluation is delta-indexed — because pools are
//     append-only, a round's delta is a contiguous row range served by
//     the same indexes as the full relation — and the rules of a stratum
//     evaluate in parallel on the src/runtime/ pool against an immutable
//     snapshot, with a deterministic rule-order merge.
//
// Supported language (unchanged): positive Datalog plus stratified
// negation (`not rel(...)`) and built-in disequality `X != Y`. The
// pre-rewrite evaluator survives as datalog::legacy::Engine; the
// equivalence tests and bench/perf_datalog_scaling.cpp assert both
// engines derive bit-identical relation contents and query results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "graph/compact.h"

namespace provmark::runtime {
class ThreadPool;
}

namespace provmark::datalog {

/// A term is either a constant string or a variable. Variables start with
/// an upper-case letter or '_' (Prolog convention).
struct Term {
  enum class Kind { Constant, Variable };
  Kind kind;
  std::string text;

  static Term constant(std::string s) {
    return Term{Kind::Constant, std::move(s)};
  }
  static Term variable(std::string s) {
    return Term{Kind::Variable, std::move(s)};
  }
  bool is_variable() const { return kind == Kind::Variable; }
  auto operator<=>(const Term&) const = default;
};

/// An atom: relation(t1, ..., tn).
struct Atom {
  std::string relation;
  std::vector<Term> terms;
  auto operator<=>(const Atom&) const = default;
};

/// A disequality constraint between two terms, written X != Y.
struct Disequality {
  Term lhs;
  Term rhs;
  auto operator<=>(const Disequality&) const = default;
};

/// A negated atom, written `not rel(t1, ..., tn)` — negation as failure
/// under stratification. All variables must be bound by positive atoms.
struct NegatedAtom {
  Atom atom;
  auto operator<=>(const NegatedAtom&) const = default;
};

using BodyLiteral = std::variant<Atom, Disequality, NegatedAtom>;

/// head :- body1, ..., bodyn.   (empty body = ground fact)
struct Rule {
  Atom head;
  std::vector<BodyLiteral> body;
};

using Tuple = std::vector<std::string>;

/// The engine: a fact store plus rules, evaluated to fixpoint on demand.
class Engine {
 public:
  /// Evaluation knobs. The defaults (indexed, serial) are what library
  /// users want; the ablation benchmark flips them to isolate the
  /// contribution of each layer. Results are identical under every
  /// combination — only the work to reach them changes.
  struct EvalOptions {
    /// Resolve body atoms through bound-signature hash indexes; false
    /// falls back to interned full-pool scans (the "interning only"
    /// ablation column).
    bool use_indexes = true;
    /// Worker count for per-stratum parallel rule evaluation; <= 1 runs
    /// serially on the calling thread. Rules evaluate against an
    /// immutable snapshot and merge in rule order, so derived facts are
    /// bit-identical at any thread count.
    int threads = 1;
    /// Pool for parallel evaluation; nullptr = runtime::default_pool().
    runtime::ThreadPool* pool = nullptr;
    /// Reuse the previous fixpoint across add_fact batches: a run()
    /// following only fact insertions seeds each stratum's first
    /// semi-naive delta with just the rows appended since the last
    /// saturation, instead of re-deriving from the whole store. Sound
    /// because the store is append-only and the prior run() saturated
    /// the same rule set over the old rows: every fact the from-scratch
    /// re-run could derive either is already in a pool or needs at
    /// least one new row in a positive body atom — and negation only
    /// shrinks as lower strata grow, so no old-rows-only derivation can
    /// newly appear. Adding a *rule* always falls back to a full
    /// re-derivation (its old-rows derivations were never tried).
    /// False = always re-derive from scratch (the benchmark's ablation
    /// baseline). Derived stores are identical either way.
    bool incremental = true;
  };

  /// Add a ground fact; throws std::invalid_argument on arity conflicts.
  void add_fact(const std::string& relation, Tuple tuple);

  /// Add a rule. The head must not contain variables absent from positive
  /// body atoms (range restriction), and the same applies to negated
  /// atoms and disequalities; throws std::invalid_argument otherwise.
  /// Negation must be stratified: `run()` throws std::logic_error when a
  /// relation transitively depends on its own negation.
  void add_rule(Rule rule);

  /// Parse a program: facts and rules in textual syntax, one clause per
  /// line or separated by '.', e.g.
  ///   edge(a,b). edge(b,c).
  ///   path(X,Y) :- edge(X,Y).
  ///   path(X,Z) :- path(X,Y), edge(Y,Z).
  void load_program(std::string_view text);

  /// Evaluate all rules to fixpoint (semi-naive, stratum by stratum when
  /// negation is present). Idempotent.
  void run();

  /// All tuples currently derived for `relation` (runs evaluation first).
  std::set<Tuple> relation(const std::string& relation);

  /// Sorted names of every relation with at least one tuple at the
  /// current fixpoint (runs evaluation first). Together with
  /// relation(), this is the whole-store enumeration the streaming
  /// service uses to serialize and digest a session's fixpoint.
  std::vector<std::string> relation_names();

  /// Query with a pattern: constants must match, variables bind. Returns
  /// one map per matching tuple, keyed by variable name, in sorted tuple
  /// order.
  std::vector<std::map<std::string, std::string>> query(const Atom& pattern);

  /// Parse and run a query atom, e.g. "path(a,X)".
  std::vector<std::map<std::string, std::string>> query(
      std::string_view pattern_text);

  std::size_t fact_count() const;

  void set_eval_options(const EvalOptions& options) { eval_ = options; }

 private:
  using Symbol = graph::Symbol;

  /// A hash index over the rows of one relation, keyed on the values of
  /// the columns selected by `mask`. Buckets hold ascending row ids;
  /// lazily extended to cover newly appended rows before each round.
  struct Index {
    std::uint64_t mask = 0;
    std::size_t rows_indexed = 0;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  /// An append-only columnar tuple pool. Row r of an arity-k relation is
  /// (columns[0][r], ..., columns[k-1][r]); `tuple_index` hashes whole
  /// rows for O(1) dedup on insert.
  struct Relation {
    std::string name;
    bool arity_known = false;  ///< set by facts / head derivations only
    std::size_t arity = 0;
    std::size_t rows = 0;
    std::vector<std::vector<Symbol>> columns;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> tuple_index;
    std::vector<Index> indexes;
    // Semi-naive bookkeeping, valid while a stratum runs: the current
    // delta is the contiguous row range [delta_lo, delta_hi); the round
    // snapshot is [0, full_end).
    std::size_t delta_lo = 0;
    std::size_t delta_hi = 0;
    std::size_t full_end = 0;
    // Rows present when run() last reached a fixpoint. An incremental
    // re-run seeds every stratum's first delta at this watermark: rows
    // below it were saturated together under the current rules, so only
    // [saturated_rows, rows) can fuel new derivations.
    std::size_t saturated_rows = 0;
  };

  /// One argument position of a compiled atom: a constant symbol or a
  /// rule-local variable slot (var < 0 is the anonymous '_').
  struct Slot {
    bool is_var = false;
    Symbol constant = 0;
    int var = -1;
  };

  struct CompiledAtom {
    std::uint32_t rel = 0;
    std::vector<Slot> slots;
  };

  struct CompiledDiseq {
    Slot lhs, rhs;
  };

  /// A rule compiled to relation ids and variable slots. Variables are
  /// numbered per rule in order of first occurrence; bindings during
  /// evaluation are flat Symbol arrays indexed by slot.
  struct CompiledRule {
    CompiledAtom head;
    std::vector<CompiledAtom> atoms;  ///< positive body atoms
    std::vector<CompiledDiseq> diseqs;
    std::vector<CompiledAtom> negs;
    std::size_t var_count = 0;
  };

  /// The join plan for one (rule, pivot) pair in one round: atom order,
  /// per-level probe masks, and the earliest level each filter becomes
  /// fully bound.
  struct JoinPlan {
    std::size_t rule = 0;
    std::size_t pivot = 0;                   ///< atom index ranging over delta
    std::vector<std::size_t> order;          ///< atom indices, pivot first
    std::vector<std::uint64_t> masks;        ///< per level; masks[0] unused
    std::vector<std::vector<std::size_t>> diseqs_at;  ///< per level
    std::vector<std::vector<std::size_t>> negs_at;    ///< per level
  };

  std::uint32_t relation_id(const std::string& name);
  Relation* find_relation(const std::string& name);
  const Relation* find_relation(const std::string& name) const;
  void check_range_restriction(const Rule& rule) const;
  CompiledAtom compile_atom(const Atom& atom,
                            std::map<std::string, int>& slots,
                            std::size_t& var_count);
  /// Dedup-insert one row; enforces arity (std::invalid_argument on
  /// conflict). Returns true when the row is new.
  bool insert_row(Relation& rel, const Symbol* values, std::size_t arity);
  bool row_matches(const Relation& rel, std::uint32_t row,
                   const CompiledAtom& atom,
                   std::vector<Symbol>& binding) const;
  /// Get-or-create the index of `rel` for `mask` and extend it to cover
  /// [rows_indexed, full_end). Serial-phase only.
  Index& ensure_index(Relation& rel, std::uint64_t mask);
  /// Probe-side key of `atom` under `mask`: the hash of the
  /// mask-selected slot values (constants or bound variables) in
  /// ascending position order — must stay bit-identical to the build
  /// side (masked_row_hash) or probes silently miss rows.
  std::uint64_t probe_key(const CompiledAtom& atom, std::uint64_t mask,
                          const std::vector<Symbol>& binding) const;
  bool negation_holds(const CompiledAtom& neg,
                      const std::vector<Symbol>& binding) const;
  JoinPlan plan_join(std::size_t rule_index, std::size_t pivot) const;
  /// Per-level scratch for eval_level's binding save/restore, reused
  /// across rows so the join loop never allocates.
  using SavedBindings = std::vector<std::vector<std::pair<int, Symbol>>>;
  /// Evaluate one plan against the current round snapshot, appending
  /// derived head rows (flat, head-arity strided) to `out`. Read-only on
  /// the engine; safe to run concurrently with other plans.
  void eval_plan(const JoinPlan& plan, std::vector<Symbol>& out) const;
  void eval_level(const CompiledRule& rule, const JoinPlan& plan,
                  std::size_t level, std::vector<Symbol>& binding,
                  SavedBindings& scratch, std::vector<Symbol>& out) const;
  std::vector<std::vector<std::size_t>> stratify() const;
  void run_stratum(const std::vector<std::size_t>& rule_indices,
                   bool incremental);

  graph::SymbolTable symbols_;
  std::vector<Relation> relations_;
  std::unordered_map<std::string, std::uint32_t> relation_ids_;
  std::vector<CompiledRule> rules_;
  std::vector<std::string> rule_head_names_;  ///< for stratify errors
  EvalOptions eval_;
  bool saturated_ = true;
  // True until the first run() and whenever a rule was added since the
  // last one: the saturated_rows watermarks only certify fact-only
  // growth, so a dirty rule set forces a from-scratch derivation.
  bool rules_dirty_ = true;
};

/// Parse a single atom such as `path(X, "a b")`.
Atom parse_atom(std::string_view text);

/// Parse a whole program into rules (facts are bodiless rules). Shared by
/// Engine::load_program and legacy::Engine::load_program.
std::vector<Rule> parse_program(std::string_view text);

}  // namespace provmark::datalog
