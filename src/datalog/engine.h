// A small positive-Datalog evaluation engine.
//
// The paper stores benchmark graphs "as Datalog" and the regression-testing
// use case (Charlie, §3.1) queries and compares them. This engine provides
// that capability natively: load the facts produced by fact_io, add rules
// (e.g. reachability over provenance edges, "process wrote file it read"
// patterns), and evaluate to a fixpoint with semi-naive iteration.
//
// Supported language: positive Datalog with stratification-free rules,
// plus built-in disequality `X != Y` in rule bodies. That is exactly the
// fragment the paper's Listing 1 representation needs for result queries.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace provmark::datalog {

/// A term is either a constant string or a variable. Variables start with
/// an upper-case letter or '_' (Prolog convention).
struct Term {
  enum class Kind { Constant, Variable };
  Kind kind;
  std::string text;

  static Term constant(std::string s) {
    return Term{Kind::Constant, std::move(s)};
  }
  static Term variable(std::string s) {
    return Term{Kind::Variable, std::move(s)};
  }
  bool is_variable() const { return kind == Kind::Variable; }
  auto operator<=>(const Term&) const = default;
};

/// An atom: relation(t1, ..., tn).
struct Atom {
  std::string relation;
  std::vector<Term> terms;
  auto operator<=>(const Atom&) const = default;
};

/// A disequality constraint between two terms, written X != Y.
struct Disequality {
  Term lhs;
  Term rhs;
  auto operator<=>(const Disequality&) const = default;
};

/// A negated atom, written `not rel(t1, ..., tn)` — negation as failure
/// under stratification. All variables must be bound by positive atoms.
struct NegatedAtom {
  Atom atom;
  auto operator<=>(const NegatedAtom&) const = default;
};

using BodyLiteral = std::variant<Atom, Disequality, NegatedAtom>;

/// head :- body1, ..., bodyn.   (empty body = ground fact)
struct Rule {
  Atom head;
  std::vector<BodyLiteral> body;
};

using Tuple = std::vector<std::string>;

/// The engine: a fact store plus rules, evaluated to fixpoint on demand.
class Engine {
 public:
  /// Add a ground fact; throws std::invalid_argument on arity conflicts.
  void add_fact(const std::string& relation, Tuple tuple);

  /// Add a rule. The head must not contain variables absent from positive
  /// body atoms (range restriction), and the same applies to negated
  /// atoms and disequalities; throws std::invalid_argument otherwise.
  /// Negation must be stratified: `run()` throws std::logic_error when a
  /// relation transitively depends on its own negation.
  void add_rule(Rule rule);

  /// Parse a program: facts and rules in textual syntax, one clause per
  /// line or separated by '.', e.g.
  ///   edge(a,b). edge(b,c).
  ///   path(X,Y) :- edge(X,Y).
  ///   path(X,Z) :- path(X,Y), edge(Y,Z).
  void load_program(std::string_view text);

  /// Evaluate all rules to fixpoint (semi-naive, stratum by stratum when
  /// negation is present). Idempotent.
  void run();

  /// All tuples currently derived for `relation` (runs evaluation first).
  std::set<Tuple> relation(const std::string& relation);

  /// Query with a pattern: constants must match, variables bind. Returns
  /// one map per matching tuple, keyed by variable name.
  std::vector<std::map<std::string, std::string>> query(const Atom& pattern);

  /// Parse and run a query atom, e.g. "path(a,X)".
  std::vector<std::map<std::string, std::string>> query(
      std::string_view pattern_text);

  std::size_t fact_count() const;

 private:
  using Bindings = std::map<std::string, std::string>;

  bool unify(const Atom& pattern, const Tuple& tuple, Bindings& bindings)
      const;
  void check_range_restriction(const Rule& rule) const;
  /// Assign each rule to a stratum; throws std::logic_error on negative
  /// cycles. Returns rule indices per stratum, bottom-up.
  std::vector<std::vector<std::size_t>> stratify() const;
  /// Run one stratum's rules to fixpoint.
  void run_stratum(const std::vector<std::size_t>& rule_indices);

  std::map<std::string, std::set<Tuple>> facts_;
  std::map<std::string, std::size_t> arity_;
  std::vector<Rule> rules_;
  bool saturated_ = true;
};

/// Parse a single atom such as `path(X, "a b")`.
Atom parse_atom(std::string_view text);

}  // namespace provmark::datalog
