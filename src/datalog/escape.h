// The one quoted-constant escape table, shared by every encoder and
// decoder of the Datalog surface syntax: fact_io's quote() on the write
// side, and the clause lexer (engine.cpp) plus fact_io's fact scanner on
// the read side. Keeping encode and decode in a single header makes a
// new escape a one-file change instead of a three-way silent-corruption
// hazard (unknown escapes decode as the raw byte, so a missed mirror
// edit would mangle values rather than error).
#pragma once

#include <string>

namespace provmark::datalog {

/// Append `c` to `out` in its in-quotes encoding: quotes and
/// backslashes escaped; newlines, carriage returns and tabs as \n, \r,
/// \t so a constant can never break one-fact-per-line framing; every
/// other byte (commas, non-ASCII) as-is.
inline void append_escaped(std::string& out, char c) {
  switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default: out += c;
  }
}

/// The byte an escape sequence `\e` stands for. Inverse of
/// append_escaped; any unlisted escaped byte stands for itself (which
/// covers \" and \\).
inline char decode_escape(char e) {
  switch (e) {
    case 'n': return '\n';
    case 'r': return '\r';
    case 't': return '\t';
    default: return e;
  }
}

}  // namespace provmark::datalog
