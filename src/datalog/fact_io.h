// Datalog graph format (paper Listing 1).
//
// A property graph G identified by string `gid` is serialized as facts:
//   n<gid>(<nodeID>,"<label>").
//   e<gid>(<edgeID>,<srcID>,<tgtID>,"<label>").
//   p<gid>(<nodeID/edgeID>,"<key>","<value>").
//
// This is ProvMark's uniform representation: every stage downstream of
// transformation — generalization, comparison, regression storage — works
// on this format, making those stages independent of the provenance
// recorder and its native output format.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "graph/property_graph.h"
#include "util/limits.h"

namespace provmark::datalog {

/// Serialize `g` as Datalog facts under graph id `gid` (e.g. "g1", "bg").
/// Nodes first, then edges, then properties; each sorted by id for
/// deterministic output.
std::string to_datalog(const graph::PropertyGraph& g, std::string_view gid);

/// Parse a Datalog document that may interleave facts for several graph
/// ids; returns one property graph per gid.
///
/// Throws std::runtime_error on malformed facts, dangling edge endpoints,
/// or properties attached to unknown elements, and util::InputSizeError
/// when `text` exceeds `max_bytes` (0 disables the guard) — checked
/// before any parsing, so an oversized network-borne document is
/// rejected in O(1) rather than loaded into unbounded graph storage.
std::map<std::string, graph::PropertyGraph> from_datalog(
    std::string_view text,
    std::size_t max_bytes = util::kDefaultMaxInputBytes);

/// Convenience: parse a document expected to contain exactly one graph.
graph::PropertyGraph single_graph_from_datalog(
    std::string_view text, std::string_view gid,
    std::size_t max_bytes = util::kDefaultMaxInputBytes);

}  // namespace provmark::datalog
