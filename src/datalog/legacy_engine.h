// The seed-era Datalog evaluator, preserved verbatim as the correctness
// baseline for the interned, indexed engine in datalog/engine.h.
//
// Storage is string tuples in std::map<std::string, std::set<Tuple>>,
// bindings are std::map<std::string, std::string>, and every body atom
// unifies against a full relation scan — the layout and join strategy the
// rewrite replaced. bench/perf_datalog_scaling.cpp and the engine
// equivalence tests run both engines over identical programs and assert
// bit-identical relation contents and query results, so any semantic
// drift in the new engine fails loudly instead of silently.
//
// Shares the AST (Term/Atom/Rule) and the parser with the production
// engine; only the evaluator differs.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/engine.h"

namespace provmark::datalog::legacy {

/// The pre-rewrite engine: a fact store plus rules, evaluated to fixpoint
/// on demand with semi-naive iteration over full relation scans.
class Engine {
 public:
  void add_fact(const std::string& relation, Tuple tuple);
  void add_rule(Rule rule);
  void load_program(std::string_view text);
  void run();
  std::set<Tuple> relation(const std::string& relation);
  std::vector<std::map<std::string, std::string>> query(const Atom& pattern);
  std::vector<std::map<std::string, std::string>> query(
      std::string_view pattern_text);
  std::size_t fact_count() const;

 private:
  using Bindings = std::map<std::string, std::string>;

  bool unify(const Atom& pattern, const Tuple& tuple, Bindings& bindings)
      const;
  void check_range_restriction(const Rule& rule) const;
  std::vector<std::vector<std::size_t>> stratify() const;
  void run_stratum(const std::vector<std::size_t>& rule_indices);

  std::map<std::string, std::set<Tuple>> facts_;
  std::map<std::string, std::size_t> arity_;
  std::vector<Rule> rules_;
  bool saturated_ = true;
};

}  // namespace provmark::datalog::legacy
