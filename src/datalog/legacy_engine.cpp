#include "datalog/legacy_engine.h"

#include <algorithm>
#include <stdexcept>

namespace provmark::datalog::legacy {

void Engine::add_fact(const std::string& relation, Tuple tuple) {
  auto [it, inserted] = arity_.try_emplace(relation, tuple.size());
  if (!inserted && it->second != tuple.size()) {
    throw std::invalid_argument("arity mismatch for relation " + relation);
  }
  if (facts_[relation].insert(std::move(tuple)).second) {
    saturated_ = false;
  }
}

void Engine::check_range_restriction(const Rule& rule) const {
  std::set<std::string> bound;
  for (const BodyLiteral& lit : rule.body) {
    if (const Atom* atom = std::get_if<Atom>(&lit)) {
      for (const Term& t : atom->terms) {
        if (t.is_variable()) bound.insert(t.text);
      }
    }
  }
  for (const Term& t : rule.head.terms) {
    if (t.is_variable() && bound.count(t.text) == 0) {
      throw std::invalid_argument(
          "rule head variable " + t.text +
          " does not occur in any positive body atom");
    }
  }
  for (const BodyLiteral& lit : rule.body) {
    if (const Disequality* diseq = std::get_if<Disequality>(&lit)) {
      for (const Term* t : {&diseq->lhs, &diseq->rhs}) {
        if (t->is_variable() && bound.count(t->text) == 0) {
          throw std::invalid_argument(
              "disequality variable " + t->text + " is unbound");
        }
      }
    }
    if (const NegatedAtom* negated = std::get_if<NegatedAtom>(&lit)) {
      for (const Term& t : negated->atom.terms) {
        if (t.is_variable() && t.text != "_" &&
            bound.count(t.text) == 0) {
          throw std::invalid_argument(
              "negated-atom variable " + t.text + " is unbound");
        }
      }
    }
  }
}

std::vector<std::vector<std::size_t>> Engine::stratify() const {
  // stratum[relation]: 0 for EDB; a head is at least the stratum of each
  // positive body relation, and strictly above each negated one.
  std::map<std::string, std::size_t> stratum;
  auto stratum_of = [&](const std::string& relation) -> std::size_t {
    auto it = stratum.find(relation);
    return it == stratum.end() ? 0 : it->second;
  };
  const std::size_t limit = rules_.size() + 2;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules_) {
      std::size_t need = 0;
      for (const BodyLiteral& lit : rule.body) {
        if (const Atom* atom = std::get_if<Atom>(&lit)) {
          need = std::max(need, stratum_of(atom->relation));
        } else if (const NegatedAtom* negated =
                       std::get_if<NegatedAtom>(&lit)) {
          need = std::max(need, stratum_of(negated->atom.relation) + 1);
        }
      }
      if (need > stratum_of(rule.head.relation)) {
        if (need >= limit) {
          throw std::logic_error(
              "negation is not stratified (relation " +
              rule.head.relation + " depends on its own negation)");
        }
        stratum[rule.head.relation] = need;
        changed = true;
      }
    }
  }
  std::size_t max_stratum = 0;
  for (const auto& [relation, s] : stratum) {
    max_stratum = std::max(max_stratum, s);
  }
  std::vector<std::vector<std::size_t>> strata(max_stratum + 1);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    strata[stratum_of(rules_[i].head.relation)].push_back(i);
  }
  return strata;
}

void Engine::add_rule(Rule rule) {
  check_range_restriction(rule);
  if (rule.body.empty()) {
    // A bodiless rule is a fact; require it to be ground.
    Tuple tuple;
    for (const Term& t : rule.head.terms) {
      if (t.is_variable()) {
        throw std::invalid_argument("fact with variable argument");
      }
      tuple.push_back(t.text);
    }
    add_fact(rule.head.relation, std::move(tuple));
    return;
  }
  rules_.push_back(std::move(rule));
  saturated_ = false;
}

void Engine::load_program(std::string_view text) {
  for (Rule& rule : parse_program(text)) {
    add_rule(std::move(rule));
  }
}

bool Engine::unify(const Atom& pattern, const Tuple& tuple,
                   Bindings& bindings) const {
  if (pattern.terms.size() != tuple.size()) return false;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const Term& t = pattern.terms[i];
    if (t.is_variable()) {
      if (t.text == "_") continue;  // anonymous variable
      auto [it, inserted] = bindings.try_emplace(t.text, tuple[i]);
      if (!inserted && it->second != tuple[i]) return false;
    } else if (t.text != tuple[i]) {
      return false;
    }
  }
  return true;
}

void Engine::run() {
  if (saturated_) return;
  // Evaluate stratum by stratum: every relation a negated atom refers to
  // is fully computed before the stratum that negates it runs.
  for (const std::vector<std::size_t>& stratum : stratify()) {
    run_stratum(stratum);
  }
  saturated_ = true;
}

void Engine::run_stratum(const std::vector<std::size_t>& rule_indices) {
  // Semi-naive evaluation: track the per-relation delta from the previous
  // round and require each rule application to use at least one delta
  // tuple, so each derivation is attempted once.
  std::map<std::string, std::set<Tuple>> delta = facts_;
  while (true) {
    std::map<std::string, std::set<Tuple>> next_delta;
    for (std::size_t rule_index : rule_indices) {
      const Rule& rule = rules_[rule_index];
      // Positions of positive atoms in the body.
      std::vector<const Atom*> atoms;
      for (const BodyLiteral& lit : rule.body) {
        if (const Atom* a = std::get_if<Atom>(&lit)) atoms.push_back(a);
      }
      for (std::size_t delta_pos = 0; delta_pos < atoms.size(); ++delta_pos) {
        // Join: atom at delta_pos ranges over delta, earlier atoms over all
        // facts (they had their turn in previous rounds), later atoms over
        // all facts.
        std::vector<Bindings> partial{{}};
        bool dead = false;
        for (std::size_t i = 0; i < atoms.size() && !dead; ++i) {
          const std::set<Tuple>* source = nullptr;
          if (i == delta_pos) {
            auto it = delta.find(atoms[i]->relation);
            if (it != delta.end()) source = &it->second;
          } else {
            auto it = facts_.find(atoms[i]->relation);
            if (it != facts_.end()) source = &it->second;
          }
          if (source == nullptr || source->empty()) {
            dead = true;
            break;
          }
          std::vector<Bindings> extended;
          for (const Bindings& b : partial) {
            for (const Tuple& tuple : *source) {
              Bindings nb = b;
              if (unify(*atoms[i], tuple, nb)) {
                extended.push_back(std::move(nb));
              }
            }
          }
          partial = std::move(extended);
          if (partial.empty()) dead = true;
        }
        if (dead) continue;
        // Apply disequality and negation filters, then emit head tuples.
        for (const Bindings& b : partial) {
          bool ok = true;
          for (const BodyLiteral& lit : rule.body) {
            auto value = [&](const Term& t) -> const std::string& {
              return t.is_variable() ? b.at(t.text) : t.text;
            };
            if (const Disequality* diseq = std::get_if<Disequality>(&lit)) {
              if (value(diseq->lhs) == value(diseq->rhs)) {
                ok = false;
                break;
              }
            } else if (const NegatedAtom* negated =
                           std::get_if<NegatedAtom>(&lit)) {
              // Negation as failure against the (complete) lower strata.
              auto rel_it = facts_.find(negated->atom.relation);
              if (rel_it == facts_.end()) continue;
              bool matched = false;
              for (const Tuple& tuple : rel_it->second) {
                Bindings probe = b;
                if (unify(negated->atom, tuple, probe)) {
                  matched = true;
                  break;
                }
              }
              if (matched) {
                ok = false;
                break;
              }
            }
          }
          if (!ok) continue;
          Tuple head;
          head.reserve(rule.head.terms.size());
          for (const Term& t : rule.head.terms) {
            head.push_back(t.is_variable() ? b.at(t.text) : t.text);
          }
          auto& rel = facts_[rule.head.relation];
          auto [it2, inserted2] = arity_.try_emplace(rule.head.relation,
                                                     head.size());
          if (!inserted2 && it2->second != head.size()) {
            throw std::invalid_argument("arity mismatch for relation " +
                                        rule.head.relation);
          }
          if (rel.find(head) == rel.end()) {
            next_delta[rule.head.relation].insert(head);
          }
        }
      }
    }
    bool grew = false;
    for (auto& [relation, tuples] : next_delta) {
      for (const Tuple& tuple : tuples) {
        if (facts_[relation].insert(tuple).second) grew = true;
      }
    }
    if (!grew) break;
    delta = std::move(next_delta);
  }
}

std::set<Tuple> Engine::relation(const std::string& relation) {
  run();
  auto it = facts_.find(relation);
  return it == facts_.end() ? std::set<Tuple>{} : it->second;
}

std::vector<std::map<std::string, std::string>> Engine::query(
    const Atom& pattern) {
  run();
  std::vector<Bindings> out;
  auto it = facts_.find(pattern.relation);
  if (it == facts_.end()) return out;
  for (const Tuple& tuple : it->second) {
    Bindings b;
    if (unify(pattern, tuple, b)) out.push_back(std::move(b));
  }
  return out;
}

std::vector<std::map<std::string, std::string>> Engine::query(
    std::string_view pattern_text) {
  return query(parse_atom(pattern_text));
}

std::size_t Engine::fact_count() const {
  std::size_t n = 0;
  for (const auto& [relation, tuples] : facts_) n += tuples.size();
  return n;
}

}  // namespace provmark::datalog::legacy
