#include "datalog/fact_io.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

#include "datalog/escape.h"
#include "util/strings.h"

namespace provmark::datalog {

namespace {

/// Quote a string as a Datalog constant (escape table: escape.h).
std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) append_escaped(out, c);
  out += '"';
  return out;
}

/// Emit an element id: bare when it is a safe identifier for both this
/// parser and the engine's clause lexer (lower-case or digit head so it
/// cannot read as a variable; alnum/_/-/: tail with no ":-", which the
/// engine treats as the rule separator), quoted otherwise.
std::string id_constant(const std::string& s) {
  bool bare = !s.empty() &&
              (std::islower(static_cast<unsigned char>(s[0])) ||
               std::isdigit(static_cast<unsigned char>(s[0])));
  for (std::size_t i = 0; bare && i < s.size(); ++i) {
    char c = s[i];
    bare = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || (c == ':' && !(i + 1 < s.size() && s[i + 1] == '-'));
  }
  return bare ? s : quote(s);
}

/// Scanner for one fact line: name(arg1,arg2,...).
struct FactScanner {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no;

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("datalog line " + std::to_string(line_no) +
                             ": " + message);
  }

  void skip_space() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of fact");
    return text[pos];
  }

  void expect(char c) {
    skip_space();
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  std::string identifier() {
    skip_space();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_' || text[pos] == '.' || text[pos] == '-' ||
            text[pos] == ':' || text[pos] == '/')) {
      ++pos;
    }
    if (pos == start) fail("expected identifier");
    return std::string(text.substr(start, pos - start));
  }

  std::string quoted_string() {
    skip_space();
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("bad escape");
        out += decode_escape(text[pos++]);
      } else {
        out += c;
      }
    }
  }

  /// Argument that may be a bare identifier or a quoted string.
  std::string argument() {
    skip_space();
    if (peek() == '"') return quoted_string();
    return identifier();
  }
};

struct PendingEdge {
  std::string gid, id, src, tgt, label;
  std::size_t line_no;
};

struct PendingProp {
  std::string gid, element, key, value;
  std::size_t line_no;
};

}  // namespace

std::string to_datalog(const graph::PropertyGraph& g, std::string_view gid) {
  std::string sg(gid);
  std::vector<graph::Node> nodes = g.nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  std::vector<graph::Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });

  std::string out;
  for (const graph::Node& n : nodes) {
    out += "n" + sg + "(" + id_constant(n.id) + "," + quote(n.label) + ").\n";
  }
  for (const graph::Edge& e : edges) {
    out += "e" + sg + "(" + id_constant(e.id) + "," + id_constant(e.src) +
           "," + id_constant(e.tgt) + "," + quote(e.label) + ").\n";
  }
  for (const graph::Node& n : nodes) {
    for (const auto& [k, v] : n.props) {
      out += "p" + sg + "(" + id_constant(n.id) + "," + quote(k) + "," +
             quote(v) + ").\n";
    }
  }
  for (const graph::Edge& e : edges) {
    for (const auto& [k, v] : e.props) {
      out += "p" + sg + "(" + id_constant(e.id) + "," + quote(k) + "," +
             quote(v) + ").\n";
    }
  }
  return out;
}

std::map<std::string, graph::PropertyGraph> from_datalog(
    std::string_view text, std::size_t max_bytes) {
  util::check_input_size("datalog document", text.size(), max_bytes);
  std::map<std::string, graph::PropertyGraph> graphs;
  std::vector<PendingEdge> edges;
  std::vector<PendingProp> props;

  std::size_t line_no = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || util::starts_with(line, "%") ||
        util::starts_with(line, "//")) {
      continue;  // comment or blank
    }
    FactScanner scan{line, 0, line_no};
    std::string relation = scan.identifier();
    if (relation.size() < 2 ||
        (relation[0] != 'n' && relation[0] != 'e' && relation[0] != 'p')) {
      scan.fail("unknown relation '" + relation + "'");
    }
    char kind = relation[0];
    std::string gid = relation.substr(1);
    scan.expect('(');
    if (kind == 'n') {
      std::string id = scan.argument();
      scan.expect(',');
      std::string label = scan.argument();
      scan.expect(')');
      scan.expect('.');
      graphs[gid].add_node(id, label);
    } else if (kind == 'e') {
      PendingEdge e;
      e.gid = gid;
      e.line_no = line_no;
      e.id = scan.argument();
      scan.expect(',');
      e.src = scan.argument();
      scan.expect(',');
      e.tgt = scan.argument();
      scan.expect(',');
      e.label = scan.argument();
      scan.expect(')');
      scan.expect('.');
      edges.push_back(std::move(e));
    } else {
      PendingProp p;
      p.gid = gid;
      p.line_no = line_no;
      p.element = scan.argument();
      scan.expect(',');
      p.key = scan.argument();
      scan.expect(',');
      p.value = scan.argument();
      scan.expect(')');
      scan.expect('.');
      props.push_back(std::move(p));
    }
  }

  // Edges and properties may appear before their nodes; resolve them now.
  for (const PendingEdge& e : edges) {
    auto it = graphs.find(e.gid);
    if (it == graphs.end()) {
      throw std::runtime_error("datalog line " + std::to_string(e.line_no) +
                               ": edge for unknown graph " + e.gid);
    }
    it->second.add_edge(e.id, e.src, e.tgt, e.label);
  }
  for (const PendingProp& p : props) {
    auto it = graphs.find(p.gid);
    if (it == graphs.end() || !it->second.has_element(p.element)) {
      throw std::runtime_error("datalog line " + std::to_string(p.line_no) +
                               ": property on unknown element " + p.element);
    }
    it->second.set_property(p.element, p.key, p.value);
  }
  return graphs;
}

graph::PropertyGraph single_graph_from_datalog(std::string_view text,
                                               std::string_view gid,
                                               std::size_t max_bytes) {
  std::map<std::string, graph::PropertyGraph> graphs =
      from_datalog(text, max_bytes);
  auto it = graphs.find(std::string(gid));
  if (it == graphs.end()) {
    throw std::runtime_error("datalog document has no graph named " +
                             std::string(gid));
  }
  return std::move(it->second);
}

}  // namespace provmark::datalog
